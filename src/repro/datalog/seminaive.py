"""General bottom-up datalog evaluation (naive and semi-naive).

This engine handles arbitrary (not necessarily monadic) datalog over any
:class:`repro.structures.Structure`.  It is the reference implementation
against which the specialized linear-time strategies of
:mod:`repro.datalog.grounding` and :mod:`repro.datalog.guarded` are
cross-checked, and the fallback for programs outside their fragments (e.g.
programs using the non-functional ``child`` relation).

The naive iterator also exposes the round-by-round sets ``T^0_P, T^1_P, ...``
of Definition 3.1, which the test suite uses to replicate Example 3.2's
fixpoint computation literally.
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Optional, Set, Tuple

from repro.datalog.program import Program, Rule
from repro.datalog.terms import Atom, Constant, Variable
from repro.errors import DatalogError
from repro.structures import IndexedStructure, Structure, as_indexed

FactTuple = Tuple[int, ...]
Relations = Dict[str, Set[FactTuple]]


def _candidates(
    atom: Atom,
    binding: Dict[Variable, int],
    intensional: Set[str],
    facts: Relations,
    edb: IndexedStructure,
    override: Optional[Set[FactTuple]] = None,
) -> Iterator[FactTuple]:
    """Tuples of ``atom``'s relation compatible with the bound arguments."""
    # Bound positions (constants and already-bound variables), computed once
    # for both the intensional and the extensional case; argument order is
    # preserved, so the values double as the membership-test tuple.
    bound: List[Tuple[int, int]] = []
    for i, term in enumerate(atom.args):
        if isinstance(term, Constant):
            bound.append((i, term.value))
        elif term in binding:
            bound.append((i, binding[term]))

    if atom.pred in intensional:
        source = override if override is not None else facts.get(atom.pred, set())
        for tup in source:
            if all(tup[i] == v for i, v in bound):
                yield tup
        return

    if len(bound) == atom.arity and atom.arity > 0:
        tup = tuple(v for _, v in bound)
        if tup in edb.relation(atom.pred):
            yield tup
        return
    if bound and atom.arity >= 2:
        positions = tuple(i for i, _ in bound)
        key = tuple(v for _, v in bound)
        yield from edb.index(atom.pred, positions).get(key, ())
        return
    for tup in edb.relation(atom.pred):
        if all(tup[i] == v for i, v in bound):
            yield tup


def _order_body(body: Tuple[Atom, ...], first: Optional[int]) -> List[int]:
    """Greedy join order: start with ``first`` (the delta atom) if given,
    then repeatedly pick the atom sharing the most variables with those
    already placed."""
    remaining = set(range(len(body)))
    order: List[int] = []
    bound_vars: Set[Variable] = set()
    if first is not None:
        order.append(first)
        remaining.discard(first)
        bound_vars |= body[first].variables()
    while remaining:
        best = None
        best_score = (-1, -1)
        for i in remaining:
            atom_vars = body[i].variables()
            shared = len(atom_vars & bound_vars)
            grounded = 1 if not atom_vars or atom_vars <= bound_vars else 0
            score = (grounded, shared)
            if score > best_score:
                best_score = score
                best = i
        assert best is not None
        order.append(best)
        remaining.discard(best)
        bound_vars |= body[best].variables()
    return order


def _evaluate_rule(
    rule: Rule,
    intensional: Set[str],
    facts: Relations,
    edb: IndexedStructure,
    delta_position: Optional[int] = None,
    delta: Optional[Relations] = None,
) -> Set[FactTuple]:
    """All head tuples derivable from ``rule`` under the given databases.

    If ``delta_position`` is given, the body atom at that index is matched
    against ``delta`` instead of ``facts`` (semi-naive restriction).
    """
    order = _order_body(rule.body, delta_position)
    heads: Set[FactTuple] = set()

    def recurse(depth: int, binding: Dict[Variable, int]) -> None:
        if depth == len(order):
            heads.add(rule.head.ground_tuple(binding))
            return
        index = order[depth]
        atom = rule.body[index]
        override = None
        if delta_position is not None and index == delta_position and delta is not None:
            override = delta.get(atom.pred, set())
        for tup in _candidates(atom, binding, intensional, facts, edb, override):
            new_binding = binding
            extended: List[Variable] = []
            ok = True
            for term, value in zip(atom.args, tup):
                if isinstance(term, Constant):
                    if term.value != value:
                        ok = False
                        break
                elif term in new_binding:
                    if new_binding[term] != value:
                        ok = False
                        break
                else:
                    if new_binding is binding:
                        new_binding = dict(binding)
                    new_binding[term] = value
                    extended.append(term)
            if ok:
                recurse(depth + 1, new_binding)
        return

    recurse(0, {})
    return heads


def evaluate_seminaive(program: Program, structure: Structure) -> Relations:
    """Compute the minimal model's intensional relations (semi-naive).

    Returns a dict mapping each intensional predicate to its set of derived
    tuples (0-ary predicates map to ``{()}`` when derived).

    This is the *interpreted* reference engine: join orders are recomputed
    on every rule application and bindings are threaded through
    dictionaries.  The compiled engine of :mod:`repro.datalog.plan` computes
    the same model from a precompiled plan; the two are cross-checked in the
    test suite and compared in ``benchmarks/``.  Pass a pre-built
    :class:`repro.structures.IndexedStructure` to reuse document indexes
    across calls.
    """
    intensional = program.intensional_predicates()
    _check_extensional(program, structure, intensional)
    edb = as_indexed(structure)
    facts: Relations = {p: set() for p in intensional}

    # Round 0: rules without intensional body atoms.
    delta: Relations = {p: set() for p in intensional}
    for rule in program.rules:
        if any(a.pred in intensional for a in rule.body):
            continue
        for tup in _evaluate_rule(rule, intensional, facts, edb):
            if tup not in facts[rule.head.pred]:
                delta[rule.head.pred].add(tup)
    for pred, tuples in delta.items():
        facts[pred] |= tuples

    recursive_rules = [
        rule
        for rule in program.rules
        if any(a.pred in intensional for a in rule.body)
    ]
    while any(delta.values()):
        new: Relations = {p: set() for p in intensional}
        for rule in recursive_rules:
            for position, atom in enumerate(rule.body):
                if atom.pred not in intensional:
                    continue
                if not delta.get(atom.pred):
                    continue
                for tup in _evaluate_rule(
                    rule, intensional, facts, edb, position, delta
                ):
                    if tup not in facts[rule.head.pred]:
                        new[rule.head.pred].add(tup)
        delta = new
        for pred, tuples in delta.items():
            facts[pred] |= tuples
    return facts


def naive_rounds(
    program: Program, structure: Structure
) -> List[Relations]:
    """The naive ``T_P`` iteration, round by round (Definition 3.1).

    Returns a list whose ``i``-th entry maps predicates to the atoms first
    derived in round ``i + 1`` (i.e. ``T^{i+1}_P minus T^i_P`` restricted to
    intensional predicates).  The extensional database (``T^0_P``) is not
    included.  Concatenating all rounds gives the fixpoint.
    """
    intensional = program.intensional_predicates()
    _check_extensional(program, structure, intensional)
    edb = as_indexed(structure)
    facts: Relations = {p: set() for p in intensional}
    rounds: List[Relations] = []
    while True:
        new: Relations = {}
        for rule in program.rules:
            for tup in _evaluate_rule(rule, intensional, facts, edb):
                if tup not in facts[rule.head.pred]:
                    new.setdefault(rule.head.pred, set()).add(tup)
        if not new:
            return rounds
        for pred, tuples in new.items():
            facts[pred] |= tuples
        rounds.append(new)


def _check_extensional(
    program: Program, structure: Structure, intensional: Set[str]
) -> None:
    for rule in program.rules:
        for atom in rule.body:
            if atom.pred in intensional:
                continue
            if not structure.has_relation(atom.pred):
                raise DatalogError(
                    f"structure provides no extensional relation {atom.pred!r} "
                    f"(needed by rule: {rule})"
                )

"""Theorem 4.2: linear-time grounding of monadic datalog over trees.

The proof of Theorem 4.2 evaluates a monadic program ``P`` over a tree
structure in time ``O(|P| * |dom|)`` in three steps:

1. rewrite every rule to be *connected* (split off components through
   propositional helper predicates) -- :func:`repro.datalog.analysis.split_disconnected`;
2. *ground* each connected rule: because every binary relation of a tree
   structure satisfies both functional dependencies of Proposition 4.1, each
   variable of a connected rule functionally determines all others, so a
   rule has at most ``|dom|`` relevant instantiations, found by propagating
   a seed assignment along the rule's query graph;
3. solve the resulting ground program as propositional Horn-SAT
   (Proposition 3.5) -- :mod:`repro.datalog.hornsat`.

:func:`evaluate_ground` implements the full pipeline.  It is the engine used
by the complexity benchmarks; correctness is cross-checked against the
semi-naive engine in the test suite.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, List, Optional, Sequence, Set, Tuple

from repro.datalog.analysis import split_disconnected
from repro.datalog.hornsat import AtomInterner, solve_horn
from repro.datalog.program import Program, Rule
from repro.datalog.terms import Atom, Constant, Variable
from repro.errors import DatalogError
from repro.structures import Structure, as_indexed

GroundAtom = Tuple[str, Tuple[int, ...]]


class GroundingNotApplicable(DatalogError):
    """The Theorem 4.2 strategy does not apply to this program/structure.

    Raised when some binary body atom refers to a relation that is not
    bidirectionally functional in the structure (e.g. ``child``), or when
    an intensional predicate has arity two.
    """


def grounding_applicable(program: Program, structure: Structure) -> bool:
    """Whether :func:`evaluate_ground` can evaluate this program."""
    if not program.is_monadic():
        return False
    # ``functional`` is an O(|relation|) scan on raw structures; wrap with
    # the caching runtime so a program mentioning ``nextsibling`` in twenty
    # bodies pays for one scan (repeat lookups hit the per-name memo of
    # :class:`repro.structures.IndexedStructure`).
    structure = as_indexed(structure)
    intensional = program.intensional_predicates()
    for rule in program.rules:
        for atom in rule.body:
            if atom.arity >= 3:
                return False
            if atom.arity == 2:
                if atom.pred in intensional:
                    return False
                if structure.functional(atom.pred) is None:
                    return False
    return True


def _propagation_plan(rule: Rule) -> Tuple[Optional[Variable], List[Atom]]:
    """Choose a seed variable and a body order that propagates bindings.

    Returns ``(seed, ordered_atoms)`` where processing ``ordered_atoms`` in
    order guarantees that, once the seed is bound, every atom has at least
    one bound variable when visited.  Assumes the rule is connected.
    """
    variables = list(rule.variables())
    if not variables:
        return None, list(rule.body)
    # Prefer the head variable as seed so the query predicate's argument is
    # enumerated directly.
    head_vars = list(rule.head.variables())
    seed = head_vars[0] if head_vars else variables[0]

    bound: Set[Variable] = {seed}
    remaining = list(rule.body)
    ordered: List[Atom] = []
    while remaining:
        progress = False
        for atom in list(remaining):
            atom_vars = atom.variables()
            if not atom_vars or atom_vars & bound:
                ordered.append(atom)
                remaining.remove(atom)
                bound |= atom_vars
                progress = True
        if not progress:
            # Disconnected rule: should have been split beforehand.
            raise GroundingNotApplicable(
                f"rule is not connected, cannot ground: {rule}"
            )
    return seed, ordered


def ground_rules(
    program: Program, structure: Structure
) -> Tuple[List[Tuple[GroundAtom, List[GroundAtom]]], Set[GroundAtom]]:
    """Ground a (pre-split) connected monadic program over a structure.

    Returns ``(rules, facts)`` where each rule is
    ``(head_atom, [intensional_body_atoms])``; extensional body atoms are
    checked during grounding and eliminated.  ``facts`` collects heads of
    rules whose bodies ground to an empty list *and* extensional checks
    succeed vacuously (kept separate only for clarity -- they are returned
    as rules with empty bodies too).
    """
    intensional = program.intensional_predicates()
    out: List[Tuple[GroundAtom, List[GroundAtom]]] = []
    facts: Set[GroundAtom] = set()

    # Pre-fetch relation data.
    unary_cache: Dict[str, FrozenSet[Tuple[int, ...]]] = {}
    functional_cache: Dict[str, Tuple[Dict[int, int], Dict[int, int]]] = {}

    def unary_holds(pred: str, value: int) -> bool:
        if pred not in unary_cache:
            unary_cache[pred] = structure.relation(pred)
        return (value,) in unary_cache[pred]

    def functional_maps(pred: str) -> Tuple[Dict[int, int], Dict[int, int]]:
        if pred not in functional_cache:
            maps = structure.functional(pred)
            if maps is None:
                raise GroundingNotApplicable(
                    f"relation {pred!r} is not bidirectionally functional"
                )
            functional_cache[pred] = maps
        return functional_cache[pred]

    for rule in program.rules:
        seed, ordered = _propagation_plan(rule)
        seeds: Sequence[Optional[int]]
        if seed is None:
            seeds = [None]
        else:
            seeds = list(structure.domain)
        for seed_value in seeds:
            binding: Dict[Variable, int] = {}
            if seed is not None:
                binding[seed] = seed_value  # type: ignore[assignment]
            body_out: List[GroundAtom] = []
            ok = True
            for atom in ordered:
                if atom.arity == 0:
                    if atom.pred in intensional:
                        body_out.append((atom.pred, ()))
                    else:
                        raise DatalogError(
                            f"extensional propositional atom {atom.pred!r}"
                        )
                    continue
                if atom.arity == 1:
                    term = atom.args[0]
                    if isinstance(term, Constant):
                        value: Optional[int] = term.value
                    else:
                        value = binding.get(term)
                    if value is None:
                        raise GroundingNotApplicable(
                            f"variable {term} not bound when visiting {atom}"
                        )
                    if atom.pred in intensional:
                        body_out.append((atom.pred, (value,)))
                    elif not unary_holds(atom.pred, value):
                        ok = False
                        break
                    continue
                # Binary extensional atom.
                forward, backward = functional_maps(atom.pred)
                t1, t2 = atom.args
                v1 = t1.value if isinstance(t1, Constant) else binding.get(t1)
                v2 = t2.value if isinstance(t2, Constant) else binding.get(t2)
                if v1 is not None:
                    expected = forward.get(v1)
                    if expected is None or (v2 is not None and v2 != expected):
                        ok = False
                        break
                    if v2 is None and isinstance(t2, Variable):
                        binding[t2] = expected
                elif v2 is not None:
                    expected = backward.get(v2)
                    if expected is None:
                        ok = False
                        break
                    if isinstance(t1, Variable):
                        binding[t1] = expected
                else:
                    raise GroundingNotApplicable(
                        f"no bound variable when visiting {atom}"
                    )
            if not ok:
                continue
            if rule.head.arity == 0:
                head: GroundAtom = (rule.head.pred, ())
            else:
                head = (rule.head.pred, rule.head.ground_tuple(binding))
            if body_out:
                out.append((head, body_out))
            else:
                facts.add(head)
                out.append((head, []))
    return out, facts


class GroundEvaluation:
    """Result of :func:`evaluate_ground` with bookkeeping for benchmarks."""

    def __init__(
        self,
        relations: Dict[str, Set[Tuple[int, ...]]],
        num_ground_rules: int,
        num_atoms: int,
    ):
        self.relations = relations
        self.num_ground_rules = num_ground_rules
        self.num_atoms = num_atoms


def evaluate_ground(
    program: Program,
    structure: Structure,
    *,
    pre_split: Optional[Program] = None,
) -> GroundEvaluation:
    """Evaluate a monadic program over a tree structure per Theorem 4.2.

    The program may use any unary extensional relations the structure
    provides, and any *bidirectionally functional* binary relations
    (``firstchild``, ``nextsibling``, ``lastchild``, ``child_k``).  Raises
    :class:`GroundingNotApplicable` otherwise.

    ``pre_split`` lets callers (notably
    :class:`repro.datalog.plan.CompiledProgram`) supply the
    connectedness-split program computed once at compile time; when omitted
    the split is performed here.  ``structure`` may be a pre-built
    :class:`repro.structures.IndexedStructure`; bare structures are wrapped
    so the functional maps and relation extensions are cached.
    """
    structure = as_indexed(structure)
    split = pre_split if pre_split is not None else split_disconnected(program)
    if not grounding_applicable(split, structure):
        raise GroundingNotApplicable(
            "program is outside the Theorem 4.2 fragment for this structure"
        )
    rules, _ = ground_rules(split, structure)

    interner = AtomInterner()
    horn_rules = []
    for head, body in rules:
        horn_rules.append(
            (interner.intern(head), [interner.intern(b) for b in body])
        )
    true_ids = solve_horn(len(interner), horn_rules, [])

    relations: Dict[str, Set[Tuple[int, ...]]] = {
        p: set() for p in program.intensional_predicates()
    }
    for ident in true_ids:
        pred, args = interner.key_of(ident)
        if pred in relations:
            relations[pred].add(args)
    return GroundEvaluation(relations, len(horn_rules), len(interner))

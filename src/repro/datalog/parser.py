"""Textual syntax for datalog programs.

Grammar (whitespace-insensitive, ``%`` starts a line comment)::

    program  ::=  rule*
    rule     ::=  atom ( ":-" | "<-" ) atom ("," atom)* "."  |  atom "."
    atom     ::=  pred [ "(" term ("," term)* ")" ]
    term     ::=  variable | integer
    pred     ::=  identifier  (letters, digits, "_", ".", "[", "]", "<", ">")

Variables are identifiers whose first letter is ``x``, ``y`` or ``z``
(optionally suffixed, e.g. ``x0``, ``y_left``), matching the paper's naming
convention; everything else is a predicate symbol.  A leading ``?`` also
forces a variable (``?node``).

>>> p = parse_program("even(x) :- root(x), aux(x). aux(x) :- leaf(x).")
>>> len(p.rules)
2
"""

from __future__ import annotations

from typing import List, Optional

from repro.datalog.program import Program, Rule
from repro.datalog.terms import Atom, Constant, Term, Variable
from repro.errors import ParseError

_IDENT_CHARS = set(
    "abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ0123456789_.[]<>*-"
)


def _is_variable_name(name: str) -> bool:
    if name.startswith("?"):
        return True
    first = name[0]
    if first not in "xyz":
        return False
    return all(c.isalnum() or c == "_" for c in name)


class _Tokens:
    """Tokenizer shared by :func:`parse_program` and :func:`parse_rule`."""

    def __init__(self, text: str):
        self.text = text
        self.pos = 0

    def error(self, message: str) -> ParseError:
        return ParseError(message, position=self.pos)

    def skip(self) -> None:
        while self.pos < len(self.text):
            c = self.text[self.pos]
            if c.isspace():
                self.pos += 1
            elif c == "%":
                while self.pos < len(self.text) and self.text[self.pos] != "\n":
                    self.pos += 1
            else:
                break

    def at_end(self) -> bool:
        self.skip()
        return self.pos >= len(self.text)

    def peek(self) -> str:
        self.skip()
        return self.text[self.pos] if self.pos < len(self.text) else ""

    def expect(self, literal: str) -> None:
        self.skip()
        if not self.text.startswith(literal, self.pos):
            raise self.error(f"expected {literal!r}")
        self.pos += len(literal)

    def try_consume(self, literal: str) -> bool:
        self.skip()
        if self.text.startswith(literal, self.pos):
            self.pos += len(literal)
            return True
        return False

    def identifier(self) -> str:
        self.skip()
        start = self.pos
        if self.peek() == "?":
            self.pos += 1
        while self.pos < len(self.text) and self.text[self.pos] in _IDENT_CHARS:
            self.pos += 1
        if self.pos == start:
            raise self.error("expected an identifier")
        return self.text[start : self.pos]


def _parse_term(tokens: _Tokens) -> Term:
    tokens.skip()
    c = tokens.peek()
    if c.isdigit() or c == "-":
        start = tokens.pos
        if c == "-":
            tokens.pos += 1
        while tokens.pos < len(tokens.text) and tokens.text[tokens.pos].isdigit():
            tokens.pos += 1
        if tokens.pos == start or tokens.text[start:tokens.pos] == "-":
            raise tokens.error("expected an integer constant")
        return Constant(int(tokens.text[start : tokens.pos]))
    name = tokens.identifier()
    if _is_variable_name(name):
        return Variable(name.lstrip("?"))
    raise tokens.error(
        f"term {name!r} is neither a variable (x/y/z... or ?name) nor an integer"
    )


def _parse_atom(tokens: _Tokens) -> Atom:
    pred = tokens.identifier()
    if _is_variable_name(pred):
        raise tokens.error(f"predicate name {pred!r} looks like a variable")
    args: List[Term] = []
    if tokens.try_consume("("):
        while True:
            args.append(_parse_term(tokens))
            if tokens.try_consume(","):
                continue
            tokens.expect(")")
            break
    return Atom(pred, tuple(args))


def _parse_one_rule(tokens: _Tokens) -> Rule:
    head = _parse_atom(tokens)
    body: List[Atom] = []
    if tokens.try_consume(":-") or tokens.try_consume("<-"):
        while True:
            body.append(_parse_atom(tokens))
            if tokens.try_consume(","):
                continue
            break
    tokens.expect(".")
    return Rule(head, body)


def parse_rule(text: str) -> Rule:
    """Parse a single rule, e.g. ``"p(x) :- q(x), r(x, y)."``."""
    tokens = _Tokens(text)
    rule = _parse_one_rule(tokens)
    if not tokens.at_end():
        raise tokens.error("trailing input after rule")
    return rule


def parse_program(text: str, query: Optional[str] = None) -> Program:
    """Parse a whole program; ``query`` selects the query predicate."""
    tokens = _Tokens(text)
    rules: List[Rule] = []
    while not tokens.at_end():
        rules.append(_parse_one_rule(tokens))
    return Program(rules, query=query)

"""Query containment machinery (Proposition 4.18, Corollaries 4.20, 5.12).

Containment of monadic datalog queries over trees is EXPTIME-hard
(Corollary 4.20) -- a lower bound, so no general efficient algorithm
exists.  This module provides the practically useful procedures:

* :func:`bounded_containment` -- exhaustive counterexample search over all
  trees up to a size bound (sound refutation; "no counterexample up to n"
  otherwise);
* :func:`automaton_query_containment` -- *exact* containment for queries
  presented as unary automata (e.g. compiled from MSO), via
  product/complement/emptiness on the marked alphabet;
* :func:`caterpillar_word_containment` -- the word-language containment
  test behind Corollary 5.12's PSPACE upper bound for unary caterpillar
  queries (containment of the path languages; sound for query containment
  whenever the expressions are path-deterministic -- see the docstring).
"""

from __future__ import annotations

from itertools import product as iter_product
from typing import Callable, Iterator, List, Optional, Sequence, Set, Tuple

from repro.automata.nfa import language_subset, thompson
from repro.automata.treeauto import intersect, emptiness_witness_unranked
from repro.automata.unary import UnaryQueryDTA, marked_alphabet
from repro.caterpillar.evaluate import image, to_word_regex
from repro.caterpillar.syntax import CatExpr
from repro.datalog.engine import evaluate
from repro.datalog.program import Program
from repro.errors import DatalogError
from repro.trees.node import Node
from repro.trees.unranked import UnrankedStructure


def enumerate_trees(labels: Sequence[str], max_size: int) -> Iterator[Node]:
    """Enumerate all ordered labeled trees with up to ``max_size`` nodes.

    The number of shapes is the Catalan-like series times ``|labels|^n``;
    keep ``max_size`` small (<= 6 with two labels is ~10^4 trees).
    """

    def shapes(size: int) -> Iterator[Tuple]:
        # A shape is a tuple of child shapes.
        if size == 1:
            yield ()
            return
        # Split size-1 nodes among one or more children.
        for first in range(1, size):
            rest = size - 1 - first
            for first_shape in shapes(first):
                if rest == 0:
                    yield (first_shape,)
                else:
                    for tail in shapes_forest(rest):
                        yield (first_shape,) + tail

    def shapes_forest(size: int) -> Iterator[Tuple]:
        for first in range(1, size + 1):
            for first_shape in shapes(first):
                if size - first == 0:
                    yield (first_shape,)
                else:
                    for tail in shapes_forest(size - first):
                        yield (first_shape,) + tail

    def build(shape: Tuple, labeling: List[str], cursor: List[int]) -> Node:
        node = Node(labeling[cursor[0]])
        cursor[0] += 1
        for child_shape in shape:
            node.add_child(build(child_shape, labeling, cursor))
        return node

    def shape_size(shape: Tuple) -> int:
        return 1 + sum(shape_size(c) for c in shape)

    for size in range(1, max_size + 1):
        for shape in shapes(size):
            for labeling in iter_product(labels, repeat=size):
                yield build(shape, list(labeling), [0])


def bounded_containment(
    p1: Program,
    p2: Program,
    labels: Sequence[str] = ("a", "b"),
    max_size: int = 5,
) -> Tuple[bool, Optional[Node]]:
    """Search for a tree where ``p1``'s query selects a node ``p2``'s does
    not.  Returns ``(False, witness)`` or ``(True, None)`` meaning "no
    counterexample up to the bound" (NOT a proof of containment --
    Corollary 4.20 says no cheap proof exists in general)."""
    if p1.query is None or p2.query is None:
        raise DatalogError("both programs need query predicates")
    for tree in enumerate_trees(labels, max_size):
        structure = UnrankedStructure(tree)
        left = evaluate(p1, structure).query_result()
        if not left:
            continue
        right = evaluate(p2, structure).query_result()
        if not left <= right:
            return False, tree
    return True, None


def automaton_query_containment(
    q1: UnaryQueryDTA, q2: UnaryQueryDTA
) -> Tuple[bool, Optional[Node]]:
    """Exact containment of two automaton-presented unary queries.

    Both queries must share the mark variable and label alphabet.  The
    check is emptiness of ``L(A1) \\cap L(A2)^c`` over correctly marked
    encodings; the witness (if any) is the unranked tree whose marked node
    ``q1`` selects but ``q2`` does not (the mark is dropped in the
    returned witness).
    """
    if q1.var != q2.var:
        raise DatalogError("queries must share the mark variable")
    if q1.dta.alphabet != q2.dta.alphabet:
        raise DatalogError("queries must share the marked alphabet")
    difference = intersect(q1.dta, q2.dta.complement())
    witness = emptiness_witness_unranked(difference)
    if witness is None:
        return True, None
    # Drop marks from the witness labels.
    def strip(node: Node) -> Node:
        label = node.label[0] if isinstance(node.label, tuple) else node.label
        out = Node(label)
        for child in node.children:
            out.add_child(strip(child))
        return out

    return False, strip(witness)


def caterpillar_word_containment(
    e1: CatExpr, e2: CatExpr
) -> Tuple[bool, Optional[Tuple]]:
    """Containment of the *path languages* of two caterpillar expressions.

    This is the regular-expression containment at the heart of
    Corollary 5.12's PSPACE procedure.  Path-language containment implies
    query containment of ``root.E1 <= root.E2``; the converse can fail
    (different relation words may denote overlapping node pairs on actual
    trees), so a negative answer should be confirmed with
    :func:`bounded_containment` on the compiled programs -- the test suite
    demonstrates both directions.
    """
    n1 = thompson(to_word_regex(e1))
    n2 = thompson(to_word_regex(e2))
    return language_subset(n1, n2, alphabet=n1.alphabet | n2.alphabet)

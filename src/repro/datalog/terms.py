"""Terms and atoms of datalog (Section 3.1).

Atoms are of the form ``p(t1, ..., tm)`` where each ``ti`` is a variable or a
constant from the (finite) domain.  Zero-ary (propositional) atoms are
allowed; they arise when disconnected rules are split (proof of Theorem 4.2).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, Tuple, Union


@dataclass(frozen=True, order=True)
class Variable:
    """A datalog variable.

    >>> Variable("x") == Variable("x")
    True
    """

    name: str

    def __str__(self) -> str:
        return self.name


@dataclass(frozen=True, order=True)
class Constant:
    """A domain constant (domain elements are integers).

    >>> str(Constant(3))
    '3'
    """

    value: int

    def __str__(self) -> str:
        return str(self.value)


Term = Union[Variable, Constant]


@dataclass(frozen=True)
class Atom:
    """An atom ``pred(args...)``.

    ``args`` may be empty (propositional atom).  Atoms are immutable and
    hashable, so they can be used in sets directly.
    """

    pred: str
    args: Tuple[Term, ...] = ()

    @property
    def arity(self) -> int:
        """Number of arguments."""
        return len(self.args)

    @property
    def is_ground(self) -> bool:
        """Whether the atom contains no variables."""
        return all(isinstance(t, Constant) for t in self.args)

    def variables(self) -> FrozenSet[Variable]:
        """The set of variables occurring in the atom."""
        return frozenset(t for t in self.args if isinstance(t, Variable))

    def substitute(self, binding: Dict[Variable, Term]) -> "Atom":
        """Apply a substitution, leaving unbound variables in place."""
        return Atom(
            self.pred,
            tuple(binding.get(t, t) if isinstance(t, Variable) else t for t in self.args),
        )

    def ground_tuple(self, binding: Dict[Variable, int]) -> Tuple[int, ...]:
        """Evaluate the argument tuple under a total integer valuation."""
        out = []
        for t in self.args:
            if isinstance(t, Constant):
                out.append(t.value)
            else:
                out.append(binding[t])
        return tuple(out)

    def __str__(self) -> str:
        if not self.args:
            return self.pred
        return f"{self.pred}({', '.join(str(t) for t in self.args)})"


def var(name: str) -> Variable:
    """Shorthand constructor for a :class:`Variable`."""
    return Variable(name)


def const(value: int) -> Constant:
    """Shorthand constructor for a :class:`Constant`."""
    return Constant(value)

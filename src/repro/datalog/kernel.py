"""Linear-time propagation kernel: Theorem 4.2 as the hot path.

The paper's headline complexity result says monadic datalog over trees is
evaluable in time ``O(|P| * |dom|)`` (Theorem 4.2, Corollary 6.4).
:mod:`repro.datalog.grounding` *verifies* that bound by materializing the
ground program; this module *exploits* it: a monadic program is compiled
once into numeric rule tables and then evaluated over the columnar
:class:`repro.trees.snapshot.TreeSnapshot` of a document with **zero tuple
allocation on the hot loop**.

Compilation (:func:`compile_kernel`, program-only, cached by
:class:`repro.datalog.plan.CompiledProgram`):

* the Theorem 4.2 connectedness rewriting
  (:func:`repro.datalog.analysis.split_disconnected`) makes every rule
  connected, so each rule instantiation is determined by a single seed
  node propagated along the rule's query graph (Proposition 4.1: the tree
  relations are partial bijections; ``child`` is backward-functional with
  forward traversal by child enumeration);
* every rule body is lowered to a flat numeric op sequence -- functional
  *steps* (one array lookup), bounded *branch* steps (``child`` forward),
  byte-mask checks for unary schema relations, per-node predicate
  *bitmask* tests for intensional atoms, and guarded binds/equality
  checks for body constants (each constant pins a slot to one node) --
  rooted at the cheapest anchor (fewest branch steps first, then a
  pinned constant, then the most selective unary relation);
* programs whose best lowering is still *superlinear* in some rule --
  two chained branch steps, or a branch reached through the many-to-one
  ``parent`` map, so one node's children may be enumerated once per entry
  point -- are re-lowered through the TMNF normalization of Theorem 5.2
  (:func:`repro.tmnf.pipeline.to_tmnf`), whose output uses only
  bidirectionally functional relations.

Evaluation (:meth:`KernelProgram.run`) is a worklist fixpoint in the style
of the Dowling-Gallier Horn-SAT solver (:mod:`repro.datalog.hornsat`),
generalized from propositional atoms to ``(predicate-bit, node-index)``
pairs *without materializing ground rules*: derived facts live in one
integer bitmask per node, the worklist holds plain ``node * P + pred``
integers, and when a fact fires, each body occurrence of its predicate
re-checks the O(1) remaining atoms of that rule through array lookups
(bodies are constant-width after lowering, so re-checking preserves the
``O(|P| * |dom|)`` bound that the explicit Dowling-Gallier counters give;
it just never builds the counter table or any ground rule).

:func:`repro.datalog.engine.evaluate` auto-selects this kernel for monadic
programs over tree-backed structures; :mod:`repro.datalog.grounding` stays
as the cross-check oracle (the test suite asserts kernel == ground ==
seminaive == compiled-plan on randomized programs and trees).

Frontier-at-a-time evaluation
-----------------------------

On top of the scalar worklist this module carries a second engine that
eliminates the per-(pred, node) Python pop entirely: every derived unary
predicate is one byte-lane big int over preorder node ids (byte ``v`` is
1 when the predicate holds at node ``v``, matching the snapshot's unary
byte masks bit for bit), and a whole ``(pred, node-set)`` frontier is
advanced per round.  Rule bodies become straight-line set programs --
tree moves are the snapshot's precomputed shift-class/byte-gather maps
(:meth:`repro.trees.snapshot.TreeSnapshot.vector_move`), unary guards and
intensional tests are big-int ``&`` -- evaluated as a Yannakakis-style
semijoin sweep over the rule's move tree (forward pass; plus a backward
and a second forward pass when the head slot is not the tip of a chain).
A round processes every predicate with a non-empty frontier and ends when
no new facts appear.  Blocks the set form cannot express (constant
anchors and ``cbind`` / ``ccheck`` equality pins, ``bcheck`` cycle edges,
0-ary predicates, gated re-sweeps, or a move whose map has no linear bulk
form) make the whole lowering fall back to the scalar worklist -- which
also takes over mid-run when the frontier stays narrow for many rounds
(deep-chain propagation derives one node per round, where big-int sweeps
over the full domain would turn linear work quadratic).  The scalar path
doubles as the parity oracle: tests flip :data:`VECTORIZE_PROPAGATION`
and assert identical output.

Incremental re-evaluation
-------------------------

:meth:`KernelProgram.run_incremental` re-evaluates a *changed version* of
a previously evaluated document without paying the full fixpoint again.
A completed frontier run leaves a :class:`KernelState` (snapshot + the
derived big ints); the next version is matched subtree-by-subtree against
that snapshot (:mod:`repro.trees.diff` over the Merkle hashes of
:mod:`repro.trees.merkle`) and the fixpoint restarts from the previous
facts via delete-and-rederive:

* **over-delete** (old id space, old plan): starting from the *bad* old
  nodes -- unmatched ones plus matched subtree roots whose cross edges
  changed -- delete every old fact whose derivation might touch them.
  Because every lowered rule connects its slots by 1-hop tree moves, any
  instance touching a bad node has its entry slot within ``nslots`` hops,
  so restricting each block's entry to that neighborhood finds all
  initially compromised heads; a worklist over the old trigger blocks
  then closes the set downstream.
* **carry + re-derive** (new id space, new plan): surviving facts
  translate through the old→new id mapping (matched ranges are
  contiguous, so the whole mapping is a handful of mask/shift classes),
  the sweeps re-run in full (cheap big-int conjunctions), and the normal
  frontier rounds are seeded with the new sweep facts plus every carried
  fact within ``nslots`` hops of the changed region -- the only places a
  missing rule instance can have all-carried bodies.  The rounds, the
  narrow-frontier scalar handoff, and the collection all proceed exactly
  as in a cold run, so the fixpoint provably equals cold evaluation; the
  cold engines stay on as the parity oracle (randomized edit tests
  assert incremental == cold across kernel/seminaive/ground).
"""

from __future__ import annotations

import itertools
import os
import re
from collections import deque
from typing import Dict, List, Optional, Set, Tuple

from repro.datalog.analysis import split_disconnected
from repro.datalog.program import Program, Rule
from repro.datalog.terms import Atom, Constant, Variable
from repro.errors import DatalogError
from repro.structures import Structure
from repro.trees.diff import diff_snapshots

Relations = Dict[str, Set[Tuple[int, ...]]]

#: Module switch for the vectorized seed-rule sweeps (byte-mask batch
#: conjunctions instead of the scalar per-node loop).  The scalar path is
#: kept as the fallback for blocks the vector form cannot express; tests
#: flip this flag to assert exact parity between the two.
VECTORIZE_SWEEPS = True

#: Module switch for frontier-at-a-time propagation (big-int node sets
#: advanced whole rounds at a time).  Off, or whenever a lowering contains
#: an op the set form cannot express, evaluation uses the scalar worklist
#: -- the parity oracle.  Overridable via ``REPRO_VECTORIZE_PROPAGATION``.
VECTORIZE_PROPAGATION = os.environ.get(
    "REPRO_VECTORIZE_PROPAGATION", "1"
).lower() not in ("0", "false", "no", "off")

#: Adaptive bailout: when a round pushes at most this many new facts...
_NARROW_FRONTIER = 4
#: ...for this many consecutive rounds, the frontier engine hands the
#: partial fixpoint to the scalar worklist (narrow frontiers make whole-
#: domain big-int sweeps quadratic; the worklist finishes in linear time).
#: Wide workloads (the catalog sweep) never hit a narrow round at all, so
#: a short fuse only costs runs that genuinely oscillate narrow-then-wide.
_NARROW_ROUND_LIMIT = 8

#: Width-histogram buckets preallocated per run: bucket ``b`` counts
#: rounds whose frontier pushed ``[2^b, 2^(b+1))`` new facts -- 48
#: buckets cover any document this process can address.
_WIDTH_BUCKETS = 48


def _trim_widths(widths: List[int]) -> List[int]:
    """Drop trailing empty width buckets for a compact stats payload.

    >>> _trim_widths([2, 0, 1, 0, 0])
    [2, 0, 1]
    >>> _trim_widths([0, 0])
    []
    """
    last = 0
    for index, count in enumerate(widths):
        if count:
            last = index + 1
    return widths[:last]


#: Matches every node whose byte survived the mask conjunction.
_NONZERO = re.compile(rb"[^\x00]")

#: Unbound method for C-speed survivor extraction (``map`` over matches).
_MATCH_START = re.Match.start

#: Binary relation names the kernel can traverse.  Generic ``child`` is
#: backward-functional (parent) with forward traversal by enumeration over
#: *both* schemata (over ``tau_rk`` it is the union of the ``child_k``
#: bijections); ``child<k>`` and the ``tau_ur`` binaries resolve only over
#: their own schema -- the snapshot gates all of this at bind time.
_BINARY_NAME = re.compile(r"^(firstchild|nextsibling|lastchild|child\d*)$")

# Runtime opcodes (resolved from the symbolic compile-time ops at bind time).
_STEP = 0  # vals[t] = arr[vals[f]]; fail if -1
_BRANCH = 1  # enumerate children of vals[f] into vals[t]
_BCHECK = 2  # arr[vals[f]] == vals[t]
_UBIT = 3  # unary schema byte mask test on vals[f]
_IBIT = 4  # per-node predicate bitmask test
_GBIT = 5  # propositional (0-ary) predicate bit test
_CBIND = 6  # vals[t] = constant; fail if outside the domain
_CCHECK = 7  # vals[f] == constant


def _anchor_cost(name: Optional[str]) -> int:
    """Selectivity rank of a unary anchor relation (lower enumerates less)."""
    if name is None:
        return 5
    if name.startswith("@const:"):
        return -1  # a single pinned node: the cheapest possible anchor
    if name == "root":
        return 0
    if name.startswith("label_"):
        return 1
    if name in ("leaf", "lastsibling", "firstsibling"):
        return 2
    if name.startswith("notlabel_"):
        return 3
    return 4  # dom or other broad masks


class _Block:
    """One compiled op program: a rule viewed from one entry point.

    ``anchor`` is ``None`` for fact-triggered blocks (entered with the
    fired node in ``start``), or a unary relation name / ``"*"`` (full
    domain) for enumerated blocks (seed rules and 0-ary-triggered rules).
    """

    __slots__ = (
        "anchor",
        "start",
        "nslots",
        "ops",
        "head_pred",
        "head_slot",
        "branches",
        "superlinear",
        "gate",
    )

    def __init__(self, anchor, start, nslots, ops, head_pred, head_slot):
        self.anchor = anchor
        self.start = start
        self.nslots = nslots
        self.ops = tuple(ops)
        self.head_pred = head_pred
        self.head_slot = head_slot
        #: For anchored trigger blocks of a constant-pinned intensional
        #: atom ``q(c)``: run the enumeration only when the fired node is
        #: ``c`` (otherwise every ``q`` fact would replay the sweep).
        self.gate = None
        self.branches = sum(1 for op in ops if op[0] == "branch")
        # A single branch step is linear overall only when every entry node
        # reaches a *distinct* branch source, so the enumerated fan-outs sum
        # to at most |dom|.  Functional steps over the partial bijections
        # preserve that injectivity; a ``child``-backward step (``parent``,
        # many-to-one) or a second branch does not -- such a block can
        # enumerate the same node's children once per entry and degrade to
        # quadratic time (e.g. sweeping the leaves of a star tree and
        # branching over their shared parent's children).
        non_injective_step = any(
            op[0] == "step" and op[1] == "child" for op in ops
        )
        self.superlinear = self.branches >= 2 or (
            self.branches >= 1 and non_injective_step
        )


class _VBlock:
    """One rule body as a straight-line big-int set program.

    ``slot_init`` holds each slot's static unary-mask conjunction
    (``None`` = unconstrained), ``preds`` the intensional ``&`` tests,
    and ``sched`` the move schedule: the rule's move tree re-rooted at
    the head slot, each edge traversed exactly once toward the head as
    ``sets[dst] &= fn(sets[src])`` -- the one-pass Yannakakis semijoin
    sweep that leaves the head slot's set exact.
    """

    __slots__ = (
        "entry",
        "entry_int",
        "nslots",
        "slot_init",
        "preds",
        "sched",
        "head_pred",
        "head_slot",
    )


def _vector_block(block: _Block, snapshot) -> Optional[_VBlock]:
    """Compile one block to its set form, or ``None`` to fall back.

    Rejected: constant machinery (``cbind`` / ``ccheck`` and the gated
    re-sweeps), ``bcheck`` edges (a cycle in the move tree breaks the
    semijoin argument), 0-ary heads and ``gbit`` tests, unsupported
    relations, and moves whose toward-head direction has no linear bulk
    form (the image through a broad tree's ``parent`` map).
    """
    if block.gate is not None or block.head_slot < 0:
        return None
    nslots = max(block.nslots, 1)
    slot_init: List[Optional[int]] = [None] * nslots
    preds: List[Tuple[int, int]] = []
    moves: List[tuple] = []
    for op in block.ops:
        kind = op[0]
        if kind == "step" or kind == "branch":
            if kind == "step":
                _, rel, forward, f, t = op
            else:
                _, rel, f, t = op
                forward = True
            move = snapshot.vector_move(rel, forward)
            if move is None:
                return None
            moves.append((move, f, t))
        elif kind == "ubit":
            _, name, f = op
            mask = snapshot.unary_int(name)
            if mask is None:
                return None
            held = slot_init[f]
            slot_init[f] = mask if held is None else held & mask
        elif kind == "ibit":
            _, pred, f = op
            preds.append((f, pred))
        else:
            return None
    head = block.head_slot
    if not moves and head != block.start:
        return None
    # Re-root the move tree at the head slot: breadth-first from the head
    # over the undirected edges, each edge directed toward the head (the
    # entry-to-head path keeps its forward orientation, everything else
    # flips to the preimage), emitted farthest-first.
    adjacency: Dict[int, List[tuple]] = {}
    for entry_move in moves:
        _move, f, t = entry_move
        adjacency.setdefault(f, []).append(entry_move)
        adjacency.setdefault(t, []).append(entry_move)
    sched: List[tuple] = []
    seen = {head}
    queue = deque((head,))
    while queue:
        u = queue.popleft()
        for move, f, t in adjacency.get(u, ()):
            other = t if f == u else f
            if other in seen:
                continue
            seen.add(other)
            fn = move[0] if u == t else move[1]
            if fn is None:
                return None
            sched.append((fn, other, u))
            queue.append(other)
    if len(seen) - 1 != len(moves):
        return None  # parallel edge between two slots: not a tree
    constrained = {f for f, _ in preds} | {block.start}
    constrained.update(i for i, m in enumerate(slot_init) if m is not None)
    if not constrained <= seen:
        return None  # a constrained slot the sweep would never consult
    sched.reverse()
    entry_int = None
    if block.anchor is not None:
        entry_int = snapshot.unary_int(
            "dom" if block.anchor == "*" else block.anchor
        )
        if entry_int is None:
            return None
    vb = _VBlock()
    vb.entry = block.start
    vb.entry_int = entry_int
    vb.nslots = nslots
    vb.slot_init = tuple(slot_init)
    vb.preds = tuple(preds)
    vb.sched = tuple(sched)
    vb.head_pred = block.head_pred
    vb.head_slot = head
    return vb


def _vector_plan(variant: _Lowering, snapshot):
    """``(vsweeps, vtriggers)`` for a lowering, or ``None``; snapshot-cached.

    All-or-nothing: one inexpressible block anywhere sends the whole
    lowering to the scalar worklist, so the two engines never interleave
    within a fixpoint (except through the explicit narrow-frontier
    handoff, which replays the exact derived state).
    """
    plans = snapshot._vector_plans
    try:
        return plans[variant]
    except KeyError:
        pass
    plan = None
    vsweeps = []
    ok = variant.npreds > 0
    for block in variant.sweeps:
        vb = _vector_block(block, snapshot) if ok else None
        if vb is None:
            ok = False
            break
        vsweeps.append(vb)
    if ok:
        vtriggers: List[List[_VBlock]] = []
        for group in variant.triggers:
            rows = []
            for block in group:
                vb = _vector_block(block, snapshot)
                if vb is None:
                    ok = False
                    break
                rows.append(vb)
            if not ok:
                break
            vtriggers.append(rows)
    if ok:
        plan = (vsweeps, vtriggers)
    plans[variant] = plan
    return plan


def _run_vblock(
    vb: _VBlock, entry_set: int, derived: List[int], full: int, memo: Dict
) -> int:
    """Node set derivable at the head slot, entering with ``entry_set``.

    Initializes every slot to its static-mask/intensional conjunction
    (``None`` = unconstrained), narrows the entry slot to ``entry_set``,
    then runs the precomputed toward-head semijoin schedule.  A slot that
    is still unconstrained when it feeds a move contributes the full
    domain (its move then yields the map's definedness set).  ``memo``
    caches ``(move, operand) -> image`` across the blocks of one round --
    sibling rules triggered by the same frontier repeat the same moves
    (e.g. both column extractors of a row enumerate the same children).
    Returns the exact head-slot projection of the block's satisfying
    assignments.
    """
    if not entry_set:
        return 0
    sets = list(vb.slot_init)
    entry = vb.entry
    held = sets[entry]
    sets[entry] = entry_set if held is None else held & entry_set
    for f, pred in vb.preds:
        held = sets[f]
        facts = derived[pred]
        sets[f] = facts if held is None else held & facts
    for fn, src, dst in vb.sched:
        s = sets[src]
        if s is None:
            s = full
        key = (id(fn), s)
        moved = memo.get(key)
        if moved is None:
            moved = memo[key] = fn(s)
        held = sets[dst]
        s = moved if held is None else moved & held
        if not s:
            return 0
        sets[dst] = s
    out = sets[vb.head_slot]
    return full if out is None else out


class _Lowering:
    """One complete lowering of the source program along one route.

    A :class:`KernelProgram` may hold several lowerings of the *same*
    program (direct Theorem 4.2, TMNF over ``tau_ur``, TMNF over
    ``tau_rk``); binding picks the first one whose relations the
    document's snapshot actually supplies.
    """

    __slots__ = (
        "lowered",
        "pred_index",
        "npreds",
        "sweeps",
        "triggers",
        "outputs",
        "route",
        "max_branches",
        "superlinear",
        "required_rank",
        "hops",
    )

    def __init__(
        self,
        lowered: Program,
        pred_index: Dict[str, int],
        sweeps: List[_Block],
        triggers: List[List[_Block]],
        outputs: List[Tuple[str, int, int]],
        route: str,
    ):
        self.lowered = lowered
        self.pred_index = pred_index
        self.npreds = len(pred_index)
        self.sweeps = sweeps
        self.triggers = triggers
        self.outputs = outputs
        #: ``"direct"`` (Theorem 4.2 lowering), ``"tmnf"`` (Theorem 5.2
        #: over ``tau_ur``) or ``"tmnf-ranked"`` (Lemma 5.4 expansion +
        #: Theorem 5.2 over ``tau_rk``).
        self.route = route
        blocks = sweeps + [b for group in triggers for b in group]
        self.max_branches = max((b.branches for b in blocks), default=0)
        self.superlinear = any(b.superlinear for b in blocks)
        #: Locality radius for incremental re-evaluation: every slot of a
        #: rule instance sits within ``nslots - 1`` one-hop tree moves of
        #: every other, so an instance touching a changed node keeps all
        #: its slots within ``nslots`` hops of the change.
        self.hops = max((b.nslots for b in blocks), default=1) or 1
        #: For ranked-TMNF lowerings: the exact ``max_rank`` the ``child``
        #: expansion was compiled for.  Binding a snapshot of any other
        #: rank would be unsound (a rank-``K+1`` tree has children the
        #: ``child1..childK`` expansion never visits).
        self.required_rank: Optional[int] = None


#: Incremental runs only pay off while most of the document is reusable;
#: past this unmatched fraction the cold frontier run wins outright.
_INCREMENTAL_DIRTY_LIMIT = 0.5

#: Cap on distinct id-shift classes in the old→new fact translation (a
#: heavily shredded diff translates fact masks in many pieces; cold wins).
_INCREMENTAL_SHIFT_CAP = 64


class KernelState:
    """Reusable residue of one completed frontier run.

    Holds the lowering variant that bound the document, the document's
    snapshot, and the derived big-int node set per predicate -- exactly
    what :meth:`KernelProgram.run_incremental` needs to re-evaluate the
    next version of the same document.  Captured when the big-int engine
    reaches the fixpoint itself and when a narrow-frontier scalar handoff
    finishes it (the worklist's per-node bitmasks pack back into lanes);
    only documents that never held a vector plan leave ``None``, which
    holders must treat as "start cold".
    """

    __slots__ = ("variant", "snapshot", "derived")

    def __init__(self, variant: _Lowering, snapshot, derived: List[int]):
        self.variant = variant
        self.snapshot = snapshot
        self.derived = derived


def _expand_hops(snapshot, mask: int, hops: int) -> int:
    """Close a byte-lane node set under ``hops`` one-hop tree moves.

    One hop adds every parent, child, and adjacent sibling of the set --
    the union of the images of every 1-hop relation the kernel can move
    along, in either direction.  Children ride the always-available bulk
    move; the functional directions (parent, prev/next sibling) are read
    straight off the columns into a byte accumulator, so one hop costs
    O(n + |set|) regardless of how the columns decompose.
    """
    if not mask or hops <= 0:
        return mask
    size = snapshot.size
    full = snapshot.unary_int("dom")
    parent = snapshot.parent
    prevsibling = snapshot.prevsibling
    nextsibling = snapshot.nextsibling
    children = snapshot.vector_move("child", True)[0]
    # Breadth-first by frontier: hop k only walks the nodes added in hop
    # k-1 (their neighbours were already folded in when *they* were the
    # frontier), so the per-node scalar loop does O(reached) total work
    # rather than O(hops * |set|).  Broad documents saturate to the whole
    # domain after a few hops; the ``full`` check stops the walk there.
    frontier = mask
    for _ in range(hops):
        grown = bytearray(size)
        for hit in _NONZERO.finditer(frontier.to_bytes(size, "little")):
            v = _MATCH_START(hit)
            for w in (parent[v], prevsibling[v], nextsibling[v]):
                if w >= 0:
                    grown[w] = 1
        frontier = (int.from_bytes(grown, "little") | children(frontier)) & ~mask
        if not frontier:
            break
        mask |= frontier
        if mask == full:
            break
    return mask


class KernelProgram:
    """A monadic program lowered to numeric propagation tables.

    Build with :func:`compile_kernel` (returns ``None`` when the program is
    outside the kernel fragment); evaluate with :meth:`run`.  The artifact
    is program-only and reusable across documents.  It holds one or more
    alternative :class:`_Lowering` variants -- binding a document selects
    the first variant whose relations the snapshot supplies, preferring
    linear lowerings, then a lazily compiled ranked-TMNF variant for
    ranked snapshots, then any superlinear last resort.

    Examples
    --------
    >>> from repro.datalog.parser import parse_program
    >>> from repro.trees import parse_sexpr
    >>> from repro.trees.unranked import UnrankedStructure
    >>> program = parse_program(
    ...     "p(x) :- label_a(x).\\np(y) :- p(x), firstchild(x, y).", query="p")
    >>> kernel = compile_kernel(program)
    >>> sorted(kernel.run(UnrankedStructure(parse_sexpr("a(b, c)")))["p"])
    [(0,), (1,)]
    """

    def __init__(self, source: Program, variants: List[_Lowering]):
        if not variants:
            raise DatalogError("KernelProgram needs at least one lowering")
        self.source = source
        self._variants = list(variants)
        #: Lazily compiled ranked-TMNF lowerings, keyed by snapshot
        #: ``max_rank`` (``None`` where the route does not apply).
        self._ranked_cache: Dict[int, Optional[_Lowering]] = {}
        #: Which engine the most recent :meth:`run` used: ``"frontier"``
        #: (big-int rounds to fixpoint), ``"worklist"`` (scalar),
        #: ``"frontier+worklist"`` (narrow-frontier handoff mid-run), or
        #: ``"incremental"`` / ``"incremental+worklist"`` for
        #: :meth:`run_incremental` warm runs.
        self.last_engine: Optional[str] = None
        #: :class:`KernelState` of the most recent run when the pure
        #: frontier engine completed it (``None`` otherwise) -- feed it
        #: back as ``previous`` to :meth:`run_incremental`.
        self.last_state: Optional[KernelState] = None
        #: Cheap per-run stats of the most recent run -- the unified
        #: shape for cold *and* warm runs (warm runs add their reuse
        #: keys on top):
        #:
        #: * ``engine`` -- same value as :attr:`last_engine`;
        #: * ``rounds`` -- frontier rounds executed (0 for a pure
        #:   scalar-worklist run, which has no round structure);
        #: * ``facts`` -- derived facts at fixpoint;
        #: * ``frontier_widths`` -- counts per power-of-two width
        #:   bucket (index ``b`` covers widths in ``[2^b, 2^(b+1))``);
        #: * ``fallback`` -- why the run left the pure frontier engine:
        #:   ``None``, ``"narrow_frontier"``, ``"vector_plan_rejected"``
        #:   or ``"vectorize_disabled"``;
        #: * warm runs (:meth:`run_incremental`) additionally carry
        #:   ``dirty`` / ``dirty_fraction`` / ``carried`` / ``deleted``.
        #:
        #: Only counters the engines already compute are recorded, so
        #: the hot loops stay allocation-free.
        self.last_stats: Optional[Dict[str, object]] = None
        # Introspection mirrors of the primary (preferred) lowering.
        primary = self._variants[0]
        self.lowered = primary.lowered
        self.pred_index = primary.pred_index
        self.npreds = primary.npreds
        self.sweeps = primary.sweeps
        self.triggers = primary.triggers
        self.outputs = primary.outputs
        self.route = primary.route
        self.max_branches = primary.max_branches
        self.superlinear = primary.superlinear

    def applicable(self, structure: Structure) -> bool:
        """Whether this kernel can evaluate over ``structure``."""
        return self._bind(structure) is not None

    # -- binding -----------------------------------------------------------

    def _bind_ops(self, block: _Block, snapshot):
        ops = []
        for op in block.ops:
            kind = op[0]
            if kind == "step":
                _, rel, forward, f, t = op
                arr = (
                    snapshot.forward_map(rel)
                    if forward
                    else snapshot.backward_map(rel)
                )
                if arr is None:
                    return None
                ops.append((_STEP, arr, f, t))
            elif kind == "branch":
                _, rel, f, t = op
                if not snapshot.branches_forward(rel):
                    return None
                ops.append((_BRANCH, None, f, t))
            elif kind == "bcheck":
                _, rel, a, b = op
                arr = snapshot.forward_map(rel)
                if arr is not None:
                    ops.append((_BCHECK, arr, a, b))
                else:
                    arr = snapshot.backward_map(rel)
                    if arr is None:
                        return None
                    ops.append((_BCHECK, arr, b, a))
            elif kind == "ubit":
                _, name, f = op
                mask = snapshot.unary_mask(name)
                if mask is None:
                    return None
                ops.append((_UBIT, mask, f, 0))
            elif kind == "ibit":
                _, pred, f = op
                ops.append((_IBIT, pred, f, 0))
            elif kind == "cbind":
                _, value, t = op
                ops.append((_CBIND, value, 0, t))
            elif kind == "ccheck":
                _, value, f = op
                ops.append((_CCHECK, value, f, 0))
            else:  # gbit
                _, pred = op
                ops.append((_GBIT, pred, 0, 0))
        return tuple(ops)

    @staticmethod
    def _sweep_vector(block: _Block, ops, snapshot):
        """Byte masks whose conjunction *is* this sweep, or ``None``.

        A sweep block is vectorizable when it is a pure unary seed rule:
        the head is derived at the anchored slot itself and every residual
        check is a unary byte-mask test on that slot.  The anchor relation
        contributes its own mask (``"*"`` contributes nothing -- it is the
        full domain).  Constant-pinned or traversing blocks fall back to
        the scalar loop.
        """
        if block.head_slot < 0 or block.head_slot != block.start:
            return None
        masks = []
        if block.anchor != "*":
            if block.anchor is None or block.anchor.startswith("@const:"):
                return None
            mask = snapshot.unary_mask(block.anchor)
            if mask is None:
                return None
            masks.append(mask)
        for op in ops:
            if op[0] != _UBIT or op[2] != block.start:
                return None
            masks.append(op[1])
        return tuple(masks) if masks else None

    def _bind_variant(self, variant: _Lowering, snapshot):
        """Resolve one lowering's symbolic ops; ``None`` if impossible."""

        def anchor_nodes(block: _Block):
            if block.anchor == "*":
                return range(snapshot.size) if block.nslots else (0,)
            if block.anchor.startswith("@const:"):
                value = int(block.anchor[len("@const:") :])
                return (value,) if 0 <= value < snapshot.size else ()
            nodes = snapshot.unary_nodes(block.anchor)
            return nodes if nodes is not None else None

        bound_sweeps = []
        for block in variant.sweeps:
            ops = self._bind_ops(block, snapshot)
            anchor = anchor_nodes(block)
            if ops is None or anchor is None:
                return None
            vals = [0] * max(block.nslots, 1)
            vector = self._sweep_vector(block, ops, snapshot)
            bound_sweeps.append(
                (
                    anchor,
                    block.start,
                    ops,
                    block.head_pred,
                    block.head_slot,
                    vals,
                    vector,
                )
            )
        bound_triggers: List[List[tuple]] = []
        for group in variant.triggers:
            rows = []
            for block in group:
                ops = self._bind_ops(block, snapshot)
                if ops is None:
                    return None
                anchor = None
                if block.anchor is not None:
                    anchor = anchor_nodes(block)
                    if anchor is None:
                        return None
                vals = [0] * max(block.nslots, 1)
                rows.append(
                    (
                        anchor,
                        block.start,
                        ops,
                        block.head_pred,
                        block.head_slot,
                        vals,
                        block.gate,
                    )
                )
            bound_triggers.append(rows)
        return variant, snapshot, bound_sweeps, bound_triggers

    def _ranked_variant(self, max_rank: int) -> Optional[_Lowering]:
        """The Lemma 5.4 + Theorem 5.2 lowering for rank-``K`` snapshots.

        Compiled lazily the first time a ranked snapshot of this rank
        fails to bind the static lowerings: generic ``child`` atoms are
        expanded into the ``child1 | ... | childK`` disjunction, the
        result is normalized into TMNF over the *ranked* signature, and
        the TMNF output -- whose binaries are all bidirectionally
        functional partial bijections -- re-lowers with zero branch steps.
        Cached per rank (including failures).
        """
        if max_rank in self._ranked_cache:
            return self._ranked_cache[max_rank]
        variant: Optional[_Lowering] = None
        expanded = _expand_generic_child(self.source, max_rank)
        if expanded is not None:
            from repro.errors import TMNFError

            try:
                from repro.tmnf.pipeline import to_tmnf

                normalized = to_tmnf(
                    expanded, signature="ranked", max_rank=max_rank
                ).program
                lowering = _lower(
                    self.source, split_disconnected(normalized), "tmnf-ranked"
                )
            except (TMNFError, DatalogError):
                lowering = None
            if lowering is not None and lowering.max_branches == 0:
                lowering.required_rank = max_rank
                variant = lowering
        self._ranked_cache[max_rank] = variant
        return variant

    def _bind(self, structure: Structure):
        """Resolve symbolic ops against a document; ``None`` if impossible.

        Tries the static lowerings in preference order (linear ones
        first); when none binds and the snapshot is ranked, compiles and
        tries the ranked-TMNF variant before falling back to any
        superlinear static lowering.
        """
        build = getattr(structure, "snapshot", None)
        if build is None:
            return None
        snapshot = build()
        if snapshot is None:
            return None

        def try_variants(variants):
            for variant in variants:
                if variant.required_rank is not None and (
                    snapshot.schema != "ranked"
                    or snapshot.max_rank != variant.required_rank
                ):
                    continue
                bound = self._bind_variant(variant, snapshot)
                if bound is not None:
                    return bound
            return None

        fast = [v for v in self._variants if not v.superlinear]
        bound = try_variants(fast)
        if bound is not None:
            return bound
        if snapshot.schema == "ranked" and snapshot.max_rank >= 1:
            ranked = self._ranked_variant(snapshot.max_rank)
            if ranked is not None:
                bound = try_variants([ranked])
                if bound is not None:
                    return bound
        return try_variants([v for v in self._variants if v.superlinear])

    # -- evaluation --------------------------------------------------------

    def run(self, structure: Structure) -> Relations:
        """Evaluate over a tree-backed structure; raises if inapplicable."""
        bound = self._bind(structure)
        if bound is None:
            raise DatalogError(
                "kernel strategy does not apply: structure is not tree-backed "
                "or lacks a relation the program needs"
            )
        return self._run_bound(bound)[0]

    def try_run(self, structure: Structure) -> Optional[Relations]:
        """Evaluate if applicable, else ``None`` (single bind, no raise)."""
        bound = self._bind(structure)
        if bound is None:
            return None
        return self._run_bound(bound)[0]

    def try_run_full(self, structure: Structure):
        """Like :meth:`try_run`, but returns ``(relations, unary_sets)``.

        ``unary_sets`` maps each unary output predicate to its plain
        ``{node id}`` set -- a byproduct of the propagation loop that
        batch wrappers consume directly instead of stripping 1-tuples.
        """
        bound = self._bind(structure)
        if bound is None:
            return None
        return self._run_bound(bound)

    def run_incremental(self, structure: Structure, previous: KernelState):
        """Warm re-evaluation against the previous version's fixpoint.

        ``previous`` is the :class:`KernelState` left by an earlier run of
        *this* program over an earlier version of the same document (see
        :attr:`last_state`).  Returns
        ``((relations, unary_sets), state, info)`` -- the same payload as
        :meth:`try_run_full`, the state for the *next* warm run (packed
        from the worklist bitmasks after a narrow-frontier scalar
        handoff), and a stats dict -- the unified :attr:`last_stats`
        shape (``engine`` / ``rounds`` / ``facts`` /
        ``frontier_widths`` / ``fallback``) plus the warm-only reuse
        keys ``dirty`` / ``dirty_fraction`` / ``carried`` / ``deleted``
        -- or ``None`` whenever warm evaluation does not apply, in
        which case the caller should run cold:

        * the structure binds a different lowering variant (or none), or
          either snapshot is not an unranked vector-plannable document
          (ranked ``child_k`` positions are not edit-stable, so ranked
          snapshots always re-run cold);
        * the diff matched too little of the document
          (:data:`_INCREMENTAL_DIRTY_LIMIT`) or in too many shifted
          pieces (:data:`_INCREMENTAL_SHIFT_CAP`) for reuse to win.

        The result is exactly the cold fixpoint (see the module
        docstring's delete-and-rederive argument); ``last_engine``
        reports ``"incremental"`` or ``"incremental+worklist"``.
        """
        if previous is None or not VECTORIZE_PROPAGATION:
            return None
        old_snap = previous.snapshot
        bound = self._bind(structure)
        if bound is None:
            return None
        variant, snapshot, _sweeps, _triggers = bound
        if (
            variant is not previous.variant
            or snapshot.schema != "unranked"
            or old_snap.schema != "unranked"
            or not snapshot.size
            or not old_snap.size
        ):
            return None
        plan = _vector_plan(variant, snapshot)
        old_plan = _vector_plan(variant, old_snap)
        if plan is None or old_plan is None:
            return None
        d = diff_snapshots(old_snap, snapshot)
        if d.dirty_fraction > _INCREMENTAL_DIRTY_LIMIT:
            return None
        if len({nw - ov for ov, nw, _ in d.ranges}) > _INCREMENTAL_SHIFT_CAP:
            return None
        self.last_state = None
        self.last_stats = None
        P = variant.npreds
        hops = variant.hops
        derived_old = previous.derived

        # Phase 0 -- over-delete in the old id space: every old fact whose
        # derivation might touch a bad node is condemned, closing the set
        # downstream through the old trigger blocks (delete-and-rederive's
        # deletion half, without counting alternative derivations --
        # over-deleted facts simply re-derive in phase 1).
        deleted = [0] * P
        deleted_count = 0
        bad_old = d.old_bad_int
        if bad_old:
            old_full = old_snap.unary_int("dom")
            old_vsweeps, old_vtriggers = old_plan
            near = _expand_hops(old_snap, bad_old, hops)
            memo: Dict = {}
            dpend = [0] * P

            def condemn(add: int, hp: int) -> None:
                hit = add & derived_old[hp] & ~deleted[hp]
                if hit:
                    deleted[hp] |= hit
                    dpend[hp] |= hit

            for p in range(P):
                hit = derived_old[p] & bad_old
                if hit:
                    deleted[p] = hit
                    dpend[p] = hit
            for vb in old_vsweeps:
                entry = vb.entry_int & near
                if entry:
                    condemn(
                        _run_vblock(vb, entry, derived_old, old_full, memo),
                        vb.head_pred,
                    )
            for p in range(P):
                entry = derived_old[p] & near
                if entry:
                    for vb in old_vtriggers[p]:
                        condemn(
                            _run_vblock(vb, entry, derived_old, old_full, memo),
                            vb.head_pred,
                        )
            while any(dpend):
                cur = dpend
                dpend = [0] * P
                for p in range(P):
                    frontier = cur[p]
                    if not frontier:
                        continue
                    for vb in old_vtriggers[p]:
                        entry = (
                            vb.entry_int
                            if vb.entry_int is not None
                            else frontier
                        )
                        condemn(
                            _run_vblock(vb, entry, derived_old, old_full, memo),
                            vb.head_pred,
                        )

        # Phase 1 -- carry the survivors into the new id space and finish
        # the fixpoint with the normal frontier machinery, seeded with the
        # re-run sweeps plus every carried fact near the changed region.
        translate = d.translator()
        full = snapshot.unary_int("dom")
        vsweeps, vtriggers = plan
        has_triggers = [bool(group) for group in vtriggers]
        derived = [0] * P
        carried_count = 0
        region = d.new_bad_int
        for p in range(P):
            dead = deleted[p]
            if dead:
                deleted_count += dead.bit_count()
                region |= translate(dead)
            keep = translate(derived_old[p] & ~dead)
            derived[p] = keep
            carried_count += keep.bit_count()
        pending = [0] * P
        memo = {}
        for vb in vsweeps:
            add = _run_vblock(vb, vb.entry_int, derived, full, memo)
            if add:
                hp = vb.head_pred
                new = add & ~derived[hp]
                if new:
                    derived[hp] |= new
                    if has_triggers[hp]:
                        pending[hp] |= new
        if region:
            seed_zone = _expand_hops(snapshot, region, hops)
            for p in range(P):
                if has_triggers[p]:
                    hot = derived[p] & seed_zone
                    if hot:
                        pending[p] |= hot
        info = {
            "dirty": d.dirty_count,
            "dirty_fraction": d.dirty_fraction,
            "carried": carried_count,
            "deleted": deleted_count,
            "rounds": 0,
        }
        narrow = 0
        widths = [0] * _WIDTH_BUCKETS
        while True:
            if not any(pending):
                break
            info["rounds"] += 1
            cur = pending
            pending = [0] * P
            for pred in range(P):
                frontier = cur[pred]
                if not frontier:
                    continue
                for vb in vtriggers[pred]:
                    entry = (
                        vb.entry_int if vb.entry_int is not None else frontier
                    )
                    add = _run_vblock(vb, entry, derived, full, memo)
                    if add:
                        hp = vb.head_pred
                        new = add & ~derived[hp]
                        if new:
                            derived[hp] |= new
                            if has_triggers[hp]:
                                pending[hp] |= new
            pushed = sum(f.bit_count() for f in pending)
            if pushed:
                widths[pushed.bit_length() - 1] += 1
            if 0 < pushed <= _NARROW_FRONTIER:
                narrow += 1
                if narrow >= _NARROW_ROUND_LIMIT:
                    self.last_engine = "incremental+worklist"
                    out = self._run_scalar(
                        bound, resume=(derived, pending), capture_state=True
                    )
                    scalar_stats = self.last_stats or {}
                    info.update(
                        engine="incremental+worklist",
                        facts=scalar_stats.get("facts", 0),
                        frontier_widths=_trim_widths(widths),
                        fallback="narrow_frontier",
                    )
                    self.last_stats = info
                    return out, self.last_state, info
            else:
                narrow = 0
        self.last_engine = "incremental"
        state = KernelState(variant, snapshot, derived)
        self.last_state = state
        info.update(
            engine="incremental",
            facts=sum(d.bit_count() for d in derived),
            frontier_widths=_trim_widths(widths),
            fallback=None,
        )
        self.last_stats = info
        return self._collect_vector(variant, snapshot, derived), state, info

    def _run_bound(self, bound) -> Tuple[Relations, Dict[str, Set[int]]]:
        """Dispatch one bound lowering to the preferred engine."""
        self.last_state = None
        self.last_stats = None
        if VECTORIZE_PROPAGATION:
            result = self._run_vector(bound)
            if result is not None:
                return result
            fallback = "vector_plan_rejected"
        else:
            fallback = "vectorize_disabled"
        self.last_engine = "worklist"
        out = self._run_scalar(bound)
        if self.last_stats is not None:
            self.last_stats["fallback"] = fallback
        return out

    def _run_vector(self, bound):
        """Frontier-at-a-time fixpoint; ``None`` when the plan falls back.

        Seeds come from the sweep blocks evaluated over their anchor
        sets; each round then runs every trigger block of every predicate
        whose frontier is non-empty, entering with the frontier itself
        (the semi-naive delta -- other intensional tests in the same body
        read the full ``derived`` sets, and completeness follows exactly
        as for the worklist: each rule has one trigger block per body
        occurrence, so the last-derived fact of any satisfied body always
        re-enters the rule).  A persistently narrow frontier hands the
        partial fixpoint to :meth:`_run_scalar` (see
        :data:`_NARROW_ROUND_LIMIT`).
        """
        variant, snapshot, _sweeps, _triggers = bound
        plan = _vector_plan(variant, snapshot)
        if plan is None:
            return None
        vsweeps, vtriggers = plan
        P = variant.npreds
        full = snapshot.unary_int("dom")
        derived = [0] * P
        pending = [0] * P
        has_triggers = [bool(group) for group in vtriggers]
        # Move results are pure functions of their operand set, so one
        # memo serves the whole fixpoint.
        memo: Dict = {}
        for vb in vsweeps:
            add = _run_vblock(vb, vb.entry_int, derived, full, memo)
            if add:
                hp = vb.head_pred
                new = add & ~derived[hp]
                if new:
                    derived[hp] |= new
                    if has_triggers[hp]:
                        pending[hp] |= new
        narrow = 0
        rounds = 0
        widths = [0] * _WIDTH_BUCKETS
        while True:
            if not any(pending):
                break
            rounds += 1
            cur = pending
            pending = [0] * P
            for pred in range(P):
                frontier = cur[pred]
                if not frontier:
                    continue
                for vb in vtriggers[pred]:
                    entry = (
                        vb.entry_int if vb.entry_int is not None else frontier
                    )
                    add = _run_vblock(vb, entry, derived, full, memo)
                    if add:
                        hp = vb.head_pred
                        new = add & ~derived[hp]
                        if new:
                            derived[hp] |= new
                            if has_triggers[hp]:
                                pending[hp] |= new
            pushed = sum(f.bit_count() for f in pending)
            if pushed:
                widths[pushed.bit_length() - 1] += 1
            if 0 < pushed <= _NARROW_FRONTIER:
                narrow += 1
                if narrow >= _NARROW_ROUND_LIMIT:
                    self.last_engine = "frontier+worklist"
                    out = self._run_scalar(
                        bound, resume=(derived, pending), capture_state=True
                    )
                    # The scalar finisher recorded its own fact count;
                    # fold the frontier prefix's round structure back in.
                    if self.last_stats is not None:
                        self.last_stats.update(
                            engine="frontier+worklist",
                            rounds=rounds,
                            frontier_widths=_trim_widths(widths),
                            fallback="narrow_frontier",
                        )
                    return out
            else:
                narrow = 0
        self.last_engine = "frontier"
        self.last_state = KernelState(variant, snapshot, derived)
        self.last_stats = {
            "engine": "frontier",
            "rounds": rounds,
            "facts": sum(d.bit_count() for d in derived),
            "frontier_widths": _trim_widths(widths),
            "fallback": None,
        }
        return self._collect_vector(variant, snapshot, derived)

    @staticmethod
    def _collect_vector(variant, snapshot, derived):
        """Materialize output relations from the derived big ints."""
        relations: Relations = {
            name: set() for name, _, _ in variant.outputs
        }
        unary_sets: Dict[str, Set[int]] = {}
        size = snapshot.size
        for name, pred, arity in variant.outputs:
            if pred < 0 or arity != 1:
                continue
            ids: Set[int] = set()
            packed = derived[pred]
            if packed:
                buffer = packed.to_bytes(size, "little")
                ids = set(map(_MATCH_START, _NONZERO.finditer(buffer)))
            unary_sets[name] = ids
            relations[name] = set(zip(ids))
        return relations, unary_sets

    def _run_scalar(
        self, bound, resume=None, capture_state: bool = False
    ) -> Tuple[Relations, Dict[str, Set[int]]]:
        variant, snapshot, sweeps, triggers = bound
        P = variant.npreds
        outputs = variant.outputs
        relations: Relations = {
            name: set() for name, _, _ in outputs
        }
        if P == 0:
            self.last_stats = {
                "engine": self.last_engine,
                "rounds": 0,
                "facts": 0,
                "frontier_widths": [],
                "fallback": None,
            }
            return relations, {}

        firstchild = snapshot.firstchild
        nextsibling = snapshot.nextsibling
        domain_size = snapshot.size
        masks = [0] * snapshot.size
        gmask_cell = [0]
        stack: List[int] = []
        # Node lists per output predicate id (helpers collect nothing).
        out_by_pred: List[Optional[List[int]]] = [None] * P
        out_lists: List[Tuple[str, List[int]]] = []
        for name, pred, arity in outputs:
            if pred >= 0 and arity == 1:
                out_by_pred[pred] = collected = []
                out_lists.append((name, collected))
        # Facts of predicates with no body occurrences need no propagation.
        needs_push = [bool(group) for group in triggers]

        def execute(ops, i, vals, head_pred, head_slot, nops):
            while i < nops:
                k, obj, f, t = ops[i]
                if k == _STEP:
                    w = obj[vals[f]]
                    if w < 0:
                        return
                    vals[t] = w
                elif k == _UBIT:
                    if not obj[vals[f]]:
                        return
                elif k == _IBIT:
                    if not (masks[vals[f]] >> obj) & 1:
                        return
                elif k == _BCHECK:
                    if obj[vals[f]] != vals[t]:
                        return
                elif k == _CBIND:
                    if not 0 <= obj < domain_size:
                        return
                    vals[t] = obj
                elif k == _CCHECK:
                    if vals[f] != obj:
                        return
                elif k == _GBIT:
                    if not (gmask_cell[0] >> obj) & 1:
                        return
                else:  # _BRANCH
                    child = firstchild[vals[f]]
                    i += 1
                    while child >= 0:
                        vals[t] = child
                        execute(ops, i, vals, head_pred, head_slot, nops)
                        child = nextsibling[child]
                    return
                i += 1
            # All body conditions hold: derive the head fact (once).
            if head_slot >= 0:
                v = vals[head_slot]
                m = masks[v]
                bit = 1 << head_pred
                if not m & bit:
                    masks[v] = m | bit
                    if needs_push[head_pred]:
                        stack.append(v * P + head_pred)
                    collected = out_by_pred[head_pred]
                    if collected is not None:
                        collected.append(v)
            else:
                bit = 1 << head_pred
                if not gmask_cell[0] & bit:
                    gmask_cell[0] |= bit
                    if needs_push[head_pred]:
                        stack.append(-head_pred - 1)

        if resume is not None:
            # Adopt the frontier engine's partial fixpoint: every derived
            # fact enters the per-node bitmasks (and output collections),
            # and exactly the unprocessed frontier seeds the stack -- the
            # worklist invariant ("each derived fact was popped or is on
            # the stack") holds, so the loop below finishes the fixpoint
            # without re-running the sweeps.
            derived_ints, pending_ints = resume
            for pred in range(P):
                packed = derived_ints[pred]
                if not packed:
                    continue
                bit = 1 << pred
                collected = out_by_pred[pred]
                for hit in _NONZERO.finditer(
                    packed.to_bytes(domain_size, "little")
                ):
                    v = hit.start()
                    masks[v] |= bit
                    if collected is not None:
                        collected.append(v)
                packed = pending_ints[pred]
                if packed and needs_push[pred]:
                    for hit in _NONZERO.finditer(
                        packed.to_bytes(domain_size, "little")
                    ):
                        stack.append(hit.start() * P + pred)
        vectorize = VECTORIZE_SWEEPS
        for anchor, start, ops, head_pred, head_slot, vals, vector in (
            () if resume is not None else sweeps
        ):
            if vector is not None and vectorize:
                # Vectorized seed enumeration: the whole sweep is a
                # conjunction of unary byte masks, evaluated as one big
                # integer AND (C speed) with surviving node ids recovered
                # by a regex scan over the result bytes -- the tight
                # per-node Python loop never runs.
                combined = int.from_bytes(memoryview(vector[0]), "little")
                for mask in vector[1:]:
                    if not combined:
                        break
                    combined &= int.from_bytes(memoryview(mask), "little")
                if not combined:
                    continue
                bit = 1 << head_pred
                push = needs_push[head_pred]
                collected = out_by_pred[head_pred]
                survivors = combined.to_bytes(domain_size, "little")
                for hit in _NONZERO.finditer(survivors):
                    v = hit.start()
                    m = masks[v]
                    if not m & bit:
                        masks[v] = m | bit
                        if push:
                            stack.append(v * P + head_pred)
                        if collected is not None:
                            collected.append(v)
                continue
            nops = len(ops)
            for v in anchor:
                vals[start] = v
                execute(ops, 0, vals, head_pred, head_slot, nops)

        while stack:
            token = stack.pop()
            if token >= 0:
                v, pred = divmod(token, P)
                for anchor, start, ops, head_pred, head_slot, vals, gate in triggers[
                    pred
                ]:
                    if anchor is None:
                        vals[start] = v
                        execute(ops, 0, vals, head_pred, head_slot, len(ops))
                    elif gate is None or gate == v:
                        # An anchored re-sweep: a constant-pinned body atom
                        # became true (or the gate is open), so replay the
                        # rule from its enumerated anchor.
                        nops = len(ops)
                        for u in anchor:
                            vals[start] = u
                            execute(ops, 0, vals, head_pred, head_slot, nops)
            else:
                for anchor, start, ops, head_pred, head_slot, vals, gate in triggers[
                    -token - 1
                ]:
                    nops = len(ops)
                    for v in anchor:
                        vals[start] = v
                        execute(ops, 0, vals, head_pred, head_slot, nops)

        if capture_state:
            # Pack the completed per-node bitmasks back into per-predicate
            # byte lanes: the scalar worklist finishes the exact fixpoint,
            # so its residue is just as reusable by the next warm run as a
            # pure frontier run's.  Only the handoff sites ask for this
            # (both hold a vector plan); a lane is allocated lazily per
            # predicate that actually derived something.
            lanes: List[Optional[bytearray]] = [None] * P
            for v, m in enumerate(masks):
                while m:
                    low = m & -m
                    lane = lanes[low.bit_length() - 1]
                    if lane is None:
                        lane = lanes[low.bit_length() - 1] = bytearray(
                            domain_size
                        )
                    lane[v] = 1
                    m ^= low
            self.last_state = KernelState(
                variant,
                snapshot,
                [
                    0 if lane is None else int.from_bytes(lane, "little")
                    for lane in lanes
                ],
            )
        unary_sets: Dict[str, Set[int]] = {}
        for name, collected in out_lists:
            unary_sets[name] = ids = set(collected)
            relations[name] = set(zip(ids))
        gmask = gmask_cell[0]
        for name, pred, arity in outputs:
            if pred >= 0 and arity == 0 and (gmask >> pred) & 1:
                relations[name] = {()}
        # One end-of-run popcount pass over the per-node bitmasks: O(n),
        # outside the propagation loop, so the hot path stays untouched.
        self.last_stats = {
            "engine": self.last_engine,
            "rounds": 0,
            "facts": sum(m.bit_count() for m in masks) + gmask.bit_count(),
            "frontier_widths": [],
            "fallback": None,
        }
        return relations, unary_sets

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        return (
            f"KernelProgram({len(self.lowered.rules)} rules via {self.route!r}, "
            f"{self.npreds} predicate bits, max_branches={self.max_branches})"
        )


# -- compilation -----------------------------------------------------------


def _spanning(
    nslots: int,
    edges: List[Tuple[int, int, str, int]],
    sources: Set[int],
) -> Optional[Tuple[List[Tuple[str, tuple]], Set[int]]]:
    """Minimum-branch traversal order binding all slots from ``sources``.

    Edges come from binary body atoms ``R(a, b)``; each is traversable
    ``b -> a`` by the backward functional map (cost 0) and ``a -> b`` by
    the forward map (cost 0) or, for ``child``, by enumeration (cost 1).
    ``sources`` are the slots bound before any move runs -- the entry
    slot plus every constant-pinned slot.  Returns
    ``(moves, tree_atom_indexes)`` where each move is
    ``("step"| "branch", (rel, forward, from, to))`` in bind order, via a
    0-1 BFS; ``None`` when some slot is unreachable (a disconnected rule,
    which :func:`split_disconnected` should have prevented).
    """
    if nslots == 0:
        return [], set()
    adjacency: List[List[Tuple[int, int, str, bool, int]]] = [
        [] for _ in range(nslots)
    ]
    for index, (a, b, rel, atom_idx) in enumerate(edges):
        if a == b:
            continue
        forward_cost = 1 if rel == "child" else 0
        adjacency[a].append((forward_cost, b, rel, True, atom_idx))
        adjacency[b].append((0, a, rel, False, atom_idx))
    INF = float("inf")
    dist = [INF] * nslots
    via: List[Optional[Tuple[int, str, bool, int, int]]] = [None] * nslots
    queue = deque()
    for start in sources:
        dist[start] = 0
        queue.append(start)
    while queue:
        u = queue.popleft()
        for cost, v, rel, forward, atom_idx in adjacency[u]:
            nd = dist[u] + cost
            if nd < dist[v]:
                dist[v] = nd
                via[v] = (u, rel, forward, atom_idx, cost)
                if cost:
                    queue.append(v)
                else:
                    queue.appendleft(v)
    if any(d is INF for d in dist):
        return None
    moves: List[Tuple[str, tuple]] = []
    tree_atoms: Set[int] = set()
    # Emit moves in an order where each move's source slot is already
    # bound: repeated passes over the predecessor tree (nslots is tiny).
    bound = set(sources)
    pending = set(range(nslots)) - bound
    while pending:
        progressed = False
        for v in sorted(pending):
            u, rel, forward, atom_idx, cost = via[v]
            if u in bound:
                kind = "branch" if cost else "step"
                payload = (rel, forward, u, v) if kind == "step" else (rel, u, v)
                moves.append((kind, payload))
                tree_atoms.add(atom_idx)
                bound.add(v)
                pending.discard(v)
                progressed = True
                break
        if not progressed:
            return None
    return moves, tree_atoms


class _RuleShape:
    """Symbolic per-rule tables shared by every entry point of the rule."""

    __slots__ = (
        "rule",
        "slot_of",
        "nslots",
        "edges",
        "unary_ext",
        "unary_int",
        "gbits",
        "consts",
        "head_pred",
        "head_slot",
    )


def _shape(rule: Rule, pred_index: Dict[str, int], intensional: Set[str]):
    """Extract the numeric shape of one rule; ``None`` if unsupported.

    Body constants each get a dedicated slot (``shape.consts`` records
    ``(slot, value)`` pairs): the instantiation is anchored at the pinned
    node, so constant-bearing rules stay inside the kernel fragment
    instead of falling back to the general engine.
    """
    shape = _RuleShape()
    shape.rule = rule
    slot_of: Dict[Variable, int] = {}
    for variable in sorted(rule.variables(), key=lambda v: v.name):
        slot_of[variable] = len(slot_of)
    const_slot: Dict[int, int] = {}
    shape.consts = []

    def term_slot(term) -> int:
        if isinstance(term, Constant):
            slot = const_slot.get(term.value)
            if slot is None:
                slot = const_slot[term.value] = len(slot_of) + len(shape.consts)
                shape.consts.append((slot, term.value))
            return slot
        return slot_of[term]

    shape.edges = []
    shape.unary_ext = []
    shape.unary_int = []
    shape.gbits = []
    for atom_idx, atom in enumerate(rule.body):
        if atom.arity == 0:
            if atom.pred not in intensional:
                return None
            shape.gbits.append((pred_index[atom.pred], atom_idx))
        elif atom.arity == 1:
            slot = term_slot(atom.args[0])
            if atom.pred in intensional:
                shape.unary_int.append((pred_index[atom.pred], slot, atom_idx))
            else:
                shape.unary_ext.append((atom.pred, slot, atom_idx))
        elif atom.arity == 2:
            if atom.pred in intensional or not _BINARY_NAME.match(atom.pred):
                return None
            a, b = (term_slot(t) for t in atom.args)
            shape.edges.append((a, b, atom.pred, atom_idx))
        else:
            return None
    shape.nslots = len(slot_of) + len(shape.consts)
    head = rule.head
    if head.arity > 1 or any(isinstance(t, Constant) for t in head.args):
        return None
    shape.head_pred = pred_index[head.pred]
    shape.head_slot = slot_of[head.args[0]] if head.arity == 1 else -1
    return shape


def _assemble(
    shape: _RuleShape, start: int, skip_atom: int
) -> Optional[List[tuple]]:
    """Full op list for one entry point, checks as early as possible."""
    sources = {start} | {slot for slot, _ in shape.consts}
    result = _spanning(shape.nslots, shape.edges, sources)
    if result is None:
        return None
    moves, tree_atoms = result
    ops: List[tuple] = []
    for pred, atom_idx in shape.gbits:
        if atom_idx != skip_atom:
            ops.append(("gbit", pred))

    checks_by_slot: Dict[int, List[tuple]] = {}
    for name, slot, atom_idx in shape.unary_ext:
        if atom_idx != skip_atom:
            checks_by_slot.setdefault(slot, []).append(("ubit", name, slot))
    for pred, slot, atom_idx in shape.unary_int:
        if atom_idx != skip_atom:
            checks_by_slot.setdefault(slot, []).append(("ibit", pred, slot))

    remaining_binary = [
        (a, b, rel, atom_idx)
        for a, b, rel, atom_idx in shape.edges
        if atom_idx not in tree_atoms
    ]
    bound: Set[int] = set(sources)

    def flush(slot: int) -> None:
        ops.extend(checks_by_slot.pop(slot, ()))
        for entry in list(remaining_binary):
            a, b, rel, _ = entry
            if a in bound and b in bound:
                ops.append(("bcheck", rel, a, b))
                remaining_binary.remove(entry)

    # Pin the constant slots first: the entry slot gets an equality check
    # (trigger blocks arrive with an arbitrary fired node there), every
    # other constant slot a guarded bind.
    for slot, value in shape.consts:
        if slot == start:
            ops.append(("ccheck", value, slot))
        else:
            ops.append(("cbind", value, slot))
    if shape.nslots:
        flush(start)
        for slot, _ in shape.consts:
            if slot != start:
                flush(slot)
    for kind, payload in moves:
        ops.append((kind, *payload))
        target = payload[-1]
        bound.add(target)
        flush(target)
    assert not remaining_binary and not checks_by_slot
    return ops


def _pick_anchor(shape: _RuleShape, skip_atom: int) -> Optional[_Block]:
    """Best enumerated entry point: fewest branches, then selectivity."""
    candidates: List[Tuple[Optional[str], int]] = [
        (name, slot) for name, slot, atom_idx in shape.unary_ext
    ]
    # A constant pins its slot to one node: the ideal anchor.
    candidates.extend(
        (f"@const:{value}", slot) for slot, value in shape.consts
    )
    if shape.nslots:
        fallback_slot = shape.head_slot if shape.head_slot >= 0 else 0
        candidates.append((None, fallback_slot))
    else:
        candidates.append((None, 0))
    best: Optional[Tuple[tuple, Optional[str], int, List[tuple]]] = None
    for name, slot in candidates:
        # Consuming the anchor atom itself: its check is implied by the
        # enumeration, but only one syntactic atom may be consumed.
        consumed = skip_atom
        ops = _assemble(shape, slot, consumed)
        if ops is None:
            continue
        if name is not None and not name.startswith("@const:"):
            # Drop exactly one check of this (name, slot) pair: the
            # enumeration already guarantees it.
            for i, op in enumerate(ops):
                if op[0] == "ubit" and op[1] == name and op[2] == slot:
                    del ops[i]
                    break
        branches = sum(1 for op in ops if op[0] == "branch")
        superlinear = branches >= 2 or (
            branches >= 1
            and any(op[0] == "step" and op[1] == "child" for op in ops)
        )
        key = (superlinear, branches, _anchor_cost(name), len(ops))
        if best is None or key < best[0]:
            best = (key, name, slot, ops)
    if best is None:
        return None
    _, name, slot, ops = best
    return _Block(
        name if name is not None else "*",
        slot,
        shape.nslots,
        ops,
        shape.head_pred,
        shape.head_slot,
    )


def _pred_arities(program: Program) -> Optional[Dict[str, int]]:
    """Arity of each intensional predicate; ``None`` on inconsistent use."""
    arities: Dict[str, int] = {}
    intensional = program.intensional_predicates()

    def record(pred: str, arity: int) -> bool:
        if arities.setdefault(pred, arity) != arity:
            return False
        return True

    for rule in program.rules:
        if not record(rule.head.pred, rule.head.arity):
            return None
        for atom in rule.body:
            if atom.pred in intensional and not record(atom.pred, atom.arity):
                return None
    return arities


def _lower(source: Program, lowered: Program, route: str) -> Optional[_Lowering]:
    """Lower a connected monadic program into kernel tables."""
    arities = _pred_arities(lowered)
    if arities is None:
        return None
    intensional = lowered.intensional_predicates()
    pred_index = {name: i for i, name in enumerate(sorted(intensional))}
    sweeps: List[_Block] = []
    triggers: List[List[_Block]] = [[] for _ in pred_index]
    for rule in lowered.rules:
        shape = _shape(rule, pred_index, intensional)
        if shape is None:
            return None
        occurrences = [
            ("unary", pred, slot, atom_idx)
            for pred, slot, atom_idx in shape.unary_int
        ] + [("global", pred, -1, atom_idx) for pred, atom_idx in shape.gbits]
        if not occurrences:
            block = _pick_anchor(shape, skip_atom=-1)
            if block is None:
                return None
            sweeps.append(block)
            continue
        const_value = {slot: value for slot, value in shape.consts}
        for kind, pred, slot, atom_idx in occurrences:
            if kind == "unary" and slot not in const_value:
                ops = _assemble(shape, slot, atom_idx)
                if ops is None:
                    return None
                block = _Block(
                    None, slot, shape.nslots, ops, shape.head_pred, shape.head_slot
                )
            elif kind == "unary":
                # ``q(c)``: when the fact fires at exactly node ``c`` (the
                # gate), re-run the rule from its best enumerated anchor,
                # keeping every check.
                block = _pick_anchor(shape, skip_atom=-1)
                if block is None:
                    return None
                block.gate = const_value[slot]
            else:
                block = _pick_anchor(shape, skip_atom=atom_idx)
                if block is None:
                    return None
            triggers[pred].append(block)

    source_arities = _pred_arities(source)
    if source_arities is None:
        return None
    outputs = []
    for name in sorted(source.intensional_predicates()):
        outputs.append(
            (name, pred_index.get(name, -1), source_arities.get(name, 1))
        )
    return _Lowering(lowered, pred_index, sweeps, triggers, outputs, route)


def compile_kernel(program: Program) -> Optional[KernelProgram]:
    """Compile ``program`` for the propagation kernel, or ``None``.

    Tries the direct Theorem 4.2 lowering first (connectedness split +
    functional propagation).  When some rule's best direct lowering is
    *superlinear* -- it chains two branching ``child`` traversals, or
    reaches a branch through the many-to-one ``parent`` map, either of
    which can exceed the linear bound -- the program is re-lowered through
    the Theorem 5.2 TMNF normalization, whose rules only use
    bidirectionally functional relations.  Body constants stay inside the
    fragment: each pins a slot to a single node and is preferred as the
    rule's anchor.  Returns ``None`` for programs outside both fragments
    (non-monadic programs, head constants, unsupported binary relations);
    callers then fall back to another strategy.

    >>> from repro.datalog.parser import parse_program
    >>> from repro.trees import parse_sexpr
    >>> from repro.trees.unranked import UnrankedStructure
    >>> anchored = compile_kernel(parse_program(
    ...     "p(x) :- firstchild(0, x).", query="p"))
    >>> sorted(anchored.run(UnrankedStructure(parse_sexpr("a(b, c)")))["p"])
    [(1,)]
    """
    if not program.is_monadic():
        return None
    # The kernel only reads the tree signature: unary labels plus the
    # _BINARY_NAME relations.  Any other extensional atom of arity >= 2
    # (e.g. the Elog-Delta ``before[...]`` conditions) puts the program
    # outside the fragment -- and the TMNF route would silently *drop*
    # such rules during acyclicization, producing a kernel that binds but
    # evaluates the wrong program.  Reject up front instead.
    intensional = program.intensional_predicates()
    for rule in program.rules:
        for atom in rule.body:
            if (
                atom.arity >= 2
                and atom.pred not in intensional
                and not (atom.arity == 2 and _BINARY_NAME.match(atom.pred))
            ):
                return None
    try:
        split = split_disconnected(program)
    except DatalogError:
        return None
    direct = _lower(program, split, "direct")
    if direct is not None and not direct.superlinear:
        return KernelProgram(program, [direct])
    variants: List[_Lowering] = []
    normalized = _try_tmnf_lowering(program)
    if normalized is not None:
        variants.append(normalized)
    if direct is not None:
        # Last resort: the superlinear direct lowering still evaluates
        # correctly (just not within the linear bound) on snapshots the
        # TMNF variants cannot bind.
        variants.append(direct)
    if not variants:
        return None
    return KernelProgram(program, variants)


def _try_tmnf_lowering(program: Program) -> Optional[_Lowering]:
    from repro.errors import TMNFError

    try:
        from repro.tmnf.pipeline import to_tmnf

        normalized = to_tmnf(program).program
        lowered = _lower(program, split_disconnected(normalized), "tmnf")
    except (TMNFError, DatalogError):
        return None
    if lowered is not None and lowered.max_branches == 0:
        return lowered
    return None


def _expand_generic_child(program: Program, max_rank: int) -> Optional[Program]:
    """Lemma 5.4 preprocessing: expand ``child`` over a rank-``K`` signature.

    Every generic ``child(x, y)`` body atom is replaced by the disjunction
    ``child1(x, y) | ... | childK(x, y)`` -- one rule copy per choice, so
    a rule with ``m`` generic atoms yields ``K^m`` copies.  Returns
    ``None`` when ``max_rank`` is not positive or a rule would blow up
    past a small cap (such programs fall back to the general engine).
    """
    if max_rank < 1:
        return None
    rules: List[Rule] = []
    for rule in program.rules:
        positions = [
            index for index, atom in enumerate(rule.body) if atom.pred == "child"
        ]
        if not positions:
            rules.append(rule)
            continue
        if max_rank ** len(positions) > 64:
            return None
        for combo in itertools.product(
            range(1, max_rank + 1), repeat=len(positions)
        ):
            body = list(rule.body)
            for position, k in zip(positions, combo):
                body[position] = Atom(f"child{k}", body[position].args)
            rules.append(Rule(rule.head, body))
    return Program(rules, query=program.query, declared=program.declared)


def kernel_applicable(program: Program, structure: Structure) -> bool:
    """Whether the kernel strategy fully applies to program + structure."""
    kernel = compile_kernel(program)
    return kernel is not None and kernel.applicable(structure)


def evaluate_kernel(program: Program, structure: Structure) -> Relations:
    """One-shot kernel evaluation (compile + run); raises if inapplicable.

    Callers evaluating one program over many documents should compile via
    :func:`repro.datalog.plan.compile_program` and reuse the plan, which
    caches the kernel tables alongside the join plans.
    """
    kernel = compile_kernel(program)
    if kernel is None:
        raise DatalogError(
            "kernel strategy does not apply: program is outside the monadic "
            "tree fragment (Theorem 4.2 / Theorem 5.2 lowerings both failed)"
        )
    return kernel.run(structure)

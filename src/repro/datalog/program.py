"""Datalog rules and programs (Section 3.1).

A datalog program is a set of rules ``h <- b1, ..., bn`` where ``h`` and the
``bi`` are atoms.  Rules must be *safe*: every variable in the head occurs in
the body.  Predicates appearing in some head are *intensional*; all others
are *extensional*.  A program is *monadic* when every intensional predicate
has arity at most one (zero-ary helper predicates are tolerated; they arise
from the connectedness rewriting in the proof of Theorem 4.2).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, FrozenSet, Iterable, Iterator, List, Optional, Sequence, Set, Tuple

from repro.datalog.terms import Atom, Constant, Term, Variable
from repro.errors import DatalogError

if TYPE_CHECKING:  # pragma: no cover - import cycle avoidance
    from repro.datalog.plan import CompiledProgram


class Rule:
    """A datalog rule ``head <- body``.

    >>> from repro.datalog.terms import Atom, var
    >>> r = Rule(Atom("p", (var("x"),)), [Atom("q", (var("x"),))])
    >>> str(r)
    'p(x) :- q(x).'
    """

    __slots__ = ("head", "body")

    def __init__(self, head: Atom, body: Iterable[Atom]):
        self.head = head
        self.body: Tuple[Atom, ...] = tuple(body)
        head_vars = head.variables()
        body_vars = self.variables_in_body()
        missing = head_vars - body_vars
        if missing:
            names = ", ".join(sorted(v.name for v in missing))
            raise DatalogError(f"unsafe rule: head variables {{{names}}} not in body")

    def variables(self) -> FrozenSet[Variable]:
        """All variables of the rule (``Vars(r)``)."""
        out: Set[Variable] = set(self.head.variables())
        for atom in self.body:
            out |= atom.variables()
        return frozenset(out)

    def variables_in_body(self) -> FrozenSet[Variable]:
        """Variables occurring in the body."""
        out: Set[Variable] = set()
        for atom in self.body:
            out |= atom.variables()
        return frozenset(out)

    @property
    def is_ground(self) -> bool:
        """Whether the rule contains no variables."""
        return self.head.is_ground and all(a.is_ground for a in self.body)

    def binary_atoms(self) -> List[Atom]:
        """Body atoms of arity two."""
        return [a for a in self.body if a.arity == 2]

    def unary_atoms(self) -> List[Atom]:
        """Body atoms of arity one."""
        return [a for a in self.body if a.arity == 1]

    def guard(self) -> Optional[Atom]:
        """A body atom containing all rule variables, if any (Section 3.1)."""
        all_vars = self.variables()
        for atom in self.body:
            if atom.variables() >= all_vars:
                return atom
        return None

    def rename_variables(self, mapping: Dict[Variable, Variable]) -> "Rule":
        """Rename variables according to ``mapping`` (identity elsewhere)."""
        sub: Dict[Variable, Term] = dict(mapping)
        return Rule(self.head.substitute(sub), [a.substitute(sub) for a in self.body])

    def size(self) -> int:
        """Number of atoms, counting the head."""
        return 1 + len(self.body)

    def __str__(self) -> str:
        if not self.body:
            return f"{self.head}."
        return f"{self.head} :- {', '.join(str(a) for a in self.body)}."

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        return f"Rule({self})"

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Rule):
            return NotImplemented
        return self.head == other.head and self.body == other.body

    def __hash__(self) -> int:
        return hash((self.head, self.body))


class Program:
    """A datalog program: an ordered collection of rules plus an optional
    distinguished query predicate.

    The rule order is preserved for readability; semantics do not depend on
    it.
    """

    def __init__(
        self,
        rules: Iterable[Rule],
        query: Optional[str] = None,
        declared: Iterable[str] = (),
    ):
        self.rules: Tuple[Rule, ...] = tuple(rules)
        self.query = query
        #: Predicates declared intensional even when no rule defines them
        #: (their extension is then empty).  Generated programs (automaton
        #: simulations) use this for states that happen to be underivable.
        self.declared: frozenset = frozenset(declared)
        # Rules and declarations are immutable after construction, so the
        # intensional-predicate set is computed once and cached.
        self._intensional: FrozenSet[str] = frozenset(
            rule.head.pred for rule in self.rules
        ) | self.declared
        if query is not None and query not in self._intensional:
            raise DatalogError(
                f"query predicate {query!r} is not an intensional predicate "
                "of the program"
            )

    def __iter__(self) -> Iterator[Rule]:
        return iter(self.rules)

    def __len__(self) -> int:
        return len(self.rules)

    def size(self) -> int:
        """``|P|``: total number of atoms across all rules."""
        return sum(rule.size() for rule in self.rules)

    def intensional_predicates(self) -> Set[str]:
        """Predicates that occur in some rule head, plus declared ones.

        Returns a fresh mutable set backed by a cached frozenset, so callers
        may extend their copy freely.
        """
        return set(self._intensional)

    def compile(self) -> "CompiledProgram":
        """Compile this program once into a reusable executable plan.

        Convenience alias for :func:`repro.datalog.plan.compile_program`;
        see :class:`repro.datalog.plan.CompiledProgram`.
        """
        from repro.datalog.plan import compile_program

        return compile_program(self)

    def extensional_predicates(self) -> Set[str]:
        """Body predicates that never occur in a head."""
        intensional = self.intensional_predicates()
        out: Set[str] = set()
        for rule in self.rules:
            for atom in rule.body:
                if atom.pred not in intensional:
                    out.add(atom.pred)
        return out

    def predicates(self) -> Set[str]:
        """All predicate names mentioned by the program."""
        out = self.intensional_predicates()
        for rule in self.rules:
            for atom in rule.body:
                out.add(atom.pred)
        return out

    def is_monadic(self) -> bool:
        """Whether every intensional predicate has arity <= 1.

        Zero-ary (propositional) intensional predicates are permitted; they
        appear as helper predicates in the paper's own constructions.
        """
        intensional = self.intensional_predicates()
        for rule in self.rules:
            if rule.head.arity > 1:
                return False
            for atom in rule.body:
                if atom.pred in intensional and atom.arity > 1:
                    return False
        return True

    def rules_for(self, pred: str) -> List[Rule]:
        """All rules whose head predicate is ``pred``."""
        return [rule for rule in self.rules if rule.head.pred == pred]

    def fresh_predicate(self, base: str) -> str:
        """A predicate name based on ``base`` not used by the program."""
        used = self.predicates()
        if base not in used:
            return base
        i = 1
        while f"{base}_{i}" in used:
            i += 1
        return f"{base}_{i}"

    def with_query(self, query: str) -> "Program":
        """A copy of the program with a different query predicate."""
        return Program(self.rules, query=query, declared=self.declared)

    def extend(self, rules: Iterable[Rule]) -> "Program":
        """A copy of the program with additional rules appended."""
        return Program(self.rules + tuple(rules), query=self.query, declared=self.declared)

    def __str__(self) -> str:
        return "\n".join(str(rule) for rule in self.rules)

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        return f"Program({len(self.rules)} rules, query={self.query!r})"


def fresh_variable_factory(prefix: str = "z") -> "_FreshVars":
    """Return a generator of fresh variables ``z_0, z_1, ...``."""
    return _FreshVars(prefix)


class _FreshVars:
    """Stateful fresh-variable supply used by the rewriting pipelines."""

    def __init__(self, prefix: str):
        self._prefix = prefix
        self._counter = 0

    def __call__(self) -> Variable:
        v = Variable(f"{self._prefix}_{self._counter}")
        self._counter += 1
        return v

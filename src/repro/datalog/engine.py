"""Public datalog evaluation entry point: a thin ``compile -> run`` wrapper.

The heavy lifting lives in :mod:`repro.datalog.plan`: ``compile_program``
turns a :class:`~repro.datalog.program.Program` into a reusable
:class:`~repro.datalog.plan.CompiledProgram` (interned predicates, per-rule
join plans with semi-naive delta variants, dependency strata, cached
connectedness split), and ``CompiledProgram.run(structure)`` evaluates the
plan over one document.  ``evaluate(program, structure)`` keeps the classic
one-shot API by compiling and running in a single call.

``run``/``evaluate`` pick the best applicable strategy:

* ``"kernel"`` -- the linear-time propagation kernel
  (:mod:`repro.datalog.kernel`): monadic programs over tree-backed
  structures evaluated against the columnar document snapshot with
  per-node predicate bitmasks, Theorem 4.2 as the hot path;
* ``"ground"`` -- Theorem 4.2's linear-time grounding + Horn-SAT, when the
  program is monadic and every binary body relation is bidirectionally
  functional in the structure (Proposition 4.1); kept as the cross-check
  oracle for the kernel;
* ``"lit"`` -- Proposition 3.7's Datalog LIT evaluation;
* ``"seminaive"`` -- the compiled bottom-up engine (always applicable; the
  interpreted reference lives in
  :func:`repro.datalog.seminaive.evaluate_seminaive`);
* ``"naive"`` -- naive :math:`T_P` iteration, exposing the round-by-round
  trace of Definition 3.1 (see :func:`naive_fixpoint_trace`).

All strategies compute the same minimal model; the test suite cross-checks
them on randomized programs and trees.  Callers evaluating one program over
many documents should compile once and reuse the plan::

    compiled = compile_program(program)
    for tree in documents:
        result = compiled.run(UnrankedStructure(tree))

and callers evaluating many programs over one document should additionally
share a single :class:`repro.structures.IndexedStructure` per document (see
:meth:`repro.wrap.extraction.Wrapper.extract_many`).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set, Tuple

from repro.datalog.plan import (
    CompiledProgram,
    EvaluationResult,
    compile_program,
)
from repro.datalog.program import Program
from repro.datalog.seminaive import naive_rounds
from repro.structures import Structure

Relations = Dict[str, Set[Tuple[int, ...]]]

__all__ = [
    "CompiledProgram",
    "EvaluationResult",
    "compile_program",
    "evaluate",
    "naive_fixpoint_trace",
]


def evaluate(
    program: Program, structure: Structure, method: str = "auto"
) -> EvaluationResult:
    """Evaluate ``program`` over ``structure`` (compile once, run once).

    Parameters
    ----------
    program:
        The datalog program (monadic for the specialized strategies).
    structure:
        Any finite structure; typically an
        :class:`repro.trees.UnrankedStructure` or
        :class:`repro.trees.RankedStructure`.  A pre-built
        :class:`repro.structures.IndexedStructure` is used as-is, sharing
        its indexes with other queries on the same document.
    method:
        ``"auto"`` (default), ``"kernel"``, ``"ground"``, ``"lit"``,
        ``"seminaive"`` or ``"naive"``.

    Returns
    -------
    EvaluationResult
    """
    return compile_program(program).run(structure, method=method)


def naive_fixpoint_trace(
    program: Program, structure: Structure
) -> List[Relations]:
    """Round-by-round naive fixpoint (Definition 3.1 / Example 3.2).

    ``result[i]`` maps predicates to atoms first derived in ``T^{i+1}_P``.
    """
    return naive_rounds(program, structure)

"""Public datalog evaluation entry point with strategy selection.

``evaluate(program, structure)`` picks the best applicable strategy:

* ``"ground"`` -- Theorem 4.2's linear-time grounding + Horn-SAT, when the
  program is monadic and every binary body relation is bidirectionally
  functional in the structure (Proposition 4.1);
* ``"lit"`` -- Proposition 3.7's Datalog LIT evaluation;
* ``"seminaive"`` -- the general bottom-up engine (always applicable);
* ``"naive"`` -- naive :math:`T_P` iteration, exposing the round-by-round
  trace of Definition 3.1 (see :func:`naive_fixpoint_trace`).

All strategies compute the same minimal model; the test suite cross-checks
them on randomized programs and trees.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set, Tuple

from repro.datalog.grounding import (
    GroundingNotApplicable,
    evaluate_ground,
    grounding_applicable,
)
from repro.datalog.guarded import evaluate_lit, is_monadic_lit
from repro.datalog.program import Program
from repro.datalog.seminaive import evaluate_seminaive, naive_rounds
from repro.datalog.analysis import split_disconnected
from repro.errors import DatalogError
from repro.structures import Structure

Relations = Dict[str, Set[Tuple[int, ...]]]


class EvaluationResult:
    """Result of evaluating a datalog program.

    Attributes
    ----------
    relations:
        Mapping from intensional predicate to its derived tuple set.
    method:
        The strategy actually used (``"ground"``, ``"lit"``,
        ``"seminaive"``, or ``"naive"``).
    query:
        The program's query predicate, if any.
    """

    def __init__(self, relations: Relations, method: str, query: Optional[str]):
        self.relations = relations
        self.method = method
        self.query = query

    def unary(self, pred: str) -> Set[int]:
        """The extension of a unary predicate as a set of node identifiers."""
        return {tup[0] for tup in self.relations.get(pred, set()) if len(tup) == 1}

    def query_result(self) -> Set[int]:
        """The unary query's answer set (requires a query predicate)."""
        if self.query is None:
            raise DatalogError("program has no distinguished query predicate")
        return self.unary(self.query)

    def holds(self, pred: str, *args: int) -> bool:
        """Whether ``pred(args)`` was derived."""
        return tuple(args) in self.relations.get(pred, set())

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        sizes = {p: len(ts) for p, ts in self.relations.items()}
        return f"EvaluationResult(method={self.method!r}, sizes={sizes})"


def evaluate(
    program: Program, structure: Structure, method: str = "auto"
) -> EvaluationResult:
    """Evaluate ``program`` over ``structure``.

    Parameters
    ----------
    program:
        The datalog program (monadic for the specialized strategies).
    structure:
        Any finite structure; typically an
        :class:`repro.trees.UnrankedStructure` or
        :class:`repro.trees.RankedStructure`.
    method:
        ``"auto"`` (default), ``"ground"``, ``"lit"``, ``"seminaive"`` or
        ``"naive"``.

    Returns
    -------
    EvaluationResult
    """
    if method == "auto":
        if grounding_applicable(split_disconnected(program), structure):
            method = "ground"
        else:
            method = "seminaive"

    if method == "ground":
        ground = evaluate_ground(program, structure)
        return EvaluationResult(ground.relations, "ground", program.query)
    if method == "lit":
        if not is_monadic_lit(program, structure):
            raise DatalogError("program is not in monadic Datalog LIT")
        return EvaluationResult(evaluate_lit(program, structure), "lit", program.query)
    if method == "seminaive":
        return EvaluationResult(
            evaluate_seminaive(program, structure), "seminaive", program.query
        )
    if method == "naive":
        rounds = naive_rounds(program, structure)
        merged: Relations = {p: set() for p in program.intensional_predicates()}
        for round_facts in rounds:
            for pred, tuples in round_facts.items():
                merged.setdefault(pred, set()).update(tuples)
        return EvaluationResult(merged, "naive", program.query)
    raise DatalogError(f"unknown evaluation method {method!r}")


def naive_fixpoint_trace(
    program: Program, structure: Structure
) -> List[Relations]:
    """Round-by-round naive fixpoint (Definition 3.1 / Example 3.2).

    ``result[i]`` maps predicates to atoms first derived in ``T^{i+1}_P``.
    """
    return naive_rounds(program, structure)

"""Monadic datalog over trees (Sections 3-4 of the paper).

The package provides:

* :mod:`repro.datalog.terms` / :mod:`repro.datalog.program` -- the abstract
  syntax of datalog (variables, constants, atoms, rules, programs);
* :mod:`repro.datalog.parser` -- a textual syntax
  (``head(x) :- body1(x), body2(x, y).``);
* :mod:`repro.datalog.hornsat` -- the linear-time propositional Horn
  satisfiability core (Proposition 3.5, Dowling-Gallier);
* :mod:`repro.datalog.kernel` -- the linear-time propagation kernel:
  monadic programs lowered to numeric rule tables evaluated over columnar
  document snapshots with per-node predicate bitmasks (Theorem 4.2 as the
  hot path, auto-selected for tree workloads);
* :mod:`repro.datalog.grounding` -- Theorem 4.2's linear-time grounding of
  connected monadic programs over tree structures (the kernel's
  cross-check oracle);
* :mod:`repro.datalog.seminaive` -- a general bottom-up engine (semi-naive
  and naive-with-trace evaluation);
* :mod:`repro.datalog.guarded` -- the guarded and Datalog LIT fragments
  (Propositions 3.6 and 3.7);
* :mod:`repro.datalog.plan` -- compile-once query plans
  (:func:`compile_program` / :class:`CompiledProgram`): interned ids,
  precomputed join orders, dependency strata, reusable across documents;
* :mod:`repro.datalog.engine` -- the public :func:`evaluate` entry point
  (a thin compile-and-run wrapper) with automatic strategy selection;
* :mod:`repro.datalog.analysis` -- query graphs, connectedness, safety and
  related static analyses;
* :mod:`repro.datalog.to_mso` -- Proposition 3.3 (monadic datalog is
  Pi1-MSO definable);
* :mod:`repro.datalog.containment` -- containment testing utilities
  (Corollary 4.20 context).
"""

from repro.datalog.terms import Atom, Constant, Term, Variable
from repro.datalog.program import Program, Rule
from repro.datalog.parser import parse_program, parse_rule
from repro.datalog.engine import (
    CompiledProgram,
    EvaluationResult,
    compile_program,
    evaluate,
    naive_fixpoint_trace,
)

__all__ = [
    "Term",
    "Variable",
    "Constant",
    "Atom",
    "Rule",
    "Program",
    "parse_program",
    "parse_rule",
    "compile_program",
    "CompiledProgram",
    "evaluate",
    "naive_fixpoint_trace",
    "EvaluationResult",
]

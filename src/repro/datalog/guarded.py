"""Guarded datalog and Datalog LIT (Propositions 3.6 and 3.7).

* Proposition 3.6: a program in which every rule is guarded by an
  *extensional* atom can be grounded by enumerating the guard's extension,
  yielding ``O(|P| * |sigma|)`` ground rules, then solved as Horn-SAT.
* Proposition 3.7 (monadic Datalog LIT): each rule body either consists
  exclusively of monadic atoms, or contains an extensional guard.  Rules of
  the first kind are normalized by splitting per variable (non-head
  variables become propositional "exists" helpers), after which everything
  grounds in ``O(|P| * |sigma|)``.

Both evaluators share the Horn-SAT core of Proposition 3.5.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set, Tuple

from repro.datalog.hornsat import AtomInterner, solve_horn
from repro.datalog.program import Program, Rule
from repro.datalog.terms import Atom, Constant, Variable
from repro.errors import DatalogError
from repro.structures import Structure, as_indexed

GroundAtom = Tuple[str, Tuple[int, ...]]


def extensional_guard(rule: Rule, intensional: Set[str]) -> Optional[Atom]:
    """An extensional body atom containing all rule variables, if any."""
    all_vars = rule.variables()
    for atom in rule.body:
        if atom.pred not in intensional and atom.variables() >= all_vars:
            return atom
    return None


def is_monadic_lit(program: Program, structure: Structure) -> bool:
    """Whether the program is in monadic Datalog LIT (Proposition 3.7)."""
    if not program.is_monadic():
        return False
    intensional = program.intensional_predicates()
    for rule in program.rules:
        if all(a.arity <= 1 for a in rule.body):
            continue
        if extensional_guard(rule, intensional) is None:
            return False
    return True


def _ground_guarded_rule(
    rule: Rule,
    guard: Atom,
    intensional: Set[str],
    structure: Structure,
    out: List[Tuple[GroundAtom, List[GroundAtom]]],
) -> None:
    """Instantiate ``rule`` once per tuple of the guard's extension."""
    guard_relation = structure.relation(guard.pred)
    for tup in guard_relation:
        binding: Dict[Variable, int] = {}
        ok = True
        for term, value in zip(guard.args, tup):
            if isinstance(term, Constant):
                if term.value != value:
                    ok = False
                    break
            elif binding.get(term, value) != value:
                ok = False
                break
            else:
                binding[term] = value
        if not ok:
            continue
        body_out: List[GroundAtom] = []
        for atom in rule.body:
            values = atom.ground_tuple(binding)
            if atom.pred in intensional:
                body_out.append((atom.pred, values))
            elif values not in structure.relation(atom.pred):
                ok = False
                break
        if ok:
            out.append(((rule.head.pred, rule.head.ground_tuple(binding)), body_out))


def _split_monadic_rule(
    rule: Rule, fresh: List[int], program: Program
) -> List[Rule]:
    """Split an all-monadic-body rule per variable.

    ``p(x) <- p1(x), p2(y).`` becomes ``p(x) <- p1(x), b.`` and
    ``b <- p2(y).`` where ``b`` is propositional; each resulting rule has a
    single variable and grounds over ``dom`` directly.
    """
    head_vars = rule.head.variables()
    by_var: Dict[Optional[Variable], List[Atom]] = {}
    for atom in rule.body:
        atom_vars = list(atom.variables())
        key = atom_vars[0] if atom_vars else None
        by_var.setdefault(key, []).append(atom)
    main_var = next(iter(head_vars)) if head_vars else None
    main_body = list(by_var.pop(main_var, []))
    if None in by_var:
        main_body.extend(by_var.pop(None))
    out: List[Rule] = []
    for variable, atoms in by_var.items():
        fresh[0] += 1
        name = program.fresh_predicate(f"__lit_{fresh[0]}")
        out.append(Rule(Atom(name), atoms))
        main_body.append(Atom(name))
    out.append(Rule(rule.head, main_body))
    return out


def evaluate_lit(program: Program, structure: Structure) -> Dict[str, Set[Tuple[int, ...]]]:
    """Evaluate a monadic Datalog LIT program in ``O(|P| * |sigma|)``.

    Raises :class:`DatalogError` when the program is not in the fragment.
    ``structure`` may be a pre-built
    :class:`repro.structures.IndexedStructure`; bare structures are wrapped
    so repeated relation lookups during grounding hit a cache.
    """
    if not is_monadic_lit(program, structure):
        raise DatalogError("program is not in monadic Datalog LIT")
    structure = as_indexed(structure)
    intensional = set(program.intensional_predicates())

    # Normalize all-monadic rules to single-variable rules.
    fresh = [0]
    normalized: List[Rule] = []
    for rule in program.rules:
        if all(a.arity <= 1 for a in rule.body):
            split = _split_monadic_rule(rule, fresh, program)
            normalized.extend(split)
            intensional.update(r.head.pred for r in split)
        else:
            normalized.append(rule)

    ground: List[Tuple[GroundAtom, List[GroundAtom]]] = []
    for rule in normalized:
        guard = extensional_guard(rule, intensional)
        if guard is not None and rule.variables():
            _ground_guarded_rule(rule, guard, intensional, structure, ground)
            continue
        variables = list(rule.variables())
        if len(variables) > 1:
            raise DatalogError(f"rule not normalizable for LIT grounding: {rule}")
        seeds = list(structure.domain) if variables else [None]
        for seed in seeds:
            binding = {variables[0]: seed} if variables else {}
            body_out: List[GroundAtom] = []
            ok = True
            for atom in rule.body:
                values = atom.ground_tuple(binding)  # type: ignore[arg-type]
                if atom.pred in intensional:
                    body_out.append((atom.pred, values))
                elif values not in structure.relation(atom.pred):
                    ok = False
                    break
            if ok:
                head = (rule.head.pred, rule.head.ground_tuple(binding))  # type: ignore[arg-type]
                ground.append((head, body_out))

    interner = AtomInterner()
    horn_rules = [
        (interner.intern(head), [interner.intern(b) for b in body])
        for head, body in ground
    ]
    true_ids = solve_horn(len(interner), horn_rules, [])
    relations: Dict[str, Set[Tuple[int, ...]]] = {
        p: set() for p in program.intensional_predicates()
    }
    for ident in true_ids:
        pred, args = interner.key_of(ident)
        if pred in relations:
            relations[pred].add(args)
    return relations

"""Proposition 3.3: monadic datalog queries are Pi1-MSO definable.

The encoding of the proof: for a program with intensional predicates
``P1 .. Pn`` (``P1`` the query) the formula is::

    phi(x) = forall P1 ... forall Pn ( SAT(P1, .., Pn) -> x in P1 )

where ``SAT`` conjoins, per rule ``h <- b1, .., bm``, the universally
quantified implication ``b1 & .. & bm -> h`` with intensional atoms read
as set memberships.  The minimal model is the intersection of all models,
which is exactly what the universal set quantification expresses.

The resulting formula is evaluated with the naive MSO model checker in
tests (tiny trees, tiny programs -- set quantification is exponential).
"""

from __future__ import annotations

from typing import Dict, List

from repro.datalog.program import Program, Rule
from repro.datalog.terms import Atom, Constant, Variable
from repro.errors import DatalogError
from repro.mso.syntax import (
    And,
    Exists,
    FOVar,
    Forall,
    Formula,
    Implies,
    Member,
    Not,
    Or,
    Rel,
    SOVar,
    conj,
)

#: datalog extensional predicate -> MSO atomic relation name.
_REL_NAMES = {
    "root": "root",
    "leaf": "leaf",
    "lastsibling": "lastsibling",
    "firstsibling": "firstsibling",
    "firstchild": "firstchild",
    "nextsibling": "nextsibling",
    "child": "child",
}


def _atom_to_formula(atom: Atom, intensional: set) -> Formula:
    for term in atom.args:
        if isinstance(term, Constant):
            raise DatalogError("constants are not supported in the MSO encoding")
    variables = tuple(FOVar(t.name) for t in atom.args)  # type: ignore[union-attr]
    if atom.pred in intensional:
        if len(variables) != 1:
            raise DatalogError("only unary intensional predicates encode to MSO")
        return Member(variables[0], SOVar(f"SET_{atom.pred}"))
    if atom.pred.startswith("label_"):
        return Rel(atom.pred, variables)
    if atom.pred == "dom":
        # dom(x) is trivially true; encode as x = x.
        return Rel("eq", (variables[0], variables[0]))
    if atom.pred in _REL_NAMES:
        return Rel(_REL_NAMES[atom.pred], variables)
    raise DatalogError(f"extensional predicate {atom.pred!r} has no MSO atom")


def _rule_to_formula(rule: Rule, intensional: set) -> Formula:
    body = [_atom_to_formula(a, intensional) for a in rule.body]
    head = _atom_to_formula(rule.head, intensional)
    implication: Formula = Implies(conj(*body), head) if body else head
    for variable in sorted(rule.variables(), key=lambda v: v.name):
        implication = Forall(FOVar(variable.name), implication)
    return implication


def datalog_to_mso(program: Program, free_var: str = "x") -> Formula:
    """Encode a monadic datalog query as a Pi1-MSO formula
    (Proposition 3.3).

    The program must have a unary query predicate; the result has one free
    first-order variable named ``free_var``.
    """
    if program.query is None:
        raise DatalogError("the program needs a distinguished query predicate")
    if not program.is_monadic():
        raise DatalogError("Proposition 3.3 encodes monadic programs")
    intensional = program.intensional_predicates()
    for rule in program.rules:
        if rule.head.arity != 1:
            raise DatalogError(
                "zero-ary intensional predicates are not supported by the "
                "MSO encoding; inline them first"
            )

    sat = conj(*[_rule_to_formula(r, intensional) for r in program.rules])
    body: Formula = Implies(sat, Member(FOVar(free_var), SOVar(f"SET_{program.query}")))
    for pred in sorted(intensional, reverse=True):
        body = Forall(SOVar(f"SET_{pred}"), body)
    return body

"""Static analyses of datalog rules and programs.

Implements the graph-theoretic notions used throughout Sections 4 and 5:

* the *query graph* of a rule (a multigraph on its variables with one edge
  per binary body atom, Section 5);
* *connectedness* of a rule (proof of Theorem 4.2);
* rule *acyclicity* (Section 5: the query graph is an undirected forest,
  counting parallel edges as cycles);
* *ears* (proof of Lemma 5.7: variables occurring in exactly one binary
  atom);
* the predicate dependency graph of a program.
"""

from __future__ import annotations

from typing import Dict, List, Set, Tuple

from repro.datalog.program import Program, Rule
from repro.datalog.terms import Atom, Variable


def query_graph_edges(rule: Rule) -> List[Tuple[Variable, Variable, Atom]]:
    """The multigraph edges of the rule's query graph.

    One entry per binary body atom whose two argument positions are both
    variables; each entry is ``(x, y, atom)``.  Binary atoms mentioning a
    constant contribute no edge (the variable side is anchored by the
    constant instead).
    """
    edges = []
    for atom in rule.body:
        if atom.arity == 2:
            a, b = atom.args
            if isinstance(a, Variable) and isinstance(b, Variable):
                edges.append((a, b, atom))
    return edges


def variable_components(rule: Rule) -> List[Set[Variable]]:
    """Connected components of the rule's query graph.

    Every variable of the rule is a vertex; binary atoms over two variables
    contribute edges.  Variables occurring only in unary atoms form singleton
    components (unless they co-occur with others in a binary atom).
    """
    variables = set(rule.variables())
    adjacency: Dict[Variable, Set[Variable]] = {v: set() for v in variables}
    for a, b, _ in query_graph_edges(rule):
        adjacency[a].add(b)
        adjacency[b].add(a)
    components: List[Set[Variable]] = []
    seen: Set[Variable] = set()
    for start in variables:
        if start in seen:
            continue
        component = {start}
        stack = [start]
        seen.add(start)
        while stack:
            v = stack.pop()
            for w in adjacency[v]:
                if w not in seen:
                    seen.add(w)
                    component.add(w)
                    stack.append(w)
        components.append(component)
    return components


def is_connected(rule: Rule) -> bool:
    """Whether the rule's query graph is connected (proof of Theorem 4.2).

    Rules with at most one variable are trivially connected.
    """
    return len(variable_components(rule)) <= 1


def is_acyclic(rule: Rule) -> bool:
    """Whether the rule's query graph is an undirected forest (Section 5).

    Parallel edges (two binary atoms over the same variable pair) count as a
    cycle, as in the paper's footnote 10.  Self-loops (``R(x, x)``) also
    count as cycles.
    """
    edges = query_graph_edges(rule)
    parent: Dict[Variable, Variable] = {}

    def find(v: Variable) -> Variable:
        while parent.get(v, v) != v:
            parent[v] = parent.get(parent[v], parent[v])
            v = parent[v]
        return v

    for a, b, _ in edges:
        if a == b:
            return False
        parent.setdefault(a, a)
        parent.setdefault(b, b)
        ra, rb = find(a), find(b)
        if ra == rb:
            return False
        parent[ra] = rb
    return True


def ears(rule: Rule) -> List[Variable]:
    """Variables occurring in exactly one binary body atom (Lemma 5.7)."""
    counts: Dict[Variable, int] = {}
    for a, b, _ in query_graph_edges(rule):
        counts[a] = counts.get(a, 0) + 1
        counts[b] = counts.get(b, 0) + 1
    # Binary atoms with a constant argument still pin their variable.
    for atom in rule.body:
        if atom.arity == 2:
            vars_in = list(atom.variables())
            if len(vars_in) == 1:
                counts[vars_in[0]] = counts.get(vars_in[0], 0) + 1
    return [v for v, c in counts.items() if c == 1]


def dependency_graph(program: Program) -> Dict[str, Set[str]]:
    """Predicate dependency graph: ``head -> set of body predicates``."""
    graph: Dict[str, Set[str]] = {}
    for rule in program.rules:
        deps = graph.setdefault(rule.head.pred, set())
        for atom in rule.body:
            deps.add(atom.pred)
    return graph


def is_recursive(program: Program) -> bool:
    """Whether some intensional predicate depends on itself (transitively)."""
    graph = dependency_graph(program)
    intensional = program.intensional_predicates()

    for start in intensional:
        stack = list(graph.get(start, ()))
        seen: Set[str] = set()
        while stack:
            p = stack.pop()
            if p == start:
                return True
            if p in seen or p not in intensional:
                continue
            seen.add(p)
            stack.extend(graph.get(p, ()))
    return False


def split_disconnected(program: Program) -> Program:
    """Split disconnected rules using propositional helper predicates.

    This is the first step of the proof of Theorem 4.2: for each connected
    component of a rule's query graph that does not contain the head
    variable, replace the component's atoms by a fresh propositional atom
    ``b`` and add the rule ``b <- <component atoms>``.

    >>> from repro.datalog.parser import parse_program
    >>> p = split_disconnected(parse_program("p(x) :- p1(x), p2(y)."))
    >>> sorted(str(r) for r in p.rules)  # doctest: +NORMALIZE_WHITESPACE
    ['__cc_0_0 :- p2(y).', 'p(x) :- p1(x), __cc_0_0.']
    """
    new_rules: List[Rule] = []
    used_names = program.predicates()
    counter = 0
    for rule_index, rule in enumerate(program.rules):
        components = variable_components(rule)
        if len(components) <= 1:
            new_rules.append(rule)
            continue
        head_vars = rule.head.variables()
        # The component holding the head variables (or an arbitrary one for
        # propositional heads).
        if head_vars:
            main = next(c for c in components if head_vars & c)
        else:
            main = components[0]
        kept_body: List[Atom] = []
        for component in components:
            if component is main:
                continue
            component_atoms = [
                a for a in rule.body if a.variables() and a.variables() <= component
            ]
            name = f"__cc_{rule_index}_{counter}"
            while name in used_names:
                counter += 1
                name = f"__cc_{rule_index}_{counter}"
            used_names.add(name)
            counter += 1
            helper = Atom(name)
            new_rules.append(Rule(helper, component_atoms))
            kept_body.append(helper)
        # Preserve original body order for the main component's atoms;
        # ground (variable-free) atoms stay with the main rule.
        main_atoms = [
            a for a in rule.body if not a.variables() or a.variables() & main
        ]
        new_rules.append(Rule(rule.head, main_atoms + kept_body))
    return Program(new_rules, query=program.query, declared=program.declared)

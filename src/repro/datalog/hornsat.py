"""Linear-time propositional Horn inference (Proposition 3.5).

The minimal model of a ground datalog program plus a set of facts is exactly
the set of unit consequences of a propositional Horn theory.  We implement
the classic Dowling-Gallier counter/watch-list algorithm, which runs in time
linear in the total size of the rule set.

The solver works on integer atom identifiers; :class:`AtomInterner` maps
arbitrary hashable atom keys (here: ``(pred, arg_tuple)`` pairs) to dense
integers.
"""

from __future__ import annotations

from typing import Dict, Hashable, Iterable, List, Sequence, Set, Tuple

GroundRule = Tuple[int, Sequence[int]]


class AtomInterner:
    """Bidirectional mapping between atom keys and dense integer ids.

    >>> interner = AtomInterner()
    >>> interner.intern(("p", (1,)))
    0
    >>> interner.intern(("p", (1,)))
    0
    >>> interner.key_of(0)
    ('p', (1,))
    """

    def __init__(self):
        self._ids: Dict[Hashable, int] = {}
        self._keys: List[Hashable] = []

    def intern(self, key: Hashable) -> int:
        """Return the id of ``key``, allocating one if needed."""
        ident = self._ids.get(key)
        if ident is None:
            ident = len(self._keys)
            self._ids[key] = ident
            self._keys.append(key)
        return ident

    def lookup(self, key: Hashable) -> int:
        """Return the id of ``key`` or ``-1`` if it was never interned."""
        return self._ids.get(key, -1)

    def key_of(self, ident: int) -> Hashable:
        """Return the key for a previously allocated id."""
        return self._keys[ident]

    def __len__(self) -> int:
        return len(self._keys)


def solve_horn(
    num_atoms: int,
    rules: Iterable[GroundRule],
    facts: Iterable[int],
) -> Set[int]:
    """Compute the set of true atoms of a ground Horn program.

    Parameters
    ----------
    num_atoms:
        Number of atom identifiers in use (ids must lie in
        ``range(num_atoms)``).
    rules:
        Iterable of ``(head, body)`` pairs; ``body`` is a sequence of atom
        ids.  Empty bodies are facts.
    facts:
        Additional atom ids that are unconditionally true.

    Returns
    -------
    set of int
        Ids of all derivable atoms (the minimal model).

    Notes
    -----
    Runs in ``O(num_atoms + total rule size)`` -- Proposition 3.5 /
    Dowling & Gallier 1984.
    """
    rule_list: List[GroundRule] = list(rules)
    # Remaining unsatisfied body atoms per rule.
    counters: List[int] = [0] * len(rule_list)
    # watch[atom] = rule indexes whose bodies mention the atom.
    watch: List[List[int]] = [[] for _ in range(num_atoms)]

    true: List[bool] = [False] * num_atoms
    queue: List[int] = []

    def mark(atom: int) -> None:
        if not true[atom]:
            true[atom] = True
            queue.append(atom)

    for atom in facts:
        mark(atom)

    for idx, (head, body) in enumerate(rule_list):
        # Count each occurrence; duplicate body atoms are counted twice and
        # decremented twice, which keeps the bookkeeping exact.
        counters[idx] = len(body)
        if counters[idx] == 0:
            mark(head)
        else:
            for atom in body:
                watch[atom].append(idx)

    # Unit propagation.  Each (rule, body-atom occurrence) pair is touched at
    # most once overall, hence linear time.
    head_of = [r[0] for r in rule_list]
    while queue:
        atom = queue.pop()
        for idx in watch[atom]:
            counters[idx] -= 1
            if counters[idx] == 0:
                mark(head_of[idx])
        watch[atom] = []

    return {i for i in range(num_atoms) if true[i]}

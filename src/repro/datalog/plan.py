"""Compile-once query plans for monadic (and general) datalog.

The paper's complexity results (Theorem 4.2, Corollary 6.4) treat a wrapper
as a *static* artifact that is analyzed once and then run over many
documents.  This module realizes that separation for the general engine:

``compile_program(program)`` performs every evaluation step that depends on
the program alone --

* predicate names are interned to dense integer ids and variables to
  per-plan *slots* (indexes into a flat binding array);
* each rule body is compiled into an executable :class:`_OrderedPlan` with
  a precomputed greedy join order, plus one *delta variant* per
  same-stratum intensional body atom for semi-naive evaluation;
* atoms are assigned a lookup strategy at compile time (full scan, hash
  index on the bound positions -- any arity -- or direct membership test);
* rules are partitioned into dependency *strata* (SCCs of the predicate
  graph in topological order), so the fixpoint loop iterates only within a
  stratum instead of sweeping all recursive rules every round;
* the Theorem 4.2 connectedness rewriting (``split_disconnected``) is
  performed once and cached for the grounding strategy.

The result is a :class:`CompiledProgram` whose :meth:`CompiledProgram.run`
evaluates the plan over any structure, reusing a shared
:class:`repro.structures.IndexedStructure` when one is supplied.  The
classic one-shot :func:`repro.datalog.engine.evaluate` is now a thin
``compile -> run`` wrapper around this module.
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Optional, Sequence, Set, Tuple

from repro.datalog.analysis import dependency_graph, split_disconnected
from repro.datalog.program import Program, Rule
from repro.datalog.seminaive import _order_body
from repro.datalog.terms import Constant, Atom, Variable
from repro.errors import DatalogError
from repro.structures import IndexedStructure, Structure, as_indexed

FactTuple = Tuple[int, ...]
Relations = Dict[str, Set[FactTuple]]

# Lookup strategies resolved at compile time.
_SCAN = 0  # no bound positions: iterate the full extension
_INDEX = 1  # some positions bound: probe the hash index on those positions
_MEMBER = 2  # all positions bound: single membership test


class EvaluationResult:
    """Result of evaluating a datalog program.

    Attributes
    ----------
    relations:
        Mapping from intensional predicate to its derived tuple set.
    method:
        The strategy actually used (``"kernel"``, ``"ground"``, ``"lit"``,
        ``"seminaive"``, or ``"naive"``).
    query:
        The program's query predicate, if any.
    engine:
        For ``method == "kernel"``, which propagation engine ran:
        ``"frontier"`` (big-int frontier-at-a-time), ``"worklist"`` (scalar
        Dowling–Gallier), or ``"frontier+worklist"`` (narrow-frontier
        bailout).  ``None`` for the other strategies.
    stats:
        For ``method == "kernel"``, the kernel's per-run stats dict
        (``engine`` / ``rounds`` / ``facts`` / ``frontier_widths`` /
        ``fallback``; warm runs add ``dirty`` / ``dirty_fraction`` /
        ``carried`` / ``deleted``) -- the same shape
        :meth:`CompiledProgram.run_incremental` returns as its ``info``
        triple member, now available for cold runs too.  ``None`` for
        non-kernel strategies.
    """

    def __init__(
        self,
        relations: Relations,
        method: str,
        query: Optional[str],
        unary_sets: Optional[Dict[str, Set[int]]] = None,
        engine: Optional[str] = None,
        stats: Optional[Dict[str, object]] = None,
    ):
        self.relations = relations
        self.method = method
        self.query = query
        self.engine = engine
        self.stats = stats
        #: Optional engine-supplied ``pred -> {node ids}`` sets (the
        #: propagation kernel produces them for free), so batch wrappers
        #: skip re-deriving them from the tuple sets.
        self._unary_sets = unary_sets

    def unary(self, pred: str) -> Set[int]:
        """The extension of a unary predicate as a set of node identifiers."""
        if self._unary_sets is not None:
            cached = self._unary_sets.get(pred)
            if cached is not None:
                return cached
        return {tup[0] for tup in self.relations.get(pred, set()) if len(tup) == 1}

    def query_result(self) -> Set[int]:
        """The unary query's answer set (requires a query predicate)."""
        if self.query is None:
            raise DatalogError("program has no distinguished query predicate")
        return self.unary(self.query)

    def holds(self, pred: str, *args: int) -> bool:
        """Whether ``pred(args)`` was derived."""
        return tuple(args) in self.relations.get(pred, set())

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        sizes = {p: len(ts) for p, ts in self.relations.items()}
        return f"EvaluationResult(method={self.method!r}, sizes={sizes})"


class _AtomPlan:
    """One body atom compiled against a fixed prefix of bound slots.

    ``ops`` is the per-candidate check/bind sequence in argument-position
    order: ``("c", pos, value)`` checks a constant, ``("k", pos, slot)``
    checks an already bound slot, ``("b", pos, slot)`` binds a fresh slot.
    A variable's first occurrence in the atom is a bind; later occurrences
    in the same atom become checks, so repeated variables are handled
    uniformly.
    """

    __slots__ = (
        "pred",
        "pred_id",
        "intensional",
        "arity",
        "ops",
        "lookup",
        "key_positions",
        "key_sources",
    )

    def __init__(
        self,
        atom: Atom,
        pred_id: int,
        intensional: bool,
        slot_of: Dict[Variable, int],
        bound_slots: Set[int],
    ):
        self.pred = atom.pred
        self.pred_id = pred_id
        self.intensional = intensional
        self.arity = atom.arity

        ops: List[Tuple[str, int, int]] = []
        keyed: List[Tuple[int, str, int]] = []
        bound_here: Set[int] = set(bound_slots)
        for pos, term in enumerate(atom.args):
            if isinstance(term, Constant):
                ops.append(("c", pos, term.value))
                keyed.append((pos, "c", term.value))
            else:
                slot = slot_of.setdefault(term, len(slot_of))
                if slot in bound_slots:
                    ops.append(("k", pos, slot))
                    # Known before any candidate is inspected, so it can be
                    # part of the index/membership key.
                    keyed.append((pos, "k", slot))
                elif slot in bound_here:
                    # Repeated variable within this atom: check, but the
                    # value is only known during enumeration.
                    ops.append(("k", pos, slot))
                else:
                    ops.append(("b", pos, slot))
                    bound_here.add(slot)
        self.ops = tuple(ops)
        self.key_positions: Tuple[int, ...] = tuple(p for p, _, _ in keyed)
        self.key_sources: Tuple[Tuple[str, int], ...] = tuple(
            (kind, value) for _, kind, value in keyed
        )
        if intensional or not self.key_positions:
            self.lookup = _SCAN
        elif len(self.key_positions) == self.arity:
            self.lookup = _MEMBER
        else:
            self.lookup = _INDEX

    def key(self, binding: List[int]) -> FactTuple:
        """The index/membership key under the current binding."""
        return tuple(
            value if kind == "c" else binding[value]
            for kind, value in self.key_sources
        )

    def candidates(
        self,
        binding: List[int],
        edb: IndexedStructure,
        idb: Sequence[Set[FactTuple]],
        override: Optional[Set[FactTuple]],
    ) -> Iterator[FactTuple]:
        """Tuples of this atom's relation compatible with the binding."""
        if self.intensional:
            source = idb[self.pred_id] if override is None else override
            return iter(source)
        if self.lookup == _MEMBER:
            tup = self.key(binding)
            return iter((tup,)) if tup in edb.relation(self.pred) else iter(())
        if self.lookup == _INDEX:
            index = edb.index(self.pred, self.key_positions)
            return iter(index.get(self.key(binding), ()))
        return iter(edb.relation(self.pred))


class _OrderedPlan:
    """A full join plan for one rule body under one atom order.

    Slot numbering is private to the plan (the same rule variable may map to
    different slots in the base plan and in a delta variant), so the head
    builder and slot count live here rather than on the rule.
    """

    __slots__ = ("atoms", "head_sources", "nslots")

    def __init__(
        self,
        rule: Rule,
        order: List[int],
        intern: Dict[str, int],
        intensional: Set[str],
    ):
        slot_of: Dict[Variable, int] = {}
        bound: Set[int] = set()
        atoms: List[_AtomPlan] = []
        for index in order:
            atom = rule.body[index]
            plan = _AtomPlan(
                atom, intern[atom.pred], atom.pred in intensional, slot_of, bound
            )
            atoms.append(plan)
            for kind, _, value in plan.ops:
                if kind == "b":
                    bound.add(value)
        self.atoms: Tuple[_AtomPlan, ...] = tuple(atoms)
        # Safety guarantees every head variable was bound by the body.
        self.head_sources: Tuple[Tuple[str, int], ...] = tuple(
            ("c", t.value) if isinstance(t, Constant) else ("s", slot_of[t])
            for t in rule.head.args
        )
        self.nslots = len(slot_of)

    def head_tuple(self, binding: List[int]) -> FactTuple:
        return tuple(
            value if kind == "c" else binding[value]
            for kind, value in self.head_sources
        )

    def evaluate(
        self,
        edb: IndexedStructure,
        idb: Sequence[Set[FactTuple]],
        delta: Optional[Set[FactTuple]],
        out: Set[FactTuple],
    ) -> None:
        """Add every derivable head tuple to ``out``.

        ``delta``, when given, overrides the fact source of the *first* atom
        (the semi-naive restriction; delta variants order that atom first).
        Slots are never unbound between branches: a slot is always (re)bound
        at the same depth before any deeper atom reads it, so plain
        overwriting is sound and no binding copies are needed.
        """
        binding: List[int] = [0] * self.nslots
        atoms = self.atoms
        depth_count = len(atoms)

        def recurse(depth: int) -> None:
            if depth == depth_count:
                out.add(self.head_tuple(binding))
                return
            plan = atoms[depth]
            override = delta if depth == 0 else None
            ops = plan.ops
            for tup in plan.candidates(binding, edb, idb, override):
                ok = True
                for kind, pos, value in ops:
                    v = tup[pos]
                    if kind == "b":
                        binding[value] = v
                    elif kind == "k":
                        if binding[value] != v:
                            ok = False
                            break
                    elif v != value:
                        ok = False
                        break
                if ok:
                    recurse(depth + 1)

        recurse(0)


class _RulePlan:
    """A rule compiled into a base plan plus semi-naive delta variants."""

    __slots__ = ("rule", "head_pred_id", "base", "delta_variants")

    def __init__(
        self,
        rule: Rule,
        intern: Dict[str, int],
        intensional: Set[str],
        recursive_preds: Set[str],
    ):
        self.rule = rule
        self.head_pred_id = intern[rule.head.pred]
        self.base = _OrderedPlan(
            rule, _order_body(rule.body, None), intern, intensional
        )
        variants: List[Tuple[_OrderedPlan, int]] = []
        for position, atom in enumerate(rule.body):
            if atom.pred in recursive_preds:
                variants.append(
                    (
                        _OrderedPlan(
                            rule,
                            _order_body(rule.body, position),
                            intern,
                            intensional,
                        ),
                        intern[atom.pred],
                    )
                )
        self.delta_variants: Tuple[Tuple[_OrderedPlan, int], ...] = tuple(variants)


def _strongly_connected_components(
    graph: Dict[str, Set[str]], nodes: Set[str]
) -> List[List[str]]:
    """Tarjan's SCCs of ``graph`` restricted to ``nodes``.

    Returned in topological order of the condensation with respect to the
    ``head -> body-dependency`` edges: an SCC appears after everything it
    depends on (Tarjan emits sink components -- here, the dependency-free
    ones -- first).
    """
    index_of: Dict[str, int] = {}
    lowlink: Dict[str, int] = {}
    on_stack: Set[str] = set()
    stack: List[str] = []
    sccs: List[List[str]] = []
    counter = [0]

    def successors(node: str) -> List[str]:
        return sorted(p for p in graph.get(node, ()) if p in nodes)

    for root in sorted(nodes):
        if root in index_of:
            continue
        frames: List[Tuple[str, Iterator[str]]] = [(root, iter(successors(root)))]
        index_of[root] = lowlink[root] = counter[0]
        counter[0] += 1
        stack.append(root)
        on_stack.add(root)
        while frames:
            node, it = frames[-1]
            descended = False
            for succ in it:
                if succ not in index_of:
                    index_of[succ] = lowlink[succ] = counter[0]
                    counter[0] += 1
                    stack.append(succ)
                    on_stack.add(succ)
                    frames.append((succ, iter(successors(succ))))
                    descended = True
                    break
                if succ in on_stack:
                    lowlink[node] = min(lowlink[node], index_of[succ])
            if descended:
                continue
            frames.pop()
            if lowlink[node] == index_of[node]:
                component: List[str] = []
                while True:
                    member = stack.pop()
                    on_stack.discard(member)
                    component.append(member)
                    if member == node:
                        break
                sccs.append(component)
            if frames:
                parent = frames[-1][0]
                lowlink[parent] = min(lowlink[parent], lowlink[node])
    return sccs


class CompiledProgram:
    """A datalog program compiled into an executable, reusable plan.

    Build once with :func:`compile_program`, then call :meth:`run` for each
    document.  All program-only work (interning, join ordering, delta
    variants, stratification, connectedness splitting) happens at
    construction; :meth:`run` only touches structure-dependent state.

    Examples
    --------
    >>> from repro.datalog.parser import parse_program
    >>> from repro.structures import GenericStructure
    >>> compiled = compile_program(parse_program(
    ...     "reach(x) :- start(x).\\nreach(y) :- reach(x), edge(x, y).",
    ...     query="reach"))
    >>> s = GenericStructure(3, {"edge": [(0, 1), (1, 2)], "start": [0]})
    >>> sorted(compiled.run(s).query_result())
    [0, 1, 2]
    """

    def __init__(self, program: Program):
        self.program = program
        self._intensional: Set[str] = set(program.intensional_predicates())
        self._extensional: Set[str] = set(program.extensional_predicates())

        # Predicate interning: dense ids, intensional predicates first, so
        # the fact store is a flat list indexed by predicate id.
        self._intern: Dict[str, int] = {}
        for pred in sorted(self._intensional):
            self._intern[pred] = len(self._intern)
        self._num_intensional = len(self._intern)
        for pred in sorted(self._extensional):
            self._intern.setdefault(pred, len(self._intern))
        self._names: List[str] = [""] * len(self._intern)
        for name, ident in self._intern.items():
            self._names[ident] = name

        # Stratification and rule plans are built on first use, so one-shot
        # runs through the ground/lit strategies do not pay for them; once
        # built they are reused for every subsequent run.
        self._strata_cache: Optional[List[Tuple[List[_RulePlan], frozenset]]] = None
        self._monadic = program.is_monadic()
        self._split_cache: Optional[Program] = None
        # Lazily compiled propagation-kernel tables (None until first use;
        # the tuple wrapper distinguishes "not yet tried" from "kernel does
        # not apply to this program").
        self._kernel_cache: Optional[tuple] = None

    @property
    def _strata(self) -> List[Tuple[List[_RulePlan], frozenset]]:
        if self._strata_cache is None:
            program = self.program
            graph = dependency_graph(program)
            sccs = _strongly_connected_components(graph, self._intensional)
            scc_of: Dict[str, int] = {}
            for i, scc in enumerate(sccs):
                for pred in scc:
                    scc_of[pred] = i
            rules_by_scc: List[List[Rule]] = [[] for _ in sccs]
            for rule in program.rules:
                rules_by_scc[scc_of[rule.head.pred]].append(rule)
            strata: List[Tuple[List[_RulePlan], frozenset]] = []
            for scc, rules in zip(sccs, rules_by_scc):
                if not rules:
                    continue
                preds = set(scc)
                plans = [
                    _RulePlan(rule, self._intern, self._intensional, preds)
                    for rule in rules
                ]
                strata.append((plans, frozenset(preds)))
            self._strata_cache = strata
        return self._strata_cache

    @property
    def _split(self) -> Optional[Program]:
        # Theorem 4.2 pre-processing: the connectedness split depends only
        # on the program, so it is computed once and shared by every run.
        if not self._monadic:
            return None
        if self._split_cache is None:
            self._split_cache = split_disconnected(self.program)
        return self._split_cache

    @property
    def _kernel(self):
        # Propagation-kernel lowering (Theorem 4.2 hot path): program-only,
        # compiled on first use and reused by every subsequent run.
        if self._kernel_cache is None:
            if self._monadic:
                from repro.datalog.kernel import compile_kernel

                self._kernel_cache = (compile_kernel(self.program),)
            else:
                self._kernel_cache = (None,)
        return self._kernel_cache[0]

    def prepare(self) -> "CompiledProgram":
        """Force every lazy program-only artifact (strata, split, kernel).

        Useful before timing a batch or before pickling the plan into
        worker processes, so each worker receives fully materialized
        tables instead of re-deriving them.
        """
        _ = self._strata, self._split, self._kernel
        return self

    # -- introspection -------------------------------------------------------

    @property
    def strata(self) -> List[Set[str]]:
        """Head-predicate SCCs in evaluation (topological) order."""
        return [set(preds) for _, preds in self._strata]

    def size(self) -> int:
        """``|P|`` of the underlying program."""
        return self.program.size()

    def grounding_applicable(self, structure: Structure) -> bool:
        """Whether the Theorem 4.2 strategy applies on this structure."""
        from repro.datalog.grounding import grounding_applicable

        if self._split is None:
            return False
        return grounding_applicable(self._split, structure)

    def kernel_applicable(self, structure: Structure) -> bool:
        """Whether the propagation kernel applies on this structure."""
        kernel = self._kernel
        return kernel is not None and kernel.applicable(structure)

    # -- evaluation ----------------------------------------------------------

    def _check_extensional(self, structure: Structure) -> None:
        for pred in sorted(self._extensional):
            if not structure.has_relation(pred):
                raise DatalogError(
                    f"structure provides no extensional relation {pred!r}"
                )

    def _run_seminaive(self, edb: IndexedStructure) -> Relations:
        self._check_extensional(edb)
        idb: List[Set[FactTuple]] = [set() for _ in range(self._num_intensional)]

        for plans, _ in self._strata:
            # Initial pass: every rule of the stratum once against the facts
            # derived so far (same-stratum predicates are still empty, so
            # only their non-recursive derivations fire here).
            delta: Dict[int, Set[FactTuple]] = {}
            for rp in plans:
                derived: Set[FactTuple] = set()
                rp.base.evaluate(edb, idb, None, derived)
                fresh = derived - idb[rp.head_pred_id]
                if fresh:
                    delta.setdefault(rp.head_pred_id, set()).update(fresh)
            for pred_id, tuples in delta.items():
                idb[pred_id] |= tuples

            recursive = [rp for rp in plans if rp.delta_variants]
            while delta:
                new: Dict[int, Set[FactTuple]] = {}
                for rp in recursive:
                    for variant, delta_pred_id in rp.delta_variants:
                        source = delta.get(delta_pred_id)
                        if not source:
                            continue
                        derived = set()
                        variant.evaluate(edb, idb, source, derived)
                        fresh = derived - idb[rp.head_pred_id]
                        known = new.get(rp.head_pred_id)
                        if known:
                            fresh -= known
                        if fresh:
                            new.setdefault(rp.head_pred_id, set()).update(fresh)
                delta = new
                for pred_id, tuples in delta.items():
                    idb[pred_id] |= tuples

        return {self._names[i]: idb[i] for i in range(self._num_intensional)}

    def run(self, structure: Structure, method: str = "auto") -> EvaluationResult:
        """Evaluate the compiled plan over ``structure``.

        Pass a pre-built :class:`repro.structures.IndexedStructure` to share
        one document runtime across many compiled programs; bare structures
        are wrapped on the fly.
        """
        edb = as_indexed(structure)
        if method == "auto":
            # Fastest applicable strategy first: the linear-time propagation
            # kernel for monadic programs over tree documents, then the
            # Theorem 4.2 grounding, then the general compiled join plans.
            kernel = self._kernel
            if kernel is not None:
                out = kernel.try_run_full(edb)
                if out is not None:
                    relations, unary_sets = out
                    return EvaluationResult(
                        relations,
                        "kernel",
                        self.program.query,
                        unary_sets,
                        engine=kernel.last_engine,
                        stats=kernel.last_stats,
                    )
            method = "ground" if self.grounding_applicable(edb) else "seminaive"

        if method == "kernel":
            kernel = self._kernel
            if kernel is None:
                raise DatalogError(
                    "kernel strategy does not apply: program is outside the "
                    "monadic tree fragment"
                )
            out = kernel.try_run_full(edb)
            if out is None:
                raise DatalogError(
                    "kernel strategy does not apply: structure is not "
                    "tree-backed or lacks a relation the program needs"
                )
            relations, unary_sets = out
            return EvaluationResult(
                relations,
                "kernel",
                self.program.query,
                unary_sets,
                engine=kernel.last_engine,
                stats=kernel.last_stats,
            )
        if method == "ground":
            from repro.datalog.grounding import evaluate_ground

            ground = evaluate_ground(self.program, edb, pre_split=self._split)
            return EvaluationResult(ground.relations, "ground", self.program.query)
        if method == "lit":
            from repro.datalog.guarded import evaluate_lit

            return EvaluationResult(
                evaluate_lit(self.program, edb), "lit", self.program.query
            )
        if method == "seminaive":
            return EvaluationResult(
                self._run_seminaive(edb), "seminaive", self.program.query
            )
        if method == "naive":
            from repro.datalog.seminaive import naive_rounds

            merged: Relations = {p: set() for p in self._intensional}
            for round_facts in naive_rounds(self.program, edb):
                for pred, tuples in round_facts.items():
                    merged.setdefault(pred, set()).update(tuples)
            return EvaluationResult(merged, "naive", self.program.query)
        raise DatalogError(f"unknown evaluation method {method!r}")

    def run_many(
        self, structures: Sequence[Structure], method: str = "auto"
    ) -> List[EvaluationResult]:
        """Evaluate the plan over a batch of documents."""
        return [self.run(structure, method=method) for structure in structures]

    def run_incremental(self, structure: Structure, previous):
        """Warm evaluation against a previous version of the same document.

        ``previous`` is the state returned by an earlier call (or ``None``
        to start cold).  Returns ``(result, state, info)``: the usual
        :class:`EvaluationResult`, the opaque state to feed the *next*
        version of this document, and the kernel's reuse stats dict (or
        ``None`` when the run fell back to a cold evaluation).  Warm runs
        require the propagation kernel; any program/structure the kernel
        cannot hold falls back to :meth:`run` with ``state=None``, so
        callers can thread the state unconditionally:

        >>> from repro.datalog.parser import parse_program
        >>> from repro.trees import parse_sexpr
        >>> from repro.trees.unranked import UnrankedStructure
        >>> compiled = compile_program(parse_program(
        ...     "p(x) :- label_a(x).\\np(y) :- p(x), child(x, y).", query="p"))
        >>> v1 = UnrankedStructure(parse_sexpr("a(b(c), d)"))
        >>> v2 = UnrankedStructure(parse_sexpr("a(b(c), e)"))
        >>> result, state, info = compiled.run_incremental(v1, None)
        >>> sorted(result.query_result()), result.engine
        ([0, 1, 2, 3], 'frontier')
        >>> result, state, info = compiled.run_incremental(v2, state)
        >>> sorted(result.query_result()), result.engine
        ([0, 1, 2, 3], 'incremental')
        >>> info["dirty"]
        1
        """
        kernel = self._kernel
        if kernel is not None:
            edb = as_indexed(structure)
            if previous is not None:
                out = kernel.run_incremental(edb, previous)
                if out is not None:
                    (relations, unary_sets), state, info = out
                    result = EvaluationResult(
                        relations,
                        "kernel",
                        self.program.query,
                        unary_sets,
                        engine=kernel.last_engine,
                        stats=info,
                    )
                    return result, state, info
            out = kernel.try_run_full(edb)
            if out is not None:
                relations, unary_sets = out
                result = EvaluationResult(
                    relations,
                    "kernel",
                    self.program.query,
                    unary_sets,
                    engine=kernel.last_engine,
                    stats=kernel.last_stats,
                )
                return result, kernel.last_state, None
        return self.run(structure), None, None

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        return (
            f"CompiledProgram({len(self.program.rules)} rules, "
            f"{len(self._strata)} strata, query={self.program.query!r})"
        )


def compile_program(program: Program) -> CompiledProgram:
    """Compile ``program`` once into a reusable :class:`CompiledProgram`."""
    return CompiledProgram(program)

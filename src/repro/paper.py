"""Canonical artifacts from the paper, as reusable library objects.

This module collects the concrete programs and trees that the paper's
worked examples are built from, so that tests, benchmarks and user examples
can reference a single authoritative construction:

* :func:`even_a_program` -- the monadic datalog program of Example 3.2
  ("roots of subtrees containing an even number of nodes labeled a");
* :func:`example32_structure` -- the 4-node tree the example is run on;
* :func:`figure1_structure` -- the 6-node tree of Figure 1 / Example 2.5.

The query automata of Examples 4.9 and 4.21 live in
:mod:`repro.qa.examples`; the Elog-Delta program of Theorem 6.6 lives in
:mod:`repro.elog.delta`.
"""

from __future__ import annotations

from typing import Sequence

from repro.datalog.program import Program, Rule
from repro.datalog.terms import Atom, var
from repro.trees.generate import example32_tree, figure1_tree
from repro.trees.unranked import UnrankedStructure


def even_a_program(labels: Sequence[str] = ("a", "b")) -> Program:
    """The Example 3.2 program over alphabet ``labels`` (must contain "a").

    Selects all nodes that are roots of subtrees containing an even number
    of nodes labeled ``a``.  The intensional predicates are ``B0/B1``
    (count below, excluding self), ``C0/C1`` (count including self) and
    ``R0/R1`` (count over the sibling suffix); the query predicate is
    ``C0``.

    >>> p = even_a_program()
    >>> p.query
    'C0'
    >>> len(p.rules)
    13
    """
    if "a" not in labels:
        raise ValueError('alphabet must contain the symbol "a"')
    x, x0 = var("x"), var("x0")
    rules = [
        # (1) B0(x) <- leaf(x).
        Rule(Atom("B0", (x,)), [Atom("leaf", (x,))]),
    ]
    # (2) Bi(x0) <- firstchild(x0, x), Ri(x).
    for i in range(2):
        rules.append(
            Rule(
                Atom(f"B{i}", (x0,)),
                [Atom("firstchild", (x0, x)), Atom(f"R{i}", (x,))],
            )
        )
    # (3) C_{(i+1) mod 2}(x) <- Bi(x), label_a(x).
    for i in range(2):
        rules.append(
            Rule(
                Atom(f"C{(i + 1) % 2}", (x,)),
                [Atom(f"B{i}", (x,)), Atom("label_a", (x,))],
            )
        )
    # (4) Ci(x) <- Bi(x), label_l(x).   for l != a
    for i in range(2):
        for label in labels:
            if label == "a":
                continue
            rules.append(
                Rule(
                    Atom(f"C{i}", (x,)),
                    [Atom(f"B{i}", (x,)), Atom(f"label_{label}", (x,))],
                )
            )
    # (5) Ri(x) <- lastsibling(x), Ci(x).
    for i in range(2):
        rules.append(
            Rule(
                Atom(f"R{i}", (x,)),
                [Atom("lastsibling", (x,)), Atom(f"C{i}", (x,))],
            )
        )
    # (6) R_{(i+j) mod 2}(x0) <- Cj(x0), nextsibling(x0, x), Ri(x).
    for i in range(2):
        for j in range(2):
            rules.append(
                Rule(
                    Atom(f"R{(i + j) % 2}", (x0,)),
                    [
                        Atom(f"C{j}", (x0,)),
                        Atom("nextsibling", (x0, x)),
                        Atom(f"R{i}", (x,)),
                    ],
                )
            )
    return Program(rules, query="C0")


def example32_structure() -> UnrankedStructure:
    """The 4-node, all-``a`` tree of Example 3.2 as a ``tau_ur`` structure.

    Node identifiers follow the paper: n1 -> 0, n2 -> 1, n3 -> 2, n4 -> 3.
    """
    return UnrankedStructure(example32_tree())


def figure1_structure() -> UnrankedStructure:
    """The 6-node tree of Figure 1 (n1..n6 -> identifiers 0..5)."""
    return UnrankedStructure(figure1_tree())

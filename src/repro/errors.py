"""Exception hierarchy for the ``repro`` library.

Every error raised by the library derives from :class:`ReproError`, so user
code can catch the whole family with a single ``except`` clause while still
being able to discriminate by subsystem.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the ``repro`` library."""


class TreeError(ReproError):
    """Raised for malformed trees or invalid tree operations."""


class ParseError(ReproError):
    """Raised when parsing any of the textual syntaxes fails.

    Used by the s-expression reader, the datalog parser, the MSO parser, the
    caterpillar-expression parser, the Elog- parser, and the HTML tokenizer.
    """

    def __init__(self, message: str, position: int | None = None):
        if position is not None:
            message = f"{message} (at position {position})"
        super().__init__(message)
        self.position = position


class DatalogError(ReproError):
    """Raised for semantically invalid datalog programs.

    Examples: unsafe rules, non-monadic intensional predicates where a
    monadic program is required, or evaluation over structures that lack a
    referenced extensional relation.
    """


class AutomatonError(ReproError):
    """Raised for ill-formed automata or invalid automaton operations."""


class QueryAutomatonError(ReproError):
    """Raised for ill-formed query automata (Definitions 4.8 / 4.12).

    Also raised when a run violates the determinism guarantees the paper
    assumes (e.g. the U/D partition is broken) or fails to terminate within
    the configured step budget.
    """


class MSOError(ReproError):
    """Raised for ill-formed MSO formulas or unsupported constructs."""


class TMNFError(ReproError):
    """Raised when the TMNF normalization pipeline receives input outside
    the signatures covered by Theorem 5.2."""


class ElogError(ReproError):
    """Raised for invalid Elog-/Elog-Delta programs (Definition 6.2)."""


class WrapError(ReproError):
    """Raised by the wrapping layer (output-tree construction, visual
    specification sessions)."""


class HTMLError(ReproError):
    """Raised by the HTML front end for irrecoverably malformed input."""


class ServeError(ReproError):
    """Raised by the wrapper-serving subsystem (:mod:`repro.serve`).

    Examples: unknown wrapper references, invalid registration payloads,
    or a corrupted registry cache entry."""


class ServerOverloaded(ServeError):
    """Raised when the serving queue is full (mapped to HTTP 503)."""

"""Exception hierarchy for the ``repro`` library.

Every error raised by the library derives from :class:`ReproError`, so user
code can catch the whole family with a single ``except`` clause while still
being able to discriminate by subsystem.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the ``repro`` library."""


class TreeError(ReproError):
    """Raised for malformed trees or invalid tree operations."""


class ParseError(ReproError):
    """Raised when parsing any of the textual syntaxes fails.

    Used by the s-expression reader, the datalog parser, the MSO parser, the
    caterpillar-expression parser, the Elog- parser, and the HTML tokenizer.
    """

    def __init__(self, message: str, position: int | None = None):
        if position is not None:
            message = f"{message} (at position {position})"
        super().__init__(message)
        self.position = position


class DatalogError(ReproError):
    """Raised for semantically invalid datalog programs.

    Examples: unsafe rules, non-monadic intensional predicates where a
    monadic program is required, or evaluation over structures that lack a
    referenced extensional relation.
    """


class AutomatonError(ReproError):
    """Raised for ill-formed automata or invalid automaton operations."""


class QueryAutomatonError(ReproError):
    """Raised for ill-formed query automata (Definitions 4.8 / 4.12).

    Also raised when a run violates the determinism guarantees the paper
    assumes (e.g. the U/D partition is broken) or fails to terminate within
    the configured step budget.
    """


class MSOError(ReproError):
    """Raised for ill-formed MSO formulas or unsupported constructs."""


class TMNFError(ReproError):
    """Raised when the TMNF normalization pipeline receives input outside
    the signatures covered by Theorem 5.2."""


class ElogError(ReproError):
    """Raised for invalid Elog-/Elog-Delta programs (Definition 6.2)."""


class WrapError(ReproError):
    """Raised by the wrapping layer (output-tree construction, visual
    specification sessions)."""


class HTMLError(ReproError):
    """Raised by the HTML front end for irrecoverably malformed input."""


class ServeError(ReproError):
    """Raised by the wrapper-serving subsystem (:mod:`repro.serve`).

    Examples: unknown wrapper references, invalid registration payloads,
    or a corrupted registry cache entry."""


class ServerOverloaded(ServeError):
    """Raised when the serving queue is full (mapped to HTTP 503)."""


class RetryableServeError(ServeError):
    """A transient serving failure: safe to retry the same request.

    The server's retry loop treats exactly this family as retryable;
    everything else propagates to the client on the first attempt."""


class ShardCrashed(RetryableServeError):
    """A shard worker died (or lost its wrapper) under a request.

    The shard respawns and the wrapper re-installs on the next
    submission, so the request is retryable (mapped to HTTP 503 when
    retries are exhausted).

    ``blameless`` marks crashes that are *not attributable to the
    documents in the call* -- the worker broke before the pages ever
    reached it (a failed install, a pool already broken by an earlier
    request).  Blameless crashes are retried like any other but never
    earn quarantine strikes."""

    blameless = False


class WrapperNotResident(ShardCrashed):
    """The shard is alive but no longer holds the compiled wrapper.

    Happens after an LRU eviction or a respawn raced the submission;
    the retry re-installs.  Always blameless: the worker did not crash,
    so the document cannot be at fault."""

    blameless = True


class RequestTimeout(RetryableServeError):
    """A shard call exceeded the request's size-derived deadline.

    The hung worker is killed and respawned; retryable because the
    fresh worker usually finishes well inside the budget (mapped to
    HTTP 504 when retries are exhausted)."""


class PoisonDocument(ServeError):
    """The document is quarantined: it repeatedly crashed shard workers.

    Not retryable -- the same bytes will crash the next worker too
    (mapped to HTTP 422).  Inspect and release via ``/quarantine``."""

"""Elog-Delta: distance tolerances and order-negation conditions
(Theorem 6.6).

Elog-Delta extends Elog- with three *structural* condition predicates
(they read the tree only, never the derived patterns, so the evaluator
stays monotone):

* ``before_{pi, alpha%, beta%}(x0, x, y)``: ``x0`` has ``k`` children;
  ``x`` and ``y`` are children of ``x0``; ``y`` is reachable from ``x0``
  along path ``pi``; and ``y`` stands between ``k * alpha/100`` and
  ``k * beta/100`` positions to the right of ``x`` (the paper's distance
  tolerance, restricted as in the Theorem 6.6 program to sibling words);
* ``notafter_pi(x, y)``: ``y`` does not occur (in document order) after
  any node reachable from ``x`` along ``pi``;
* ``notbefore_pi(x, y)``: ``y`` does not occur before any such node.

With these, the three-rule program of Theorem 6.6 recognizes the root of
``r(a^n b^m)`` exactly when ``n = m >= 1`` -- a non-regular condition, so
Elog-Delta is *strictly* more expressive than MSO over trees.  The
accompanying non-regularity demonstration lives in
``repro.automata.nfa.distinguishable_prefixes``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, List, Optional, Set, Tuple

from repro.datalog.engine import EvaluationResult, evaluate
from repro.datalog.program import Program, Rule, fresh_variable_factory
from repro.datalog.terms import Atom, Variable
from repro.elog.paths import Path, match_path, path_to_text
from repro.elog.syntax import Condition, ElogRule, PatternRef, ROOT_PATTERN
from repro.elog.translate import elog_rule_to_datalog
from repro.errors import ElogError
from repro.structures import Fact
from repro.trees.unranked import UnrankedStructure


@dataclass(frozen=True)
class DeltaCondition:
    """An Elog-Delta condition atom.

    ``pred`` is ``"before"``, ``"notafter"`` or ``"notbefore"``; ``args``
    are variable names (three for ``before``, two otherwise); ``path`` is
    the label path; ``low`` / ``high`` are the percentage tolerances (for
    ``before`` only).
    """

    pred: str
    args: Tuple[str, ...]
    path: Path
    low: int = 0
    high: int = 100

    def relation_name(self) -> str:
        """The reserved extensional relation name backing this condition."""
        path_text = path_to_text(self.path)
        if self.pred == "before":
            return f"before[{path_text}][{self.low}][{self.high}]"
        return f"{self.pred}[{path_text}]"

    def __str__(self) -> str:
        if self.pred == "before":
            return (
                f"before({self.args[0]}, '{path_to_text(self.path)}', "
                f"{self.low}%-{self.high}%, {self.args[1]}, {self.args[2]})"
            )
        return f"{self.pred}({self.args[0]}, '{path_to_text(self.path)}', {self.args[1]})"


@dataclass
class ElogDeltaRule:
    """An Elog- rule extended with :class:`DeltaCondition` atoms."""

    base: ElogRule
    delta_conditions: List[DeltaCondition]

    def __str__(self) -> str:
        base_text = str(self.base)[:-1]  # strip the trailing dot
        extra = ", ".join(str(c) for c in self.delta_conditions)
        return f"{base_text}, {extra}." if extra else f"{base_text}."


class ElogDeltaProgram:
    """A program of Elog-Delta rules with a distinguished query pattern."""

    def __init__(self, rules: List[ElogDeltaRule], query: Optional[str] = None):
        self.rules = list(rules)
        self.query = query

    def __iter__(self):
        return iter(self.rules)

    def __len__(self) -> int:
        return len(self.rules)

    def __str__(self) -> str:
        return "\n".join(str(rule) for rule in self.rules)


class _DeltaStructure(UnrankedStructure):
    """An :class:`UnrankedStructure` that also materializes the reserved
    ``before[...]`` / ``notafter[...]`` / ``notbefore[...]`` relations."""

    def arity(self, name: str) -> int:
        if name.startswith("before["):
            return 3
        if name.startswith(("notafter[", "notbefore[")):
            return 2
        return super().arity(name)

    def _compute(self, name: str) -> Set[Fact]:
        if name.startswith(("before[", "notafter[", "notbefore[")):
            return self._compute_delta(name)
        return super()._compute(name)

    def _parse_brackets(self, name: str) -> List[str]:
        inner = name[name.index("[") :]
        parts: List[str] = []
        while inner:
            if not inner.startswith("["):
                raise ElogError(f"malformed delta relation name {name!r}")
            end = inner.index("]")
            parts.append(inner[1:end])
            inner = inner[end + 1 :]
        return parts

    def _compute_delta(self, name: str) -> Set[Fact]:
        from repro.elog.paths import parse_path

        parts = self._parse_brackets(name)
        path = parse_path(parts[0])
        out: Set[Fact] = set()
        if name.startswith("before["):
            low, high = int(parts[1]), int(parts[2])
            for x0 in self.domain:
                node = self.node(x0)
                k = len(node.children)
                if k == 0:
                    continue
                reachable = {id(n) for n in match_path(node, path)}
                positions = {id(c): i for i, c in enumerate(node.children)}
                for xi, xc in enumerate(node.children):
                    for yi, yc in enumerate(node.children):
                        if id(yc) not in reachable:
                            continue
                        distance = yi - xi
                        if distance <= 0:
                            continue
                        if k * low / 100 <= distance <= k * high / 100:
                            out.add((x0, self.ident(xc), self.ident(yc)))
            return out
        # notafter / notbefore: y must not come after/before any node
        # reachable from x along the path (document order = identifier
        # order).
        after = name.startswith("notafter[")
        for x in self.domain:
            reachable = [self.ident(n) for n in match_path(self.node(x), path)]
            for y in self.domain:
                if after and any(y > r for r in reachable):
                    continue
                if not after and any(y < r for r in reachable):
                    continue
                out.add((x, y))
        return out


def delta_rule_to_datalog(rule: ElogDeltaRule, fresh) -> Rule:
    """Expand an Elog-Delta rule to datalog over the extended signature."""
    base = elog_rule_to_datalog(rule.base, fresh)
    extra = [
        Atom(c.relation_name(), tuple(Variable(a) for a in c.args))
        for c in rule.delta_conditions
    ]
    return Rule(base.head, list(base.body) + extra)


def delta_to_datalog(program: ElogDeltaProgram) -> Program:
    """Translate a whole Elog-Delta program."""
    fresh = fresh_variable_factory("z")
    rules = [delta_rule_to_datalog(rule, fresh) for rule in program.rules]
    declared = {rule.base.head for rule in program.rules}
    return Program(rules, query=program.query, declared=declared)


def evaluate_elog_delta(
    program: ElogDeltaProgram, tree, method: str = "auto"
) -> EvaluationResult:
    """Evaluate an Elog-Delta program on a tree (root :class:`Node`).

    Funnels through the compiled engine
    (:mod:`repro.datalog.plan`) with the same strategy auto-selection as
    every other entry point (the reserved ``before[...]`` /
    ``notafter[...]`` / ``notbefore[...]`` relations put these programs
    outside the kernel fragment, so auto falls through to the
    grounding/semi-naive strategies); pass ``method`` to force one.
    Callers with many trees can compile ``delta_to_datalog(program)``
    once with :func:`repro.datalog.plan.compile_program` and run the
    plan per document, rebuilding only the per-tree ``_DeltaStructure``.
    """
    structure = _DeltaStructure(tree)
    return evaluate(delta_to_datalog(program), structure, method=method)


def anbn_program() -> ElogDeltaProgram:
    """The Theorem 6.6 program: ``anbn(root)`` iff the root's children
    spell ``a^n b^n`` (``n >= 1``).

    ::

        a0(x)   <- root(x0), subelem_a(x0, x), notafter_a(x0, x).
        b0(x)   <- root(x0), subelem_b(x0, x), notafter_b(x0, x),
                   notbefore_a(x0, x).
        anbn(x) <- root(x), contains_a(x, y), a0(y),
                   before_{b,50%-50%}(x, y, z), b0(z).
    """
    a0 = ElogDeltaRule(
        ElogRule(
            head="a0",
            head_var="x",
            parent=ROOT_PATTERN,
            parent_var="x0",
            path=("a",),
        ),
        [DeltaCondition("notafter", ("x0", "x"), ("a",))],
    )
    b0 = ElogDeltaRule(
        ElogRule(
            head="b0",
            head_var="x",
            parent=ROOT_PATTERN,
            parent_var="x0",
            path=("b",),
        ),
        [
            DeltaCondition("notafter", ("x0", "x"), ("b",)),
            DeltaCondition("notbefore", ("x0", "x"), ("a",)),
        ],
    )
    anbn = ElogDeltaRule(
        ElogRule(
            head="anbn",
            head_var="x",
            parent=ROOT_PATTERN,
            parent_var="x",
            conditions=[Condition("contains", ("x", "y"), ("a",))],
            refs=[PatternRef("a0", "y")],
        ),
        [DeltaCondition("before", ("x", "y", "z"), ("b",), 50, 50)],
    )
    # The z variable carries the b0 reference; attach it to the base rule.
    anbn.base.refs.append(PatternRef("b0", "z"))
    return ElogDeltaProgram([a0, b0, anbn], query="anbn")

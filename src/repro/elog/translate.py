"""Elog- to monadic datalog over ``tau_ur u {child}`` (Theorem 6.5, easy
direction): expand every ``subelem`` / ``contains`` shortcut per
Definition 6.1 and keep everything else verbatim.

:func:`evaluate_elog` evaluates an Elog- wrapper either through the
semi-naive engine directly, or -- demonstrating the paper's full
tool-chain (Corollary 6.4) -- by first normalizing the translation into
TMNF over pure ``tau_ur`` (Theorem 5.2) and then running the linear-time
Theorem 4.2 engine.
"""

from __future__ import annotations

from typing import Dict, List, Set, Tuple

from repro.datalog.engine import CompiledProgram, EvaluationResult, compile_program
from repro.datalog.program import Program, Rule, fresh_variable_factory
from repro.datalog.terms import Atom, Variable
from repro.elog.paths import expand_contains, expand_subelem
from repro.elog.syntax import ElogProgram, ElogRule, ROOT_PATTERN
from repro.errors import ElogError
from repro.structures import Structure


def elog_rule_to_datalog(rule: ElogRule, fresh) -> Rule:
    """Expand one Elog- rule into a datalog rule over ``tau_ur u {child}``."""
    body: List[Atom] = []
    head_var = Variable(rule.head_var)
    parent_var = Variable(rule.parent_var)

    if rule.parent == ROOT_PATTERN:
        body.append(Atom("root", (parent_var,)))
    else:
        body.append(Atom(rule.parent, (parent_var,)))

    if rule.path:
        atoms, _ = expand_subelem(rule.path, parent_var, head_var, fresh)
        body.extend(atoms)

    for condition in rule.conditions:
        if condition.pred == "contains":
            source, target = (Variable(a) for a in condition.args)
            atoms, _ = expand_contains(condition.path or (), source, target, fresh)
            body.extend(atoms)
        else:
            body.append(
                Atom(condition.pred, tuple(Variable(a) for a in condition.args))
            )

    for ref in rule.refs:
        body.append(Atom(ref.pattern, (Variable(ref.var),)))

    return Rule(Atom(rule.head, (head_var,)), body)


def elog_to_datalog(program: ElogProgram) -> Program:
    """Translate a whole Elog- program (Theorem 6.5, Elog- -> datalog)."""
    fresh = fresh_variable_factory("z")
    rules = [elog_rule_to_datalog(rule, fresh) for rule in program.rules]
    declared: Set[str] = set(program.patterns())
    return Program(rules, query=program.query, declared=declared)


def compile_elog(
    program: ElogProgram, method: str = "auto"
) -> Tuple[CompiledProgram, str]:
    """Compile an Elog- wrapper once into an executable datalog plan.

    Returns ``(compiled, run_method)``: the plan plus the datalog engine
    method to evaluate it with.  ``method="auto"`` (default) lets the
    engine pick the fastest applicable strategy -- for Elog- translations
    over tree documents that is the linear-time propagation kernel
    (:mod:`repro.datalog.kernel`), realizing Corollary 6.4 directly.
    ``method="kernel"`` demands the kernel (raising if it cannot apply);
    ``method="tmnf"`` bakes in the paper's original chain (Theorem 5.2
    normalization at compile time, the Theorem 4.2 grounding engine at run
    time); ``"seminaive"`` / ``"naive"`` compile the ``tau_ur u {child}``
    translation for the general engine.  The plan is reusable across
    documents::

        compiled, run_method = compile_elog(program)
        for tree in documents:
            result = compiled.run(UnrankedStructure(tree), method=run_method)
    """
    datalog = elog_to_datalog(program)
    if method == "tmnf":
        from repro.tmnf.pipeline import to_tmnf

        return compile_program(to_tmnf(datalog).program), "ground"
    if method not in ("auto", "kernel", "seminaive", "naive"):
        raise ElogError(f"unknown Elog evaluation method {method!r}")
    return compile_program(datalog), method


def evaluate_elog(
    program: ElogProgram,
    structure: Structure,
    method: str = "auto",
) -> EvaluationResult:
    """Evaluate an Elog- wrapper over a tree structure (compile + run).

    ``method="auto"`` (default) routes tree workloads through the
    linear-time propagation kernel, falling back to the general engine
    otherwise.  ``method="seminaive"`` evaluates the ``tau_ur u {child}``
    translation with the compiled join plans.  ``method="tmnf"``
    demonstrates Corollary 6.4's bound through the paper's original chain:
    normalize through Theorem 5.2 and evaluate with the Theorem 4.2
    grounding engine.  Callers with many documents should use
    :func:`compile_elog` once and run the plan per document.
    """
    compiled, run_method = compile_elog(program, method)
    return compiled.run(structure, method=run_method)

"""Textual syntax for Elog- programs.

Grammar (one rule per ``.``; ``%`` comments)::

    rule ::= pattern "(" var ")" "<-" body "."
    body ::= parent_atom ("," atom)*
    parent_atom ::= pattern "(" var ")"
                  | pattern "(" var ")" followed by a subelem atom
    atom ::= "subelem" "(" var "," path "," var ")"
           | "contains" "(" var "," path "," var ")"
           | "leaf" "(" var ")" | "firstsibling" "(" var ")"
           | "lastsibling" "(" var ")"
           | "nextsibling" "(" var "," var ")"
           | pattern "(" var ")"                       (pattern reference)
    path ::= "'" label ("." label)* "'" | "''"         (labels or "_")

Example::

    item(x)  <- record(x0), subelem(x0, 'tr', x), contains(x, 'td', y),
                price(y).
    price(y) <- root(z), subelem(z, '_.td', y), lastsibling(y).

>>> p = parse_elog("a0(x) <- root(x0), subelem(x0, 'a', x).")
>>> len(p.rules)
1
"""

from __future__ import annotations

from typing import List, Optional

from repro.elog.paths import parse_path
from repro.elog.syntax import (
    CONDITION_PREDICATES,
    Condition,
    ElogProgram,
    ElogRule,
    PatternRef,
)
from repro.errors import ElogError, ParseError

_IDENT = set("abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ0123456789_")


class _Reader:
    def __init__(self, text: str):
        self.text = text
        self.pos = 0

    def error(self, message: str) -> ParseError:
        return ParseError(message, position=self.pos)

    def skip(self) -> None:
        while self.pos < len(self.text):
            c = self.text[self.pos]
            if c.isspace():
                self.pos += 1
            elif c == "%":
                while self.pos < len(self.text) and self.text[self.pos] != "\n":
                    self.pos += 1
            else:
                break

    def at_end(self) -> bool:
        self.skip()
        return self.pos >= len(self.text)

    def peek(self) -> str:
        self.skip()
        return self.text[self.pos] if self.pos < len(self.text) else ""

    def expect(self, literal: str) -> None:
        self.skip()
        if not self.text.startswith(literal, self.pos):
            raise self.error(f"expected {literal!r}")
        self.pos += len(literal)

    def try_consume(self, literal: str) -> bool:
        self.skip()
        if self.text.startswith(literal, self.pos):
            self.pos += len(literal)
            return True
        return False

    def identifier(self) -> str:
        self.skip()
        start = self.pos
        while self.pos < len(self.text) and self.text[self.pos] in _IDENT:
            self.pos += 1
        if self.pos == start:
            raise self.error("expected an identifier")
        return self.text[start : self.pos]

    def quoted_path(self) -> str:
        self.skip()
        if self.peek() != "'":
            raise self.error("expected a quoted path")
        self.pos += 1
        start = self.pos
        while self.pos < len(self.text) and self.text[self.pos] != "'":
            self.pos += 1
        if self.pos >= len(self.text):
            raise self.error("unterminated path literal")
        out = self.text[start : self.pos]
        self.pos += 1
        return out


def _parse_rule(r: _Reader) -> ElogRule:
    head = r.identifier()
    r.expect("(")
    head_var = r.identifier()
    r.expect(")")
    r.expect("<-")

    parent = r.identifier()
    r.expect("(")
    parent_var = r.identifier()
    r.expect(")")

    path = ()
    conditions: List[Condition] = []
    refs: List[PatternRef] = []
    subelem_seen = False

    while r.try_consume(","):
        name = r.identifier()
        if name == "subelem":
            if subelem_seen:
                raise r.error("at most one subelem atom per rule")
            r.expect("(")
            source = r.identifier()
            r.expect(",")
            path_text = r.quoted_path()
            r.expect(",")
            target = r.identifier()
            r.expect(")")
            if source != parent_var or target != head_var:
                raise r.error(
                    "subelem must run from the parent variable to the head variable"
                )
            path = parse_path(path_text)
            subelem_seen = True
        elif name == "contains":
            r.expect("(")
            source = r.identifier()
            r.expect(",")
            path_text = r.quoted_path()
            r.expect(",")
            target = r.identifier()
            r.expect(")")
            conditions.append(
                Condition("contains", (source, target), parse_path(path_text))
            )
        elif name in CONDITION_PREDICATES:
            r.expect("(")
            args = [r.identifier()]
            while r.try_consume(","):
                args.append(r.identifier())
            r.expect(")")
            expected = 2 if name == "nextsibling" else 1
            if len(args) != expected:
                raise r.error(f"{name} takes {expected} argument(s)")
            conditions.append(Condition(name, tuple(args)))
        else:
            r.expect("(")
            variable = r.identifier()
            r.expect(")")
            refs.append(PatternRef(name, variable))
    r.expect(".")

    if not path and head_var != parent_var:
        raise ParseError(
            "specialization rules must reuse the parent variable "
            f"({head_var!r} vs {parent_var!r})"
        )
    return ElogRule(
        head=head,
        head_var=head_var,
        parent=parent,
        parent_var=parent_var,
        path=path,
        conditions=conditions,
        refs=refs,
    )


def parse_elog(text: str, query: Optional[str] = None) -> ElogProgram:
    """Parse an Elog- program (see module docstring)."""
    reader = _Reader(text)
    rules: List[ElogRule] = []
    while not reader.at_end():
        rules.append(_parse_rule(reader))
    return ElogProgram(rules, query=query)

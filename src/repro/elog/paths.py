"""The path language of Definition 6.1.

Paths are words over ``Sigma u {_}``; ``_`` is a wildcard matching any
label.  ``subelem_pi(x, y)`` holds when ``y`` is reached from ``x`` by a
chain of ``child`` steps whose labels spell ``pi`` (the empty path makes
``x = y``); ``contains_pi`` is the same with nonempty paths only.

Paths are written ``a.b._.c`` in the textual syntax.
"""

from __future__ import annotations

from typing import List, Tuple

from repro.datalog.program import fresh_variable_factory
from repro.datalog.terms import Atom, Variable
from repro.errors import ElogError

WILDCARD = "_"

Path = Tuple[str, ...]


def parse_path(text: str) -> Path:
    """Parse ``"a.b._"`` into ``("a", "b", "_")`` (empty string -> ())."""
    text = text.strip()
    if not text:
        return ()
    parts = [p.strip() for p in text.split(".")]
    if any(not p for p in parts):
        raise ElogError(f"malformed path {text!r}")
    return tuple(parts)


def path_to_text(path: Path) -> str:
    """Inverse of :func:`parse_path`."""
    return ".".join(path)


def expand_subelem(
    path: Path, x: Variable, y: Variable, fresh
) -> Tuple[List[Atom], Variable]:
    """Expand ``subelem_path(x, y)`` into ``child``/``label`` atoms.

    Returns ``(atoms, end_variable)``; for the empty path the atom list is
    empty and the end variable is ``x`` itself (the ``x = y`` case of
    Definition 6.1 -- the caller substitutes ``y := x``).

    >>> from repro.datalog.program import fresh_variable_factory
    >>> from repro.datalog.terms import Variable
    >>> atoms, end = expand_subelem(("a", "_"), Variable("x"), Variable("y"),
    ...                             fresh_variable_factory())
    >>> [str(a) for a in atoms]
    ['child(x, z_0)', 'label_a(z_0)', 'child(z_0, y)']
    """
    if not path:
        return [], x
    atoms: List[Atom] = []
    current = x
    for i, symbol in enumerate(path):
        target = y if i == len(path) - 1 else fresh()
        atoms.append(Atom("child", (current, target)))
        if symbol != WILDCARD:
            atoms.append(Atom(f"label_{symbol}", (target,)))
        current = target
    return atoms, y


def expand_contains(
    path: Path, x: Variable, y: Variable, fresh
) -> Tuple[List[Atom], Variable]:
    """Expand ``contains_path(x, y)``; empty paths are rejected
    (Definition 6.2)."""
    if not path:
        raise ElogError("contains requires a nonempty path")
    return expand_subelem(path, x, y, fresh)


def match_path(node, path: Path) -> List:
    """All descendants of ``node`` reachable along ``path`` (tree-level
    semantics, used by the Elog-Delta evaluator and the visual builder)."""
    frontier = [node]
    for symbol in path:
        next_frontier = []
        for current in frontier:
            for child in current.children:
                if symbol == WILDCARD or child.label == symbol:
                    next_frontier.append(child)
        frontier = next_frontier
    return frontier

"""TMNF monadic datalog to Elog- (Theorem 6.5, interesting direction).

Every TMNF rule maps to an Elog- rule following the proof of Theorem 6.5:

* ``p(x) <- p0(x).``                    -- specialization rule;
* ``p(x) <- label_a(x).``               -- ``p(x) <- dom(x0),
  subelem_a(x0, x).`` with the recursive auxiliary ``dom`` pattern;
* ``p(x) <- p0(x0), nextsibling(x0, x).`` (either direction) --
  specialization on ``dom`` with a ``nextsibling`` condition and a pattern
  reference;
* ``p(x) <- p0(x0), firstchild(x0, x).`` -- ``subelem`` with the wildcard
  path plus a ``firstsibling`` condition;
* ``p(x) <- p0(y), firstchild(x, y).``  -- upward inference through
  ``contains`` + ``firstsibling`` (the proof's last case).

Known caveat (documented in DESIGN.md): Definition 6.1's ``subelem`` walks
*child* edges, so the auxiliary label patterns cannot test the root node's
own label; the paper's construction shares this property.  The equivalence
tests therefore run on trees whose root label is not queried (e.g. a
dedicated document-root label), which is also the realistic wrapping
scenario.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set

from repro.datalog.program import Program, Rule
from repro.datalog.terms import Atom, Variable
from repro.elog.syntax import Condition, ElogProgram, ElogRule, PatternRef, ROOT_PATTERN
from repro.errors import ElogError
from repro.tmnf.forms import check_tmnf_rule

#: The auxiliary any-node pattern of the proof of Theorem 6.5.
DOM_PATTERN = "dom_pattern"


def _dom_rules() -> List[ElogRule]:
    """The recursive two-rule program defining the ``dom`` pattern."""
    return [
        ElogRule(
            head=DOM_PATTERN,
            head_var="x",
            parent=ROOT_PATTERN,
            parent_var="x",
        ),
        ElogRule(
            head=DOM_PATTERN,
            head_var="x",
            parent=DOM_PATTERN,
            parent_var="x0",
            path=("_",),
        ),
    ]


def datalog_to_elog(program: Program, root_label: Optional[str] = None) -> ElogProgram:
    """Translate a TMNF program over ``tau_ur`` into an equivalent Elog-
    program (Theorem 6.5).

    ``root_label`` repairs the proof's gap at the root: ``subelem`` walks
    *child* edges, so the auxiliary label patterns cannot observe the root
    node's own label.  Real documents have a fixed root label (``html`` /
    ``document``); passing it makes the translation exact on that document
    class (the label pattern for ``root_label`` gains the rule
    ``lbl(x) <- root(x)``).  Without it, equivalence holds on all nodes of
    trees whose root label plays no role in the query.
    """
    for rule in program.rules:
        reason = check_tmnf_rule(rule)
        if reason is not None:
            raise ElogError(f"input must be in TMNF: {reason}")

    out: List[ElogRule] = list(_dom_rules())
    label_patterns: Dict[str, str] = {}

    def label_pattern(label: str) -> str:
        """Auxiliary pattern matching nodes labeled ``label``."""
        if label not in label_patterns:
            name = f"lbl_{label}"
            label_patterns[label] = name
            out.append(
                ElogRule(
                    head=name,
                    head_var="x",
                    parent=DOM_PATTERN,
                    parent_var="x0",
                    path=(label,),
                )
            )
            if root_label == label:
                out.append(
                    ElogRule(
                        head=name,
                        head_var="x",
                        parent=ROOT_PATTERN,
                        parent_var="x",
                    )
                )
        return label_patterns[label]

    intensional = program.intensional_predicates()

    def unary_to_parts(pred: str, var: str):
        """Classify a unary predicate as parent pattern, condition or ref."""
        if pred in intensional:
            return ("ref", PatternRef(pred, var))
        if pred == "root":
            return ("root", None)
        if pred == "dom":
            return ("dom", None)
        if pred.startswith("label_"):
            return ("ref", PatternRef(label_pattern(pred[len("label_") :]), var))
        if pred in ("leaf", "firstsibling", "lastsibling"):
            return ("cond", Condition(pred, (var,)))
        raise ElogError(f"unary predicate {pred!r} outside tau_ur")

    for rule in program.rules:
        head = rule.head.pred
        x = rule.head.args[0]
        assert isinstance(x, Variable)
        unary = [a for a in rule.body if a.arity == 1]
        binary = [a for a in rule.body if a.arity == 2]

        if not binary:
            # Forms (1) and (3): specialization on dom with refs/conditions.
            conditions: List[Condition] = []
            refs: List[PatternRef] = []
            parent = DOM_PATTERN
            for atom in unary:
                kind, payload = unary_to_parts(atom.pred, x.name)
                if kind == "ref":
                    refs.append(payload)
                elif kind == "cond":
                    conditions.append(payload)
                elif kind == "root":
                    parent = ROOT_PATTERN
                # "dom" contributes nothing beyond the dom parent.
            out.append(
                ElogRule(
                    head=head,
                    head_var=x.name,
                    parent=parent,
                    parent_var=x.name,
                    conditions=conditions,
                    refs=refs,
                )
            )
            continue

        # Form (2): p(x) <- p0(x0), B(x0, x) with B in {firstchild,
        # nextsibling} possibly inverted.
        batom = binary[0]
        uatom = unary[0]
        x0 = uatom.args[0]
        assert isinstance(x0, Variable)
        kind, payload = unary_to_parts(uatom.pred, x0.name)
        refs = [payload] if kind == "ref" else []
        conditions = [payload] if kind == "cond" else []

        if batom.pred == "nextsibling":
            if kind == "root":
                continue  # the root has no siblings: unsatisfiable
            # Both directions become dom-specializations with a
            # nextsibling condition plus the p0 reference.
            a, b = (t.name for t in batom.args)
            out.append(
                ElogRule(
                    head=head,
                    head_var=x.name,
                    parent=DOM_PATTERN,
                    parent_var=x.name,
                    conditions=[Condition("nextsibling", (a, b))] + conditions,
                    refs=refs,
                )
            )
            continue

        if batom.pred == "firstchild":
            if batom.args == (x0, x):
                # Downward: subelem with the wildcard path + firstsibling.
                if kind == "ref":
                    out.append(
                        ElogRule(
                            head=head,
                            head_var=x.name,
                            parent=payload.pattern,
                            parent_var=x0.name,
                            path=("_",),
                            conditions=[Condition("firstsibling", (x.name,))],
                        )
                    )
                elif kind == "root":
                    out.append(
                        ElogRule(
                            head=head,
                            head_var=x.name,
                            parent=ROOT_PATTERN,
                            parent_var=x0.name,
                            path=("_",),
                            conditions=[Condition("firstsibling", (x.name,))],
                        )
                    )
                elif kind == "cond" and payload.pred == "leaf":
                    continue  # a leaf has no first child: unsatisfiable
                else:
                    out.append(
                        ElogRule(
                            head=head,
                            head_var=x.name,
                            parent=DOM_PATTERN,
                            parent_var=x0.name,
                            path=("_",),
                            conditions=[Condition("firstsibling", (x.name,))]
                            + conditions,
                            refs=refs,
                        )
                    )
            else:
                if kind == "root":
                    continue  # the root is nobody's first child
                # Upward: p(x) <- dom(x), contains_(x, y), firstsibling(y),
                # p0(y)  -- the proof's last case.
                out.append(
                    ElogRule(
                        head=head,
                        head_var=x.name,
                        parent=DOM_PATTERN,
                        parent_var=x.name,
                        conditions=[
                            Condition("contains", (x.name, x0.name), ("_",)),
                            Condition("firstsibling", (x0.name,)),
                        ]
                        + conditions,
                        refs=refs,
                    )
                )
            continue

        raise ElogError(f"binary relation {batom.pred!r} outside tau_ur")

    # Drop rules that mention patterns with no defining rule (e.g. declared
    # but underivable automaton states): they can never fire, and
    # Definition 6.2 requires referenced patterns to be defined.
    while True:
        defined = {rule.head for rule in out}
        kept = [
            rule
            for rule in out
            if (rule.parent == ROOT_PATTERN or rule.parent in defined)
            and all(r.pattern in defined for r in rule.refs)
        ]
        if len(kept) == len(out):
            break
        out = kept

    query = program.query if any(r.head == program.query for r in out) else None
    return ElogProgram(out, query=query)

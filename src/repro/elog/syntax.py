"""Elog- rules and programs (Definition 6.2).

An Elog- rule has the shape::

    p(x) <- p0(x0), subelem_pi(x0, x), C, R.

where ``p`` is a pattern predicate, ``p0`` a pattern predicate or
``root``, ``C`` a set of condition atoms over
``leaf / firstsibling / nextsibling / lastsibling / contains_pi``, and
``R`` a set of pattern references.  The rule's query graph must be
connected.  Rules with the empty path are *specialization rules*
``p(x) <- p0(x), C, R``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Set, Tuple

from repro.elog.paths import Path, path_to_text
from repro.errors import ElogError

#: Condition predicates of Definition 6.2 (``contains`` handled separately).
CONDITION_PREDICATES = ("leaf", "firstsibling", "nextsibling", "lastsibling")

#: The reserved parent pattern naming the document root.
ROOT_PATTERN = "root"


@dataclass(frozen=True)
class Condition:
    """A condition atom: structural predicate or ``contains_path``.

    ``pred`` is one of :data:`CONDITION_PREDICATES` or ``"contains"``;
    ``args`` are variable names; ``path`` is set for ``contains`` only.
    """

    pred: str
    args: Tuple[str, ...]
    path: Optional[Path] = None

    def __str__(self) -> str:
        if self.pred == "contains":
            return f"contains({self.args[0]}, '{path_to_text(self.path or ())}', {self.args[1]})"
        return f"{self.pred}({', '.join(self.args)})"


@dataclass(frozen=True)
class PatternRef:
    """A pattern reference atom ``p(v)``."""

    pattern: str
    var: str

    def __str__(self) -> str:
        return f"{self.pattern}({self.var})"


@dataclass
class ElogRule:
    """One Elog- rule (see module docstring).

    ``path`` is the ``subelem`` path; ``()`` makes this a specialization
    rule (head variable equals parent variable).
    """

    head: str
    head_var: str
    parent: str
    parent_var: str
    path: Path = ()
    conditions: List[Condition] = field(default_factory=list)
    refs: List[PatternRef] = field(default_factory=list)

    def __post_init__(self):
        if self.head == ROOT_PATTERN:
            raise ElogError("'root' cannot be a head pattern")
        if not self.path and self.head_var != self.parent_var:
            # Normalize specialization rules to share one variable.
            raise ElogError(
                "specialization rules use the same variable for head and parent"
            )
        self._check_connected()

    def variables(self) -> Set[str]:
        """All variable names of the rule."""
        out = {self.head_var, self.parent_var}
        for condition in self.conditions:
            out.update(condition.args)
        for ref in self.refs:
            out.add(ref.var)
        return out

    def _check_connected(self) -> None:
        """Definition 6.2 requires a connected query graph."""
        edges: List[Tuple[str, str]] = []
        if self.path:
            edges.append((self.parent_var, self.head_var))
        for condition in self.conditions:
            if len(condition.args) == 2:
                edges.append((condition.args[0], condition.args[1]))
        variables = self.variables()
        adjacency = {v: set() for v in variables}
        for a, b in edges:
            adjacency[a].add(b)
            adjacency[b].add(a)
        seen = {self.head_var}
        stack = [self.head_var]
        while stack:
            v = stack.pop()
            for w in adjacency[v]:
                if w not in seen:
                    seen.add(w)
                    stack.append(w)
        if seen != variables:
            raise ElogError(
                f"rule query graph not connected; unreachable variables "
                f"{sorted(variables - seen)} in {self}"
            )

    def is_specialization(self) -> bool:
        """Whether this is a specialization rule (empty path)."""
        return not self.path

    def __str__(self) -> str:
        parts = [f"{self.parent}({self.parent_var})"]
        if self.path:
            parts.append(
                f"subelem({self.parent_var}, '{path_to_text(self.path)}', {self.head_var})"
            )
        parts.extend(str(c) for c in self.conditions)
        parts.extend(str(r) for r in self.refs)
        return f"{self.head}({self.head_var}) <- {', '.join(parts)}."


class ElogProgram:
    """A set of Elog- rules with optional distinguished query patterns."""

    def __init__(self, rules: List[ElogRule], query: Optional[str] = None):
        self.rules = list(rules)
        self.query = query
        patterns = self.patterns()
        for rule in rules:
            if rule.parent != ROOT_PATTERN and rule.parent not in patterns:
                raise ElogError(
                    f"parent pattern {rule.parent!r} is never defined"
                )
            for ref in rule.refs:
                if ref.pattern not in patterns and ref.pattern != ROOT_PATTERN:
                    raise ElogError(
                        f"referenced pattern {ref.pattern!r} is never defined"
                    )

    def patterns(self) -> Set[str]:
        """All defined pattern predicates."""
        return {rule.head for rule in self.rules}

    def __iter__(self):
        return iter(self.rules)

    def __len__(self) -> int:
        return len(self.rules)

    def __str__(self) -> str:
        return "\n".join(str(rule) for rule in self.rules)

"""Elog- and Elog-Delta: the Lixto core wrapping languages (Section 6).

* :mod:`repro.elog.paths` -- the path language ``Pi = (Sigma u {_})*`` and
  the ``subelem`` / ``contains`` expansions of Definition 6.1;
* :mod:`repro.elog.syntax` -- Elog- rules and programs (Definition 6.2);
* :mod:`repro.elog.parser` -- a textual syntax;
* :mod:`repro.elog.translate` -- Elog- to monadic datalog over
  ``tau_ur u {child}`` (one half of Theorem 6.5);
* :mod:`repro.elog.from_datalog` -- TMNF monadic datalog to Elog- (the
  other half of Theorem 6.5);
* :mod:`repro.elog.delta` -- Elog-Delta: distance-tolerance ``before`` and
  ``notbefore`` / ``notafter`` conditions, with the a^n b^n program of
  Theorem 6.6 and its evaluator.
"""

from repro.elog.paths import expand_contains, expand_subelem, parse_path
from repro.elog.syntax import Condition, ElogProgram, ElogRule, PatternRef
from repro.elog.parser import parse_elog
from repro.elog.translate import compile_elog, elog_to_datalog, evaluate_elog
from repro.elog.from_datalog import datalog_to_elog
from repro.elog.delta import (
    DeltaCondition,
    ElogDeltaProgram,
    anbn_program,
    evaluate_elog_delta,
)

__all__ = [
    "parse_path",
    "expand_subelem",
    "expand_contains",
    "ElogRule",
    "ElogProgram",
    "Condition",
    "PatternRef",
    "parse_elog",
    "compile_elog",
    "elog_to_datalog",
    "evaluate_elog",
    "datalog_to_elog",
    "DeltaCondition",
    "ElogDeltaProgram",
    "anbn_program",
    "evaluate_elog_delta",
]

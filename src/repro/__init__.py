"""repro -- Monadic Datalog and the Expressive Power of Languages for Web
Information Extraction (Gottlob & Koch, PODS 2002), reproduced in Python.

The library implements, from scratch:

* ordered labeled trees and the relational schemata ``tau_rk`` / ``tau_ur``
  (:mod:`repro.trees`);
* monadic datalog with the paper's linear-time evaluation
  (:mod:`repro.datalog`);
* MSO over trees, compiled through bottom-up tree automata to monadic
  datalog -- Theorem 4.4 made constructive (:mod:`repro.mso`,
  :mod:`repro.automata`);
* ranked and unranked query automata with their translations to monadic
  datalog -- Theorems 4.11 / 4.14 (:mod:`repro.qa`);
* caterpillar expressions and document order (:mod:`repro.caterpillar`);
* the TMNF normal form pipeline -- Theorem 5.2 (:mod:`repro.tmnf`);
* the Elog- and Elog-Delta wrapping languages -- Section 6 (:mod:`repro.elog`);
* a wrapping layer with output-tree construction and a visual-specification
  simulator (:mod:`repro.wrap`);
* a permissive HTML parser front end (:mod:`repro.html`) and synthetic
  Web-page workloads (:mod:`repro.workloads`).

Quickstart
----------
>>> from repro import parse_sexpr, UnrankedStructure, evaluate
>>> from repro.paper import even_a_program
>>> tree = parse_sexpr("a(a, a, a)")
>>> result = evaluate(even_a_program(), UnrankedStructure(tree))
>>> result.query_result()   # the root has 4 'a' nodes below it -> even
{0}
"""

from repro.errors import (
    AutomatonError,
    DatalogError,
    ElogError,
    HTMLError,
    MSOError,
    ParseError,
    QueryAutomatonError,
    ReproError,
    TMNFError,
    TreeError,
    WrapError,
)
from repro.structures import GenericStructure, IndexedStructure, Structure, as_indexed
from repro.trees import (
    Node,
    RankedAlphabet,
    RankedStructure,
    UnrankedStructure,
    parse_sexpr,
    to_sexpr,
)
from repro.datalog import (
    Atom,
    CompiledProgram,
    Constant,
    Program,
    Rule,
    Variable,
    compile_program,
    evaluate,
    naive_fixpoint_trace,
    parse_program,
    parse_rule,
)

__version__ = "1.0.0"

__all__ = [
    "__version__",
    # errors
    "ReproError",
    "TreeError",
    "ParseError",
    "DatalogError",
    "AutomatonError",
    "QueryAutomatonError",
    "MSOError",
    "TMNFError",
    "ElogError",
    "WrapError",
    "HTMLError",
    # structures
    "Structure",
    "GenericStructure",
    "IndexedStructure",
    "as_indexed",
    # trees
    "Node",
    "parse_sexpr",
    "to_sexpr",
    "UnrankedStructure",
    "RankedAlphabet",
    "RankedStructure",
    # datalog
    "Variable",
    "Constant",
    "Atom",
    "Rule",
    "Program",
    "parse_program",
    "parse_rule",
    "compile_program",
    "CompiledProgram",
    "evaluate",
    "naive_fixpoint_trace",
]

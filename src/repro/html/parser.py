"""HTML tree construction.

Builds a :class:`repro.trees.Node` document from the token stream:

* labels are lowercased tag names; text nodes carry the label ``#text``
  with the text in ``node.text``;
* void elements (``br``, ``img``, ...) never take children;
* the common implicit-close rules are applied (``<li>`` closes an open
  ``li``; ``<tr>`` closes ``td``/``th``/``tr``; ``<p>`` closes ``p``;
  table sections close each other), so the usual "tag soup" of
  real-world pages yields sensible trees;
* unmatched end tags are ignored; unclosed elements are closed at end of
  input;
* if the input has no single root element, everything is wrapped under a
  synthetic ``document`` node.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set

from repro.html.tokenizer import Token, tokenize
from repro.trees.node import Node

#: Elements that never have content.
VOID_ELEMENTS = {
    "area", "base", "br", "col", "embed", "hr", "img", "input",
    "link", "meta", "param", "source", "track", "wbr",
}

#: opening tag -> set of open tags it implicitly closes (nearest first).
IMPLICIT_CLOSERS: Dict[str, Set[str]] = {
    "li": {"li"},
    "option": {"option"},
    "p": {"p"},
    "tr": {"td", "th", "tr"},
    "td": {"td", "th"},
    "th": {"td", "th"},
    "thead": {"tr", "td", "th"},
    "tbody": {"thead", "tr", "td", "th", "tbody"},
    "dt": {"dd", "dt"},
    "dd": {"dd", "dt"},
}

#: Block elements an implicit closer must not escape.
_SCOPE_BARRIERS = {"table", "ul", "ol", "dl", "select", "body", "html", "document"}


def parse_html(html: str, root_label: str = "document") -> Node:
    """Parse HTML into a labeled unranked tree.

    >>> tree = parse_html("<ul><li>a<li>b</ul>")
    >>> str(tree)
    'ul(li(#text), li(#text))'
    """
    synthetic_root = Node(root_label)
    stack: List[Node] = [synthetic_root]

    def close_until(names: Set[str]) -> None:
        # Repeatedly close the innermost matching open element, without
        # crossing a scope barrier (a new <tr> closes an open td *and* the
        # open tr; a new <li> closes an li through intervening inline
        # elements).
        closed = True
        while closed:
            closed = False
            for index in range(len(stack) - 1, 0, -1):
                label = stack[index].label
                if label in names:
                    del stack[index:]
                    closed = True
                    break
                if label in _SCOPE_BARRIERS:
                    return

    for token in tokenize(html):
        if token.kind in ("comment", "doctype"):
            continue
        if token.kind == "text":
            text_node = Node("#text", text=token.data)
            stack[-1].add_child(text_node)
            continue
        if token.kind == "start":
            closers = IMPLICIT_CLOSERS.get(token.name)
            if closers:
                close_until(closers)
            element = Node(token.name, attrs=dict(token.attrs))
            stack[-1].add_child(element)
            if token.name not in VOID_ELEMENTS and not token.self_closing:
                stack.append(element)
            continue
        if token.kind == "end":
            if token.name in VOID_ELEMENTS:
                continue
            for index in range(len(stack) - 1, 0, -1):
                if stack[index].label == token.name:
                    del stack[index:]
                    break
            continue

    # Unwrap the synthetic root when the document has one root element and
    # no top-level text.
    children = synthetic_root.children
    if len(children) == 1 and children[0].label != "#text":
        root = children[0]
        root.parent = None
        return root
    return synthetic_root

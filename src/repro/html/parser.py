"""HTML tree construction.

Builds a :class:`repro.trees.Node` document from the
:func:`repro.html.tokenizer.scan_events` stream:

* labels are lowercased tag names; text nodes carry the label ``#text``
  with the text in ``node.text``;
* void elements (``br``, ``img``, ...) never take children;
* the common implicit-close rules are applied (``<li>`` closes an open
  ``li``; ``<tr>`` closes ``td``/``th``/``tr``; ``<p>`` closes ``p``;
  table sections close each other), so the usual "tag soup" of
  real-world pages yields sensible trees;
* unmatched end tags are ignored; unclosed elements are closed at end of
  input;
* if the input has no single root element, everything is wrapped under a
  synthetic ``document`` node.

The tag-soup policy (void elements, implicit closers, scope barriers)
lives in :mod:`repro.html.policy` and is shared verbatim with the
Node-free streaming snapshot builder (:mod:`repro.trees.stream`), so the
two front ends cannot drift apart.
"""

from __future__ import annotations

from typing import List

from repro.html.policy import (
    IMPLICIT_CLOSERS,
    VOID_ELEMENTS,
    end_tag_cut,
    implied_close_cut,
)
from repro.html.tokenizer import scan_events
from repro.trees.node import Node


def parse_html(html: str, root_label: str = "document") -> Node:
    """Parse HTML into a labeled unranked tree.

    >>> tree = parse_html("<ul><li>a<li>b</ul>")
    >>> str(tree)
    'ul(li(#text), li(#text))'
    """
    synthetic_root = Node(root_label)
    stack: List[Node] = [synthetic_root]
    labels: List[str] = [root_label]

    for event in scan_events(html):
        kind = event[0]
        if kind == "text":
            stack[-1].add_child(Node("#text", text=event[1]))
            continue
        if kind == "start":
            _, name, attrs, self_closing = event
            closers = IMPLICIT_CLOSERS.get(name)
            if closers:
                cut = implied_close_cut(labels, closers)
                if cut < len(stack):
                    del stack[cut:]
                    del labels[cut:]
            element = Node(name, attrs=attrs)
            stack[-1].add_child(element)
            if name not in VOID_ELEMENTS and not self_closing:
                stack.append(element)
                labels.append(name)
            continue
        if kind == "end":
            name = event[1]
            if name in VOID_ELEMENTS:
                continue
            cut = end_tag_cut(labels, name)
            if cut < len(stack):
                del stack[cut:]
                del labels[cut:]
            continue
        # comments and doctypes carry no tree content

    # Unwrap the synthetic root when the document has one root element and
    # no top-level text.
    children = synthetic_root.children
    if len(children) == 1 and children[0].label != "#text":
        root = children[0]
        root.parent = None
        return root
    return synthetic_root

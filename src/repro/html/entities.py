"""Character reference decoding for the HTML front end.

Supports the named references that matter in practice plus numeric
references (decimal and hexadecimal).  Unknown references are left
verbatim, as browsers do for unterminated ampersands.
"""

from __future__ import annotations

NAMED_REFERENCES = {
    "amp": "&",
    "lt": "<",
    "gt": ">",
    "quot": '"',
    "apos": "'",
    "nbsp": " ",
    "copy": "©",
    "reg": "®",
    "trade": "™",
    "hellip": "…",
    "mdash": "—",
    "ndash": "–",
    "lsquo": "‘",
    "rsquo": "’",
    "ldquo": "“",
    "rdquo": "”",
    "eacute": "é",
    "egrave": "è",
    "agrave": "à",
    "uuml": "ü",
    "ouml": "ö",
    "auml": "ä",
    "szlig": "ß",
    "euro": "€",
    "pound": "£",
    "yen": "¥",
    "cent": "¢",
    "sect": "§",
    "para": "¶",
    "middot": "·",
    "laquo": "«",
    "raquo": "»",
    "times": "×",
    "divide": "÷",
    "deg": "°",
    "plusmn": "±",
    "frac12": "½",
    "frac14": "¼",
    "bull": "•",
    "dagger": "†",
    "larr": "←",
    "rarr": "→",
    "uarr": "↑",
    "darr": "↓",
}


def decode_entities(text: str) -> str:
    """Decode character references in ``text``.

    >>> decode_entities("a &amp; b &#65; &#x42;")
    'a & b A B'
    """
    if "&" not in text:
        return text
    out = []
    i = 0
    while i < len(text):
        c = text[i]
        if c != "&":
            out.append(c)
            i += 1
            continue
        end = text.find(";", i + 1)
        if end == -1 or end - i > 32:
            out.append(c)
            i += 1
            continue
        body = text[i + 1 : end]
        if body.startswith("#x") or body.startswith("#X"):
            try:
                out.append(chr(int(body[2:], 16)))
                i = end + 1
                continue
            except ValueError:
                pass
        elif body.startswith("#"):
            try:
                out.append(chr(int(body[1:])))
                i = end + 1
                continue
            except ValueError:
                pass
        elif body in NAMED_REFERENCES:
            out.append(NAMED_REFERENCES[body])
            i = end + 1
            continue
        out.append(c)
        i += 1
    return "".join(out)

"""A from-scratch permissive HTML front end.

The paper's tree-based wrapping presumes "an existing HTML parser as a
front end"; none is available offline, so this package implements one:

* :mod:`repro.html.entities` -- character reference decoding;
* :mod:`repro.html.tokenizer` -- tag/text/comment tokenization with
  rawtext handling for ``script``/``style``; the streaming core
  :func:`~repro.html.tokenizer.scan_events` yields plain event tuples,
  :func:`~repro.html.tokenizer.tokenize` wraps them in
  :class:`~repro.html.tokenizer.Token` values;
* :mod:`repro.html.policy` -- the shared tag-soup policy (void elements,
  implicit closers, scope barriers) used by both tree construction and
  the streaming snapshot builder;
* :mod:`repro.html.parser` -- tree construction with void elements and
  the common implicit-close rules (``li``, ``p``, ``td``, ``tr``, ...),
  producing :class:`repro.trees.Node` documents whose labels are tag
  names and whose text nodes carry the label ``#text``.
"""

from repro.html.parser import parse_html
from repro.html.policy import IMPLICIT_CLOSERS, VOID_ELEMENTS
from repro.html.tokenizer import Token, scan_events, tokenize

__all__ = [
    "parse_html",
    "scan_events",
    "tokenize",
    "Token",
    "VOID_ELEMENTS",
    "IMPLICIT_CLOSERS",
]

"""A from-scratch permissive HTML front end.

The paper's tree-based wrapping presumes "an existing HTML parser as a
front end"; none is available offline, so this package implements one:

* :mod:`repro.html.entities` -- character reference decoding;
* :mod:`repro.html.tokenizer` -- tag/text/comment tokenization with
  rawtext handling for ``script``/``style``;
* :mod:`repro.html.parser` -- tree construction with void elements and
  the common implicit-close rules (``li``, ``p``, ``td``, ``tr``, ...),
  producing :class:`repro.trees.Node` documents whose labels are tag
  names and whose text nodes carry the label ``#text``.
"""

from repro.html.parser import parse_html
from repro.html.tokenizer import Token, tokenize

__all__ = ["parse_html", "tokenize", "Token"]

"""Shared HTML tree-construction policy.

The tag-soup rules -- void elements, implicit-close tables, scope
barriers, end-tag matching -- are needed by *two* builders that must
never drift apart: the classic :class:`~repro.trees.node.Node` builder
(:mod:`repro.html.parser`) and the Node-free streaming snapshot builder
(:mod:`repro.trees.stream`).  Both keep a plain list of open-element
*labels* alongside their own stack representation and delegate every
policy decision to the helpers here, which compute stack *cut indexes*
(the new length of the open-element stack) without touching the builder's
node representation.
"""

from __future__ import annotations

from typing import Dict, List, Set

#: Elements that never have content.
VOID_ELEMENTS = {
    "area", "base", "br", "col", "embed", "hr", "img", "input",
    "link", "meta", "param", "source", "track", "wbr",
}

#: opening tag -> set of open tags it implicitly closes (nearest first).
IMPLICIT_CLOSERS: Dict[str, Set[str]] = {
    "li": {"li"},
    "option": {"option"},
    "p": {"p"},
    "tr": {"td", "th", "tr"},
    "td": {"td", "th"},
    "th": {"td", "th"},
    "thead": {"tr", "td", "th"},
    "tbody": {"thead", "tr", "td", "th", "tbody"},
    "dt": {"dd", "dt"},
    "dd": {"dd", "dt"},
}

#: Block elements an implicit closer must not escape.
SCOPE_BARRIERS = {"table", "ul", "ol", "dl", "select", "body", "html", "document"}


def implied_close_cut(labels: List[str], names: Set[str]) -> int:
    """Stack length after the implicit-close rules fire for ``names``.

    ``labels`` are the labels of the open-element stack (index 0 is the
    synthetic root, which never closes).  Repeatedly closing the innermost
    open element whose label is in ``names`` -- without crossing a scope
    barrier -- amounts to truncating at the *lowest* matching frame
    reachable from the top before a barrier intervenes.

    >>> implied_close_cut(["document", "table", "tr", "td", "b"], {"td", "th", "tr"})
    2
    >>> implied_close_cut(["document", "li", "table", "tr"], {"li"})
    4
    """
    cut = len(labels)
    for index in range(len(labels) - 1, 0, -1):
        label = labels[index]
        if label in names:
            cut = index
        elif label in SCOPE_BARRIERS:
            break
    return cut


def end_tag_cut(labels: List[str], name: str) -> int:
    """Stack length after an explicit ``</name>``; unmatched tags cut nothing.

    >>> end_tag_cut(["document", "ul", "li", "b"], "ul")
    1
    >>> end_tag_cut(["document", "ul"], "p")
    2
    """
    for index in range(len(labels) - 1, 0, -1):
        if labels[index] == name:
            return index
    return len(labels)

"""HTML tokenization.

Produces a flat stream of :class:`Token` values: start tags (with
attributes and self-closing flag), end tags, text, comments, and doctype
declarations.  ``script`` and ``style`` contents are treated as rawtext
(scanned verbatim until the matching close tag), as the HTML standard
prescribes.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Tuple

from repro.html.entities import decode_entities

RAWTEXT_ELEMENTS = ("script", "style")


@dataclass
class Token:
    """One HTML token.

    ``kind`` is ``"start"``, ``"end"``, ``"text"``, ``"comment"`` or
    ``"doctype"``; ``name`` is the tag name (lowercased) for tags;
    ``data`` is the decoded text/comment payload; ``attrs`` the attribute
    dictionary; ``self_closing`` marks ``<br/>``-style tags.
    """

    kind: str
    name: str = ""
    data: str = ""
    attrs: Dict[str, str] = field(default_factory=dict)
    self_closing: bool = False


def _scan_name(text: str, i: int) -> Tuple[str, int]:
    start = i
    while i < len(text) and (text[i].isalnum() or text[i] in "-_:"):
        i += 1
    return text[start:i].lower(), i


def _scan_attributes(text: str, i: int) -> Tuple[Dict[str, str], bool, int]:
    attrs: Dict[str, str] = {}
    self_closing = False
    while i < len(text):
        while i < len(text) and text[i].isspace():
            i += 1
        if i >= len(text):
            break
        if text[i] == ">":
            i += 1
            return attrs, self_closing, i
        if text.startswith("/>", i):
            self_closing = True
            i += 2
            return attrs, self_closing, i
        if text[i] == "/":
            i += 1
            continue
        name, i = _scan_name(text, i)
        if not name:
            i += 1
            continue
        while i < len(text) and text[i].isspace():
            i += 1
        if i < len(text) and text[i] == "=":
            i += 1
            while i < len(text) and text[i].isspace():
                i += 1
            if i < len(text) and text[i] in "\"'":
                quote = text[i]
                end = text.find(quote, i + 1)
                if end == -1:
                    end = len(text)
                attrs[name] = decode_entities(text[i + 1 : end])
                i = end + 1
            else:
                start = i
                while i < len(text) and not text[i].isspace() and text[i] != ">":
                    i += 1
                attrs[name] = decode_entities(text[start:i])
        else:
            attrs[name] = ""
    return attrs, self_closing, i


def tokenize(html: str) -> Iterator[Token]:
    """Tokenize an HTML document (permissive, never raises on bad markup).

    >>> [t.kind for t in tokenize('<p class="x">hi</p>')]
    ['start', 'text', 'end']
    """
    i = 0
    n = len(html)
    while i < n:
        if html[i] != "<":
            end = html.find("<", i)
            if end == -1:
                end = n
            text = html[i:end]
            if text.strip():
                yield Token("text", data=decode_entities(text))
            i = end
            continue
        if html.startswith("<!--", i):
            end = html.find("-->", i + 4)
            if end == -1:
                end = n - 3
            yield Token("comment", data=html[i + 4 : end])
            i = end + 3
            continue
        if html.startswith("<!", i):
            end = html.find(">", i + 2)
            if end == -1:
                end = n - 1
            yield Token("doctype", data=html[i + 2 : end].strip())
            i = end + 1
            continue
        if html.startswith("</", i):
            name, j = _scan_name(html, i + 2)
            end = html.find(">", j)
            if end == -1:
                end = n - 1
            if name:
                yield Token("end", name=name)
            i = end + 1
            continue
        name, j = _scan_name(html, i + 1)
        if not name:
            # A stray '<' -- treat as text.
            yield Token("text", data="<")
            i += 1
            continue
        attrs, self_closing, j = _scan_attributes(html, j)
        yield Token("start", name=name, attrs=attrs, self_closing=self_closing)
        i = j
        if name in RAWTEXT_ELEMENTS and not self_closing:
            close = html.lower().find(f"</{name}", i)
            if close == -1:
                close = n
            raw = html[i:close]
            if raw.strip():
                yield Token("text", data=raw)
            gt = html.find(">", close)
            if close < n:
                yield Token("end", name=name)
            i = (gt + 1) if gt != -1 else n

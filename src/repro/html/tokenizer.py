"""HTML tokenization.

Two entry points over the same scanner:

* :func:`scan_events` -- the streaming core: a generator of plain event
  tuples (``("start", name, attrs, self_closing)``, ``("end", name)``,
  ``("text", data)``, ``("comment", data)``, ``("doctype", data)``) with
  no per-token object allocation.  Both tree construction
  (:mod:`repro.html.parser`) and the Node-free snapshot builder
  (:mod:`repro.trees.stream`) consume these events.
* :func:`tokenize` -- the classic API: wraps each event in a
  :class:`Token` value.

``script`` and ``style`` contents are treated as rawtext (scanned
verbatim until the matching close tag), as the HTML standard prescribes;
the document is lowercased at most once for all rawtext scans combined.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field
from typing import Dict, Iterator, Tuple

from repro.html.entities import decode_entities

RAWTEXT_ELEMENTS = ("script", "style")

#: Tag and attribute names: alphanumerics plus ``-``, ``_``, ``:``.
_NAME = re.compile(r"[\w:-]+")

#: Whole-tail fast path for the single most common attributed tag shape:
#: one double-quoted attribute immediately followed by the tag close.
_ONE_ATTR = re.compile(r'\s([\w:-]+)="([^"]*)"(/?)>')

#: Lowercased tag names, cached (tag vocabulary is tiny; values are
#: shared string objects, so later dict lookups hash once).
_LOWER_NAMES: Dict[str, str] = {}

#: One attribute-scanner step inside a start tag: tag close, stray slash,
#: or ``name [= value]`` with double-quoted / single-quoted / unquoted
#: value forms.  Unterminated quotes run to end of input; unquoted values
#: stop at whitespace or ``>`` (and may therefore swallow a ``/``).
_ATTR = re.compile(
    r"""\s*
    (?: (?P<close>/?>)
      | /(?!>)
      | (?P<name>[\w:-]+)
        (?: \s*=\s*
            (?: "(?P<dq>[^"]*)"?
              | '(?P<sq>[^']*)'?
              | (?P<uq>[^\s>]*)
            )
        )?
    )""",
    re.X,
)


@dataclass
class Token:
    """One HTML token.

    ``kind`` is ``"start"``, ``"end"``, ``"text"``, ``"comment"`` or
    ``"doctype"``; ``name`` is the tag name (lowercased) for tags;
    ``data`` is the decoded text/comment payload; ``attrs`` the attribute
    dictionary; ``self_closing`` marks ``<br/>``-style tags.
    """

    kind: str
    name: str = ""
    data: str = ""
    attrs: Dict[str, str] = field(default_factory=dict)
    self_closing: bool = False


def _scan_attributes(html: str, i: int) -> Tuple[Dict[str, str], bool, int]:
    attrs: Dict[str, str] = {}
    n = len(html)
    match = _ATTR.match
    while i < n:
        m = match(html, i)
        if m is None:
            i += 1
            continue
        close = m.group("close")
        if close is not None:
            return attrs, close == "/>", m.end()
        name = m.group("name")
        if name is not None:
            value = m.group("dq")
            if value is None:
                value = m.group("sq")
            if value is None:
                value = m.group("uq")
            attrs[name.lower()] = decode_entities(value) if value else ""
        elif m.end() == i:
            # No progress (a bare junk character): skip it.
            i += 1
            continue
        i = m.end()
    return attrs, False, i


def scan_into(html: str, on_start, on_end, on_text, on_misc=None) -> None:
    """Scan an HTML document, delivering events through callbacks.

    The single scanner implementation behind every front end: the event
    list of :func:`scan_list` (and :func:`tokenize`) and the Node-free
    streaming snapshot builder (:func:`repro.trees.stream.html_snapshot`),
    which consumes the callbacks directly so no per-token object of any
    kind is allocated.  Permissive, never raises on bad markup.

    * ``on_start(name, attrs, self_closing)`` -- lowercased tag name,
      attribute dict (``None`` when the tag has no attributes),
      ``<br/>``-style flag;
    * ``on_end(name)`` -- explicit end tags (unmatched ones included);
    * ``on_text(data)`` -- entity-decoded text, whitespace-only runs
      dropped, rawtext (``script``/``style``) delivered verbatim;
    * ``on_misc(kind, data)`` -- comments and doctypes, skipped when the
      callback is ``None``.
    """
    i = 0
    n = len(html)
    lower = None  # lowercased document, built at most once (rawtext scans)
    find = html.find
    name_match = _NAME.match
    one_attr_match = _ONE_ATTR.match
    scan_attributes = _scan_attributes
    decode = decode_entities
    lower_names = _LOWER_NAMES
    while i < n:
        if html[i] == "<":
            lt = i
        else:
            lt = find("<", i)
            end = n if lt == -1 else lt
            text = html[i:end]
            if not text.isspace():
                on_text(decode(text) if "&" in text else text)
            if lt == -1:
                return
            i = lt
        nxt = html[i + 1] if i + 1 < n else ""
        if nxt == "!":
            if html.startswith("<!--", i):
                end = find("-->", i + 4)
                if end == -1:
                    end = n - 3
                if on_misc is not None:
                    on_misc("comment", html[i + 4 : end])
                i = end + 3
            else:
                end = find(">", i + 2)
                if end == -1:
                    end = n - 1
                if on_misc is not None:
                    on_misc("doctype", html[i + 2 : end].strip())
                i = end + 1
            continue
        if nxt == "/":
            m = name_match(html, i + 2)
            if m is None:
                end = find(">", i + 2)
            else:
                end = find(">", m.end())
                raw_name = m.group()
                name = lower_names.get(raw_name)
                if name is None:
                    name = raw_name.lower()
                    if len(lower_names) < 4096:
                        lower_names[raw_name] = name
                on_end(name)
            i = (end + 1) if end != -1 else n
            continue
        m = name_match(html, i + 1)
        if m is None:
            # A stray '<' -- treat as text.
            on_text("<")
            i += 1
            continue
        raw_name = m.group()
        name = lower_names.get(raw_name)
        if name is None:
            name = raw_name.lower()
            if len(lower_names) < 4096:
                lower_names[raw_name] = name
        j = m.end()
        if j < n and html[j] == ">":
            # Fast path: attribute-free tag, by far the common case.
            attrs = None
            self_closing = False
            i = j + 1
        else:
            m = one_attr_match(html, j)
            if m is not None:
                # Fast path: exactly one double-quoted attribute.
                value = m.group(2)
                if value and "&" in value:
                    value = decode(value)
                attrs = {m.group(1).lower(): value}
                self_closing = m.group(3) == "/"
                i = m.end()
            else:
                attrs, self_closing, i = scan_attributes(html, j)
        on_start(name, attrs, self_closing)
        if name in RAWTEXT_ELEMENTS and not self_closing:
            if lower is None:
                lower = html.lower()
            close = lower.find(f"</{name}", i)
            if close == -1:
                close = n
            raw = html[i:close]
            if raw and not raw.isspace():
                on_text(raw)
            gt = find(">", close)
            if close < n:
                on_end(name)
            i = (gt + 1) if gt != -1 else n


def scan_list(html: str) -> List[tuple]:
    """Scan an HTML document into a list of plain event tuples.

    Permissive, never raises on bad markup.  In document order:

    * ``("start", name, attrs, self_closing)``
    * ``("end", name)``
    * ``("text", data)`` (entity-decoded, whitespace-only runs dropped)
    * ``("comment", data)`` / ``("doctype", data)``
    """
    out: List[tuple] = []
    emit = out.append
    scan_into(
        html,
        lambda name, attrs, self_closing: emit(
            ("start", name, attrs if attrs is not None else {}, self_closing)
        ),
        lambda name: emit(("end", name)),
        lambda data: emit(("text", data)),
        lambda kind, data: emit((kind, data)),
    )
    return out


def scan_events(html: str) -> Iterator[tuple]:
    """Iterate the event tuples of :func:`scan_list`.

    Note that the full event list is materialized up front (a few dozen
    bytes per event); consumers needing callback-grained delivery with no
    buffering should drive :func:`scan_into` directly.

    >>> [e[0] for e in scan_events('<p class="x">hi</p>')]
    ['start', 'text', 'end']
    """
    return iter(scan_list(html))


def tokenize(html: str) -> Iterator[Token]:
    """Tokenize an HTML document (permissive, never raises on bad markup).

    A thin :class:`Token`-building wrapper over :func:`scan_list` (the
    event list is materialized up front; :class:`Token` objects are built
    lazily); the streaming pipeline consumes the events directly.

    >>> [t.kind for t in tokenize('<p class="x">hi</p>')]
    ['start', 'text', 'end']
    """
    for event in scan_list(html):
        kind = event[0]
        if kind == "text" or kind == "comment" or kind == "doctype":
            yield Token(kind, data=event[1])
        elif kind == "start":
            yield Token(kind, name=event[1], attrs=event[2], self_closing=event[3])
        else:
            yield Token(kind, name=event[1])

"""Node-free documents: a relational facade over snapshot columns.

:class:`Document` is the streaming counterpart of
:class:`repro.trees.unranked.UnrankedStructure`: the same ``tau_ur``
relational schema (plus the derived relations), but backed purely by a
:class:`repro.trees.snapshot.TreeSnapshot` -- no :class:`Node` objects
anywhere.  The propagation kernel binds to the snapshot directly; the
general evaluation strategies read the relations computed from the
columns; wrapped output trees are assembled by
:func:`repro.wrap.output.build_output_from_snapshot` with text capture
from the snapshot's text column.

This is the per-document payload of the streaming batch pipeline
(:meth:`repro.wrap.extraction.Wrapper.wrap_html_many`): it is built in
one pass over the HTML token events and pickles cheaply (flat lists
only), so batches fan out across process pools without re-parsing.

Examples
--------
>>> doc = Document.from_html("<ul><li>alpha<li>beta</ul>")
>>> doc.size
5
>>> doc.label_of(0), doc.label_of(1)
('ul', 'li')
>>> sorted(v for (v,) in doc.relation("label_li"))
[1, 3]
>>> doc.text(1)
'alpha'
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Iterable, List, Optional, Set, Tuple

from repro.errors import DatalogError, TreeError
from repro.structures import Fact, Structure
from repro.trees.node import Node
from repro.trees.snapshot import TreeSnapshot
from repro.trees.unranked import _CLOSURE_LIMIT, _FUNCTIONAL_BINARY


class Document(Structure):
    """A document as flat columns: snapshot-backed ``tau_ur`` structure.

    Parameters
    ----------
    snapshot:
        A ``"unranked"``-schema :class:`TreeSnapshot`, usually built by
        :func:`repro.trees.stream.html_snapshot`.
    """

    def __init__(self, snapshot: TreeSnapshot):
        if snapshot.schema != "unranked":
            raise TreeError("Document requires an unranked-schema snapshot")
        self._snapshot = snapshot
        self._cache: Dict[str, FrozenSet[Fact]] = {}
        self._functional_cache: Dict[str, Tuple[Dict[int, int], Dict[int, int]]] = {}

    # -- construction ------------------------------------------------------

    @classmethod
    def from_html(cls, html: str, root_label: str = "document") -> "Document":
        """Stream HTML bytes into a document; no ``Node`` is allocated."""
        from repro.trees.stream import html_snapshot

        return cls(html_snapshot(html, root_label=root_label))

    @classmethod
    def from_tree(cls, root: Node) -> "Document":
        """Flatten an existing parsed tree (text/attr columns included)."""
        from repro.trees.stream import tree_snapshot

        return cls(tree_snapshot(root))

    # -- identity ----------------------------------------------------------

    @property
    def size(self) -> int:
        return self._snapshot.size

    def snapshot(self) -> TreeSnapshot:
        """The underlying columnar snapshot (the kernel binds to this)."""
        return self._snapshot

    def label_of(self, ident: int) -> str:
        """Label of the node with identifier ``ident``."""
        snapshot = self._snapshot
        return snapshot.labels[snapshot.label_ids[ident]]

    def labels(self) -> Set[str]:
        """The set of labels occurring in the document."""
        return set(self._snapshot.labels)

    def text(self, ident: int) -> str:
        """Concatenated text of the subtree at ``ident`` (document order)."""
        return self._snapshot.node_text(ident)

    def attrs_of(self, ident: int) -> Dict[str, str]:
        """Attribute dictionary of the node with identifier ``ident``."""
        attrs = self._snapshot.attrs
        found = attrs.get(ident) if attrs else None
        return dict(found) if found else {}

    # -- relations ---------------------------------------------------------

    def has_relation(self, name: str) -> bool:
        try:
            self.relation(name)
            return True
        except DatalogError:
            return False

    def arity(self, name: str) -> int:
        unary = {"dom", "root", "leaf", "lastsibling", "firstsibling"}
        if name in unary or name.startswith("label_"):
            return 1
        return 2

    def relation(self, name: str) -> FrozenSet[Fact]:
        if name not in self._cache:
            self._cache[name] = frozenset(self._compute(name))
        return self._cache[name]

    def functional(self, name: str) -> Optional[Tuple[Dict[int, int], Dict[int, int]]]:
        if name not in _FUNCTIONAL_BINARY:
            return None
        if name not in self._functional_cache:
            array = self._snapshot.forward_map(name)
            forward: Dict[int, int] = {}
            backward: Dict[int, int] = {}
            for a, b in enumerate(array):
                if b >= 0:
                    forward[a] = b
                    backward[b] = a
            self._functional_cache[name] = (forward, backward)
        return self._functional_cache[name]

    def relation_names(self) -> Iterable[str]:
        """Core ``tau_ur`` relation names (derived relations not included)."""
        names = ["dom", "root", "leaf", "lastsibling", "firstchild", "nextsibling"]
        names.extend(sorted(f"label_{a}" for a in self._snapshot.labels))
        return names

    # -- computation -------------------------------------------------------

    def _check_closure_budget(self, name: str) -> None:
        if self.size > _CLOSURE_LIMIT:
            raise DatalogError(
                f"refusing to materialize quadratic relation {name!r} on a "
                f"document with {self.size} nodes (limit {_CLOSURE_LIMIT})"
            )

    def _compute(self, name: str) -> Set[Fact]:
        snapshot = self._snapshot
        n = snapshot.size
        if name in (
            "dom", "root", "leaf", "lastsibling", "firstsibling",
        ) or name.startswith(("label_", "notlabel_")):
            nodes = snapshot.unary_nodes(name)
            if nodes is None:  # pragma: no cover - unranked supplies all five
                raise DatalogError(f"unknown relation {name!r} over tau_ur")
            return {(v,) for v in nodes}
        if name in ("firstchild", "nextsibling", "lastchild"):
            array = snapshot.forward_map(name)
            return {(a, b) for a, b in enumerate(array) if b >= 0}
        if name == "child":
            parent = snapshot.parent
            return {(parent[v], v) for v in range(n) if parent[v] >= 0}
        if name in ("nextsibling_star", "nextsibling_plus"):
            reflexive = name.endswith("_star")
            out: Set[Fact] = set()
            firstchild = snapshot.firstchild
            nextsibling = snapshot.nextsibling
            for v in range(n):
                child = firstchild[v]
                if child < 0:
                    continue
                row: List[int] = []
                while child >= 0:
                    row.append(child)
                    child = nextsibling[child]
                for i, a in enumerate(row):
                    start = i if reflexive else i + 1
                    for b in row[start:]:
                        out.add((a, b))
            if reflexive:
                for v in range(n):
                    out.add((v, v))
            return out
        if name in ("child_star", "child_plus"):
            self._check_closure_budget(name)
            out = set()
            for v in range(n):
                for d in snapshot.subtree(v):
                    if d != v:
                        out.add((v, d))
                if name == "child_star":
                    out.add((v, v))
            return out
        if name == "docorder":
            self._check_closure_budget(name)
            return {(i, j) for i in range(n) for j in range(i + 1, n)}
        if name == "total":
            self._check_closure_budget(name)
            return {(i, j) for i in range(n) for j in range(n)}
        raise DatalogError(f"unknown relation {name!r} over tau_ur")

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        return f"Document({self.size} nodes, {len(self._snapshot.labels)} labels)"

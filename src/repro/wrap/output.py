"""Output-tree construction.

Following the paper: given an input tree and a predicate assignment, the
output tree keeps exactly the nodes that received a new label, connected
through the transitive closure of the input edge relation (i.e. each kept
node's parent is its nearest kept ancestor), preserving document order.
A synthetic ``result`` root collects top-level matches.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from repro.trees.node import Node


class OutputNode:
    """A node of a wrapped output tree.

    Attributes
    ----------
    label:
        The new label (the extraction predicate's name, or a custom
        relabeling).
    source:
        The originating input :class:`Node` (``None`` for the synthetic
        root).
    children:
        Output children in document order.
    text:
        Concatenated text content of the source subtree, when the source
        tree carries text (HTML wrapping).
    """

    def __init__(self, label: str, source: Optional[Node] = None):
        self.label = label
        self.source = source
        self.children: List[OutputNode] = []
        self.text: Optional[str] = None

    def add(self, child: "OutputNode") -> "OutputNode":
        self.children.append(child)
        return child

    def to_sexpr(self) -> str:
        """Compact s-expression rendering (tests and examples)."""
        if not self.children:
            return self.label
        inner = ", ".join(c.to_sexpr() for c in self.children)
        return f"{self.label}({inner})"

    def iter_subtree(self):
        """Document-order iteration."""
        yield self
        for child in self.children:
            yield from child.iter_subtree()

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        return f"OutputNode({self.to_sexpr()})"


def node_text(node: Node) -> str:
    """Concatenated text payloads of a subtree, in document order."""
    parts: List[str] = []
    for n in node.iter_subtree():
        if n.text:
            parts.append(n.text)
    return " ".join(p.strip() for p in parts if p.strip())


def build_output_tree(
    root: Node,
    assignment: Dict[int, str],
    root_label: str = "result",
    capture_text: bool = True,
) -> OutputNode:
    """Build the wrapped output tree.

    Parameters
    ----------
    root:
        The input tree.
    assignment:
        ``id(node) -> new_label`` for every node to keep.  (Wrappers
        produce this from extraction-predicate results; a node carrying
        several predicates gets one output node per predicate in a stable
        order only if callers merge labels beforehand.)
    root_label:
        Label of the synthetic output root.
    capture_text:
        Record the source subtree's text content on leaf output nodes.
    """
    out_root = OutputNode(root_label)

    def walk(node: Node, parent_out: OutputNode) -> None:
        label = assignment.get(id(node))
        if label is not None:
            out_node = parent_out.add(OutputNode(label, source=node))
        else:
            out_node = parent_out
        for child in node.children:
            walk(child, out_node)
        if label is not None and capture_text and not out_node.children:
            text = node_text(node)
            if text:
                out_node.text = text

    walk(root, out_root)
    return out_root

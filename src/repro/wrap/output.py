"""Output-tree construction.

Following the paper: given an input tree and a predicate assignment, the
output tree keeps exactly the nodes that received a new label, connected
through the transitive closure of the input edge relation (i.e. each kept
node's parent is its nearest kept ancestor), preserving document order.
A synthetic ``result`` root collects top-level matches.

Two equivalent builders: :func:`build_output_tree` walks a
:class:`~repro.trees.node.Node` tree, while
:func:`build_output_from_snapshot` applies the same nearest-kept-ancestor
rule over the flat columns of a
:class:`~repro.trees.snapshot.TreeSnapshot` (the streaming pipeline's
path -- no ``Node`` is ever touched, and text capture reads the
snapshot's text column).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from repro.trees.node import Node
from repro.trees.snapshot import TreeSnapshot


class OutputNode:
    """A node of a wrapped output tree.

    Attributes
    ----------
    label:
        The new label (the extraction predicate's name, or a custom
        relabeling).
    source:
        The originating input :class:`Node` (``None`` for the synthetic
        root and for snapshot-built outputs).
    source_id:
        The originating node's document-order identifier (``None`` for
        the synthetic root; always set by the snapshot builder, set by
        the tree builder only when the caller supplies ids).
    children:
        Output children in document order.
    text:
        Concatenated text content of the source subtree, when the source
        tree carries text (HTML wrapping).
    """

    __slots__ = ("label", "source", "source_id", "children", "text")

    def __init__(
        self,
        label: str,
        source: Optional[Node] = None,
        source_id: Optional[int] = None,
    ):
        self.label = label
        self.source = source
        self.source_id = source_id
        self.children: List[OutputNode] = []
        self.text: Optional[str] = None

    def add(self, child: "OutputNode") -> "OutputNode":
        self.children.append(child)
        return child

    def to_sexpr(self) -> str:
        """Compact s-expression rendering (tests and examples)."""
        if not self.children:
            return self.label
        inner = ", ".join(c.to_sexpr() for c in self.children)
        return f"{self.label}({inner})"

    def iter_subtree(self):
        """Document-order iteration."""
        yield self
        for child in self.children:
            yield from child.iter_subtree()

    def to_dict(self) -> dict:
        """JSON-serializable rendering (the serving subsystem's payload).

        Keys are always present: ``label``, ``source_id`` (``None`` for
        the synthetic root), ``text`` (``None`` when absent), and
        ``children`` (possibly empty).  Iterative so arbitrarily deep
        wrapped outputs never hit the recursion limit.

        >>> root = OutputNode("result")
        >>> item = root.add(OutputNode("item", source_id=3))
        >>> item.text = "42"
        >>> root.to_dict() == {
        ...     "label": "result", "source_id": None, "text": None,
        ...     "children": [{"label": "item", "source_id": 3,
        ...                   "text": "42", "children": []}]}
        True
        """
        top = {
            "label": self.label,
            "source_id": self.source_id,
            "text": self.text,
            "children": [],
        }
        stack = [(self, top)]
        while stack:
            node, rendered = stack.pop()
            for child in node.children:
                entry = {
                    "label": child.label,
                    "source_id": child.source_id,
                    "text": child.text,
                    "children": [],
                }
                rendered["children"].append(entry)
                stack.append((child, entry))
        return top

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        return f"OutputNode({self.to_sexpr()})"


def node_text(node: Node) -> str:
    """Concatenated text payloads of a subtree, in document order."""
    parts: List[str] = []
    for n in node.iter_subtree():
        if n.text:
            parts.append(n.text)
    return " ".join(p.strip() for p in parts if p.strip())


def build_output_tree(
    root: Node,
    assignment: Dict[int, str],
    root_label: str = "result",
    capture_text: bool = True,
) -> OutputNode:
    """Build the wrapped output tree.

    Parameters
    ----------
    root:
        The input tree.
    assignment:
        ``id(node) -> new_label`` for every node to keep.  (Wrappers
        produce this from extraction-predicate results; a node carrying
        several predicates gets one output node per predicate in a stable
        order only if callers merge labels beforehand.)
    root_label:
        Label of the synthetic output root.
    capture_text:
        Record the source subtree's text content on leaf output nodes.
    """
    out_root = OutputNode(root_label)

    def walk(node: Node, parent_out: OutputNode) -> None:
        label = assignment.get(id(node))
        if label is not None:
            out_node = parent_out.add(OutputNode(label, source=node))
        else:
            out_node = parent_out
        for child in node.children:
            walk(child, out_node)
        if label is not None and capture_text and not out_node.children:
            text = node_text(node)
            if text:
                out_node.text = text

    walk(root, out_root)
    return out_root


def build_output_from_snapshot(
    snapshot: TreeSnapshot,
    assignment: Dict[int, str],
    root_label: str = "result",
    capture_text: bool = True,
) -> OutputNode:
    """Build the wrapped output tree from snapshot columns (no ``Node``).

    The exact analogue of :func:`build_output_tree` over a columnar
    document: ``assignment`` maps document-order node identifiers to new
    labels, kept nodes attach to their nearest kept ancestor in document
    order, and leaf output nodes capture the concatenated text of their
    source subtree from the snapshot's text column.

    >>> from repro.trees.stream import html_snapshot
    >>> snap = html_snapshot("<ul><li>a</li><li>b</li></ul>")
    >>> out = build_output_from_snapshot(snap, {1: "item", 3: "item"})
    >>> out.to_sexpr()
    'result(item, item)'
    >>> [c.text for c in out.children]
    ['a', 'b']
    """
    out_root = OutputNode(root_label)
    if not snapshot.size:
        return out_root
    parent = snapshot.parent
    # Snapshot ids are assigned in document (pre-) order by every builder,
    # so ascending kept ids visit parents before children and siblings
    # left to right: appending each kept node to its nearest kept
    # ancestor's output (computed by walking ``parent`` with memoization,
    # O(kept + touched ancestors) rather than O(n)) reproduces the
    # recursive Node walk exactly.
    kept = sorted(assignment)
    created: List[Tuple[OutputNode, int]] = []
    #: node id -> its output node (kept) or the output node of its
    #: nearest kept ancestor (unkept, memoized while walking up).
    out_of: Dict[int, OutputNode] = {}
    for v in kept:
        ancestor_out = None
        path: List[int] = []
        u = parent[v]
        while u != -1:
            known = out_of.get(u)
            if known is not None:
                ancestor_out = known
                break
            path.append(u)
            u = parent[u]
        if ancestor_out is None:
            ancestor_out = out_root
        out_node = OutputNode(assignment[v], source_id=v)
        ancestor_out.children.append(out_node)
        created.append((out_node, v))
        out_of[v] = out_node
        for u in path:
            out_of[u] = ancestor_out
    if capture_text and snapshot.texts:
        leaves = [(out_node, v) for out_node, v in created if not out_node.children]
        for (out_node, _), text in zip(
            leaves, snapshot.node_texts([v for _, v in leaves])
        ):
            if text:
                out_node.text = text
    return out_root

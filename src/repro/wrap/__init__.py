"""The wrapping layer (Section 1 and the introduction to Section 6).

A *wrapper* is a set of information extraction functions -- unary queries
assigning predicates to document tree nodes.  From the predicate
assignment, a new tree is computed "along the lines of the input tree but
using the new labels and omitting nodes that have not been relabeled":

* :mod:`repro.wrap.extraction` -- :class:`Wrapper`: bundles extraction
  functions from any of the library's query formalisms, with batch and
  process-pool entry points;
* :mod:`repro.wrap.document` -- :class:`Document`: the streaming,
  Node-free document representation (snapshot columns straight from the
  HTML tokenizer);
* :mod:`repro.wrap.output` -- output-tree construction (relabel, drop
  unlabeled nodes, reconnect through the ancestor closure, preserve
  document order), from trees or straight from snapshot columns;
* :mod:`repro.wrap.serialize` -- XML serialization of wrapped results;
* :mod:`repro.wrap.visual` -- a programmatic simulation of the Lixto-style
  visual specification process of Section 6.2.
"""

from repro.wrap.document import Document
from repro.wrap.extraction import Wrapper
from repro.wrap.output import OutputNode, build_output_from_snapshot, build_output_tree
from repro.wrap.serialize import to_xml
from repro.wrap.visual import VisualSession

__all__ = [
    "Wrapper",
    "Document",
    "OutputNode",
    "build_output_tree",
    "build_output_from_snapshot",
    "to_xml",
    "VisualSession",
]

"""XML serialization of wrapped output trees."""

from __future__ import annotations

from typing import List

from repro.wrap.output import OutputNode

#: Text-node escapes, ``&`` first so it never rewrites the others'
#: output.  Only ``& < >`` are markup-significant in text content;
#: attribute-style quote escaping (``&quot;`` / ``&apos;``) belongs in
#: attribute values only and must not rewrite text nodes.
_ESCAPES = {"&": "&amp;", "<": "&lt;", ">": "&gt;"}


def _escape(text: str) -> str:
    out = text
    for raw, escaped in _ESCAPES.items():
        out = out.replace(raw, escaped)
    return out


def to_xml(node: OutputNode, indent: int = 0) -> str:
    """Pretty-print a wrapped output tree as XML.

    >>> from repro.wrap.output import OutputNode
    >>> root = OutputNode("result")
    >>> item = root.add(OutputNode("item"))
    >>> item.text = "42"
    >>> print(to_xml(root))
    <result>
      <item>42</item>
    </result>

    Quotes are data in text content and pass through verbatim; only
    ``& < >`` are escaped:

    >>> quoted = OutputNode("result")
    >>> cell = quoted.add(OutputNode("item"))
    >>> cell.text = 'say "hi" & don\\'t <wave>'
    >>> print(to_xml(quoted))
    <result>
      <item>say "hi" &amp; don't &lt;wave&gt;</item>
    </result>
    """
    pad = "  " * indent
    tag = node.label
    if not node.children and node.text is None:
        return f"{pad}<{tag}/>"
    if not node.children:
        return f"{pad}<{tag}>{_escape(node.text or '')}</{tag}>"
    lines: List[str] = [f"{pad}<{tag}>"]
    for child in node.children:
        lines.append(to_xml(child, indent + 1))
    lines.append(f"{pad}</{tag}>")
    return "\n".join(lines)

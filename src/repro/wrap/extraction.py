"""Wrappers: bundles of information extraction functions.

A :class:`Wrapper` maps extraction-predicate names to unary queries; it
can host queries in any of the library's formalisms (Elog- programs,
monadic datalog programs, MSO formulas, automaton queries), evaluates them
all on a document, and assembles the wrapped output tree of Section 6's
introduction.

The wrapper is a *compile-once* artifact: every registered datalog/Elog
program is compiled into a :class:`repro.datalog.plan.CompiledProgram` the
first time it runs and the plan is reused for every subsequent document
(MSO queries are already compiled to automata at registration).
Extraction functions registered from the *same* program object share one
plan and one evaluation per document, so a wrapper pulling several
patterns out of one Elog- program pays for a single fixpoint.

Documents come in two representations, interchangeable everywhere:

* classic :class:`repro.trees.node.Node` trees (``parse_html`` /
  ``parse_sexpr`` output), wrapped in a shared per-document
  :class:`repro.structures.IndexedStructure`;
* streaming :class:`repro.wrap.document.Document` facades -- snapshot
  columns straight from the HTML tokenizer events, **no Node objects**
  -- whose outputs are assembled by
  :func:`repro.wrap.output.build_output_from_snapshot`.

The batch entry points :meth:`Wrapper.extract_many` /
:meth:`Wrapper.wrap_many` accept either representation, and
:meth:`Wrapper.wrap_html_many` / :meth:`Wrapper.extract_html_many` run
the streaming path end to end from raw HTML strings.  All four take
``workers=N`` to fan the batch out over a process pool: documents are
independent, the compiled wrapper (plans plus kernel tables) is pickled
once per worker, and each worker streams its documents locally -- for
``wrap_html_many`` only the HTML strings and the flat output trees ever
cross the process boundary.
"""

from __future__ import annotations

import time
from typing import (
    Callable,
    Dict,
    Iterable,
    List,
    Optional,
    Sequence,
    Set,
    Tuple,
    Union,
)

from repro.datalog.plan import CompiledProgram, compile_program
from repro.datalog.program import Program
from repro.elog.syntax import ElogProgram
from repro.elog.translate import elog_to_datalog
from repro.errors import WrapError
from repro.structures import IndexedStructure, as_indexed
from repro.trees.node import Node
from repro.trees.unranked import UnrankedStructure
from repro.wrap.document import Document
from repro.wrap.output import (
    OutputNode,
    build_output_from_snapshot,
    build_output_tree,
)

#: Anything the wrapper can treat as one document.
DocumentLike = Union[Node, Document, UnrankedStructure, IndexedStructure]


class WrapperState:
    """Opaque per-document state for :meth:`Wrapper.wrap_html_stateful`.

    Holds, per distinct compiled plan (in registration order), the kernel
    state of the previous version of one document -- its snapshot plus
    derived masks.  Feed it back as ``prior`` when the *next* version of
    the same document arrives; plans whose previous run left no reusable
    state simply start cold.
    """

    __slots__ = ("states",)

    def __init__(self, states: Dict[int, object]):
        self.states = states


class Wrapper:
    """A wrapper = an ordered set of named information extraction functions.

    Extraction functions are added through the ``add_*`` methods; the
    order of addition is the relabeling priority (when a node matches
    several predicates, the earliest-added wins -- wrappers that need
    multi-labels should merge names beforehand).

    Examples
    --------
    >>> from repro.trees import parse_sexpr
    >>> from repro.datalog import parse_program
    >>> w = Wrapper()
    >>> _ = w.add_datalog("item", parse_program(
    ...     "item(x) :- label_li(x).", query="item"))
    >>> tree = parse_sexpr("ul(li, li)")
    >>> w.wrap(tree).to_sexpr()
    'result(item, item)'
    >>> [out.to_sexpr() for out in w.wrap_many(
    ...     [parse_sexpr("ul(li)"), parse_sexpr("ul(li, li, li)")])]
    ['result(item)', 'result(item, item, item)']

    The streaming path wraps raw HTML without ever building a tree:

    >>> from repro.wrap.document import Document
    >>> w.wrap(Document.from_html("<ul><li>a<li>b</ul>")).to_sexpr()
    'result(item, item)'
    >>> [out.to_sexpr() for out in w.wrap_html_many(["<ul><li>a</ul>"])]
    ['result(item)']
    """

    def __init__(self):
        self._functions: List[tuple] = []
        #: Lazily compiled plans, keyed by position in ``self._functions``
        #: (functions registered from the same program object share the
        #: same plan instance).
        self._compiled: Dict[int, CompiledProgram] = {}
        #: Elog- translation cache: ``id(program) -> (program, datalog)``.
        #: The source program is retained in the value so a recycled
        #: object id can never alias a freed program (the hit is verified
        #: by identity); dropped on pickling (ids are not stable across
        #: processes).
        self._elog_cache: Dict[int, tuple] = {}

    def __getstate__(self):
        state = dict(self.__dict__)
        state["_elog_cache"] = {}
        return state

    # -- registration --------------------------------------------------------

    def add_datalog(self, name: str, program: Program, predicate: Optional[str] = None) -> "Wrapper":
        """Add an extraction function given by a monadic datalog program.

        ``predicate`` defaults to the program's query predicate.
        """
        pred = predicate or program.query
        if pred is None:
            raise WrapError("datalog extraction needs a query predicate")
        self._functions.append(("datalog", name, (program, pred)))
        return self

    def add_elog(self, name: str, program: ElogProgram, pattern: Optional[str] = None) -> "Wrapper":
        """Add an extraction function given by an Elog- pattern.

        Registering several patterns of the *same* program object shares
        one translation, one compiled plan, and one evaluation per
        document.
        """
        pat = pattern or program.query
        if pat is None:
            raise WrapError("Elog extraction needs a query pattern")
        cached = self._elog_cache.get(id(program))
        if cached is not None and cached[0] is program:
            datalog = cached[1]
        else:
            datalog = elog_to_datalog(program)
            self._elog_cache[id(program)] = (program, datalog)
        self._functions.append(("datalog", name, (datalog, pat)))
        return self

    def add_mso(self, name: str, formula, free_var: str, labels: Sequence[str]) -> "Wrapper":
        """Add an extraction function given by a unary MSO query."""
        from repro.mso.compile import compile_query

        query = compile_query(formula, free_var, labels)
        self._functions.append(("automaton", name, query))
        return self

    def add_automaton(self, name: str, query) -> "Wrapper":
        """Add an extraction function given by a
        :class:`repro.automata.unary.UnaryQueryDTA`."""
        self._functions.append(("automaton", name, query))
        return self

    def add_callable(self, name: str, function: Callable[[UnrankedStructure], Set[int]]) -> "Wrapper":
        """Add an arbitrary ``structure -> node id set`` function."""
        self._functions.append(("callable", name, function))
        return self

    # -- compilation ---------------------------------------------------------

    def compile(self) -> "Wrapper":
        """Eagerly compile every registered datalog/Elog program.

        Normally compilation happens lazily on first use; call this to
        move the cost out of the first document (e.g. before timing a
        batch, or before pickling the wrapper into a worker pool).  The
        kernel tables and join plans are fully materialized, so workers
        receive a ready-to-run artifact.
        """
        for index, (kind, _, payload) in enumerate(self._functions):
            if kind == "datalog":
                self._compiled_plan(index, payload[0]).prepare()
        return self

    def _compiled_plan(self, index: int, program: Program) -> CompiledProgram:
        plan = self._compiled.get(index)
        if plan is None:
            # Reuse the plan of any earlier function registered from the
            # same program object (identity, not equality: programs are
            # immutable artifacts held by ``self._functions``).
            for other, (kind, _, payload) in enumerate(self._functions[:index]):
                if kind == "datalog" and payload[0] is program:
                    plan = self._compiled.get(other)
                    if plan is not None:
                        break
            if plan is None:
                plan = compile_program(program)
            self._compiled[index] = plan
        return plan

    # -- evaluation ----------------------------------------------------------

    def names(self) -> List[str]:
        """Extraction-function names in priority order."""
        return [name for _, name, _ in self._functions]

    def _extract_structure(
        self,
        structure: IndexedStructure,
        collect: Optional[List[Dict]] = None,
    ) -> Dict[str, Set[int]]:
        """Evaluate all extraction functions against one shared runtime.

        ``collect``, when given, receives one kernel-stats dict per
        distinct plan evaluation (``EvaluationResult.stats``, or a
        minimal ``{"engine": ...}`` for non-kernel strategies) -- the
        raw material tracing grafts into ``kernel.run`` spans.
        """
        # Automaton queries and user callables keep receiving the concrete
        # (unwrapped) structure their registered signatures promise; only
        # the datalog engine consumes the index wrapper.
        base = structure.base
        streaming = isinstance(base, Document)
        out: Dict[str, Set[int]] = {}
        #: One evaluation per distinct compiled plan per document.
        runs: Dict[int, object] = {}
        for index, (kind, name, payload) in enumerate(self._functions):
            if kind == "datalog":
                program, pred = payload
                plan = self._compiled_plan(index, program)
                result = runs.get(id(plan))
                if result is None:
                    result = runs[id(plan)] = plan.run(structure)
                    if collect is not None:
                        stats = getattr(result, "stats", None)
                        collect.append(
                            dict(stats)
                            if stats
                            else {"engine": result.engine or result.method}
                        )
                ids = result.unary(pred)
            elif streaming:
                raise WrapError(
                    f"extraction function {name!r} ({kind}) needs a "
                    "Node-backed structure; streaming Documents only "
                    "support datalog/Elog extraction"
                )
            elif kind == "automaton":
                ids = payload.select_ids(base)
            else:
                ids = set(payload(base))
            known = out.get(name)
            # Merge without mutating ``ids`` (it may be an engine-owned
            # set): the common single-contribution case stores it as is.
            out[name] = ids if known is None else known | ids
        return out

    def _runtime(self, document: DocumentLike) -> IndexedStructure:
        """One shared :class:`IndexedStructure` for any document form."""
        if isinstance(document, Node):
            return as_indexed(UnrankedStructure(document))
        return as_indexed(document)

    def extract(
        self,
        document: DocumentLike,
        structure: Optional[UnrankedStructure] = None,
    ) -> Dict[str, Set[int]]:
        """Evaluate all extraction functions; node-id sets per name.

        ``document`` may be a parsed :class:`Node` tree or a streaming
        :class:`Document`; ``structure`` may supply an existing (possibly
        indexed) structure for the document so the relational view is not
        rebuilt.
        """
        if structure is None:
            runtime = self._runtime(document)
        else:
            runtime = as_indexed(structure)
        return self._extract_structure(runtime)

    def extract_many(
        self,
        documents: Iterable[DocumentLike],
        workers: Optional[int] = None,
    ) -> List[Dict[str, Set[int]]]:
        """Batch :meth:`extract`: one shared indexed structure per document,
        all extraction programs compiled exactly once across the batch.

        ``workers`` > 1 shards the batch over a process pool (documents
        are independent; the compiled wrapper is shipped once per worker).
        """
        self.compile()
        if _parallel(workers):
            return self._fanout(_job_extract, list(documents), workers, None)
        return [
            self._extract_structure(self._runtime(document))
            for document in documents
        ]

    def wrap(self, document: DocumentLike, root_label: str = "result") -> OutputNode:
        """Wrap a document: extract, relabel, build the output tree."""
        return self._wrap_structure(self._runtime(document), root_label)

    def wrap_many(
        self,
        documents: Sequence[DocumentLike],
        root_label: str = "result",
        workers: Optional[int] = None,
    ) -> List[OutputNode]:
        """Batch :meth:`wrap` over a stream of documents.

        Builds exactly one :class:`repro.structures.IndexedStructure` per
        document and reuses every compiled extraction plan across the whole
        batch; ``workers`` > 1 fans out over a process pool.
        """
        self.compile()
        if _parallel(workers):
            return self._fanout(_job_wrap, list(documents), workers, root_label)
        return [
            self._wrap_structure(self._runtime(document), root_label)
            for document in documents
        ]

    # -- streaming HTML batches ----------------------------------------------

    def wrap_html_many(
        self,
        pages: Sequence[str],
        root_label: str = "result",
        workers: Optional[int] = None,
    ) -> List[OutputNode]:
        """Wrap raw HTML pages end to end on the streaming path.

        Each page goes HTML string -> tokenizer events -> snapshot columns
        -> propagation kernel -> output tree, with **zero Node objects**
        anywhere.  With ``workers=N`` the pages are sharded over a process
        pool: only the HTML strings travel to the workers and only the
        flat output trees travel back.
        """
        self.compile()
        if _parallel(workers):
            return self._fanout(_job_wrap_html, list(pages), workers, root_label)
        return [
            self._wrap_structure(as_indexed(Document.from_html(page)), root_label)
            for page in pages
        ]

    def wrap_html_traced(
        self,
        pages: Sequence[str],
        root_label: str = "result",
    ) -> List[Tuple[OutputNode, Dict]]:
        """Wrap raw HTML pages while timing each stage of the work.

        Returns one ``(output, trace)`` pair per page, where ``trace``
        is the cheap stats payload shards ship back over the RPC
        protocol so the client can graft ``snapshot.build`` /
        ``kernel.run`` spans into the request trace (see
        :meth:`repro.serve.tracing.Span.graft_kernel_stats`)::

            {"snapshot_build_ms": float,   # HTML -> columnar snapshot
             "kernel_ms": float,           # extraction + assembly
             "runs": [per-plan kernel stats dicts]}

        Each ``runs`` entry is an :attr:`EvaluationResult.stats` dict
        (engine, rounds, facts, frontier_widths, fallback).  No Span
        objects are built here -- just counters and two clock reads per
        page, so the overhead over :meth:`wrap_html_many` is noise.

        >>> from repro.datalog import parse_program
        >>> w = Wrapper().add_datalog("item", parse_program(
        ...     "item(x) :- label_li(x).", query="item"))
        >>> [(out, trace)] = w.wrap_html_traced(["<ul><li>a<li>b</ul>"])
        >>> out.to_sexpr()
        'result(item, item)'
        >>> trace["runs"][0]["engine"] in ("frontier", "worklist")
        True
        >>> trace["snapshot_build_ms"] >= 0.0
        True
        """
        self.compile()
        out: List[Tuple[OutputNode, Dict]] = []
        for page in pages:
            started = time.perf_counter()
            runtime = as_indexed(Document.from_html(page))
            # Force the snapshot build so its cost lands in this stage
            # rather than inside the first plan's evaluation.
            runtime.base.snapshot()
            built = time.perf_counter()
            runs: List[Dict] = []
            output = self._wrap_structure(runtime, root_label, collect=runs)
            finished = time.perf_counter()
            out.append(
                (
                    output,
                    {
                        "snapshot_build_ms": round((built - started) * 1e3, 3),
                        "kernel_ms": round((finished - built) * 1e3, 3),
                        "runs": runs,
                    },
                )
            )
        return out

    def wrap_html_stateful(
        self,
        page: str,
        prior: Optional[WrapperState] = None,
        root_label: str = "result",
    ):
        """Wrap one HTML page warm against its previous version.

        ``prior`` is the :class:`WrapperState` returned by this method for
        an earlier version of the *same* document (``None`` starts cold).
        Returns ``(output, state, stats)``: the output tree, the state to
        feed the next version, and a stats dict -- ``stats["warm"]`` is
        true when at least one plan reused the previous fixpoint
        (``engine`` starting with ``"incremental"``), and ``dirty`` /
        ``dirty_fraction`` report the largest diff any plan saw.  Plans
        outside the kernel fragment fall back to cold evaluation per
        document, so this is always safe to call.

        >>> from repro.datalog import parse_program
        >>> w = Wrapper().add_datalog("item", parse_program(
        ...     "item(x) :- label_li(x).", query="item"))
        >>> out, state, stats = w.wrap_html_stateful("<ul><li>a<li>b</ul>")
        >>> out.to_sexpr(), stats["warm"]
        ('result(item, item)', False)
        >>> out, state, stats = w.wrap_html_stateful(
        ...     "<ul><li>a<li>c</ul>", prior=state)
        >>> out.to_sexpr(), stats["warm"]
        ('result(item, item)', True)
        """
        self.compile()
        runtime = as_indexed(Document.from_html(page))
        prior_states = prior.states if prior is not None else {}
        results: Dict[str, Set[int]] = {}
        runs: Dict[int, object] = {}
        next_states: Dict[int, object] = {}
        engines: List[str] = []
        dirty: Optional[int] = None
        dirty_fraction: Optional[float] = None
        for index, (kind, name, payload) in enumerate(self._functions):
            if kind != "datalog":
                raise WrapError(
                    f"extraction function {name!r} ({kind}) needs a "
                    "Node-backed structure; streaming Documents only "
                    "support datalog/Elog extraction"
                )
            program, pred = payload
            plan = self._compiled_plan(index, program)
            run = runs.get(id(plan))
            if run is None:
                # Distinct plans keyed by order of first use: stable
                # across calls because ``self._functions`` is fixed.
                slot = len(next_states)
                result, state, info = plan.run_incremental(
                    runtime, prior_states.get(slot)
                )
                next_states[slot] = state
                engines.append(result.engine or result.method)
                if info is not None:
                    if dirty is None or info["dirty"] > dirty:
                        dirty = info["dirty"]
                        dirty_fraction = info["dirty_fraction"]
                run = runs[id(plan)] = result
            ids = run.unary(pred)
            known = results.get(name)
            results[name] = ids if known is None else known | ids
        assignment: Dict[int, str] = {}
        for name in self.names():
            for ident in results.get(name, ()):
                assignment.setdefault(ident, name)
        output = build_output_from_snapshot(
            runtime.base.snapshot(), assignment, root_label=root_label
        )
        stats = {
            "warm": any(e.startswith("incremental") for e in engines),
            "engines": engines,
            "dirty": dirty,
            "dirty_fraction": dirty_fraction,
        }
        return output, WrapperState(next_states), stats

    def extract_html_many(
        self,
        pages: Sequence[str],
        workers: Optional[int] = None,
    ) -> List[Dict[str, Set[int]]]:
        """Batch extraction from raw HTML pages on the streaming path."""
        self.compile()
        if _parallel(workers):
            return self._fanout(_job_extract_html, list(pages), workers, None)
        return [
            self._extract_structure(as_indexed(Document.from_html(page)))
            for page in pages
        ]

    # -- internals -----------------------------------------------------------

    def _wrap_structure(
        self,
        structure: IndexedStructure,
        root_label: str,
        collect: Optional[List[Dict]] = None,
    ) -> OutputNode:
        results = self._extract_structure(structure, collect=collect)
        base = structure.base
        if isinstance(base, Document):
            assignment: Dict[int, str] = {}
            for name in self.names():
                for ident in results.get(name, ()):
                    assignment.setdefault(ident, name)
            return build_output_from_snapshot(
                base.snapshot(), assignment, root_label=root_label
            )
        node_assignment: Dict[int, str] = {}
        for name in self.names():
            for ident in results.get(name, ()):
                node_assignment.setdefault(id(structure.node(ident)), name)
        return build_output_tree(
            structure.root_node, node_assignment, root_label=root_label
        )

    def _fanout(self, job, items: list, workers: int, root_label: Optional[str]) -> list:
        from concurrent.futures import ProcessPoolExecutor

        chunksize = max(1, len(items) // (workers * 4))
        with ProcessPoolExecutor(
            max_workers=workers,
            initializer=_pool_init,
            initargs=(self, root_label),
        ) as pool:
            return list(pool.map(job, items, chunksize=chunksize))


def _parallel(workers: Optional[int]) -> bool:
    return workers is not None and workers > 1


#: Per-worker state: the unpickled wrapper and the batch's root label.
_POOL_STATE: Optional[tuple] = None


def _pool_init(wrapper: Wrapper, root_label: Optional[str]) -> None:
    global _POOL_STATE
    _POOL_STATE = (wrapper, root_label)


def _job_wrap_html(page: str) -> OutputNode:
    wrapper, root_label = _POOL_STATE
    return wrapper.wrap_html_many([page], root_label=root_label)[0]


def _job_extract_html(page: str) -> Dict[str, Set[int]]:
    wrapper, _ = _POOL_STATE
    return wrapper.extract_html_many([page])[0]


def _job_wrap(document: DocumentLike) -> OutputNode:
    wrapper, root_label = _POOL_STATE
    return wrapper.wrap(document, root_label=root_label)


def _job_extract(document: DocumentLike) -> Dict[str, Set[int]]:
    wrapper, _ = _POOL_STATE
    return wrapper.extract(document)

"""Wrappers: bundles of information extraction functions.

A :class:`Wrapper` maps extraction-predicate names to unary queries; it
can host queries in any of the library's formalisms (Elog- programs,
monadic datalog programs, MSO formulas, automaton queries), evaluates them
all on a document tree, and assembles the wrapped output tree of
Section 6's introduction.

The wrapper is a *compile-once* artifact: every registered datalog/Elog
program is compiled into a :class:`repro.datalog.plan.CompiledProgram` the
first time it runs and the plan is reused for every subsequent document
(MSO queries are already compiled to automata at registration).  Per
document, one shared :class:`repro.structures.IndexedStructure` carries the
relation extensions, positional indexes and the columnar tree snapshot
across *all* extraction functions; the batch entry points
:meth:`Wrapper.extract_many` and :meth:`Wrapper.wrap_many` exploit both
properties to wrap a stream of documents without redundant work.  Datalog
and Elog- extraction functions run with automatic strategy selection, so
monadic tree workloads -- the common case for wrappers -- go through the
linear-time propagation kernel (:mod:`repro.datalog.kernel`).
"""

from __future__ import annotations

from typing import Callable, Dict, Iterable, List, Optional, Sequence, Set

from repro.datalog.plan import CompiledProgram, compile_program
from repro.datalog.program import Program
from repro.elog.syntax import ElogProgram
from repro.elog.translate import elog_to_datalog
from repro.errors import WrapError
from repro.structures import IndexedStructure, as_indexed
from repro.trees.node import Node
from repro.trees.unranked import UnrankedStructure
from repro.wrap.output import OutputNode, build_output_tree


class Wrapper:
    """A wrapper = an ordered set of named information extraction functions.

    Extraction functions are added through the ``add_*`` methods; the
    order of addition is the relabeling priority (when a node matches
    several predicates, the earliest-added wins -- wrappers that need
    multi-labels should merge names beforehand).

    Examples
    --------
    >>> from repro.trees import parse_sexpr
    >>> from repro.datalog import parse_program
    >>> w = Wrapper()
    >>> _ = w.add_datalog("item", parse_program(
    ...     "item(x) :- label_li(x).", query="item"))
    >>> tree = parse_sexpr("ul(li, li)")
    >>> w.wrap(tree).to_sexpr()
    'result(item, item)'
    >>> [out.to_sexpr() for out in w.wrap_many(
    ...     [parse_sexpr("ul(li)"), parse_sexpr("ul(li, li, li)")])]
    ['result(item)', 'result(item, item, item)']
    """

    def __init__(self):
        self._functions: List[tuple] = []
        #: Lazily compiled plans, keyed by position in ``self._functions``.
        self._compiled: Dict[int, CompiledProgram] = {}

    # -- registration --------------------------------------------------------

    def add_datalog(self, name: str, program: Program, predicate: Optional[str] = None) -> "Wrapper":
        """Add an extraction function given by a monadic datalog program.

        ``predicate`` defaults to the program's query predicate.
        """
        pred = predicate or program.query
        if pred is None:
            raise WrapError("datalog extraction needs a query predicate")
        self._functions.append(("datalog", name, (program, pred)))
        return self

    def add_elog(self, name: str, program: ElogProgram, pattern: Optional[str] = None) -> "Wrapper":
        """Add an extraction function given by an Elog- pattern."""
        pat = pattern or program.query
        if pat is None:
            raise WrapError("Elog extraction needs a query pattern")
        self._functions.append(("datalog", name, (elog_to_datalog(program), pat)))
        return self

    def add_mso(self, name: str, formula, free_var: str, labels: Sequence[str]) -> "Wrapper":
        """Add an extraction function given by a unary MSO query."""
        from repro.mso.compile import compile_query

        query = compile_query(formula, free_var, labels)
        self._functions.append(("automaton", name, query))
        return self

    def add_automaton(self, name: str, query) -> "Wrapper":
        """Add an extraction function given by a
        :class:`repro.automata.unary.UnaryQueryDTA`."""
        self._functions.append(("automaton", name, query))
        return self

    def add_callable(self, name: str, function: Callable[[UnrankedStructure], Set[int]]) -> "Wrapper":
        """Add an arbitrary ``structure -> node id set`` function."""
        self._functions.append(("callable", name, function))
        return self

    # -- compilation ---------------------------------------------------------

    def compile(self) -> "Wrapper":
        """Eagerly compile every registered datalog/Elog program.

        Normally compilation happens lazily on first use; call this to move
        the cost out of the first document (e.g. before timing a batch).
        """
        for index, (kind, _, payload) in enumerate(self._functions):
            if kind == "datalog":
                self._compiled_plan(index, payload[0])
        return self

    def _compiled_plan(self, index: int, program: Program) -> CompiledProgram:
        plan = self._compiled.get(index)
        if plan is None:
            plan = compile_program(program)
            self._compiled[index] = plan
        return plan

    # -- evaluation ----------------------------------------------------------

    def names(self) -> List[str]:
        """Extraction-function names in priority order."""
        return [name for _, name, _ in self._functions]

    def _extract_structure(self, structure: IndexedStructure) -> Dict[str, Set[int]]:
        """Evaluate all extraction functions against one shared runtime."""
        # Automaton queries and user callables keep receiving the concrete
        # (unwrapped) structure their registered signatures promise; only
        # the datalog engine consumes the index wrapper.
        base = structure.base
        out: Dict[str, Set[int]] = {}
        for index, (kind, name, payload) in enumerate(self._functions):
            if kind == "datalog":
                program, pred = payload
                ids = self._compiled_plan(index, program).run(structure).unary(pred)
            elif kind == "automaton":
                ids = payload.select_ids(base)
            else:
                ids = set(payload(base))
            out.setdefault(name, set()).update(ids)
        return out

    def extract(
        self, tree: Node, structure: Optional[UnrankedStructure] = None
    ) -> Dict[str, Set[int]]:
        """Evaluate all extraction functions; node-id sets per name.

        ``structure`` may supply an existing (possibly indexed) structure
        for ``tree`` so the relational view is not rebuilt.
        """
        if structure is None:
            structure = UnrankedStructure(tree)
        return self._extract_structure(as_indexed(structure))

    def extract_many(self, trees: Iterable[Node]) -> List[Dict[str, Set[int]]]:
        """Batch :meth:`extract`: one shared indexed structure per document,
        all extraction programs compiled exactly once across the batch."""
        self.compile()
        return [
            self._extract_structure(as_indexed(UnrankedStructure(tree)))
            for tree in trees
        ]

    def wrap(self, tree: Node, root_label: str = "result") -> OutputNode:
        """Wrap a document: extract, relabel, build the output tree."""
        structure = as_indexed(UnrankedStructure(tree))
        return self._wrap_structure(tree, structure, root_label)

    def wrap_many(
        self, trees: Sequence[Node], root_label: str = "result"
    ) -> List[OutputNode]:
        """Batch :meth:`wrap` over a stream of documents.

        Builds exactly one :class:`repro.structures.IndexedStructure` per
        document and reuses every compiled extraction plan across the whole
        batch.
        """
        self.compile()
        return [
            self._wrap_structure(tree, as_indexed(UnrankedStructure(tree)), root_label)
            for tree in trees
        ]

    def _wrap_structure(
        self, tree: Node, structure: IndexedStructure, root_label: str
    ) -> OutputNode:
        results = self._extract_structure(structure)
        assignment: Dict[int, str] = {}
        for name in self.names():
            for ident in results.get(name, ()):
                node = structure.node(ident)
                assignment.setdefault(id(node), name)
        return build_output_tree(tree, assignment, root_label=root_label)

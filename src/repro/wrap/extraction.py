"""Wrappers: bundles of information extraction functions.

A :class:`Wrapper` maps extraction-predicate names to unary queries; it
can host queries in any of the library's formalisms (Elog- programs,
monadic datalog programs, MSO formulas, automaton queries), evaluates them
all on a document tree, and assembles the wrapped output tree of
Section 6's introduction.
"""

from __future__ import annotations

from typing import Callable, Dict, Iterable, List, Optional, Sequence, Set

from repro.datalog.engine import evaluate
from repro.datalog.program import Program
from repro.elog.syntax import ElogProgram
from repro.elog.translate import elog_to_datalog
from repro.errors import WrapError
from repro.trees.node import Node
from repro.trees.unranked import UnrankedStructure
from repro.wrap.output import OutputNode, build_output_tree


class Wrapper:
    """A wrapper = an ordered set of named information extraction functions.

    Extraction functions are added through the ``add_*`` methods; the
    order of addition is the relabeling priority (when a node matches
    several predicates, the earliest-added wins -- wrappers that need
    multi-labels should merge names beforehand).

    Examples
    --------
    >>> from repro.trees import parse_sexpr
    >>> from repro.datalog import parse_program
    >>> w = Wrapper()
    >>> _ = w.add_datalog("item", parse_program(
    ...     "item(x) :- label_li(x).", query="item"))
    >>> tree = parse_sexpr("ul(li, li)")
    >>> w.wrap(tree).to_sexpr()
    'result(item, item)'
    """

    def __init__(self):
        self._functions: List[tuple] = []

    # -- registration --------------------------------------------------------

    def add_datalog(self, name: str, program: Program, predicate: Optional[str] = None) -> "Wrapper":
        """Add an extraction function given by a monadic datalog program.

        ``predicate`` defaults to the program's query predicate.
        """
        pred = predicate or program.query
        if pred is None:
            raise WrapError("datalog extraction needs a query predicate")
        self._functions.append(("datalog", name, (program, pred)))
        return self

    def add_elog(self, name: str, program: ElogProgram, pattern: Optional[str] = None) -> "Wrapper":
        """Add an extraction function given by an Elog- pattern."""
        pat = pattern or program.query
        if pat is None:
            raise WrapError("Elog extraction needs a query pattern")
        self._functions.append(("datalog", name, (elog_to_datalog(program), pat)))
        return self

    def add_mso(self, name: str, formula, free_var: str, labels: Sequence[str]) -> "Wrapper":
        """Add an extraction function given by a unary MSO query."""
        from repro.mso.compile import compile_query

        query = compile_query(formula, free_var, labels)
        self._functions.append(("automaton", name, query))
        return self

    def add_automaton(self, name: str, query) -> "Wrapper":
        """Add an extraction function given by a
        :class:`repro.automata.unary.UnaryQueryDTA`."""
        self._functions.append(("automaton", name, query))
        return self

    def add_callable(self, name: str, function: Callable[[UnrankedStructure], Set[int]]) -> "Wrapper":
        """Add an arbitrary ``structure -> node id set`` function."""
        self._functions.append(("callable", name, function))
        return self

    # -- evaluation ----------------------------------------------------------

    def names(self) -> List[str]:
        """Extraction-function names in priority order."""
        return [name for _, name, _ in self._functions]

    def extract(self, tree: Node) -> Dict[str, Set[int]]:
        """Evaluate all extraction functions; node-id sets per name."""
        structure = UnrankedStructure(tree)
        out: Dict[str, Set[int]] = {}
        for kind, name, payload in self._functions:
            if kind == "datalog":
                program, pred = payload
                result = evaluate(program, structure)
                ids = result.unary(pred)
            elif kind == "automaton":
                ids = payload.select_ids(structure)
            else:
                ids = set(payload(structure))
            out.setdefault(name, set()).update(ids)
        return out

    def wrap(self, tree: Node, root_label: str = "result") -> OutputNode:
        """Wrap a document: extract, relabel, build the output tree."""
        structure = UnrankedStructure(tree)
        results = self.extract(tree)
        assignment: Dict[int, str] = {}
        for name in self.names():
            for ident in results.get(name, ()):
                node = structure.node(ident)
                assignment.setdefault(id(node), name)
        return build_output_tree(tree, assignment, root_label=root_label)

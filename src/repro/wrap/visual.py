"""A programmatic simulation of visual wrapper specification (Section 6.2).

The Lixto process the paper describes: the user names a destination
pattern, picks a parent pattern, the system highlights the parent
pattern's instances, the user clicks a region inside one of them, the
system derives the best path ``pi`` and generates the rule
``p(x) <- p0(x0), subelem_pi(x0, x).``, which can then be refined with
conditions or generalized with wildcards -- all without writing Elog.

:class:`VisualSession` reproduces exactly this loop with nodes standing in
for mouse clicks.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.elog.paths import Path, WILDCARD
from repro.elog.syntax import Condition, ElogProgram, ElogRule, ROOT_PATTERN
from repro.elog.translate import evaluate_elog
from repro.errors import WrapError
from repro.trees.node import Node
from repro.trees.unranked import UnrankedStructure


class VisualSession:
    """An interactive wrapper-building session over one example document.

    Examples
    --------
    >>> from repro.trees import parse_sexpr
    >>> doc = parse_sexpr("html(body(table(tr(td), tr(td))))")
    >>> session = VisualSession(doc)
    >>> row = doc.children[0].children[0].children[0]
    >>> _ = session.select("record", "root", row)
    >>> sorted(n.label for n in session.instances("record"))
    ['tr', 'tr']
    """

    def __init__(self, document: Node):
        self.document = document
        self.structure = UnrankedStructure(document)
        self.rules: List[ElogRule] = []
        self._var_counter = 0

    # -- the visual loop -----------------------------------------------------

    def patterns(self) -> Set[str]:
        """Patterns defined so far (the palette the user picks parents from)."""
        return {rule.head for rule in self.rules}

    def instances(self, pattern: str) -> List[Node]:
        """Highlight a pattern: its instances on the example document."""
        if pattern == ROOT_PATTERN:
            return [self.document]
        if pattern not in self.patterns():
            return []
        program = self.program(query=pattern)
        result = evaluate_elog(program, self.structure)
        return [self.structure.node(i) for i in sorted(result.unary(pattern))]

    def select(
        self,
        new_pattern: str,
        parent_pattern: str,
        clicked: Node,
        generalize_labels: Sequence[str] = (),
    ) -> ElogRule:
        """Simulate clicking ``clicked`` inside a parent-pattern instance.

        The system finds the innermost parent-pattern instance containing
        the click, derives the label path, optionally generalizes the
        labels in ``generalize_labels`` to wildcards, and adds the rule.
        """
        container = self._innermost_instance(parent_pattern, clicked)
        if container is None:
            raise WrapError(
                f"clicked node is inside no instance of {parent_pattern!r}"
            )
        path = tuple(clicked.label_path_from(container))
        if generalize_labels:
            path = tuple(
                WILDCARD if symbol in generalize_labels else symbol
                for symbol in path
            )
        if not path:
            raise WrapError("click the interior of the parent instance")
        rule = ElogRule(
            head=new_pattern,
            head_var="x",
            parent=parent_pattern,
            parent_var="x0",
            path=path,
        )
        self.rules.append(rule)
        return rule

    def refine_last(self, condition: Condition) -> ElogRule:
        """Add a condition to the most recent rule (the 'refine' step)."""
        if not self.rules:
            raise WrapError("no rule to refine")
        old = self.rules.pop()
        refined = ElogRule(
            head=old.head,
            head_var=old.head_var,
            parent=old.parent,
            parent_var=old.parent_var,
            path=old.path,
            conditions=list(old.conditions) + [condition],
            refs=list(old.refs),
        )
        self.rules.append(refined)
        return refined

    def _innermost_instance(self, pattern: str, node: Node) -> Optional[Node]:
        instances = {id(n) for n in self.instances(pattern)}
        current: Optional[Node] = node.parent
        while current is not None:
            if id(current) in instances:
                return current
            current = current.parent
        return None

    # -- output --------------------------------------------------------------

    def program(self, query: Optional[str] = None) -> ElogProgram:
        """The Elog- program built so far."""
        return ElogProgram(list(self.rules), query=query)

"""Automata substrate.

Word automata (:mod:`repro.automata.regex`, :mod:`repro.automata.nfa`,
:mod:`repro.automata.twodfa`) support the constructions of Lemma 5.9
(caterpillar expressions), Theorem 4.14 (SQAu up/down/stay languages) and
Corollary 5.12 (containment).

Bottom-up tree automata over the firstchild/nextsibling binary encoding
(:mod:`repro.automata.treeauto`) are the engine behind the MSO compiler
(Proposition 2.1, Theorem 4.4); :mod:`repro.automata.unary` evaluates unary
queries presented by deterministic tree automata in linear time, and
:mod:`repro.automata.dta_to_datalog` emits the equivalent monadic datalog
program.
"""

from repro.automata.regex import (
    Concat,
    Empty,
    Epsilon,
    Plus,
    Regex,
    Star,
    Sym,
    Union,
    concat,
    star,
    sym,
    union,
)
from repro.automata.nfa import DFA, NFA, language_equal, language_subset, thompson
from repro.automata.twodfa import TwoDFA
from repro.automata.treeauto import DTA, NTA, product, complement, emptiness_witness
from repro.automata.unary import UnaryQueryDTA
from repro.automata.dta_to_datalog import unary_dta_to_datalog

__all__ = [
    "Regex",
    "Empty",
    "Epsilon",
    "Sym",
    "Concat",
    "Union",
    "Star",
    "Plus",
    "sym",
    "concat",
    "union",
    "star",
    "NFA",
    "DFA",
    "thompson",
    "language_subset",
    "language_equal",
    "TwoDFA",
    "NTA",
    "DTA",
    "product",
    "complement",
    "emptiness_witness",
    "UnaryQueryDTA",
    "unary_dta_to_datalog",
]

"""Regular expressions over arbitrary (hashable) symbol alphabets.

Used for caterpillar expressions (whose "symbols" are tree relations, some
inverted), for the ``u v* w`` down-transition languages of SQAu
(Proposition 4.13), and for word-language tests.

The AST is deliberately small: empty language, epsilon, single symbol,
concatenation, union, Kleene star.  ``Plus`` is provided as sugar
(``E+ = E.E*``, as in Section 2).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import FrozenSet, Hashable, Iterator, Sequence, Set, Tuple


class Regex:
    """Base class of regular-expression nodes."""

    def symbols(self) -> FrozenSet[Hashable]:
        """The set of alphabet symbols mentioned by the expression."""
        raise NotImplementedError

    def nullable(self) -> bool:
        """Whether the language contains the empty word."""
        raise NotImplementedError


@dataclass(frozen=True)
class Empty(Regex):
    """The empty language."""

    def symbols(self) -> FrozenSet[Hashable]:
        return frozenset()

    def nullable(self) -> bool:
        return False

    def __str__(self) -> str:
        return "<empty>"


@dataclass(frozen=True)
class Epsilon(Regex):
    """The language containing exactly the empty word."""

    def symbols(self) -> FrozenSet[Hashable]:
        return frozenset()

    def nullable(self) -> bool:
        return True

    def __str__(self) -> str:
        return "eps"


@dataclass(frozen=True)
class Sym(Regex):
    """A single alphabet symbol."""

    symbol: Hashable

    def symbols(self) -> FrozenSet[Hashable]:
        return frozenset([self.symbol])

    def nullable(self) -> bool:
        return False

    def __str__(self) -> str:
        return str(self.symbol)


@dataclass(frozen=True)
class Concat(Regex):
    """Concatenation of two or more expressions."""

    parts: Tuple[Regex, ...]

    def symbols(self) -> FrozenSet[Hashable]:
        out: Set[Hashable] = set()
        for part in self.parts:
            out |= part.symbols()
        return frozenset(out)

    def nullable(self) -> bool:
        return all(p.nullable() for p in self.parts)

    def __str__(self) -> str:
        return ".".join(_wrap(p) for p in self.parts)


@dataclass(frozen=True)
class Union(Regex):
    """Union (disjunction) of two or more expressions."""

    parts: Tuple[Regex, ...]

    def symbols(self) -> FrozenSet[Hashable]:
        out: Set[Hashable] = set()
        for part in self.parts:
            out |= part.symbols()
        return frozenset(out)

    def nullable(self) -> bool:
        return any(p.nullable() for p in self.parts)

    def __str__(self) -> str:
        return "(" + " | ".join(str(p) for p in self.parts) + ")"


@dataclass(frozen=True)
class Star(Regex):
    """Kleene star."""

    inner: Regex

    def symbols(self) -> FrozenSet[Hashable]:
        return self.inner.symbols()

    def nullable(self) -> bool:
        return True

    def __str__(self) -> str:
        return f"{_wrap(self.inner)}*"


def _wrap(expr: Regex) -> str:
    if isinstance(expr, (Union, Concat)):
        return f"({expr})"
    return str(expr)


def Plus(inner: Regex) -> Regex:
    """``E+`` as the standard shortcut ``E . E*`` (Section 2)."""
    return Concat((inner, Star(inner)))


# -- convenience constructors ------------------------------------------------


def sym(symbol: Hashable) -> Regex:
    """A single-symbol expression."""
    return Sym(symbol)


def concat(*parts: Regex) -> Regex:
    """Concatenation, flattening nested concatenations and units."""
    flat = []
    for part in parts:
        if isinstance(part, Concat):
            flat.extend(part.parts)
        elif isinstance(part, Epsilon):
            continue
        elif isinstance(part, Empty):
            return Empty()
        else:
            flat.append(part)
    if not flat:
        return Epsilon()
    if len(flat) == 1:
        return flat[0]
    return Concat(tuple(flat))


def union(*parts: Regex) -> Regex:
    """Union, flattening nested unions and dropping empty members."""
    flat = []
    for part in parts:
        if isinstance(part, Union):
            flat.extend(part.parts)
        elif isinstance(part, Empty):
            continue
        else:
            flat.append(part)
    if not flat:
        return Empty()
    if len(flat) == 1:
        return flat[0]
    return Union(tuple(flat))


def star(inner: Regex) -> Regex:
    """Kleene star with unit simplifications."""
    if isinstance(inner, (Empty, Epsilon)):
        return Epsilon()
    if isinstance(inner, Star):
        return inner
    return Star(inner)


def word(symbols: Sequence[Hashable]) -> Regex:
    """The expression denoting exactly the given word."""
    return concat(*[Sym(s) for s in symbols])


def enumerate_words(expr: Regex, max_length: int) -> Iterator[Tuple[Hashable, ...]]:
    """Enumerate all words of the language up to ``max_length`` (for tests).

    Implemented by breadth-first expansion through the Thompson automaton to
    avoid the combinatorial pitfalls of symbolic derivation.
    """
    from repro.automata.nfa import thompson

    nfa = thompson(expr)
    frontier = [((), nfa.epsilon_closure(nfa.start))]
    seen_words: Set[Tuple[Hashable, ...]] = set()
    for _ in range(max_length + 1):
        next_frontier = []
        for prefix, states in frontier:
            if states & nfa.accept and prefix not in seen_words:
                seen_words.add(prefix)
                yield prefix
            if len(prefix) == max_length:
                continue
            for symbol in sorted(nfa.alphabet, key=repr):
                target = nfa.step(states, symbol)
                if target:
                    next_frontier.append((prefix + (symbol,), target))
        frontier = next_frontier
        if not frontier:
            return

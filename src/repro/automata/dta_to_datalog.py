"""From automaton-presented unary queries to monadic datalog (Theorem 4.4).

Theorem 4.4 states that every unary MSO-definable query over trees is
definable in monadic datalog.  Our constructive route compiles the MSO
formula to a deterministic bottom-up tree automaton over the marked binary
encoding (:mod:`repro.mso.compile`) and then emits, via this module, a
monadic datalog program over ``tau_ur`` that simulates the two-pass
evaluation of :class:`repro.automata.unary.UnaryQueryDTA`:

* ``fcst_q(v)``  -- the (unmarked) state of ``v``'s first-child encoding
  subtree is ``q`` (the empty state when ``v`` is a leaf);
* ``nsst_q(v)``  -- likewise for ``v``'s next-sibling subtree (the empty
  state when ``v`` is a last sibling or the root);
* ``st_q(v)``    -- the state of ``v``'s own binary subtree;
* ``acc_q(v)``   -- ``q`` belongs to the acceptance set of ``v`` (the whole
  tree is accepted if ``v``'s subtree evaluates to ``q``);
* ``<query>(v)`` -- ``v``'s *marked* transition lands in its acceptance set.

The bottom-up predicates mirror the paper's type predicates
``T^{MSO,up}_k`` and the top-down ones its envelope types
``T^{MSO,down}_k``; the final rule is the analogue of the proof's part (3)
combination rules.  The program size is ``O(|Sigma| * |Q|^2)`` and the
program evaluates in linear time by Theorem 4.2.
"""

from __future__ import annotations

from typing import Iterable, List

from repro.automata.unary import UnaryQueryDTA
from repro.datalog.program import Program, Rule
from repro.datalog.terms import Atom, var

_X = var("x")
_Y = var("y")


def unary_dta_to_datalog(
    query: UnaryQueryDTA,
    labels: Iterable[str] | None = None,
    query_pred: str = "select",
) -> Program:
    """Emit the monadic datalog program equivalent to a unary DTA query.

    Parameters
    ----------
    query:
        The automaton-presented unary query.
    labels:
        Labels to generate rules for (defaults to the automaton's alphabet
        labels).
    query_pred:
        Name of the distinguished query predicate.

    Returns
    -------
    Program
        A monadic datalog program over ``tau_ur`` whose query predicate
        selects exactly the nodes the automaton query selects (verified
        extensively in ``tests/test_mso_to_datalog.py``).
    """
    dta = query.dta
    sigma = sorted(labels) if labels is not None else sorted(query.labels)
    states = range(dta.num_states)
    empty = dta.empty_state
    rules: List[Rule] = []

    def fcst(q: int) -> str:
        return f"fcst_{q}"

    def nsst(q: int) -> str:
        return f"nsst_{q}"

    def st(q: int) -> str:
        return f"st_{q}"

    def acc(q: int) -> str:
        return f"acc_{q}"

    # Child-state base cases: missing binary children carry the empty state.
    rules.append(Rule(Atom(fcst(empty), (_X,)), [Atom("leaf", (_X,))]))
    rules.append(Rule(Atom(nsst(empty), (_X,)), [Atom("lastsibling", (_X,))]))
    rules.append(Rule(Atom(nsst(empty), (_X,)), [Atom("root", (_X,))]))

    # Child-state propagation.
    for q in states:
        rules.append(
            Rule(
                Atom(fcst(q), (_X,)),
                [Atom("firstchild", (_X, _Y)), Atom(st(q), (_Y,))],
            )
        )
        rules.append(
            Rule(
                Atom(nsst(q), (_X,)),
                [Atom("nextsibling", (_X, _Y)), Atom(st(q), (_Y,))],
            )
        )

    # Bottom-up states: st_{delta(a0, ql, qr)}(x) <- label_a(x), fcst, nsst.
    for label in sigma:
        unmarked = (label, frozenset())
        for ql in states:
            for qr in states:
                target = dta.step(unmarked, ql, qr)
                rules.append(
                    Rule(
                        Atom(st(target), (_X,)),
                        [
                            Atom(f"label_{label}", (_X,)),
                            Atom(fcst(ql), (_X,)),
                            Atom(nsst(qr), (_X,)),
                        ],
                    )
                )

    # Acceptance sets, top-down.  Root: the automaton's accepting states.
    for q in dta.accept:
        rules.append(Rule(Atom(acc(q), (_X,)), [Atom("root", (_X,))]))

    # If delta(a0, ql, qr) in Acc(x) then ql in Acc(firstchild(x)) given
    # nsst_{qr}(x), and qr in Acc(nextsibling-child) given fcst_{ql}(x).
    for label in sigma:
        unmarked = (label, frozenset())
        for ql in states:
            for qr in states:
                target = dta.step(unmarked, ql, qr)
                rules.append(
                    Rule(
                        Atom(acc(ql), (_Y,)),
                        [
                            Atom(acc(target), (_X,)),
                            Atom(f"label_{label}", (_X,)),
                            Atom(nsst(qr), (_X,)),
                            Atom("firstchild", (_X, _Y)),
                        ],
                    )
                )
                rules.append(
                    Rule(
                        Atom(acc(qr), (_Y,)),
                        [
                            Atom(acc(target), (_X,)),
                            Atom(f"label_{label}", (_X,)),
                            Atom(fcst(ql), (_X,)),
                            Atom("nextsibling", (_X, _Y)),
                        ],
                    )
                )

    # Selection: the marked transition must land in the acceptance set.
    for label in sigma:
        marked = (label, frozenset([query.var]))
        for ql in states:
            for qr in states:
                target = dta.step(marked, ql, qr)
                rules.append(
                    Rule(
                        Atom(query_pred, (_X,)),
                        [
                            Atom(f"label_{label}", (_X,)),
                            Atom(fcst(ql), (_X,)),
                            Atom(nsst(qr), (_X,)),
                            Atom(acc(target), (_X,)),
                        ],
                    )
                )

    declared = {f(q) for q in states for f in (fcst, nsst, st, acc)}
    declared.add(query_pred)
    return Program(rules, query=query_pred, declared=declared)

"""Word automata: NFAs with epsilon moves and total DFAs.

Provides the Thompson construction from :mod:`repro.automata.regex`
expressions (linear time, as required by Lemma 5.9), the subset
construction, boolean operations and the language-containment test used by
Corollary 5.12 (caterpillar query containment is PSPACE-complete; the
complement-product-emptiness routine below is the standard upper-bound
procedure).
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Hashable, Iterable, List, Optional, Sequence, Set, Tuple

from repro.automata.regex import Concat, Empty, Epsilon, Regex, Star, Sym, Union
from repro.errors import AutomatonError

Symbol = Hashable


class NFA:
    """A nondeterministic finite automaton with epsilon transitions.

    States are integers.  ``transitions`` maps ``(state, symbol)`` to a set
    of successor states; ``epsilon`` maps a state to a set of
    epsilon-successors.
    """

    def __init__(
        self,
        num_states: int,
        alphabet: Iterable[Symbol],
        transitions: Dict[Tuple[int, Symbol], Set[int]],
        epsilon: Dict[int, Set[int]],
        start: Set[int],
        accept: Set[int],
    ):
        self.num_states = num_states
        self.alphabet: FrozenSet[Symbol] = frozenset(alphabet)
        self.transitions = transitions
        self.epsilon = epsilon
        self.start = set(start)
        self.accept = set(accept)

    # -- execution ----------------------------------------------------------

    def epsilon_closure(self, states: Iterable[int]) -> FrozenSet[int]:
        """The epsilon closure of a set of states."""
        closure = set(states)
        stack = list(closure)
        while stack:
            state = stack.pop()
            for successor in self.epsilon.get(state, ()):
                if successor not in closure:
                    closure.add(successor)
                    stack.append(successor)
        return frozenset(closure)

    def step(self, states: Iterable[int], symbol: Symbol) -> FrozenSet[int]:
        """One symbol step (including closing under epsilon moves)."""
        moved: Set[int] = set()
        for state in states:
            moved |= self.transitions.get((state, symbol), set())
        return self.epsilon_closure(moved)

    def accepts(self, word: Sequence[Symbol]) -> bool:
        """Whether the automaton accepts ``word``."""
        states = self.epsilon_closure(self.start)
        for symbol in word:
            states = self.step(states, symbol)
            if not states:
                return False
        return bool(states & self.accept)

    # -- construction -------------------------------------------------------

    def determinize(self, alphabet: Optional[Iterable[Symbol]] = None) -> "DFA":
        """Subset construction; the result is total over ``alphabet``."""
        sigma = frozenset(alphabet) if alphabet is not None else self.alphabet
        start = self.epsilon_closure(self.start)
        index: Dict[FrozenSet[int], int] = {start: 0}
        worklist: List[FrozenSet[int]] = [start]
        transitions: Dict[Tuple[int, Symbol], int] = {}
        while worklist:
            subset = worklist.pop()
            source = index[subset]
            for symbol in sigma:
                target = self.step(subset, symbol)
                if target not in index:
                    index[target] = len(index)
                    worklist.append(target)
                transitions[(source, symbol)] = index[target]
        accept = {i for subset, i in index.items() if subset & self.accept}
        return DFA(len(index), sigma, transitions, 0, accept)

    def reverse_step(self, states: Iterable[int], symbol: Symbol) -> Set[int]:
        """States from which ``symbol`` (plus epsilon moves) reaches ``states``.

        Used by the backward scans of the SQAu up-transition encoding.
        """
        targets = set(states)
        out: Set[int] = set()
        for (state, sym_), successors in self.transitions.items():
            if sym_ == symbol and successors & targets:
                out.add(state)
        # Close backwards under epsilon.
        changed = True
        while changed:
            changed = False
            for state, successors in self.epsilon.items():
                if state not in out and successors & out:
                    out.add(state)
                    changed = True
        return out


class DFA:
    """A deterministic finite automaton, total over its alphabet."""

    def __init__(
        self,
        num_states: int,
        alphabet: Iterable[Symbol],
        transitions: Dict[Tuple[int, Symbol], int],
        start: int,
        accept: Set[int],
    ):
        self.num_states = num_states
        self.alphabet: FrozenSet[Symbol] = frozenset(alphabet)
        self.transitions = transitions
        self.start = start
        self.accept = set(accept)
        for state in range(num_states):
            for symbol in self.alphabet:
                if (state, symbol) not in transitions:
                    raise AutomatonError(
                        f"DFA transition function not total: missing "
                        f"({state}, {symbol!r})"
                    )

    def accepts(self, word: Sequence[Symbol]) -> bool:
        """Whether the DFA accepts ``word``."""
        state = self.start
        for symbol in word:
            if symbol not in self.alphabet:
                return False
            state = self.transitions[(state, symbol)]
        return state in self.accept

    def complement(self) -> "DFA":
        """The DFA for the complement language (same alphabet)."""
        accept = set(range(self.num_states)) - self.accept
        return DFA(self.num_states, self.alphabet, dict(self.transitions), self.start, accept)

    def product(self, other: "DFA", mode: str = "and") -> "DFA":
        """Product automaton; ``mode`` is ``"and"`` or ``"or"``."""
        if self.alphabet != other.alphabet:
            raise AutomatonError("product requires identical alphabets")
        index: Dict[Tuple[int, int], int] = {}
        transitions: Dict[Tuple[int, Symbol], int] = {}
        worklist = [(self.start, other.start)]
        index[(self.start, other.start)] = 0
        while worklist:
            pair = worklist.pop()
            source = index[pair]
            for symbol in self.alphabet:
                target = (
                    self.transitions[(pair[0], symbol)],
                    other.transitions[(pair[1], symbol)],
                )
                if target not in index:
                    index[target] = len(index)
                    worklist.append(target)
                transitions[(source, symbol)] = index[target]
        accept = set()
        for (a, b), i in index.items():
            in_a = a in self.accept
            in_b = b in other.accept
            if (mode == "and" and in_a and in_b) or (mode == "or" and (in_a or in_b)):
                accept.add(i)
        return DFA(len(index), self.alphabet, transitions, 0, accept)

    def is_empty(self) -> bool:
        """Whether the accepted language is empty."""
        return self.shortest_accepted() is None

    def shortest_accepted(self) -> Optional[Tuple[Symbol, ...]]:
        """A shortest accepted word, or ``None`` if the language is empty."""
        if self.start in self.accept:
            return ()
        visited = {self.start}
        frontier: List[Tuple[int, Tuple[Symbol, ...]]] = [(self.start, ())]
        while frontier:
            next_frontier = []
            for state, word in frontier:
                for symbol in sorted(self.alphabet, key=repr):
                    target = self.transitions[(state, symbol)]
                    if target in visited:
                        continue
                    visited.add(target)
                    extended = word + (symbol,)
                    if target in self.accept:
                        return extended
                    next_frontier.append((target, extended))
            frontier = next_frontier
        return None


def thompson(expr: Regex, alphabet: Optional[Iterable[Symbol]] = None) -> NFA:
    """Thompson construction: regex -> epsilon-NFA in linear time.

    The automaton has a single start and a single accept state, as used by
    the Lemma 5.9 encoding of caterpillar expressions into TMNF rules.
    """
    transitions: Dict[Tuple[int, Symbol], Set[int]] = {}
    epsilon: Dict[int, Set[int]] = {}
    counter = [0]

    def fresh() -> int:
        counter[0] += 1
        return counter[0] - 1

    def add_eps(a: int, b: int) -> None:
        epsilon.setdefault(a, set()).add(b)

    def build(e: Regex) -> Tuple[int, int]:
        if isinstance(e, Empty):
            return fresh(), fresh()
        if isinstance(e, Epsilon):
            a, b = fresh(), fresh()
            add_eps(a, b)
            return a, b
        if isinstance(e, Sym):
            a, b = fresh(), fresh()
            transitions.setdefault((a, e.symbol), set()).add(b)
            return a, b
        if isinstance(e, Concat):
            first_in, prev_out = build(e.parts[0])
            for part in e.parts[1:]:
                part_in, part_out = build(part)
                add_eps(prev_out, part_in)
                prev_out = part_out
            return first_in, prev_out
        if isinstance(e, Union):
            a, b = fresh(), fresh()
            for part in e.parts:
                part_in, part_out = build(part)
                add_eps(a, part_in)
                add_eps(part_out, b)
            return a, b
        if isinstance(e, Star):
            a, b = fresh(), fresh()
            inner_in, inner_out = build(e.inner)
            add_eps(a, inner_in)
            add_eps(inner_out, b)
            add_eps(a, b)
            add_eps(inner_out, inner_in)
            return a, b
        raise AutomatonError(f"unknown regex node {e!r}")

    start, end = build(expr)
    sigma = set(expr.symbols())
    if alphabet is not None:
        sigma |= set(alphabet)
    return NFA(counter[0], sigma, transitions, epsilon, {start}, {end})


def nfa_from_words(words: Iterable[Sequence[Symbol]], alphabet: Iterable[Symbol]) -> NFA:
    """An NFA accepting exactly the given finite set of words (for tests)."""
    transitions: Dict[Tuple[int, Symbol], Set[int]] = {}
    accept: Set[int] = set()
    counter = [1]
    for word_ in words:
        state = 0
        for symbol in word_:
            target = counter[0]
            counter[0] += 1
            transitions.setdefault((state, symbol), set()).add(target)
            state = target
        accept.add(state)
    return NFA(counter[0], alphabet, transitions, {}, {0}, accept)


def language_subset(
    a: NFA | DFA, b: NFA | DFA, alphabet: Optional[Iterable[Symbol]] = None
) -> Tuple[bool, Optional[Tuple[Symbol, ...]]]:
    """Decide ``L(a) <= L(b)``; on failure return a witness word.

    Returns ``(True, None)`` or ``(False, witness)`` where ``witness`` is a
    shortest word in ``L(a) - L(b)``.
    """
    sigma = set(alphabet or [])
    for machine in (a, b):
        sigma |= set(machine.alphabet)
    dfa_a = a if isinstance(a, DFA) else a.determinize(sigma)
    dfa_b = b if isinstance(b, DFA) else b.determinize(sigma)
    if isinstance(a, DFA) and a.alphabet != frozenset(sigma):
        dfa_a = _extend_alphabet(a, sigma)
    if isinstance(b, DFA) and b.alphabet != frozenset(sigma):
        dfa_b = _extend_alphabet(b, sigma)
    difference = dfa_a.product(dfa_b.complement(), mode="and")
    witness = difference.shortest_accepted()
    return (witness is None), witness


def language_equal(
    a: NFA | DFA, b: NFA | DFA, alphabet: Optional[Iterable[Symbol]] = None
) -> bool:
    """Decide ``L(a) = L(b)``."""
    left, _ = language_subset(a, b, alphabet)
    right, _ = language_subset(b, a, alphabet)
    return left and right


def _extend_alphabet(dfa: DFA, alphabet: Set[Symbol]) -> DFA:
    """Totalize a DFA over a larger alphabet with a fresh sink state."""
    sink = dfa.num_states
    transitions = dict(dfa.transitions)
    for state in range(dfa.num_states + 1):
        for symbol in alphabet:
            transitions.setdefault((state, symbol), sink)
    return DFA(dfa.num_states + 1, alphabet, transitions, dfa.start, set(dfa.accept))


def distinguishable_prefixes(
    oracle, prefixes: List[Sequence[Symbol]], suffixes: List[Sequence[Symbol]]
) -> int:
    """Count pairwise-distinguishable prefixes under a language oracle.

    ``oracle(word) -> bool`` decides membership.  Two prefixes ``u, v`` are
    distinguishable when some suffix ``s`` has ``oracle(u + s) !=
    oracle(v + s)``.  By Myhill-Nerode, a regular language has only finitely
    many pairwise-distinguishable prefixes; Theorem 6.6's ``a^n b^n``
    demonstration uses this to exhibit non-regularity computationally.
    """
    signatures = set()
    for prefix in prefixes:
        signature = tuple(oracle(tuple(prefix) + tuple(suffix)) for suffix in suffixes)
        signatures.add(signature)
    return len(signatures)

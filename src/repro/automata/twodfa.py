"""Two-way deterministic finite automata with selection functions.

Definition 4.12 requires the stay transition of a strong unranked query
automaton to be computed by a 2DFA ``B`` over the word of (state, label)
pairs of a node's children, equipped with a selection function
``lambda_B : S x Sigma_B -> Q u {bot}`` that assigns a new state to every
position during the run.

Conventions (the paper leaves them open; documented per DESIGN.md):

* the head starts on the leftmost symbol in the start state;
* moving right off the last symbol halts the automaton (accepting iff the
  final state is in ``F_B``); moving left off the first symbol halts and
  rejects;
* a missing transition halts and rejects;
* on empty input the automaton accepts iff the start state is accepting;
* each position must be assigned exactly one state (over the whole run) by
  the selection function -- violations raise
  :class:`repro.errors.QueryAutomatonError`;
* a repeated (position, state) configuration means the deterministic run
  loops forever; this raises as well.
"""

from __future__ import annotations

from typing import Dict, Hashable, List, Optional, Sequence, Set, Tuple

from repro.errors import QueryAutomatonError

Symbol = Hashable
LEFT = "L"
RIGHT = "R"


class TwoDFA:
    """A deterministic two-way automaton with a per-step selection function.

    Parameters
    ----------
    states:
        The state set ``S``.
    start:
        Start state ``s0``.
    transitions:
        Mapping ``(state, symbol) -> (state', direction)`` with direction
        ``"L"`` or ``"R"``.
    accept:
        Accepting states ``F_B``.
    selection:
        Optional mapping ``(state, symbol) -> output`` applied *before*
        moving whenever defined (the paper's ``lambda_B``; ``bot`` is
        modeled by simply omitting the key).
    """

    def __init__(
        self,
        states: Set[Hashable],
        start: Hashable,
        transitions: Dict[Tuple[Hashable, Symbol], Tuple[Hashable, str]],
        accept: Set[Hashable],
        selection: Optional[Dict[Tuple[Hashable, Symbol], Hashable]] = None,
    ):
        if start not in states:
            raise QueryAutomatonError("2DFA start state not in state set")
        for (state, _), (target, direction) in transitions.items():
            if state not in states or target not in states:
                raise QueryAutomatonError("2DFA transition uses unknown state")
            if direction not in (LEFT, RIGHT):
                raise QueryAutomatonError(f"bad direction {direction!r}")
        self.states = set(states)
        self.start = start
        self.transitions = dict(transitions)
        self.accept = set(accept)
        self.selection = dict(selection or {})

    def run(
        self, word: Sequence[Symbol], require_total_selection: bool = False
    ) -> Tuple[bool, List[Optional[Hashable]], int]:
        """Run the 2DFA on ``word``.

        Returns ``(accepted, assignments, steps)`` where ``assignments[i]``
        is the selection output for position ``i`` (or ``None``).  With
        ``require_total_selection`` every position must receive exactly one
        assignment, as Definition 4.12 demands of stay transitions.
        """
        if not word:
            return self.start in self.accept, [], 0

        assignments: List[Optional[Hashable]] = [None] * len(word)
        seen: Set[Tuple[int, Hashable]] = set()
        position = 0
        state = self.start
        steps = 0
        while True:
            config = (position, state)
            if config in seen:
                raise QueryAutomatonError("2DFA run entered an infinite loop")
            seen.add(config)
            symbol = word[position]
            selected = self.selection.get((state, symbol))
            if selected is not None:
                if assignments[position] is not None and assignments[position] != selected:
                    raise QueryAutomatonError(
                        f"2DFA selection assigned two states to position {position}"
                    )
                assignments[position] = selected
            move = self.transitions.get((state, symbol))
            if move is None:
                return False, assignments, steps
            state, direction = move
            steps += 1
            if direction == RIGHT:
                position += 1
                if position == len(word):
                    accepted = state in self.accept
                    if accepted and require_total_selection:
                        missing = [i for i, a in enumerate(assignments) if a is None]
                        if missing:
                            raise QueryAutomatonError(
                                f"2DFA selection left positions {missing} unassigned"
                            )
                    return accepted, assignments, steps
            else:
                position -= 1
                if position < 0:
                    return False, assignments, steps


def left_to_right_scanner(
    outputs: Dict[Symbol, Hashable], accept_always: bool = True
) -> TwoDFA:
    """A one-pass 2DFA assigning ``outputs[symbol]`` to every position.

    A convenience for building simple stay transitions: the automaton scans
    left to right once, selecting an output state per symbol.
    """
    transitions: Dict[Tuple[Hashable, Symbol], Tuple[Hashable, str]] = {}
    selection: Dict[Tuple[Hashable, Symbol], Hashable] = {}
    for symbol, output in outputs.items():
        transitions[("scan", symbol)] = ("scan", RIGHT)
        selection[("scan", symbol)] = output
    accept = {"scan"} if accept_always else set()
    return TwoDFA({"scan"}, "scan", transitions, accept, selection)

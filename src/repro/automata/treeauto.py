"""Bottom-up tree automata over the firstchild/nextsibling binary encoding.

The regular tree languages (ranked and unranked, Proposition 2.1) are
handled uniformly by running bottom-up automata on the binary encoding of
Figure 1: the left child of a binary node encodes "first child", the right
child encodes "next sibling", and missing children are modeled by a
distinguished *empty* state.

* :class:`NTA` -- nondeterministic bottom-up automata (used as the output of
  projection when compiling MSO quantifiers);
* :class:`DTA` -- deterministic, total bottom-up automata (closed under
  product and complement; produced by the subset construction);
* :func:`emptiness_witness` -- linear emptiness test returning a smallest
  witness tree, the engine behind exact containment checks for
  automaton-presented queries.

Alphabet symbols are arbitrary hashable values; the MSO compiler uses pairs
``(label, frozenset_of_marks)``.
"""

from __future__ import annotations

from typing import Callable, Dict, FrozenSet, Hashable, Iterable, List, Optional, Set, Tuple

from repro.errors import AutomatonError
from repro.trees.binary import BinNode, encode_binary
from repro.trees.node import Node

Symbol = Hashable
State = Hashable

#: Safety cap on determinization output (states), configurable per call.
DEFAULT_MAX_STATES = 4000


class NTA:
    """A nondeterministic bottom-up automaton on binary encodings.

    ``delta`` maps ``(symbol, q_left, q_right)`` to a set of states; the run
    of a missing child is any state in ``empty_states``.  A tree is accepted
    when the run set of its root meets ``accept``.
    """

    def __init__(
        self,
        alphabet: Iterable[Symbol],
        empty_states: Iterable[State],
        delta: Dict[Tuple[Symbol, State, State], Set[State]],
        accept: Iterable[State],
    ):
        self.alphabet: FrozenSet[Symbol] = frozenset(alphabet)
        self.empty_states: FrozenSet[State] = frozenset(empty_states)
        self.delta = {key: frozenset(value) for key, value in delta.items()}
        self.accept: FrozenSet[State] = frozenset(accept)

    def states(self) -> FrozenSet[State]:
        """All states mentioned by the automaton."""
        out: Set[State] = set(self.empty_states) | set(self.accept)
        for (_, ql, qr), targets in self.delta.items():
            out.add(ql)
            out.add(qr)
            out |= targets
        return frozenset(out)

    def run(self, root: Optional[BinNode]) -> FrozenSet[State]:
        """The set of states reachable at ``root`` (empty tree -> empty states)."""
        if root is None:
            return self.empty_states
        result: Dict[int, FrozenSet[State]] = {}
        for node in root.iter_postorder():
            left = result[id(node.left)] if node.left is not None else self.empty_states
            right = result[id(node.right)] if node.right is not None else self.empty_states
            states: Set[State] = set()
            for ql in left:
                for qr in right:
                    states |= self.delta.get((node.label, ql, qr), frozenset())
            result[id(node)] = frozenset(states)
        return result[id(root)]

    def accepts(self, tree: Node | BinNode) -> bool:
        """Whether the automaton accepts the (binary encoding of the) tree."""
        root = encode_binary(tree) if isinstance(tree, Node) else tree
        return bool(self.run(root) & self.accept)

    def relabel(self, mapping: Callable[[Symbol], Symbol]) -> "NTA":
        """Apply an alphabet projection (used for MSO quantifier elimination).

        The result reads symbol ``mapping(s)`` wherever this automaton read
        ``s``; several source symbols may collapse onto one target symbol,
        which is exactly the nondeterministic projection.
        """
        delta: Dict[Tuple[Symbol, State, State], Set[State]] = {}
        for (symbol, ql, qr), targets in self.delta.items():
            key = (mapping(symbol), ql, qr)
            delta.setdefault(key, set()).update(targets)
        alphabet = {mapping(s) for s in self.alphabet}
        return NTA(alphabet, self.empty_states, delta, self.accept)

    def determinize(self, max_states: int = DEFAULT_MAX_STATES) -> "DTA":
        """Subset construction producing a total :class:`DTA`.

        Only subsets realizable by some tree context are constructed; the
        transition table is complete over all pairs of constructed subsets,
        which keeps complementation sound.
        """
        empty = frozenset(self.empty_states)
        index: Dict[FrozenSet[State], int] = {empty: 0}
        found: List[FrozenSet[State]] = [empty]
        table: Dict[Tuple[Symbol, int, int], int] = {}
        queue: List[FrozenSet[State]] = [empty]
        while queue:
            subset = queue.pop()
            for other in list(found):
                for left, right in ((subset, other), (other, subset)):
                    li, ri = index[left], index[right]
                    for symbol in self.alphabet:
                        if (symbol, li, ri) in table:
                            continue
                        target: Set[State] = set()
                        for ql in left:
                            for qr in right:
                                target |= self.delta.get((symbol, ql, qr), frozenset())
                        frozen = frozenset(target)
                        if frozen not in index:
                            if len(index) >= max_states:
                                raise AutomatonError(
                                    f"determinization exceeded {max_states} states"
                                )
                            index[frozen] = len(index)
                            found.append(frozen)
                            queue.append(frozen)
                        table[(symbol, li, ri)] = index[frozen]
        accept = {i for subset, i in index.items() if subset & self.accept}
        return DTA(len(index), self.alphabet, 0, table, accept)


class DTA:
    """A deterministic, *total* bottom-up automaton on binary encodings.

    States are integers ``0..num_states-1``; ``empty_state`` is the run
    value of a missing child; ``delta`` is total over
    ``alphabet x states x states``.
    """

    def __init__(
        self,
        num_states: int,
        alphabet: Iterable[Symbol],
        empty_state: int,
        delta: Dict[Tuple[Symbol, int, int], int],
        accept: Iterable[int],
    ):
        self.num_states = num_states
        self.alphabet: FrozenSet[Symbol] = frozenset(alphabet)
        self.empty_state = empty_state
        self.delta = delta
        self.accept: FrozenSet[int] = frozenset(accept)

    def check_total(self) -> None:
        """Verify the transition table is total (raises on gaps)."""
        for symbol in self.alphabet:
            for ql in range(self.num_states):
                for qr in range(self.num_states):
                    if (symbol, ql, qr) not in self.delta:
                        raise AutomatonError(
                            f"missing transition ({symbol!r}, {ql}, {qr})"
                        )

    def step(self, symbol: Symbol, ql: int, qr: int) -> int:
        """One bottom-up transition."""
        try:
            return self.delta[(symbol, ql, qr)]
        except KeyError:
            raise AutomatonError(
                f"missing transition ({symbol!r}, {ql}, {qr})"
            ) from None

    def run_states(self, root: Optional[BinNode]) -> Dict[int, int]:
        """Map ``id(bin_node) -> state`` for the whole subtree."""
        result: Dict[int, int] = {}
        if root is None:
            return result
        for node in root.iter_postorder():
            ql = result[id(node.left)] if node.left is not None else self.empty_state
            qr = result[id(node.right)] if node.right is not None else self.empty_state
            result[id(node)] = self.step(node.label, ql, qr)
        return result

    def run(self, root: Optional[BinNode]) -> int:
        """The state of the (possibly empty) tree."""
        if root is None:
            return self.empty_state
        return self.run_states(root)[id(root)]

    def accepts(self, tree: Node | BinNode) -> bool:
        """Whether the automaton accepts the (binary encoding of the) tree."""
        root = encode_binary(tree) if isinstance(tree, Node) else tree
        return self.run(root) in self.accept

    def complement(self) -> "DTA":
        """Accept exactly the trees this automaton rejects."""
        accept = set(range(self.num_states)) - set(self.accept)
        return DTA(self.num_states, self.alphabet, self.empty_state, dict(self.delta), accept)

    def to_nta(self) -> NTA:
        """View this DTA as an NTA (e.g. before a projection)."""
        delta: Dict[Tuple[Symbol, State, State], Set[State]] = {
            key: {value} for key, value in self.delta.items()
        }
        return NTA(self.alphabet, {self.empty_state}, delta, self.accept)

    def minimize(self) -> "DTA":
        """Minimize by partition refinement (Myhill-Nerode for trees).

        Two states are equivalent when no context distinguishes them;
        refinement splits classes until, for every symbol and every
        co-argument class, transitions from one class land in one class.
        Restricting first to reachable states keeps the result canonical.
        """
        reachable = sorted(self.reachable_states())
        index_of = {q: i for i, q in enumerate(reachable)}
        # Initial partition: accepting vs not.
        cls: Dict[int, int] = {
            q: (1 if q in self.accept else 0) for q in reachable
        }
        while True:
            signature: Dict[int, Tuple] = {}
            for q in reachable:
                rows = []
                for symbol in sorted(self.alphabet, key=repr):
                    for r in reachable:
                        rows.append(cls[self.step(symbol, q, r)])
                        rows.append(cls[self.step(symbol, r, q)])
                signature[q] = (cls[q], tuple(rows))
            groups: Dict[Tuple, int] = {}
            new_cls: Dict[int, int] = {}
            for q in reachable:
                sig = signature[q]
                if sig not in groups:
                    groups[sig] = len(groups)
                new_cls[q] = groups[sig]
            if len(set(new_cls.values())) == len(set(cls.values())):
                cls = new_cls
                break
            cls = new_cls
        num = len(set(cls.values()))
        delta: Dict[Tuple[Symbol, int, int], int] = {}
        for symbol in self.alphabet:
            for ql in reachable:
                for qr in reachable:
                    delta[(symbol, cls[ql], cls[qr])] = cls[
                        self.step(symbol, ql, qr)
                    ]
        accept = {cls[q] for q in reachable if q in self.accept}
        return DTA(num, self.alphabet, cls[self.empty_state], delta, accept)

    def reachable_states(self) -> Set[int]:
        """States realized by some (possibly empty) tree."""
        reached = {self.empty_state}
        changed = True
        while changed:
            changed = False
            for (symbol, ql, qr), target in self.delta.items():
                if ql in reached and qr in reached and target not in reached:
                    reached.add(target)
                    changed = True
        return reached


def product(
    a: DTA, b: DTA, combine: Callable[[bool, bool], bool]
) -> DTA:
    """Product of two DTAs over the same alphabet.

    ``combine`` decides acceptance from the two components' acceptance
    (e.g. ``lambda x, y: x and y`` for intersection).  Only pairs reachable
    from the empty pair are constructed; the table is complete over those.
    """
    if a.alphabet != b.alphabet:
        raise AutomatonError(
            f"product requires identical alphabets "
            f"({len(a.alphabet)} vs {len(b.alphabet)} symbols)"
        )
    start = (a.empty_state, b.empty_state)
    index: Dict[Tuple[int, int], int] = {start: 0}
    found: List[Tuple[int, int]] = [start]
    table: Dict[Tuple[Symbol, int, int], int] = {}
    queue = [start]
    while queue:
        pair = queue.pop()
        for other in list(found):
            for left, right in ((pair, other), (other, pair)):
                li, ri = index[left], index[right]
                for symbol in a.alphabet:
                    if (symbol, li, ri) in table:
                        continue
                    target = (
                        a.step(symbol, left[0], right[0]),
                        b.step(symbol, left[1], right[1]),
                    )
                    if target not in index:
                        index[target] = len(index)
                        found.append(target)
                        queue.append(target)
                    table[(symbol, li, ri)] = index[target]
    accept = {
        i
        for (qa, qb), i in index.items()
        if combine(qa in a.accept, qb in b.accept)
    }
    return DTA(len(index), a.alphabet, 0, table, accept)


def intersect(a: DTA, b: DTA) -> DTA:
    """Intersection product."""
    return product(a, b, lambda x, y: x and y)


def union_dta(a: DTA, b: DTA) -> DTA:
    """Union product."""
    return product(a, b, lambda x, y: x or y)


def complement(a: DTA) -> DTA:
    """Complement (total DTAs only)."""
    return a.complement()


def emptiness_witness(automaton: NTA | DTA) -> Optional[BinNode]:
    """A smallest-ish witness tree in the automaton's language, or ``None``.

    Runs the standard least-fixpoint reachability over the transition
    relation, keeping one witness subtree per state.  The returned tree is a
    :class:`BinNode`; use :func:`repro.trees.decode_binary` to obtain the
    unranked original (after checking the root has no right child -- the
    witness search below only returns encodings of real trees when asked
    via :func:`emptiness_witness_unranked`).
    """
    nta = automaton.to_nta() if isinstance(automaton, DTA) else automaton
    witness: Dict[State, Optional[BinNode]] = {q: None for q in nta.empty_states}
    changed = True
    while changed:
        changed = False
        for (symbol, ql, qr), targets in nta.delta.items():
            if ql not in witness or qr not in witness:
                continue
            for target in targets:
                if target in witness:
                    continue
                witness[target] = BinNode(symbol, left=witness[ql], right=witness[qr])
                changed = True
    for q in nta.accept:
        if q in witness and witness[q] is not None:
            return witness[q]
    return None


def emptiness_witness_unranked(automaton: NTA | DTA) -> Optional[Node]:
    """A witness *unranked* tree whose binary encoding is accepted.

    Restricts the search to encodings whose root has no right child (i.e.
    genuine encodings of unranked trees).  Implemented by intersecting with
    nothing: we simply search for a witness among trees of the form
    ``BinNode(label, left, None)``.
    """
    nta = automaton.to_nta() if isinstance(automaton, DTA) else automaton
    witness: Dict[State, Optional[BinNode]] = {q: None for q in nta.empty_states}
    changed = True
    while changed:
        changed = False
        for (symbol, ql, qr), targets in nta.delta.items():
            if ql not in witness or qr not in witness:
                continue
            for target in targets:
                if target in witness:
                    continue
                witness[target] = BinNode(symbol, left=witness[ql], right=witness[qr])
                changed = True
    # A genuine encoding: root transition with the right child empty.
    for (symbol, ql, qr), targets in nta.delta.items():
        if ql in witness and qr in nta.empty_states:
            if targets & nta.accept:
                from repro.trees.binary import decode_binary

                return decode_binary(BinNode(symbol, left=witness[ql], right=None))
    return None


def tree_language_subset(a: DTA, b: DTA) -> Tuple[bool, Optional[Node]]:
    """Decide ``L(a) <= L(b)`` over unranked trees; witness on failure.

    Both automata must share an alphabet.  Returns ``(True, None)`` or
    ``(False, tree)`` with an unranked counterexample tree.
    """
    difference = intersect(a, b.complement())
    witness = emptiness_witness_unranked(difference)
    return (witness is None), witness


def dta_from_step(
    alphabet: Iterable[Symbol],
    num_states: int,
    empty_state: int,
    step: Callable[[Symbol, int, int], int],
    accept: Iterable[int],
) -> DTA:
    """Build a total DTA by tabulating a transition function.

    The hand-written atomic automata of the MSO compiler use this helper;
    the full ``alphabet x states^2`` table is enumerated eagerly, which keeps
    later products and complements straightforward.
    """
    sigma = frozenset(alphabet)
    delta: Dict[Tuple[Symbol, int, int], int] = {}
    for symbol in sigma:
        for ql in range(num_states):
            for qr in range(num_states):
                target = step(symbol, ql, qr)
                if not 0 <= target < num_states:
                    raise AutomatonError(f"step function returned bad state {target}")
                delta[(symbol, ql, qr)] = target
    return DTA(num_states, sigma, empty_state, delta, accept)

"""Unary queries presented by deterministic tree automata.

A unary query (an *information extraction function*) can be presented by a
DTA over the marked alphabet ``(label, {}) | (label, {x})``: node ``v`` is
selected in tree ``t`` iff the automaton accepts ``t`` with ``v`` (and only
``v``) marked.

:class:`UnaryQueryDTA` evaluates such queries for *all* nodes simultaneously
in linear time with the classical two-pass algorithm:

1. bottom-up, compute the state ``s0(u)`` of every binary subtree with all
   marks off;
2. top-down, compute the *acceptance set* ``Acc(u)``: the states ``q`` such
   that the whole tree is accepted if the subtree at ``u`` evaluates to
   ``q`` (everything outside ``u`` unmarked);
3. ``v`` is selected iff its own marked transition, applied to its
   children's unmarked states, lands in ``Acc(v)``.

Because marking ``v`` changes only ``v``'s transition, this is exact.  The
same decomposition drives the monadic datalog program emitted by
:mod:`repro.automata.dta_to_datalog` (Theorem 4.4's constructive content).
"""

from __future__ import annotations

from typing import Dict, FrozenSet, List, Optional, Set, Tuple

from repro.automata.treeauto import DTA
from repro.errors import AutomatonError
from repro.trees.binary import BinNode, encode_binary
from repro.trees.node import Node
from repro.trees.unranked import UnrankedStructure

MarkedSymbol = Tuple[str, FrozenSet[str]]


def marked_alphabet(labels, var: str) -> Set[MarkedSymbol]:
    """The alphabet ``{(l, {}), (l, {var})}`` for the given labels."""
    out: Set[MarkedSymbol] = set()
    for label in labels:
        out.add((label, frozenset()))
        out.add((label, frozenset([var])))
    return out


class UnaryQueryDTA:
    """A unary query given by a DTA over a singly-marked alphabet.

    Parameters
    ----------
    dta:
        Total DTA whose alphabet consists of pairs ``(label, marks)`` with
        ``marks`` either empty or ``{var}``.
    var:
        The mark (free first-order variable) name.
    """

    def __init__(self, dta: DTA, var: str):
        self.dta = dta
        self.var = var
        self.labels: Set[str] = set()
        for symbol in dta.alphabet:
            if not (isinstance(symbol, tuple) and len(symbol) == 2):
                raise AutomatonError("unary-query DTA alphabet must be (label, marks)")
            label, marks = symbol
            if marks not in (frozenset(), frozenset([var])):
                raise AutomatonError(
                    f"unexpected mark set {set(marks)!r} for variable {var!r}"
                )
            self.labels.add(label)

    def _unmarked(self, label: str) -> MarkedSymbol:
        return (label, frozenset())

    def _marked(self, label: str) -> MarkedSymbol:
        return (label, frozenset([self.var]))

    def _check_label(self, label: str) -> None:
        if label not in self.labels:
            raise AutomatonError(
                f"tree label {label!r} outside the automaton alphabet"
            )

    def select(self, root: Node) -> List[Node]:
        """All selected nodes of ``root``'s tree, in document order."""
        binary = encode_binary(root)
        dta = self.dta
        empty = dta.empty_state

        for node in binary.iter_preorder():
            self._check_label(node.label)

        # Pass 1: unmarked states, bottom-up.
        state: Dict[int, int] = {}
        for node in binary.iter_postorder():
            ql = state[id(node.left)] if node.left is not None else empty
            qr = state[id(node.right)] if node.right is not None else empty
            state[id(node)] = dta.step(self._unmarked(node.label), ql, qr)

        # Pass 2: acceptance sets, top-down.
        acc: Dict[int, Set[int]] = {id(binary): set(dta.accept)}
        order = list(binary.iter_preorder())
        for node in order:
            node_acc = acc[id(node)]
            symbol = self._unmarked(node.label)
            ql = state[id(node.left)] if node.left is not None else empty
            qr = state[id(node.right)] if node.right is not None else empty
            if node.left is not None:
                acc[id(node.left)] = {
                    q for q in range(dta.num_states)
                    if dta.step(symbol, q, qr) in node_acc
                }
            if node.right is not None:
                acc[id(node.right)] = {
                    q for q in range(dta.num_states)
                    if dta.step(symbol, ql, q) in node_acc
                }

        # Pass 3: marked transitions against acceptance sets.
        selected: List[Node] = []
        for node in order:
            ql = state[id(node.left)] if node.left is not None else empty
            qr = state[id(node.right)] if node.right is not None else empty
            marked_state = dta.step(self._marked(node.label), ql, qr)
            if marked_state in acc[id(node)]:
                if node.origin is None:
                    raise AutomatonError("binary encoding lost origin pointers")
                selected.append(node.origin)
        return selected

    def select_ids(self, structure: UnrankedStructure) -> Set[int]:
        """Selected node identifiers over an :class:`UnrankedStructure`."""
        return {structure.ident(n) for n in self.select(structure.root_node)}

    def accepts_marked(self, root: Node, target: Node) -> bool:
        """Direct check: is the tree with exactly ``target`` marked accepted?

        Quadratic if called for every node; used by tests to validate the
        two-pass algorithm.
        """
        binary = encode_binary(root)
        state: Dict[int, int] = {}
        for node in binary.iter_postorder():
            self._check_label(node.label)
            ql = state[id(node.left)] if node.left is not None else self.dta.empty_state
            qr = state[id(node.right)] if node.right is not None else self.dta.empty_state
            if node.origin is target:
                symbol = self._marked(node.label)
            else:
                symbol = self._unmarked(node.label)
            state[id(node)] = self.dta.step(symbol, ql, qr)
        return state[id(binary)] in self.dta.accept

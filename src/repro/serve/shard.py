"""Standalone evaluation shard daemon: ``python -m repro.serve.shard``.

One daemon is one remote shard: a single-worker evaluation box speaking
the length-prefixed frame protocol of :mod:`repro.serve.transport` over a
listening socket.  A router (:class:`~repro.serve.transport.RemoteShardExecutor`
inside an :class:`~repro.serve.server.ExtractionServer`) installs each
compiled wrapper at most once per connection lifetime, then streams
pages; the daemon evaluates them on a dedicated worker thread (one at a
time -- the same single-worker queue semantics as local process shards,
so a ping round trip proves the daemon is draining its queue).

Operations: ``install`` / ``uninstall`` (compiled-wrapper residency,
LRU-capped), ``wrap`` (a page sub-batch; a request carrying the optional
``trace`` frame field additionally returns per-page kernel stats as
``{"pages": [...], "kernel": [...]}`` and logs the client trace id --
old daemons read only the keys they know, so the field degrades
harmlessly), ``wrap_warm`` (``(html,
doc_id)`` items against the daemon's per-document
:class:`~repro.wrap.extraction.WrapperState` store -- the incremental
warm path, state-local to this box), ``ping`` (health + stats), and
``drain`` (operator-initiated graceful shutdown).

**Graceful drain** (``SIGTERM``, or a ``drain`` frame): the daemon stops
accepting connections, pushes an unsolicited ``{"op": "drain"}`` notice
on every live connection -- so routers pull it from the consistent-hash
ring *before* the socket closes -- finishes the frames already in
flight, and only then exits.  A planned shutdown is therefore invisible
to clients: no request ever dies with the daemon.

Fault injection: ``--faults`` applies the *evaluation* fault kinds
(``kill_every``, ``delay_every``, ``hang_every``, ``corrupt_every``,
``poison_marker``) via a **soft** :class:`~repro.serve.faults.FaultInjector`
-- an injected kill raises :class:`~repro.errors.ShardCrashed`, which
travels back as a typed error frame and exercises the identical
retry/quarantine path as local worker death, deterministically and
without sacrificing the process.  *Real* daemon death (the SIGKILL chaos
runs) needs no injector at all; the network fault kinds
(``drop_conn``/``delay_frame``/``garble_frame``) belong to the router
side.

Example::

    python -m repro.serve.shard --listen 127.0.0.1:9101
    # ... and on the router box:
    python -m repro.serve --demo --remote-shard 127.0.0.1:9101
"""

from __future__ import annotations

import argparse
import asyncio
import contextlib
import signal
import sys
import threading
from collections import OrderedDict
from concurrent.futures import ThreadPoolExecutor
from typing import Dict, List, Optional, Set, Tuple, Union

from repro.errors import ServeError, WrapperNotResident
from repro.serve.executor import _wrap_warm_against
from repro.serve.faults import FaultInjector, FaultPlan, log_fault_event
from repro.serve.transport import (
    FrameError,
    encode_error,
    read_frame,
    write_frame,
)


class ShardDaemon:
    """The shard daemon's asyncio core (embeddable; see also ``main``)."""

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 0,
        faults: Union[FaultPlan, str, None] = None,
        max_installed: int = 32,
        state_cap: int = 128,
        drain_grace: float = 5.0,
    ):
        self.host = host
        self.port = port  # 0 -> ephemeral; set to the bound port by start()
        plan = FaultPlan.parse(faults) if isinstance(faults, str) else faults
        self.injector: Optional[FaultInjector] = (
            FaultInjector(plan, hard=False, shard_tag=f"daemon:{port}")
            if plan is not None and plan.enabled
            else None
        )
        self.max_installed = max(1, max_installed)
        self.state_cap = state_cap
        self.drain_grace = drain_grace
        self._wrappers: "OrderedDict[str, object]" = OrderedDict()
        self._states: OrderedDict = OrderedDict()
        self._pool = ThreadPoolExecutor(
            max_workers=1, thread_name_prefix="repro-shard-daemon"
        )
        self.stats: Dict[str, int] = {
            "connections": 0,
            "installs": 0,
            "uninstalls": 0,
            "wraps": 0,
            "warm_wraps": 0,
            "pages": 0,
            "pings": 0,
            "frame_errors": 0,
        }
        self.draining = False
        self._busy = 0
        self._server: Optional[asyncio.AbstractServer] = None
        #: Live connections: (writer, per-connection write lock).
        self._peers: Set[Tuple[asyncio.StreamWriter, asyncio.Lock]] = set()

    # -- lifecycle -----------------------------------------------------------

    async def start(self) -> None:
        self._server = await asyncio.start_server(
            self._client_connected, self.host, self.port
        )
        self.port = self._server.sockets[0].getsockname()[1]

    @property
    def address(self) -> str:
        return f"{self.host}:{self.port}"

    async def serve_forever(self) -> None:
        if self._server is None:
            await self.start()
        assert self._server is not None
        with contextlib.suppress(asyncio.CancelledError):
            await self._server.serve_forever()

    async def drain(self) -> None:
        """Graceful shutdown: notify routers, finish in-flight frames.

        Safe to call more than once.  After this returns the daemon has
        stopped listening, every router connection has seen a drain
        notice, no frame is mid-evaluation, and the worker pool is down.
        """
        if self.draining:
            return
        self.draining = True
        log_fault_event("daemon_drain", address=self.address)
        if self._server is not None:
            self._server.close()
        # Push the unsolicited notice on every live connection *before*
        # anything closes, so routers re-ring without a visible error.
        for writer, lock in list(self._peers):
            with contextlib.suppress(Exception):
                async with lock:
                    await write_frame(writer, {"op": "drain"})
        # Let in-flight frames finish (bounded by the grace period).
        loop = asyncio.get_running_loop()
        deadline = loop.time() + self.drain_grace
        while self._busy and loop.time() < deadline:
            await asyncio.sleep(0.01)
        for writer, _ in list(self._peers):
            with contextlib.suppress(Exception):
                writer.close()
        if self._server is not None:
            with contextlib.suppress(Exception):
                await self._server.wait_closed()
            self._server = None
        self._pool.shutdown(wait=True)

    # -- connections ---------------------------------------------------------

    async def _client_connected(self, reader, writer) -> None:
        self.stats["connections"] += 1
        write_lock = asyncio.Lock()
        peer = (writer, write_lock)
        self._peers.add(peer)
        try:
            if self.draining:
                with contextlib.suppress(Exception):
                    async with write_lock:
                        await write_frame(writer, {"op": "drain"})
            await self._serve_peer(reader, writer, write_lock)
        except asyncio.CancelledError:
            pass  # loop shutdown while a peer was idle: a clean exit
        finally:
            self._peers.discard(peer)
            with contextlib.suppress(Exception, asyncio.CancelledError):
                writer.close()
                await writer.wait_closed()

    async def _serve_peer(self, reader, writer, write_lock) -> None:
        while True:
            try:
                message = await read_frame(reader)
            except (
                asyncio.IncompleteReadError,
                ConnectionError,
                EOFError,
                OSError,
            ):
                return  # client went away
            except FrameError as exc:
                # A garbled or desynchronized stream cannot be trusted:
                # drop the connection; the router reconnects fresh.
                self.stats["frame_errors"] += 1
                log_fault_event(
                    "daemon_frame_error", address=self.address, error=str(exc)
                )
                return
            rid = message.get("id")
            self._busy += 1
            try:
                value = await self._dispatch(message)
                reply = {"id": rid, "ok": True, "value": value}
            except asyncio.CancelledError:
                raise
            except BaseException as exc:
                reply = {"id": rid, "ok": False, "error": encode_error(exc)}
            finally:
                self._busy -= 1
            if self.draining:
                reply["draining"] = True
            try:
                async with write_lock:
                    await write_frame(writer, reply)
            except (ConnectionError, OSError):
                return

    # -- operations ----------------------------------------------------------

    async def _dispatch(self, message: dict):
        op = message.get("op")
        if op == "ping":
            self.stats["pings"] += 1
            return {"draining": self.draining, "stats": dict(self.stats)}
        if op == "install":
            key, wrapper = message["key"], message["wrapper"]
            self._wrappers[key] = wrapper
            self._wrappers.move_to_end(key)
            self.stats["installs"] += 1
            while len(self._wrappers) > self.max_installed:
                self._wrappers.popitem(last=False)
            return True
        if op == "uninstall":
            self.stats["uninstalls"] += 1
            return self._wrappers.pop(message["key"], None) is not None
        if op == "wrap":
            key, pages = message["key"], message["pages"]
            self.stats["wraps"] += 1
            self.stats["pages"] += len(pages)
            trace = message.get("trace")
            if isinstance(trace, dict):
                # Tracing-aware router: evaluate with kernel stats and
                # log the client's trace id so a cross-box grep by
                # trace id finds the daemon-side line.  Daemons that
                # predate this field never reach here -- they read only
                # the keys they know and answer the plain page list.
                self.stats["traced_wraps"] = self.stats.get("traced_wraps", 0) + 1
                result = await asyncio.get_running_loop().run_in_executor(
                    self._pool, self._wrap_traced, key, pages
                )
                log_fault_event(
                    "daemon_traced_wrap",
                    address=self.address,
                    trace_id=trace.get("trace_id"),
                    pages=len(pages),
                )
                return result
            return await asyncio.get_running_loop().run_in_executor(
                self._pool, self._wrap, key, pages
            )
        if op == "wrap_warm":
            key, items = message["key"], message["items"]
            self.stats["warm_wraps"] += 1
            self.stats["pages"] += len(items)
            return await asyncio.get_running_loop().run_in_executor(
                self._pool, self._wrap_warm, key, items
            )
        if op == "drain":
            # Operator-initiated graceful shutdown over the wire; the
            # reply goes out first, the drain proceeds in the background.
            asyncio.ensure_future(self.drain())
            return True
        raise ServeError(f"unknown shard daemon operation {op!r}")

    def _resident(self, key: str):
        wrapper = self._wrappers.get(key)
        if wrapper is None:
            # Retryable + blameless by class: the router re-installs.
            raise WrapperNotResident(
                f"wrapper {key!r} is not resident on this daemon; "
                "retry the request"
            )
        self._wrappers.move_to_end(key)
        return wrapper

    def _wrap(self, key: str, pages: List[str]) -> List[dict]:
        wrapper = self._resident(key)
        if self.injector is not None:
            self.injector.before_call(key, pages)
        result = [out.to_dict() for out in wrapper.wrap_html_many(pages)]
        if self.injector is not None:
            result = self.injector.after_call(key, result)
        return result

    def _wrap_traced(self, key: str, pages: List[str]) -> dict:
        wrapper = self._resident(key)
        if self.injector is not None:
            self.injector.before_call(key, pages)
        traced = wrapper.wrap_html_traced(pages)
        result = [out.to_dict() for out, _ in traced]
        if self.injector is not None:
            result = self.injector.after_call(key, result)
        return {"pages": result, "kernel": [trace for _, trace in traced]}

    def _wrap_warm(self, key: str, items: List[Tuple[str, str]]) -> dict:
        wrapper = self._resident(key)
        if self.injector is not None:
            self.injector.before_call(key, [html for html, _ in items])
        result = _wrap_warm_against(wrapper, self._states, key, items)
        if self.injector is not None:
            result["pages"] = self.injector.after_call(key, result["pages"])
        return result


class DaemonThread:
    """Run a :class:`ShardDaemon` on a dedicated event-loop thread.

    The embedding harness for tests and benchmarks -- the daemon-side
    analogue of :class:`~repro.serve.server.ServerThread`.  ``start()``
    blocks until the port is bound; ``stop()`` performs the graceful
    drain and joins the thread.
    """

    def __init__(self, daemon: ShardDaemon):
        self.daemon = daemon
        self._thread: Optional[threading.Thread] = None
        self._started = threading.Event()
        self._error: Optional[BaseException] = None
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._stop_event: Optional[asyncio.Event] = None

    def start(self) -> Tuple[str, int]:
        self._thread = threading.Thread(
            target=lambda: asyncio.run(self._main()),
            name="repro-shard-daemon",
            daemon=True,
        )
        self._thread.start()
        if not self._started.wait(timeout=30):
            raise ServeError("shard daemon thread failed to start within 30s")
        if self._error is not None:
            raise ServeError(f"shard daemon failed to start: {self._error}")
        return self.daemon.host, self.daemon.port

    def drain(self) -> None:
        """Trigger the graceful drain without joining the thread yet."""
        if self._loop is not None and self._stop_event is not None:
            with contextlib.suppress(RuntimeError):
                self._loop.call_soon_threadsafe(self._stop_event.set)

    def stop(self) -> None:
        if self._thread is None:
            return
        self.drain()
        self._thread.join(timeout=30)
        self._thread = None

    async def _main(self) -> None:
        self._loop = asyncio.get_running_loop()
        self._stop_event = asyncio.Event()
        try:
            await self.daemon.start()
        except Exception as exc:
            self._error = exc
            self._started.set()
            return
        self._started.set()
        await self._stop_event.wait()
        await self.daemon.drain()


# -- the CLI -----------------------------------------------------------------


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.serve.shard",
        description="Run one remote evaluation shard daemon.",
    )
    parser.add_argument(
        "--listen",
        default="127.0.0.1:8521",
        metavar="HOST:PORT",
        help="address to bind (port 0 picks an ephemeral port)",
    )
    parser.add_argument(
        "--max-installed",
        type=int,
        default=32,
        help="resident compiled wrappers before LRU eviction",
    )
    parser.add_argument(
        "--drain-grace",
        type=float,
        default=5.0,
        help="seconds SIGTERM waits for in-flight frames before closing",
    )
    parser.add_argument(
        "--faults",
        default=None,
        metavar="SPEC",
        help=(
            "deterministic evaluation-fault injection, e.g. "
            "'kill_every=5,poison_marker=POISON' (soft: injected kills "
            "raise ShardCrashed back to the router; chaos testing only)"
        ),
    )
    return parser


async def _amain(args: argparse.Namespace) -> int:
    from repro.serve.transport import parse_address

    host, port = parse_address(args.listen)
    daemon = ShardDaemon(
        host=host,
        port=port,
        faults=args.faults,
        max_installed=args.max_installed,
        drain_grace=args.drain_grace,
    )
    await daemon.start()
    stop = asyncio.Event()
    loop = asyncio.get_running_loop()
    for signum in (signal.SIGINT, signal.SIGTERM):
        with contextlib.suppress(NotImplementedError):  # pragma: no cover
            loop.add_signal_handler(signum, stop.set)
    if args.faults:
        print(f"FAULT INJECTION ACTIVE: {args.faults}", flush=True)
    print(f"repro.serve.shard listening on {daemon.address}", flush=True)
    await stop.wait()
    print("repro.serve.shard: draining and shutting down ...", flush=True)
    await daemon.drain()
    return 0


def main(argv=None) -> int:
    args = build_parser().parse_args(argv)
    try:
        return asyncio.run(_amain(args))
    except KeyboardInterrupt:  # pragma: no cover - direct ^C fallback
        return 130


if __name__ == "__main__":
    sys.exit(main())

"""Request tracing: per-request span trees, a bounded trace buffer,
and structured JSON request logging for the serving stack.

The paper's guarantee is that wrapper evaluation is linear in the
document (Theorem 4.2); the serve layer budgets deadlines on that
assumption.  Tracing is what makes the assumption *observable*: every
request gets a trace id and a tree of timed spans covering each stage it
passes through --

    http.request                the server's connection handler
      batcher.queue             time spent coalescing (queued requests)
      batch.flush               the shared flush a request rode in
        ring.route              consistent-hash routing (tags: shard,
                                rerouted)
        shard.call              one executor submission (local process,
                                inline thread, or remote daemon RPC)
          snapshot.build        HTML -> columnar snapshot, on the shard
          kernel.run            one kernel fixpoint, on the shard (tags:
                                engine, rounds, facts, fallback,
                                frontier-width histogram)

-- so a slow request decomposes into *which stage* was slow, and a
kernel that silently fell back from the frontier engine to the scalar
worklist is visible per request instead of only in aggregate.

Spans are plain objects linked parent -> children; a span created for a
shared stage (one ``batch.flush`` serving many coalesced requests) is
attached to *every* member's tree -- serialization walks the shared
subtree once per trace.  Remote shard daemons do not build spans at all:
they return cheap per-page kernel-stats dicts over the RPC protocol, and
the router grafts them into the client-side trace as ``snapshot.build``
/ ``kernel.run`` spans (see :meth:`Span.graft_kernel_stats`).  A daemon
too old to understand the trace request field simply returns the
untraced payload shape and the trace degrades to a transport-only
``shard.call`` span.

The :class:`Tracer` keeps finished traces in a bounded ring buffer plus
two exemplar stores (the slowest N and the last N errored requests), so
``GET /debug/traces`` can still produce the *interesting* traces long
after the ring has rotated.  All of it is in-process and allocation-light;
the tracing-disabled path is ``span=None`` threaded through the stack
and costs one ``is not None`` test per stage (measured <= 5% end to end,
``benchmarks/bench_serve.py`` ``tracing_overhead`` row).

:class:`RequestLog` is the structured logging half: one JSON object per
line (trace id, route, status, stage timings, retries, reroutes,
quarantine strikes) replacing ad-hoc prints, to stderr or a file --
the same JSONL idiom as the fault-event log in :mod:`repro.serve.faults`.
"""

from __future__ import annotations

import itertools
import json
import os
import sys
import threading
import time
from bisect import insort
from collections import OrderedDict, deque
from typing import Callable, Dict, List, Optional, Union

Clock = Callable[[], float]

#: Monotonic source for span timing; injectable per Tracer for tests.
_DEFAULT_CLOCK = time.perf_counter

#: Process-unique trace-id prefix + a counter: ids are unique without
#: any wall-clock or RNG dependency on the hot path.
_TRACE_PREFIX = os.urandom(4).hex()
_TRACE_COUNTER = itertools.count(1)


def new_trace_id() -> str:
    """A process-unique trace id (hex prefix + sequence number).

    >>> a, b = new_trace_id(), new_trace_id()
    >>> a != b and a.split("-")[0] == b.split("-")[0]
    True
    """
    return f"{_TRACE_PREFIX}-{next(_TRACE_COUNTER):06x}"


class Span:
    """One timed stage of a request; spans link into a tree.

    A span is *open* from construction until :meth:`finish`; children are
    created with :meth:`child` (sharing the parent's clock) or attached
    with :meth:`attach` (a span built elsewhere -- the shared
    ``batch.flush`` case).  ``tags`` carry small JSON-serializable facts
    (shard index, engine name, round count).

    Examples
    --------
    >>> now = [0.0]
    >>> root = Span("http.request", clock=lambda: now[0])
    >>> child = root.child("shard.call")
    >>> now[0] = 0.25
    >>> child.tag(shard=2); child.finish()
    >>> now[0] = 0.3
    >>> root.finish()
    >>> d = root.to_dict()
    >>> d["name"], d["elapsed_ms"], d["children"][0]["tags"]["shard"]
    ('http.request', 300.0, 2)
    >>> [s["name"] for s in root.find("shard.call")]
    ['shard.call']
    """

    __slots__ = ("name", "clock", "start", "end", "tags", "children", "error")

    def __init__(
        self, name: str, clock: Clock = _DEFAULT_CLOCK, tags: Optional[Dict] = None
    ):
        self.name = name
        self.clock = clock
        self.start = clock()
        self.end: Optional[float] = None
        self.tags: Dict = dict(tags) if tags else {}
        #: Child stages: Span objects, or already-serialized span dicts
        #: grafted from a remote shard's stats payload.
        self.children: List[Union["Span", dict]] = []
        self.error: Optional[str] = None

    def child(self, name: str, **tags) -> "Span":
        """Open a child span (inherits this span's clock)."""
        span = Span(name, clock=self.clock, tags=tags or None)
        self.children.append(span)
        return span

    def attach(self, span: Union["Span", dict]) -> None:
        """Attach an externally created span (or serialized span dict).

        The same object may be attached under several parents -- that is
        how one shared ``batch.flush`` appears in every member trace."""
        self.children.append(span)

    def tag(self, **tags) -> None:
        self.tags.update(tags)

    def fail(self, error: str) -> None:
        """Mark the span errored (also finishes it if still open)."""
        self.error = error
        if self.end is None:
            self.finish()

    def finish(self) -> None:
        if self.end is None:
            self.end = self.clock()

    @property
    def elapsed_ms(self) -> float:
        end = self.end if self.end is not None else self.clock()
        return (end - self.start) * 1e3

    def graft_kernel_stats(self, trace: dict) -> None:
        """Attach a shard-side per-page kernel-stats dict as child spans.

        ``trace`` is the cheap stats payload a (local or remote) shard
        returns per page: ``{"snapshot_build_ms", "kernel_ms", "runs":
        [per-plan stats dicts]}``.  Shards never build Span objects --
        this is where their counters become ``snapshot.build`` and
        ``kernel.run`` spans in the client-side tree."""
        if not isinstance(trace, dict):
            return
        snapshot_ms = trace.get("snapshot_build_ms")
        if snapshot_ms is not None:
            self.children.append(
                {"name": "snapshot.build", "elapsed_ms": snapshot_ms, "tags": {}}
            )
        runs = trace.get("runs")
        kernel_ms = trace.get("kernel_ms")
        for run in runs if isinstance(runs, list) else []:
            tags = {k: v for k, v in run.items() if v is not None}
            self.children.append(
                {
                    "name": "kernel.run",
                    # One wrap may run several plans; the shard times
                    # them together, so the total is tagged on each.
                    "elapsed_ms": kernel_ms,
                    "tags": tags,
                }
            )

    def to_dict(self) -> dict:
        """Serialize the subtree (shared children are walked per parent)."""
        out = {
            "name": self.name,
            "elapsed_ms": round(self.elapsed_ms, 3),
            "tags": self.tags,
            "children": [
                c.to_dict() if isinstance(c, Span) else c for c in self.children
            ],
        }
        if self.error is not None:
            out["error"] = self.error
        return out

    def find(self, name: str) -> List[dict]:
        """Every span dict named ``name`` in this subtree (depth-first)."""
        return find_spans(self.to_dict(), name)

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        state = "open" if self.end is None else f"{self.elapsed_ms:.1f}ms"
        return f"Span({self.name!r}, {state}, {len(self.children)} children)"


def find_spans(span_dict: dict, name: str) -> List[dict]:
    """Depth-first search of a serialized span tree by span name.

    >>> tree = {"name": "a", "children": [
    ...     {"name": "b", "children": [{"name": "b", "children": []}]}]}
    >>> len(find_spans(tree, "b"))
    2
    """
    found = []
    if span_dict.get("name") == name:
        found.append(span_dict)
    for child in span_dict.get("children", ()):
        if isinstance(child, dict):
            found.extend(find_spans(child, name))
    return found


class Tracer:
    """Bounded in-memory trace store with slow/error exemplar retention.

    Finished traces land in a ring of the most recent ``capacity``; on
    top of that, the slowest ``slow_exemplars`` and the last
    ``error_exemplars`` errored traces are pinned, so the interesting
    requests survive ring rotation.  ``GET /debug/traces`` lists the
    retained set; ``GET /debug/traces/<id>`` returns one full span tree.

    Examples
    --------
    >>> now = [0.0]
    >>> tracer = Tracer(capacity=2, slow_exemplars=1, clock=lambda: now[0])
    >>> ids = []
    >>> for ms in (5.0, 50.0, 1.0, 2.0):
    ...     span = tracer.start_trace("http.request", route="/extract/x")
    ...     now[0] += ms / 1e3
    ...     ids.append(tracer.finish_trace(span))
    >>> len(tracer.list()), tracer.get(ids[1])["root"]["elapsed_ms"]
    (3, 50.0)
    >>> err = tracer.start_trace("http.request")
    >>> err.fail("ShardCrashed: boom")
    >>> eid = tracer.finish_trace(err)
    >>> tracer.get(eid)["error"]
    'ShardCrashed: boom'
    """

    def __init__(
        self,
        capacity: int = 256,
        slow_exemplars: int = 16,
        error_exemplars: int = 16,
        clock: Clock = _DEFAULT_CLOCK,
    ):
        self.clock = clock
        self._lock = threading.Lock()
        self._recent: deque = deque(maxlen=max(1, capacity))
        #: trace id -> record, for every retained id.  ``record["root"]``
        #: holds the live Span until the first ``get`` serializes it.
        self._store: "OrderedDict[str, dict]" = OrderedDict()
        #: (elapsed_ms, trace id), ascending, capped at slow_exemplars.
        self._slow: List = []
        self._slow_cap = max(0, slow_exemplars)
        self._errors: deque = deque(maxlen=max(1, error_exemplars))
        #: Mirror sets of the three stores above: retention checks run
        #: once per request, so they must not scan a 256-entry deque.
        self._recent_ids: set = set()
        self._slow_ids: set = set()
        self._error_ids: set = set()

    def start_trace(self, name: str, **tags) -> Span:
        """Open a root span carrying a fresh trace id in its tags."""
        span = Span(name, clock=self.clock, tags=tags or None)
        span.tags["trace_id"] = new_trace_id()
        return span

    def finish_trace(self, span: Span) -> str:
        """Finish + store a root span; returns its trace id.

        The span tree is stored as is and serialized lazily on the first
        :meth:`get` -- the request hot path never walks the tree, it
        only appends to the ring and updates the exemplar stores."""
        span.finish()
        trace_id = span.tags.get("trace_id") or new_trace_id()
        elapsed_ms = (span.end - span.start) * 1e3
        record = {
            "trace_id": trace_id,
            "root": span,
            "elapsed_ms": round(elapsed_ms, 3),
        }
        if span.error is not None:
            record["error"] = span.error
        with self._lock:
            self._store[trace_id] = record
            # Enter the ring *before* exemplar bookkeeping so a trace that
            # loses an exemplar slot is still retained as a recent trace.
            evicted = []
            if len(self._recent) == self._recent.maxlen:
                old = self._recent[0]
                self._recent_ids.discard(old)
                evicted.append(old)
            self._recent.append(trace_id)
            self._recent_ids.add(trace_id)
            if span.error is not None:
                if len(self._errors) == self._errors.maxlen:
                    old = self._errors[0]
                    self._error_ids.discard(old)
                    evicted.append(old)
                self._errors.append(trace_id)
                self._error_ids.add(trace_id)
            else:
                self._note_slow(elapsed_ms, trace_id)
            for old in evicted:
                self._maybe_drop(old)
        return trace_id

    def _note_slow(self, elapsed_ms: float, trace_id: str) -> None:
        if not self._slow_cap:
            return
        slow = self._slow
        # Steady state: the store is full and most requests are faster
        # than the slowest-N floor -- two comparisons, no list motion.
        if len(slow) >= self._slow_cap and elapsed_ms <= slow[0][0]:
            return
        insort(slow, (elapsed_ms, trace_id))
        self._slow_ids.add(trace_id)
        while len(slow) > self._slow_cap:
            _, dropped = slow.pop(0)
            self._slow_ids.discard(dropped)
            self._maybe_drop(dropped)

    def _retained(self, trace_id: str) -> bool:
        return (
            trace_id in self._recent_ids
            or trace_id in self._error_ids
            or trace_id in self._slow_ids
        )

    def _maybe_drop(self, trace_id: str) -> None:
        if not self._retained(trace_id):
            self._store.pop(trace_id, None)

    def get(self, trace_id: str) -> Optional[dict]:
        """The full serialized trace, or ``None`` if not retained."""
        with self._lock:
            record = self._store.get(trace_id)
            if record is None:
                return None
            root = record["root"]
            if isinstance(root, Span):
                # First read: serialize once and cache the dict so the
                # debug endpoint never re-walks a retained trace.
                record["root"] = root.to_dict()
            return record

    def list(self) -> List[dict]:
        """Summaries of every retained trace, most recent first."""
        with self._lock:
            slow_ids = self._slow_ids
            error_ids = self._error_ids
            out = []
            for trace_id, record in reversed(self._store.items()):
                root = record["root"]
                if isinstance(root, Span):
                    name = root.name
                    route = root.tags.get("route")
                else:
                    name = root.get("name")
                    route = root.get("tags", {}).get("route")
                out.append(
                    {
                        "trace_id": trace_id,
                        "name": name,
                        "route": route,
                        "elapsed_ms": record["elapsed_ms"],
                        "error": record.get("error"),
                        "exemplar": (
                            "error"
                            if trace_id in error_ids
                            else "slow"
                            if trace_id in slow_ids
                            else None
                        ),
                    }
                )
            return out

    def __len__(self) -> int:
        with self._lock:
            return len(self._store)


class RequestLog:
    """Structured JSON logging: one object per line, machine-greppable.

    Replaces the serving stack's ad-hoc ``print`` lines.  ``sink`` is a
    file path (appended, like the fault-event log), a writable stream,
    or ``None`` for stderr.  Every record carries ``event`` and ``ts``
    (wall clock, for cross-box correlation) plus whatever fields the
    caller passes -- for request lines that is the trace id, route,
    status, stage timings, retry/reroute counts and quarantine strikes.

    >>> import io
    >>> stream = io.StringIO()
    >>> log = RequestLog(stream)
    >>> log.log("request", trace_id="ab-1", route="/extract/x", status=200)
    >>> record = json.loads(stream.getvalue())
    >>> record["event"], record["status"]
    ('request', 200)
    """

    def __init__(self, sink: Union[str, object, None] = None):
        self._lock = threading.Lock()
        self._path: Optional[str] = None
        self._stream = None
        if isinstance(sink, str):
            self._path = sink
        elif sink is not None:
            self._stream = sink

    def log(self, event: str, **fields) -> None:
        record = {"event": event, "ts": round(time.time(), 6)}
        record.update(fields)
        line = json.dumps(record, default=str)
        try:
            with self._lock:
                if self._path is not None:
                    with open(self._path, "a", encoding="utf-8") as handle:
                        handle.write(line + "\n")
                else:
                    stream = self._stream if self._stream is not None else sys.stderr
                    stream.write(line + "\n")
                    flush = getattr(stream, "flush", None)
                    if flush is not None:
                        flush()
        except (OSError, ValueError):  # pragma: no cover - sink unwritable
            pass


def stage_timings(root: Span) -> Dict[str, float]:
    """Aggregate per-stage elapsed milliseconds from one request's tree.

    Sums every span of the same name (a retried request has several
    ``shard.call`` children) -- the compact per-request timing summary
    the structured request log line carries.

    >>> now = [0.0]
    >>> root = Span("http.request", clock=lambda: now[0])
    >>> a = root.child("shard.call"); now[0] = 0.010; a.finish()
    >>> b = root.child("shard.call"); now[0] = 0.030; b.finish()
    >>> now[0] = 0.040; root.finish()
    >>> timings = stage_timings(root)
    >>> timings["http.request"], timings["shard.call"]
    (40.0, 30.0)
    """
    totals: Dict[str, float] = {}
    # Walk the live tree (Span objects mixed with grafted span dicts)
    # directly -- this runs once per request, so it must not pay for a
    # full to_dict serialization.
    stack: List[Union[Span, dict]] = [root]
    while stack:
        node = stack.pop()
        if isinstance(node, Span):
            # Slot reads, not the elapsed_ms property: this loop is the
            # single hottest traced-only code on the server thread.
            end = node.end
            if end is None:
                end = node.clock()
            name = node.name
            totals[name] = totals.get(name, 0.0) + (end - node.start) * 1e3
            stack.extend(node.children)
            continue
        name = node.get("name")
        elapsed = node.get("elapsed_ms")
        children = node.get("children", ())
        if isinstance(name, str) and isinstance(elapsed, (int, float)):
            totals[name] = totals.get(name, 0.0) + elapsed
        if isinstance(children, (list, tuple)):
            stack.extend(children)
    return {name: round(total, 3) for name, total in totals.items()}

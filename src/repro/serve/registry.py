"""Named, versioned, persistent registry of compiled wrappers.

A registry entry is *source text* (an Elog- program or a monadic datalog
program) plus the extraction patterns to expose; registration parses,
translates and fully compiles the wrapper once
(:meth:`repro.wrap.extraction.Wrapper.compile`), so serving never pays
compilation on a request.

With a ``cache_dir`` the registry is persistent: each ``name@version``
gets a JSON *spec* file (kind, source, patterns, source hash -- the
source of truth) and a pickle of the compiled wrapper (a pure cache).  On
startup every spec is warm-loaded; a pickle whose recorded source hash no
longer matches the spec (or that fails to load) is discarded and the
wrapper is recompiled from source and re-persisted.  The cache directory
is trusted input -- do not point it at files you did not write.
"""

from __future__ import annotations

import hashlib
import json
import os
import pickle
import re
import threading
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Tuple

from repro.errors import ReproError, ServeError
from repro.wrap.extraction import Wrapper

#: Registry names must be filesystem- and URL-safe.
_NAME = re.compile(r"^[A-Za-z0-9][A-Za-z0-9_.-]*$")

#: Bumped when the pickled payload layout changes; older pickles are
#: treated as cache misses and recompiled from the spec.
_CACHE_FORMAT = 1


def source_hash(kind: str, source: str, patterns: Sequence[str]) -> str:
    """Content hash identifying one compiled wrapper artifact."""
    digest = hashlib.sha256()
    digest.update(kind.encode("utf-8"))
    for pattern in patterns:
        digest.update(b"\x00")
        digest.update(pattern.encode("utf-8"))
    digest.update(b"\x00\x00")
    digest.update(source.encode("utf-8"))
    return digest.hexdigest()


def _parse_and_choose(
    kind: str, source: str, patterns: Optional[Sequence[str]]
):
    """Parse one wrapper source; returns ``(program, chosen patterns)``."""
    if kind == "elog":
        from repro.elog.parser import parse_elog

        program = parse_elog(source)
        defined = program.patterns()
        chosen = tuple(patterns) if patterns else tuple(sorted(defined))
        unknown = [p for p in chosen if p not in defined]
        if unknown:
            raise ServeError(f"unknown Elog- patterns {unknown!r} in registration")
    elif kind == "datalog":
        from repro.datalog.parser import parse_program

        program = parse_program(source)
        defined = set(program.intensional_predicates())
        if patterns:
            chosen = tuple(patterns)
        elif program.query is not None:
            chosen = (program.query,)
        else:
            raise ServeError(
                "datalog registration needs explicit patterns or a query predicate"
            )
        unknown = [p for p in chosen if p not in defined]
        if unknown:
            raise ServeError(
                f"unknown datalog predicates {unknown!r} in registration"
            )
    else:
        raise ServeError(f"unknown wrapper kind {kind!r} (use 'elog' or 'datalog')")
    if not chosen:
        raise ServeError("wrapper registration exposes no extraction patterns")
    return program, chosen


def resolve_patterns(
    kind: str, source: str, patterns: Optional[Sequence[str]] = None
) -> Tuple[str, ...]:
    """Parse-only resolution of the exposed patterns (no compilation).

    The cheap probe the registry uses to decide whether a registration
    is an idempotent no-op before paying for a compile.
    """
    return _parse_and_choose(kind, source, patterns)[1]


def build_wrapper(
    kind: str, source: str, patterns: Optional[Sequence[str]] = None
) -> Tuple[Wrapper, Tuple[str, ...]]:
    """Parse + compile one wrapper; returns ``(wrapper, patterns used)``.

    ``kind`` is ``"elog"`` (Definition 6.2 source) or ``"datalog"``
    (monadic datalog source).  All patterns are registered against *one*
    program object, so the whole wrapper costs a single kernel fixpoint
    per document.  ``patterns=None`` exposes every defined Elog- pattern
    (sorted), or the datalog program's query predicate.
    """
    program, chosen = _parse_and_choose(kind, source, patterns)
    wrapper = Wrapper()
    for pattern in chosen:
        if kind == "elog":
            wrapper.add_elog(pattern, program, pattern=pattern)
        else:
            wrapper.add_datalog(pattern, program, predicate=pattern)
    wrapper.compile()
    return wrapper, chosen


class RegisteredWrapper:
    """One immutable ``name@version`` registry entry."""

    __slots__ = ("name", "version", "kind", "source", "patterns", "source_hash", "wrapper")

    def __init__(
        self,
        name: str,
        version: int,
        kind: str,
        source: str,
        patterns: Tuple[str, ...],
        digest: str,
        wrapper: Wrapper,
    ):
        self.name = name
        self.version = version
        self.kind = kind
        self.source = source
        self.patterns = patterns
        self.source_hash = digest
        self.wrapper = wrapper

    @property
    def key(self) -> str:
        """The canonical reference, ``name@version``."""
        return f"{self.name}@{self.version}"

    @property
    def cache_key(self) -> str:
        """Cache/shard key: reference plus a source-hash prefix, so a
        replaced registration can never serve stale cached results."""
        return f"{self.name}@{self.version}:{self.source_hash[:12]}"

    def describe(self) -> dict:
        """JSON-serializable summary (no compiled artifact)."""
        return {
            "name": self.name,
            "version": self.version,
            "kind": self.kind,
            "patterns": list(self.patterns),
            "source_hash": self.source_hash,
        }

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        return f"RegisteredWrapper({self.key}, kind={self.kind!r})"


class WrapperRegistry:
    """Named + versioned compiled wrappers with optional disk persistence.

    Examples
    --------
    >>> registry = WrapperRegistry()
    >>> entry = registry.register(
    ...     "items", "item(x) :- label_li(x).", kind="datalog",
    ...     patterns=["item"])
    >>> entry.key
    'items@1'
    >>> registry.resolve("items").version
    1
    >>> registry.register("items", "item(x) :- label_td(x).",
    ...                   kind="datalog", patterns=["item"]).key
    'items@2'
    >>> [w["version"] for w in registry.list() if w["name"] == "items"]
    [1, 2]
    """

    def __init__(self, cache_dir: Optional[str] = None):
        self._by_name: Dict[str, Dict[int, RegisteredWrapper]] = {}
        #: Registration may run off the event loop (the HTTP handler
        #: compiles in a worker thread); lookups stay consistent under it.
        self._lock = threading.RLock()
        self._cache_dir: Optional[Path] = Path(cache_dir) if cache_dir else None
        if self._cache_dir is not None:
            self._cache_dir.mkdir(parents=True, exist_ok=True)
            self._warm_load()

    # -- registration --------------------------------------------------------

    def register(
        self,
        name: str,
        source: str,
        kind: str = "elog",
        patterns: Optional[Sequence[str]] = None,
        version: Optional[int] = None,
    ) -> RegisteredWrapper:
        """Compile and store a wrapper; returns the registry entry.

        ``version=None`` is idempotent against the *newest* stored
        version: unchanged source/kind/patterns return it as-is (so a
        server registering its wrappers on every boot does not grow the
        registry), while changed source allocates the next version.  An
        explicit ``version`` replaces that entry when the source changed
        and is a no-op when it did not.
        """
        if not _NAME.match(name or ""):
            raise ServeError(
                f"invalid wrapper name {name!r} (letters, digits, '_', '.', '-')"
            )
        if not isinstance(source, str) or not source.strip():
            raise ServeError("wrapper registration needs non-empty source text")
        if version is not None and (not isinstance(version, int) or version < 1):
            raise ServeError(f"wrapper versions are integers >= 1, got {version!r}")
        with self._lock:
            versions = self._by_name.setdefault(name, {})
            if version is None:
                candidate = versions[max(versions)] if versions else None
            else:
                candidate = versions.get(version)
        # Idempotency probe without compiling (and without the lock, so
        # concurrent lookups never stall behind a parse): explicit
        # identical patterns short-circuit outright; otherwise a cheap
        # parse resolves the default patterns for the digest comparison.
        if (
            candidate is not None
            and candidate.kind == kind
            and candidate.source == source
        ):
            if patterns is not None and tuple(patterns) == candidate.patterns:
                return candidate
            chosen = resolve_patterns(kind, source, patterns)
            if source_hash(kind, source, chosen) == candidate.source_hash:
                return candidate
        # The expensive part -- parse + full compile -- runs outside the
        # lock; only the commit below re-synchronizes.
        wrapper, chosen = build_wrapper(kind, source, patterns)
        digest = source_hash(kind, source, chosen)
        with self._lock:
            versions = self._by_name.setdefault(name, {})
            if version is None:
                current = versions[max(versions)] if versions else None
                if current is not None and current.source_hash == digest:
                    return current  # raced with an identical registration
                version = max(versions, default=0) + 1
            else:
                current = versions.get(version)
                if current is not None and current.source_hash == digest:
                    return current
            entry = RegisteredWrapper(
                name, version, kind, source, chosen, digest, wrapper
            )
            versions[version] = entry
            self._persist(entry)
            return entry

    # -- lookup --------------------------------------------------------------

    def get(self, name: str, version: Optional[int] = None) -> RegisteredWrapper:
        """The entry for ``name`` (latest version when unspecified)."""
        with self._lock:
            versions = self._by_name.get(name)
            if not versions:
                raise ServeError(f"unknown wrapper {name!r}")
            if version is None:
                return versions[max(versions)]
            entry = versions.get(version)
        if entry is None:
            raise ServeError(f"unknown wrapper version {name}@{version}")
        return entry

    def resolve(self, ref: str) -> RegisteredWrapper:
        """Resolve a ``name`` or ``name@version`` reference."""
        name, sep, version_text = (ref or "").partition("@")
        if not sep:
            return self.get(name)
        if not version_text.isdigit():
            raise ServeError(f"bad wrapper reference {ref!r} (want name@version)")
        return self.get(name, int(version_text))

    def list(self) -> List[dict]:
        """Summaries of every entry, ordered by name then version."""
        with self._lock:
            out: List[dict] = []
            for name in sorted(self._by_name):
                for version in sorted(self._by_name[name]):
                    out.append(self._by_name[name][version].describe())
            return out

    def __len__(self) -> int:
        with self._lock:
            return sum(len(v) for v in self._by_name.values())

    # -- persistence ---------------------------------------------------------

    def _spec_path(self, name: str, version: int) -> Path:
        assert self._cache_dir is not None
        return self._cache_dir / f"{name}@{version}.json"

    def _pickle_path(self, name: str, version: int) -> Path:
        assert self._cache_dir is not None
        return self._cache_dir / f"{name}@{version}.pkl"

    def _persist(self, entry: RegisteredWrapper) -> None:
        if self._cache_dir is None:
            return
        spec = {
            "format": _CACHE_FORMAT,
            "name": entry.name,
            "version": entry.version,
            "kind": entry.kind,
            "source": entry.source,
            "patterns": list(entry.patterns),
            "source_hash": entry.source_hash,
        }
        payload = {
            "format": _CACHE_FORMAT,
            "source_hash": entry.source_hash,
            "wrapper": entry.wrapper,
        }
        self._write_atomic(
            self._spec_path(entry.name, entry.version),
            json.dumps(spec, indent=2).encode("utf-8"),
        )
        self._write_atomic(
            self._pickle_path(entry.name, entry.version),
            pickle.dumps(payload, protocol=pickle.HIGHEST_PROTOCOL),
        )

    @staticmethod
    def _write_atomic(path: Path, data: bytes) -> None:
        tmp = path.with_suffix(path.suffix + ".tmp")
        tmp.write_bytes(data)
        os.replace(tmp, path)

    def _warm_load(self) -> None:
        """Load every persisted spec, reusing pickles whose hash matches."""
        assert self._cache_dir is not None
        for spec_path in sorted(self._cache_dir.glob("*.json")):
            try:
                spec = json.loads(spec_path.read_text("utf-8"))
                name = spec["name"]
                version = int(spec["version"])
                kind = spec["kind"]
                source = spec["source"]
                patterns = tuple(spec["patterns"])
            except (OSError, ValueError, KeyError, TypeError):
                continue  # unreadable spec: leave the file for inspection
            digest = source_hash(kind, source, patterns)
            wrapper = self._load_pickle(name, version, digest)
            if wrapper is None:
                # Cache miss / stale hash: recompile from the spec source
                # and refresh both artifacts on disk.
                try:
                    wrapper, patterns = build_wrapper(kind, source, patterns)
                except ReproError:
                    # One bad cache entry (e.g. source that no longer
                    # parses) must not abort the whole warm load.
                    continue
                digest = source_hash(kind, source, patterns)
                entry = RegisteredWrapper(
                    name, version, kind, source, patterns, digest, wrapper
                )
                self._by_name.setdefault(name, {})[version] = entry
                self._persist(entry)
            else:
                entry = RegisteredWrapper(
                    name, version, kind, source, patterns, digest, wrapper
                )
                self._by_name.setdefault(name, {})[version] = entry

    def _load_pickle(self, name: str, version: int, digest: str) -> Optional[Wrapper]:
        path = self._pickle_path(name, version)
        try:
            with path.open("rb") as handle:
                payload = pickle.load(handle)
        except (OSError, pickle.UnpicklingError, EOFError, AttributeError,
                ImportError, IndexError):
            return None
        if not isinstance(payload, dict):
            return None
        if payload.get("format") != _CACHE_FORMAT:
            return None
        if payload.get("source_hash") != digest:
            return None  # source changed since the wrapper was compiled
        wrapper = payload.get("wrapper")
        return wrapper if isinstance(wrapper, Wrapper) else None

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        where = str(self._cache_dir) if self._cache_dir else "in-memory"
        return f"WrapperRegistry({len(self)} entries, {where})"

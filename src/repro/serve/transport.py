"""Fault-mapped socket transport for remote evaluation shards.

The :class:`~repro.serve.executor.ShardExecutor` protocol (install a
wrapper once, stream pages, ping, kill, respawn) was always
shape-compatible with a wire protocol; this module is that wire.  It has
one design rule, inherited from the fault-tolerance layer: **every
transport failure must surface as one of the PR-7 error types**, so the
batcher's retry/bisection, the supervisor's circuit breakers, the
quarantine, and the server's backoff loop work against remote boxes
without a single change:

* connection refused / unreachable daemon -> *blameless*
  :class:`~repro.errors.ShardCrashed` (the daemon was down before the
  documents ever reached it);
* connection reset / EOF / broken frame mid-call ->
  :class:`~repro.errors.ShardCrashed` (attributable: the documents in
  flight may be what killed the daemon -- exactly like local worker
  death, so quarantine strikes work identically);
* a call exceeding its size-derived deadline is cut off by the batcher's
  ``asyncio.wait_for`` exactly as for local shards; the cancellation
  closes the connection (a sequential frame stream that timed out can no
  longer be trusted) and the failure surfaces as
  :class:`~repro.errors.RequestTimeout`;
* a daemon-side evaluation error travels back as a typed error frame and
  is re-raised as the same :mod:`repro.errors` class (so
  ``WrapperNotResident`` after a daemon restart, or an injected
  ``ShardCrashed``, behave bit-for-bit like their local counterparts).

Frame format (both directions)::

    4 bytes big-endian payload length | 4 bytes CRC32 | pickled payload

The CRC turns line noise and injected garbling into a deterministic
:class:`FrameError` instead of an unpickling crash deep in a handler.
Payloads are pickled because compiled wrappers must travel to the daemon
exactly once -- which also means the transport is for **trusted
networks only** (a cluster-internal fabric), like any pickle RPC.

Requests and responses are matched by ``id``.  Each connection is
serialized by a lock (one outstanding request), mirroring the
single-worker semantics of local shards: a ping queued behind a long
evaluation proves the daemon is draining its queue, and a hung daemon
fails its ping -- feeding the same breaker machinery.  The daemon may
interleave one unsolicited frame, ``{"op": "drain"}``, announcing a
planned shutdown; the client marks the shard draining so the supervisor
removes it from the consistent-hash ring before the socket closes.

Network fault injection (``drop_conn`` / ``delay_frame`` /
``garble_frame``, see :mod:`repro.serve.faults`) is applied here on the
router side, counted per connection frame, so chaos runs remain fully
deterministic.
"""

from __future__ import annotations

import asyncio
import pickle
import struct
import zlib
from collections import OrderedDict
from typing import Dict, List, Optional, Tuple

import repro.errors as _errors
from repro.errors import ServeError, ShardCrashed
from repro.serve.faults import FaultPlan, TransportFaultInjector

#: Header: payload length + CRC32, both unsigned 32-bit big-endian.
_HEADER = struct.Struct(">II")

#: Upper bound on one frame's payload; a length beyond this means a
#: desynchronized or hostile stream, not a real message.
MAX_FRAME = 64 * 1024 * 1024


class FrameError(ServeError):
    """A frame failed validation (bad length, checksum, or pickle)."""


def encode_frame(message: dict) -> bytes:
    """Serialize one message to ``header + payload`` bytes."""
    payload = pickle.dumps(message, protocol=pickle.HIGHEST_PROTOCOL)
    if len(payload) > MAX_FRAME:
        raise FrameError(
            f"frame of {len(payload)} bytes exceeds the {MAX_FRAME}-byte cap"
        )
    return _HEADER.pack(len(payload), zlib.crc32(payload)) + payload


def decode_payload(payload: bytes, crc: int) -> dict:
    """Validate and unpickle one frame payload.

    >>> raw = encode_frame({"op": "ping"})
    >>> length, crc = _HEADER.unpack(raw[:8])
    >>> decode_payload(raw[8:], crc)
    {'op': 'ping'}
    >>> decode_payload(b"garbage", crc)
    Traceback (most recent call last):
        ...
    repro.serve.transport.FrameError: frame checksum mismatch (garbled on the wire)
    """
    if zlib.crc32(payload) != crc:
        raise FrameError("frame checksum mismatch (garbled on the wire)")
    try:
        message = pickle.loads(payload)
    except Exception as exc:
        raise FrameError(f"frame payload does not unpickle: {exc}") from None
    if not isinstance(message, dict):
        raise FrameError(
            f"frame payload is {type(message).__name__}, expected a dict"
        )
    return message


async def read_frame(reader: asyncio.StreamReader) -> dict:
    """Read and validate one frame; raises :class:`FrameError` on junk."""
    header = await reader.readexactly(_HEADER.size)
    length, crc = _HEADER.unpack(header)
    if length > MAX_FRAME:
        raise FrameError(
            f"incoming frame claims {length} bytes (cap {MAX_FRAME}); "
            "stream desynchronized"
        )
    payload = await reader.readexactly(length)
    return decode_payload(payload, crc)


async def write_frame(
    writer: asyncio.StreamWriter, message: dict, garble: bool = False
) -> None:
    """Send one frame; ``garble=True`` flips payload bytes post-checksum.

    Garbling is the injected ``garble_frame`` network fault: the header
    stays intact so the receiver reads the right number of bytes, then
    fails the CRC check -- a deterministic model of line corruption.
    """
    data = encode_frame(message)
    if garble:
        body = bytes(b ^ 0xA5 for b in data[_HEADER.size :])
        data = data[: _HEADER.size] + body
    writer.write(data)
    await writer.drain()


# -- typed error frames -----------------------------------------------------


def encode_error(exc: BaseException) -> dict:
    """Serialize an exception for an error frame (type + message)."""
    return {
        "type": type(exc).__name__,
        "message": str(exc),
        "blameless": bool(getattr(exc, "blameless", False)),
    }


def decode_error(payload: object) -> Exception:
    """Rebuild the typed exception an error frame carries.

    Known :mod:`repro.errors` classes are reconstructed exactly (so the
    retry/quarantine policy treats remote failures like local ones);
    anything else degrades to :class:`~repro.errors.ServeError`.

    >>> err = decode_error({"type": "ShardCrashed", "message": "boom",
    ...                     "blameless": True})
    >>> type(err).__name__, err.blameless
    ('ShardCrashed', True)
    >>> type(decode_error({"type": "ValueError", "message": "x"})).__name__
    'ServeError'
    """
    if not isinstance(payload, dict):
        return ShardCrashed("remote shard sent a malformed error frame")
    name = payload.get("type", "")
    message = payload.get("message", "remote shard error")
    cls = getattr(_errors, str(name), None)
    if isinstance(cls, type) and issubclass(cls, _errors.ReproError):
        exc = cls(message)
    else:
        exc = ServeError(f"remote shard error {name}: {message}")
    if hasattr(exc, "blameless") and "blameless" in payload:
        try:
            exc.blameless = bool(payload["blameless"])
        except AttributeError:  # pragma: no cover - class-level property
            pass
    return exc


# -- the router-side shard client -------------------------------------------


def parse_address(address: str) -> Tuple[str, int]:
    """Split ``host:port``; raises :class:`~repro.errors.ServeError`.

    >>> parse_address("127.0.0.1:9001")
    ('127.0.0.1', 9001)
    """
    host, sep, port = address.rpartition(":")
    if not sep or not host:
        raise ServeError(f"remote shard address {address!r} is not host:port")
    try:
        return host, int(port)
    except ValueError:
        raise ServeError(
            f"remote shard address {address!r} has a non-numeric port"
        ) from None


class _RemoteShard:
    """One daemon connection: sequential framed RPC with fault mapping."""

    def __init__(
        self,
        address: str,
        injector: Optional[TransportFaultInjector] = None,
        connect_timeout: float = 5.0,
    ):
        self.address = address
        self.host, self.port = parse_address(address)
        self.injector = injector
        self.connect_timeout = connect_timeout
        self.reader: Optional[asyncio.StreamReader] = None
        self.writer: Optional[asyncio.StreamWriter] = None
        self.lock = asyncio.Lock()
        self.connected = False
        self.draining = False
        self.connects = 0
        self.reconnects = 0
        #: Installed wrapper keys (client-side view; cleared on any drop,
        #: because a reconnected daemon may be a fresh process).
        self.installed: "OrderedDict[str, bool]" = OrderedDict()
        #: Stats from the daemon's last ping reply (installs, wraps, ...).
        self.last_stats: Dict = {}
        self._next_id = 0

    async def _connect(self) -> None:
        try:
            self.reader, self.writer = await asyncio.wait_for(
                asyncio.open_connection(self.host, self.port),
                self.connect_timeout,
            )
        except (OSError, asyncio.TimeoutError, TimeoutError) as exc:
            crash = ShardCrashed(
                f"cannot connect to remote shard {self.address} ({exc!r}); "
                "retry the request"
            )
            # The daemon was unreachable before any page was sent: the
            # documents in this call cannot be at fault.
            crash.blameless = True
            raise crash from None
        self.connects += 1
        if self.connects > 1:
            self.reconnects += 1
        self.connected = True
        # A fresh connection may be to a fresh daemon: nothing is resident
        # (drop() already cleared ``installed``; keys present now belong
        # to installs in flight on this very connection) and any old
        # drain notice is stale.
        self.draining = False

    def drop(self) -> None:
        """Close the connection (kill/respawn/timeout/chaos); lazily reopens."""
        if self.writer is not None:
            try:
                self.writer.close()
            except Exception:  # pragma: no cover - already-dead transport
                pass
        self.reader = None
        self.writer = None
        self.connected = False
        self.installed.clear()

    async def request(self, op: str, **payload):
        """One framed round trip; maps every transport failure.

        Serialized per connection: at most one outstanding request, so
        responses cannot interleave and a timed-out (cancelled) call
        drops the connection rather than leaving a stray response to
        desynchronize the next caller.
        """
        async with self.lock:
            self._next_id += 1
            rid = self._next_id
            try:
                if not self.connected:
                    await self._connect()
                fault, argument = (
                    self.injector.next_frame()
                    if self.injector is not None
                    else (None, None)
                )
                if fault == "delay":
                    await asyncio.sleep(argument)
                if fault == "drop":
                    self.drop()
                    crash = ShardCrashed(
                        f"connection to remote shard {self.address} dropped "
                        "(injected drop_conn); retry the request"
                    )
                    crash.blameless = True
                    raise crash
                await write_frame(
                    self.writer,
                    {"id": rid, "op": op, **payload},
                    garble=(fault == "garble"),
                )
                while True:
                    reply = await read_frame(self.reader)
                    if reply.get("op") == "drain":
                        # Unsolicited planned-shutdown notice: flag the
                        # shard so the supervisor pulls it from the ring.
                        self.draining = True
                        continue
                    if reply.get("id") == rid:
                        break
                    raise FrameError(
                        f"response id {reply.get('id')!r} does not match "
                        f"request id {rid} (stream desynchronized)"
                    )
            except ShardCrashed:
                raise
            except asyncio.CancelledError:
                # Deadline overrun (asyncio.wait_for) or shutdown: the
                # in-flight response can no longer be matched safely.
                self.drop()
                raise
            except (
                FrameError,
                asyncio.IncompleteReadError,
                ConnectionError,
                EOFError,
                OSError,
            ) as exc:
                self.drop()
                raise ShardCrashed(
                    f"remote shard {self.address} failed mid-call "
                    f"({type(exc).__name__}: {exc}); retry the request"
                ) from None
        if reply.get("draining"):
            self.draining = True
        if not reply.get("ok", False):
            raise decode_error(reply.get("error"))
        return reply.get("value")

    def state(self) -> Dict:
        return {
            "transport": "remote",
            "address": self.address,
            "connected": self.connected,
            "draining": self.draining,
            "reconnects_total": self.reconnects,
            "installed_wrappers": len(self.installed),
            "daemon": dict(self.last_stats),
        }


class RemoteShardExecutor:
    """The :class:`~repro.serve.executor.ShardExecutor` surface over sockets.

    Drop-in for the batcher and supervisor: ``run``-shaped submissions
    return awaitable futures (``asyncio`` tasks -- ``asyncio.wrap_future``
    passes them through), ``ping`` feeds the health loop,
    ``kill_shard``/``respawn_shard`` become connection drops with lazy
    reconnect, and every failure is one of the PR-7 error types, so the
    retry, breaker, quarantine, and rerouting machinery upstream applies
    unchanged to a cluster of remote boxes.

    Must be created and used on one asyncio event loop (the server's).
    """

    mode = "remote"

    def __init__(
        self,
        addresses: List[str],
        faults: Optional[FaultPlan] = None,
        max_installed: int = 32,
        connect_timeout: float = 5.0,
    ):
        if not addresses:
            raise ServeError("RemoteShardExecutor needs at least one address")
        self.faults = faults
        self._shards = [
            _RemoteShard(
                address,
                injector=(
                    TransportFaultInjector(faults, shard_tag=f"remote-{index}")
                    if faults is not None and faults.transport_enabled
                    else None
                ),
                connect_timeout=connect_timeout,
            )
            for index, address in enumerate(addresses)
        ]
        self.max_installed = max(1, max_installed)
        self._closed = False

    @property
    def n_shards(self) -> int:
        return len(self._shards)

    @property
    def addresses(self) -> List[str]:
        return [shard.address for shard in self._shards]

    def shard_for(self, doc_hash: str) -> int:
        """Flat home-shard index (the ring in the supervisor overrides
        this for routing; this remains the no-supervisor fallback)."""
        return int(doc_hash[:16], 16) % len(self._shards)

    def _task(self, coroutine) -> "asyncio.Task":
        if self._closed:
            raise ServeError("executor is closed")
        return asyncio.ensure_future(coroutine)

    def ensure_installed(self, key: str, wrapper, shard: Optional[int] = None):
        """Install ``key`` wherever it is missing; futures to await.

        With ``shard`` given, only that shard's install future is
        returned (the caller's request depends on it alone); installs to
        the *other* shards are still fired but self-heal in the
        background -- a dead daemon elsewhere in the ring must not fail
        this request.
        """
        if self._closed:
            raise ServeError("executor is closed")
        futures = []
        for index, remote in enumerate(self._shards):
            if key in remote.installed:
                remote.installed.move_to_end(key)
                continue
            if remote.draining and index != shard:
                continue  # a draining daemon will never be routed new keys
            task = self._task(remote.request("install", key=key, wrapper=wrapper))
            remote.installed[key] = True
            task.add_done_callback(self._forget_on_failure(remote, key))
            if shard is None or index == shard:
                futures.append(task)
            while len(remote.installed) > self.max_installed:
                stale, _ = remote.installed.popitem(last=False)
                evict = self._task(remote.request("uninstall", key=stale))
                evict.add_done_callback(_consume_exception)
        return futures

    @staticmethod
    def _forget_on_failure(remote: _RemoteShard, key: str):
        def callback(task) -> None:
            if task.cancelled() or task.exception() is not None:
                remote.installed.pop(key, None)

        return callback

    def installed_on(self, key: str) -> List[int]:
        """Shard indices currently holding ``key`` (acked installs)."""
        return [
            index
            for index, remote in enumerate(self._shards)
            if key in remote.installed
        ]

    def submit(self, shard_index: int, key: str, pages: List[str]):
        return self._task(
            self._shards[shard_index].request("wrap", key=key, pages=pages)
        )

    def submit_traced(
        self,
        shard_index: int,
        key: str,
        pages: List[str],
        trace: Optional[dict] = None,
    ):
        """Traced :meth:`submit`: the request frame carries a new
        optional ``trace`` field (the client-side trace context, e.g.
        ``{"trace_id": ...}``).  A tracing-aware daemon echoes kernel
        stats back as ``{"pages": [...], "kernel": [...]}`` and logs the
        trace id; an older daemon reads only the frame keys it knows,
        ignores ``trace``, and answers the plain page list -- which the
        batcher accepts, degrading to a transport-only span."""
        return self._task(
            self._shards[shard_index].request(
                "wrap", key=key, pages=pages, trace=trace or {"trace_id": None}
            )
        )

    def submit_warm(self, shard_index: int, key: str, items: List[Tuple[str, str]]):
        return self._task(
            self._shards[shard_index].request("wrap_warm", key=key, items=items)
        )

    def ping(self, shard_index: int):
        remote = self._shards[shard_index]

        async def _ping() -> bool:
            value = await remote.request("ping")
            if isinstance(value, dict):
                remote.draining = bool(value.get("draining", False))
                remote.last_stats = value.get("stats", {})
            return True

        return self._task(_ping())

    def kill_shard(self, shard_index: int) -> None:
        """A hung/timed-out call: sever the connection.  The daemon (on
        another box) survives; what matters is that *this* router stops
        trusting the stream and reconnects fresh."""
        if not self._closed:
            self._shards[shard_index].drop()

    def respawn_shard(self, shard_index: int) -> None:
        """Supervisor hook: drop and let the next use reconnect."""
        self.kill_shard(shard_index)

    def shard_state(self, shard_index: int) -> Dict:
        return self._shards[shard_index].state()

    def is_draining(self, shard_index: int) -> bool:
        return self._shards[shard_index].draining

    async def aclose(self) -> None:
        """Close every connection (the event-loop-native shutdown)."""
        if self._closed:
            return
        self._closed = True
        for remote in self._shards:
            remote.drop()

    def close(self) -> None:
        """Best-effort sync close (for callers outside the loop)."""
        self._closed = True
        for remote in self._shards:
            try:
                remote.drop()
            except Exception:  # pragma: no cover - loop already gone
                pass

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        return f"RemoteShardExecutor({self.addresses!r})"


def _consume_exception(task) -> None:
    """Done-callback that swallows background-task failures quietly."""
    if not task.cancelled():
        task.exception()

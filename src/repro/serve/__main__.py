"""``python -m repro.serve``: run the wrapper extraction server.

Examples::

    # In-memory registry, demo catalog wrapper, one process shard:
    python -m repro.serve --port 8421 --demo --shards 1

    # Persistent registry (warm-loads previously registered wrappers):
    python -m repro.serve --port 8421 --registry-dir var/wrappers

Then::

    curl -s localhost:8421/healthz
    curl -s -X POST localhost:8421/extract/catalog \\
         -d '{"html": "<table><tr><td>Lamp</td><td>$9.99</td></tr></table>"}'
"""

from __future__ import annotations

import argparse
import asyncio
import contextlib
import signal
import sys

from repro.serve.registry import WrapperRegistry
from repro.serve.server import ExtractionServer
from repro.serve.tracing import RequestLog

#: Name under which ``--demo`` registers the reference catalog wrapper.
DEMO_WRAPPER = "catalog"


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.serve",
        description="Serve registered wrappers over HTTP (asyncio, stdlib only).",
    )
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument("--port", type=int, default=8421)
    parser.add_argument(
        "--registry-dir",
        default=None,
        help="persist compiled wrappers here (warm-loaded on startup)",
    )
    parser.add_argument(
        "--shards",
        type=int,
        default=0,
        help="process shards for evaluation (0 = inline single shard)",
    )
    parser.add_argument(
        "--remote-shard",
        action="append",
        default=None,
        metavar="HOST:PORT",
        help=(
            "address of a remote shard daemon (python -m repro.serve.shard); "
            "repeat for each daemon -- overrides --shards"
        ),
    )
    parser.add_argument("--max-batch", type=int, default=16)
    parser.add_argument(
        "--max-delay-ms",
        type=float,
        default=10.0,
        help="micro-batch flush deadline in milliseconds",
    )
    parser.add_argument(
        "--max-pending",
        type=int,
        default=256,
        help="pending-document budget before requests get 503",
    )
    parser.add_argument("--cache-size", type=int, default=512)
    parser.add_argument(
        "--deadline-base-ms",
        type=float,
        default=2000.0,
        help="fixed part of the per-request shard-call deadline",
    )
    parser.add_argument(
        "--deadline-per-mb-ms",
        type=float,
        default=5000.0,
        help="size-proportional part of the deadline (evaluation is linear)",
    )
    parser.add_argument(
        "--max-retries",
        type=int,
        default=3,
        help="in-server retries for retryable shard failures",
    )
    parser.add_argument(
        "--quarantine-strikes",
        type=int,
        default=3,
        help="consecutive worker crashes before a document is quarantined (422)",
    )
    parser.add_argument(
        "--health-interval",
        type=float,
        default=1.0,
        help="seconds between supervisor health sweeps over the shards",
    )
    parser.add_argument(
        "--breaker-threshold",
        type=int,
        default=3,
        help="consecutive shard failures that trip its circuit breaker",
    )
    parser.add_argument(
        "--faults",
        default=None,
        metavar="SPEC",
        help=(
            "deterministic fault injection, e.g. "
            "'kill_every=5,delay_every=10,delay_s=0.25' (chaos testing only)"
        ),
    )
    parser.add_argument(
        "--demo",
        action="store_true",
        help=f"register the reference catalog wrapper as {DEMO_WRAPPER!r}",
    )
    parser.add_argument(
        "--no-tracing",
        action="store_true",
        help="disable request tracing (/debug/traces, per-stage spans)",
    )
    parser.add_argument(
        "--trace-buffer",
        type=int,
        default=256,
        help="recent traces retained for /debug/traces",
    )
    parser.add_argument(
        "--access-log",
        default="-",
        metavar="PATH",
        help=(
            "structured JSON request log: one line per request with trace "
            "id, stage timings, retries, reroutes; '-' = stderr (default), "
            "'off' disables"
        ),
    )
    return parser


async def _amain(args: argparse.Namespace) -> int:
    # One structured JSON line per event, shared by the server's
    # per-request access log and these startup/shutdown notices --
    # replaces the ad-hoc prints this entrypoint used to emit.
    if args.access_log == "off":
        access_log = None
        boot_log = RequestLog(sys.stderr)
    else:
        access_log = sys.stderr if args.access_log == "-" else args.access_log
        boot_log = RequestLog(access_log)
    registry = WrapperRegistry(args.registry_dir)
    if args.demo:
        from repro.workloads import CATALOG_WRAPPER

        entry = registry.register(
            DEMO_WRAPPER,
            CATALOG_WRAPPER,
            kind="elog",
            patterns=["record", "name", "price"],
        )
        boot_log.log("demo_wrapper_registered", wrapper=entry.key)
    if args.faults:
        boot_log.log("fault_injection_active", spec=args.faults)
    server = ExtractionServer(
        registry,
        host=args.host,
        port=args.port,
        shards=args.shards,
        max_batch=args.max_batch,
        max_delay=args.max_delay_ms / 1000.0,
        max_pending=args.max_pending,
        cache_size=args.cache_size,
        deadline_base=args.deadline_base_ms / 1000.0,
        deadline_per_mb=args.deadline_per_mb_ms / 1000.0,
        max_retries=args.max_retries,
        quarantine_strikes=args.quarantine_strikes,
        health_interval=args.health_interval,
        breaker_threshold=args.breaker_threshold,
        faults=args.faults,
        remote_shards=args.remote_shard,
        tracing=not args.no_tracing,
        trace_buffer=args.trace_buffer,
        access_log=access_log,
    )
    await server.start()
    stop = asyncio.Event()
    loop = asyncio.get_running_loop()
    for signum in (signal.SIGINT, signal.SIGTERM):
        with contextlib.suppress(NotImplementedError):  # pragma: no cover
            loop.add_signal_handler(signum, stop.set)
    # The serve-smoke CI job waits for this exact line on stdout before
    # sending traffic, so it stays a plain print.
    print(
        f"repro.serve listening on {server.address} "
        f"({len(registry)} wrapper(s), {server.executor.n_shards} shard(s), "
        f"mode={server.executor.mode})",
        flush=True,
    )
    boot_log.log(
        "listening",
        address=server.address,
        wrappers=len(registry),
        shards=server.executor.n_shards,
        mode=server.executor.mode,
        tracing=server.tracer is not None,
    )
    await stop.wait()
    boot_log.log("shutdown", reason="signal")
    await server.stop()
    return 0


def main(argv=None) -> int:
    args = build_parser().parse_args(argv)
    try:
        return asyncio.run(_amain(args))
    except KeyboardInterrupt:  # pragma: no cover - direct ^C fallback
        return 130


if __name__ == "__main__":
    sys.exit(main())

"""Shard supervision: circuit breakers, health checks, poison quarantine.

Three cooperating pieces, all clock-injectable for deterministic tests:

* :class:`CircuitBreaker` — per-shard consecutive-failure breaker.
  ``closed`` (healthy) opens after ``threshold`` consecutive failures;
  while ``open`` the shard receives no routed work for ``cooldown``
  seconds, after which it goes ``half_open`` and a single probe decides
  whether it closes again or re-opens.
* :class:`Quarantine` — strike accounting per document content hash.  A
  document whose shard call crashes earns a strike; ``strikes``
  consecutive crashes (never interleaved with a success) quarantine the
  hash, and further requests for it are rejected with
  :class:`~repro.errors.PoisonDocument` before any shard is risked.
  Inspectable and releasable over HTTP (``GET /quarantine``,
  ``POST /quarantine/release``).
* :class:`ShardSupervisor` — the asyncio background task.  Every
  ``interval`` seconds it pings each shard (a trivial round trip bounded
  by ``ping_timeout``); failures feed the breaker, and a breaker that
  *opens* triggers a proactive respawn of the sick shard.  It also owns
  routing: :meth:`route` maps a document's home shard to the nearest
  shard whose breaker admits work, so an open breaker reroutes keys to
  neighbors instead of failing requests.

The batcher reports per-call outcomes into the same breakers, so request
traffic and the health loop share one failure signal.
"""

from __future__ import annotations

import asyncio
import time
from collections import OrderedDict
from typing import Callable, Dict, List, Optional

from repro.errors import PoisonDocument
from repro.serve.metrics import ServeMetrics
from repro.serve.ring import HashRing

Clock = Callable[[], float]


class CircuitBreaker:
    """Consecutive-failure breaker with open/half-open/closed states.

    Examples
    --------
    >>> now = [0.0]
    >>> breaker = CircuitBreaker(threshold=2, cooldown=5.0, clock=lambda: now[0])
    >>> breaker.state
    'closed'
    >>> breaker.record_failure()
    False
    >>> breaker.state
    'closed'
    >>> breaker.record_failure()   # threshold reached: the breaker opens
    True
    >>> breaker.state
    'open'
    >>> breaker.admits()
    False
    >>> now[0] += 5.1
    >>> breaker.state, breaker.admits()           # cooldown over: probe allowed
    ('half_open', True)
    >>> breaker.record_success(); breaker.state
    'closed'
    """

    __slots__ = ("threshold", "cooldown", "failures", "opened_at", "_clock", "trips")

    def __init__(
        self, threshold: int = 3, cooldown: float = 5.0, clock: Clock = time.monotonic
    ):
        self.threshold = max(1, threshold)
        self.cooldown = cooldown
        self.failures = 0
        self.opened_at: Optional[float] = None
        self.trips = 0
        self._clock = clock

    @property
    def state(self) -> str:
        if self.opened_at is None:
            return "closed"
        if self._clock() - self.opened_at >= self.cooldown:
            return "half_open"
        return "open"

    def admits(self) -> bool:
        """Whether routed work may reach this shard right now."""
        return self.state != "open"

    def record_failure(self) -> bool:
        """Count one failure; returns True when this call *opens* the breaker."""
        self.failures += 1
        if self.opened_at is None and self.failures >= self.threshold:
            self.opened_at = self._clock()
            self.trips += 1
            return True
        if self.opened_at is not None and self.state == "half_open":
            # The probe failed: re-open for another cooldown.
            self.opened_at = self._clock()
            self.trips += 1
        return False

    def record_success(self) -> None:
        self.failures = 0
        self.opened_at = None

    def describe(self) -> Dict:
        return {
            "state": self.state,
            "consecutive_failures": self.failures,
            "trips": self.trips,
        }


class Quarantine:
    """Strike ledger for documents that crash shard workers.

    Examples
    --------
    >>> quarantine = Quarantine(strikes=2)
    >>> quarantine.strike("h1")
    False
    >>> quarantine.strike("h1")   # second consecutive crash: quarantined
    True
    >>> quarantine.is_quarantined("h1")
    True
    >>> quarantine.absolve("h2"); quarantine.is_quarantined("h2")
    False
    >>> quarantine.release("h1")
    True
    >>> quarantine.is_quarantined("h1")
    False
    """

    def __init__(self, strikes: int = 3, clock: Clock = time.time):
        self.strikes = max(1, strikes)
        self._clock = clock
        #: hash -> {"strikes": int, "quarantined": bool, timestamps...}
        self._entries: Dict[str, Dict] = {}

    def is_quarantined(self, doc_hash: str) -> bool:
        entry = self._entries.get(doc_hash)
        return bool(entry and entry["quarantined"])

    def check(self, doc_hash: str) -> None:
        """Raise :class:`PoisonDocument` if ``doc_hash`` is quarantined."""
        if self.is_quarantined(doc_hash):
            raise PoisonDocument(
                f"document {doc_hash[:12]} is quarantined after "
                f"{self._entries[doc_hash]['strikes']} shard crashes; "
                "POST /quarantine/release to retry it"
            )

    def strike(self, doc_hash: str) -> bool:
        """Record one crash attributed to ``doc_hash``.

        Returns True when this strike crosses the threshold (the moment
        the document becomes quarantined).
        """
        now = self._clock()
        entry = self._entries.setdefault(
            doc_hash,
            {"strikes": 0, "quarantined": False, "first_strike": now, "last_strike": now},
        )
        entry["strikes"] += 1
        entry["last_strike"] = now
        if not entry["quarantined"] and entry["strikes"] >= self.strikes:
            entry["quarantined"] = True
            return True
        return False

    def absolve(self, doc_hash: str) -> None:
        """A successful extraction clears the document's strike count.

        Strikes must be *consecutive* to quarantine: a document that
        merely shared a batch with a scheduled worker kill succeeds on
        retry and is wiped clean here.  Quarantined entries stay
        quarantined (release is an explicit operator action)."""
        entry = self._entries.get(doc_hash)
        if entry is not None and not entry["quarantined"]:
            del self._entries[doc_hash]

    def release(self, doc_hash: str) -> bool:
        """Forget a hash entirely (operator override); True if it existed."""
        return self._entries.pop(doc_hash, None) is not None

    def describe(self) -> Dict:
        """JSON view for ``GET /quarantine``."""
        return {
            "strikes_to_quarantine": self.strikes,
            "quarantined": sorted(
                h for h, e in self._entries.items() if e["quarantined"]
            ),
            "entries": {
                h: dict(e) for h, e in sorted(self._entries.items())
            },
        }

    def __len__(self) -> int:
        return sum(1 for e in self._entries.values() if e["quarantined"])


class ShardSupervisor:
    """Background health checks + ring routing + breakers + respawns.

    Created (and started) by the server; the batcher consults
    :meth:`route_hash` for every shard submission and reports outcomes
    via :meth:`record_failure` / :meth:`record_success`.

    Routing is a consistent-hash ring (:class:`~repro.serve.ring.HashRing`)
    over the healthy shards: a document's key routes to its ring owner,
    and membership tracks health -- a shard whose breaker trips *leaves*
    the ring (moving only its own key interval onto ring successors), a
    shard announcing a planned drain leaves without breaker penalty, and
    a shard whose probe succeeds again *rejoins*, reclaiming exactly the
    interval it owned before.  A moved key is at worst one cold miss on
    its new shard (warm state and resident wrappers re-materialize on
    first use), never a wrong answer.
    """

    def __init__(
        self,
        executor,
        metrics: ServeMetrics,
        interval: float = 1.0,
        ping_timeout: float = 5.0,
        threshold: int = 3,
        cooldown: float = 5.0,
        vnodes: int = 64,
        clock: Clock = time.monotonic,
    ):
        self._executor = executor
        self._metrics = metrics
        self.interval = interval
        self.ping_timeout = ping_timeout
        self.breakers: List[CircuitBreaker] = [
            CircuitBreaker(threshold=threshold, cooldown=cooldown, clock=clock)
            for _ in range(executor.n_shards)
        ]
        self.respawns = [0] * executor.n_shards
        #: Consistent-hash ring over shard indices; membership follows
        #: health (breaker trips and drain notices leave, recoveries
        #: rejoin), so routing moves only the affected key intervals.
        self.ring = HashRing(range(executor.n_shards), vnodes=vnodes)
        #: Last routed shard per key, LRU-bounded -- the basis of the
        #: ``ring_rebalanced_keys`` counter (a key observed moving to a
        #: different shard after a membership change).
        self._last_route: "OrderedDict[str, int]" = OrderedDict()
        self._last_route_cap = 4096
        #: Whether the most recent route()/route_hash() call diverged
        #: from the key's natural owner.  Read by the batcher right
        #: after routing (single event loop, no interleaving) to tag
        #: the request's ``ring.route`` span.
        self.last_route_rerouted = False
        self._task: Optional[asyncio.Task] = None

    # -- routing ------------------------------------------------------------

    def route(self, home_shard: int) -> int:
        """Index-walk fallback: nearest shard whose breaker admits work.

        Kept for callers that route by precomputed home index; ring
        routing (:meth:`route_hash`) supersedes it on the request path.
        If every breaker is open, the home shard gets the work anyway
        (it doubles as the half-open probe)."""
        count = len(self.breakers)
        for offset in range(count):
            shard = (home_shard + offset) % count
            if self.breakers[shard].admits():
                self.last_route_rerouted = bool(offset)
                if offset:
                    self._metrics.incr("rerouted")
                return shard
        self.last_route_rerouted = False
        return home_shard

    def route_hash(self, doc_hash: str) -> int:
        """The shard that should receive work keyed by ``doc_hash``.

        The ring owner among healthy members gets the key; if the owner
        was admitted but a later membership change moved the key, that
        movement is counted in ``ring_rebalanced_keys``.  When the ring
        is empty (every shard unhealthy at once), the flat home shard is
        used as the half-open probe target, like :meth:`route`."""
        members = len(self.ring)
        if members == 0:
            return self.route(self._executor.shard_for(doc_hash))
        natural = None
        chosen = None
        for shard in self.ring.successors(doc_hash):
            if natural is None:
                natural = shard
            if self.breakers[shard].admits() and not self._draining(shard):
                chosen = shard
                break
        if chosen is None:
            # Every remaining member is open/draining: probe the owner.
            chosen = natural
        self.last_route_rerouted = chosen != natural
        if chosen != natural:
            self._metrics.incr("rerouted")
        self._note_route(doc_hash, chosen)
        return chosen

    def _note_route(self, doc_hash: str, shard: int) -> None:
        prior = self._last_route.get(doc_hash)
        if prior is not None and prior != shard:
            self._metrics.incr("ring_rebalanced_keys")
        self._last_route[doc_hash] = shard
        self._last_route.move_to_end(doc_hash)
        while len(self._last_route) > self._last_route_cap:
            self._last_route.popitem(last=False)

    def _draining(self, shard: int) -> bool:
        probe = getattr(self._executor, "is_draining", None)
        return bool(probe(shard)) if probe is not None else False

    # -- ring membership -----------------------------------------------------

    def ring_leave(self, shard: int, reason: str) -> None:
        if self.ring.remove(shard):
            self._metrics.incr(f"ring_left_{reason}")
            self._metrics.set_gauge("ring_members", len(self.ring))

    def ring_join(self, shard: int) -> None:
        if self.ring.add(shard):
            self._metrics.incr("ring_rejoined")
            self._metrics.set_gauge("ring_members", len(self.ring))

    # -- outcome reporting --------------------------------------------------

    def record_success(self, shard: int) -> None:
        self.breakers[shard].record_success()
        if shard not in self.ring and not self._draining(shard):
            self.ring_join(shard)

    def record_failure(self, shard: int) -> None:
        if self.breakers[shard].record_failure():
            # The breaker just opened: leave the ring (keys move to ring
            # successors) and proactively respawn the sick shard so the
            # cooldown is spent coming up, not crashing.
            self.ring_leave(shard, "tripped")
            self._respawn(shard)

    def _respawn(self, shard: int) -> None:
        self.respawns[shard] += 1
        self._metrics.incr("shard_respawns")
        self._executor.respawn_shard(shard)

    # -- the health loop ----------------------------------------------------

    async def start(self) -> None:
        if self._task is None:
            self._task = asyncio.ensure_future(self._run())

    async def stop(self) -> None:
        if self._task is not None:
            self._task.cancel()
            try:
                await self._task
            except asyncio.CancelledError:
                pass
            self._task = None

    async def _run(self) -> None:
        while True:
            await asyncio.sleep(self.interval)
            await self.check_once()

    async def check_once(self) -> None:
        """One health sweep: ping every shard, feed the breakers.

        Drain notices picked up by the ping (a daemon announcing planned
        shutdown) pull the shard from the ring with *no* breaker penalty;
        a shard that stops draining -- or whose half-open probe succeeds
        -- rejoins and reclaims its old key interval."""
        for shard in range(self._executor.n_shards):
            if not self.breakers[shard].admits():
                continue  # open: let the cooldown elapse undisturbed
            try:
                future = self._executor.ping(shard)
                await asyncio.wait_for(
                    asyncio.wrap_future(future), timeout=self.ping_timeout
                )
                if self._draining(shard):
                    # Planned shutdown, not a failure: stop routing new
                    # keys there before the socket closes.
                    self.ring_leave(shard, "draining")
                    continue
                self.record_success(shard)
            except asyncio.CancelledError:
                raise
            except Exception:
                if self._draining(shard):
                    # The ping read the daemon's drain notice before the
                    # socket closed under it: a planned shutdown, not a
                    # failure.  Leave the ring without breaker penalty.
                    self.ring_leave(shard, "draining")
                    continue
                self._metrics.incr("health_check_failures")
                if self.breakers[shard].state == "half_open":
                    # A failed probe: re-open and respawn again.
                    self.breakers[shard].record_failure()
                    self.ring_leave(shard, "tripped")
                    self._respawn(shard)
                else:
                    self.record_failure(shard)

    def describe(self) -> List[Dict]:
        """Per-shard health for ``/healthz`` and ``/metrics``."""
        return [
            dict(
                breaker.describe(),
                shard=index,
                respawns=self.respawns[index],
                in_ring=index in self.ring,
                draining=self._draining(index),
            )
            for index, breaker in enumerate(self.breakers)
        ]

    def describe_ring(self) -> Dict:
        """Ring membership + generation for ``/healthz``."""
        return self.ring.describe()

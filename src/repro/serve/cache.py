"""Content-hash LRU cache of extraction results.

Keys are ``(wrapper cache key, document content hash)`` pairs; values are
the JSON-serializable result payloads the shards produce.  A hit skips
tokenizing, snapshot building and the kernel fixpoint entirely -- the
whole request becomes one dictionary lookup.  Entries are treated as
immutable by every consumer (handlers serialize them straight to JSON),
so no defensive copying happens on either side.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from typing import Hashable, Optional


class ResultCache:
    """A bounded thread-safe LRU map.

    ``capacity <= 0`` disables caching entirely (every ``get`` misses).

    Examples
    --------
    >>> cache = ResultCache(capacity=2)
    >>> cache.put("a", 1); cache.put("b", 2)
    >>> cache.get("a")
    1
    >>> cache.put("c", 3)          # evicts "b" (least recently used)
    >>> cache.get("b") is None
    True
    >>> len(cache)
    2
    """

    def __init__(self, capacity: int = 512):
        self.capacity = capacity
        self._entries: "OrderedDict[Hashable, object]" = OrderedDict()
        self._lock = threading.Lock()

    def get(self, key: Hashable) -> Optional[object]:
        if self.capacity <= 0:
            return None
        with self._lock:
            value = self._entries.get(key)
            if value is not None:
                self._entries.move_to_end(key)
            return value

    def put(self, key: Hashable, value: object) -> None:
        if self.capacity <= 0:
            return
        with self._lock:
            self._entries[key] = value
            self._entries.move_to_end(key)
            while len(self._entries) > self.capacity:
                self._entries.popitem(last=False)

    def clear(self) -> None:
        with self._lock:
            self._entries.clear()

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        return f"ResultCache({len(self)}/{self.capacity})"

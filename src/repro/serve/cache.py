"""Content-hash LRU cache of extraction results.

Keys are ``(wrapper cache key, document content hash)`` pairs; values are
the JSON-serializable result payloads the shards produce.  A hit skips
tokenizing, snapshot building and the kernel fixpoint entirely -- the
whole request becomes one dictionary lookup.  Entries are treated as
immutable by every consumer (handlers serialize them straight to JSON),
so no defensive copying happens on either side.

Two optional bounds beyond the entry-count capacity:

* ``ttl`` -- entries older than this many seconds are treated as absent
  and dropped on access, so a long-lived server re-extracts eventually
  even for hot documents;
* ``max_weight`` -- each entry carries a caller-supplied weight (the
  serving layer passes the source document's length), and the cache
  evicts in LRU order until the total weight fits.  One huge page can
  therefore displace many small ones but never pin the cache: an entry
  heavier than the whole budget is simply not stored.
"""

from __future__ import annotations

import threading
import time
from collections import OrderedDict
from typing import Callable, Hashable, Optional, Tuple


class ResultCache:
    """A bounded thread-safe LRU map with optional TTL and weight budget.

    ``capacity <= 0`` disables caching entirely (every ``get`` misses).

    Examples
    --------
    >>> cache = ResultCache(capacity=2)
    >>> cache.put("a", 1); cache.put("b", 2)
    >>> cache.get("a")
    1
    >>> cache.put("c", 3)          # evicts "b" (least recently used)
    >>> cache.get("b") is None
    True
    >>> len(cache)
    2

    >>> heavy = ResultCache(capacity=8, max_weight=10)
    >>> heavy.put("small", 1, weight=4); heavy.put("big", 2, weight=9)
    >>> heavy.get("small") is None     # evicted: 4 + 9 > 10
    True
    >>> heavy.put("huge", 3, weight=11)  # over the whole budget: not stored
    >>> heavy.get("huge") is None and heavy.get("big") == 2
    True
    """

    def __init__(
        self,
        capacity: int = 512,
        ttl: Optional[float] = None,
        max_weight: Optional[int] = None,
        clock: Optional[Callable[[], float]] = None,
    ):
        self.capacity = capacity
        self.ttl = ttl
        self.max_weight = max_weight
        self._clock = clock if clock is not None else time.monotonic
        #: key -> (value, expiry or None, weight)
        self._entries: "OrderedDict[Hashable, Tuple[object, Optional[float], int]]" = (
            OrderedDict()
        )
        self._weight = 0
        self._lock = threading.Lock()

    def get(self, key: Hashable) -> Optional[object]:
        if self.capacity <= 0:
            return None
        with self._lock:
            entry = self._entries.get(key)
            if entry is None:
                return None
            value, expiry, weight = entry
            if expiry is not None and self._clock() >= expiry:
                del self._entries[key]
                self._weight -= weight
                return None
            self._entries.move_to_end(key)
            return value

    def put(self, key: Hashable, value: object, weight: int = 1) -> None:
        if self.capacity <= 0:
            return
        weight = max(1, weight)
        if self.max_weight is not None and weight > self.max_weight:
            # Heavier than the entire budget: storing it would evict
            # everything else and then be evicted by the next put anyway.
            return
        expiry = None if self.ttl is None else self._clock() + self.ttl
        with self._lock:
            old = self._entries.pop(key, None)
            if old is not None:
                self._weight -= old[2]
            self._entries[key] = (value, expiry, weight)
            self._weight += weight
            while len(self._entries) > self.capacity or (
                self.max_weight is not None and self._weight > self.max_weight
            ):
                _, (_, _, evicted_weight) = self._entries.popitem(last=False)
                self._weight -= evicted_weight

    @property
    def weight(self) -> int:
        """Total weight of the entries currently stored."""
        with self._lock:
            return self._weight

    def clear(self) -> None:
        with self._lock:
            self._entries.clear()
            self._weight = 0

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        return f"ResultCache({len(self)}/{self.capacity})"

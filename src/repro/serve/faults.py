"""Deterministic fault injection for the serving stack.

Chaos testing a server whose failures are *random* produces flaky
tests; this harness makes every fault a pure function of the shard-call
counter, so a given plan always kills, delays, hangs, or corrupts the
exact same calls.  There is no wall-clock randomness anywhere: the only
knob resembling a seed is ``phase``, which offsets the counter so two
runs of the same plan can exercise different call positions — equally
deterministically.

A :class:`FaultPlan` is parsed from a compact ``key=value`` spec string
(also accepted via the ``REPRO_SERVE_FAULTS`` environment variable, which
is how worker *processes* — which do not share memory with the server —
pick up the active plan):

    kill_every=5,delay_every=10,delay_s=0.25,poison_marker=POISON,phase=0

Faults, all counter-based (``0`` disables each):

* ``kill_every=N``   — every Nth shard call kills the worker
  (``os._exit`` in process shards, a simulated
  :class:`~repro.errors.ShardCrashed` in inline shards);
* ``delay_every=N`` / ``delay_s=S`` — every Nth call sleeps ``S`` seconds
  before evaluating (models a slow page / GC pause / noisy neighbor);
* ``hang_every=N`` / ``hang_s=S`` — every Nth call blocks for up to ``S``
  seconds (default effectively forever); the server's deadline
  enforcement is what must cut it off.  Inline-shard hangs wait on a
  module-level event so :func:`release_hangs` (called by shard kill and
  executor close) can unblock the worker thread;
* ``corrupt_every=N`` — every Nth call returns a malformed result (wrong
  length, non-dict entries) that the batcher must detect and treat as a
  crash;
* ``poison_marker=TEXT`` — any document containing ``TEXT`` *always*
  crashes the worker, regardless of counters: the deterministic poison
  page used to exercise quarantine.

Network faults, applied by the *router side* of the remote-shard
transport (:mod:`repro.serve.transport`) — counted per frame sent, one
counter per remote shard connection:

* ``drop_conn_every=N`` — every Nth frame drops the shard connection
  before the request completes (models a reset / flaky link); surfaces
  as a *blameless* :class:`~repro.errors.ShardCrashed` (the injector
  knows the documents did not kill anything) and the next attempt
  reconnects;
* ``delay_frame_every=N`` / ``delay_frame_s=S`` — every Nth frame is
  delayed ``S`` seconds before being sent (models latency spikes); a
  delay larger than the request deadline exercises the
  :class:`~repro.errors.RequestTimeout` path over the network;
* ``garble_frame_every=N`` — every Nth frame has its payload bytes
  flipped after the checksum is computed, so the daemon's frame
  validation rejects it and closes the connection (broken frame ->
  :class:`~repro.errors.ShardCrashed`, retry reconnects).

Every injected fault appends one JSON line to the file named by the
``REPRO_SERVE_FAULT_LOG`` environment variable (if set) — the artifact
the CI chaos jobs upload, and a debugging timeline for local runs.
"""

from __future__ import annotations

import json
import os
import threading
import time
from typing import Dict, List, Optional

from repro.errors import ServeError, ShardCrashed

#: Environment variable carrying the active fault spec to worker processes.
FAULTS_ENV = "REPRO_SERVE_FAULTS"

#: Environment variable naming the fault-event JSONL log (optional).
FAULT_LOG_ENV = "REPRO_SERVE_FAULT_LOG"

#: Inline-shard hangs wait on this event so they can be released when the
#: shard is killed or the executor closes (a sleeping thread would
#: otherwise block interpreter shutdown).
_HANG_RELEASE = threading.Event()


def release_hangs() -> None:
    """Unblock every in-progress inline-shard hang."""
    _HANG_RELEASE.set()
    _HANG_RELEASE.clear()


def log_fault_event(event: str, **extra) -> None:
    """Append one fault event to the JSONL log named by the environment.

    Shared by the shard-call injector and the transport injector so one
    chaos run yields one merged, ordered timeline."""
    path = os.environ.get(FAULT_LOG_ENV)
    if not path:
        return
    record = {"event": event, "pid": os.getpid()}
    record.update(extra)
    try:
        with open(path, "a", encoding="utf-8") as handle:
            handle.write(json.dumps(record) + "\n")
    except OSError:  # pragma: no cover - log path unwritable
        pass


class FaultPlan:
    """A parsed, immutable fault-injection configuration.

    Examples
    --------
    >>> plan = FaultPlan.parse("kill_every=5,delay_every=10,delay_s=0.25")
    >>> plan.kill_every, plan.delay_every, plan.delay_s
    (5, 10, 0.25)
    >>> FaultPlan.parse("").enabled
    False
    >>> plan.spec()
    'kill_every=5,delay_every=10,delay_s=0.25'
    >>> FaultPlan.parse(plan.spec()).kill_every
    5

    The network fault kinds round-trip through the same spec strings:

    >>> net = FaultPlan.parse(
    ...     "drop_conn_every=7,delay_frame_every=3,delay_frame_s=0.2,"
    ...     "garble_frame_every=11"
    ... )
    >>> net.drop_conn_every, net.delay_frame_every, net.garble_frame_every
    (7, 3, 11)
    >>> net.spec()
    'drop_conn_every=7,delay_frame_every=3,delay_frame_s=0.2,garble_frame_every=11'
    >>> FaultPlan.parse(net.spec()).delay_frame_s
    0.2
    >>> net.enabled, net.transport_enabled
    (True, True)
    >>> plan.transport_enabled          # evaluation faults only
    False
    """

    __slots__ = (
        "kill_every",
        "delay_every",
        "delay_s",
        "hang_every",
        "hang_s",
        "corrupt_every",
        "poison_marker",
        "drop_conn_every",
        "delay_frame_every",
        "delay_frame_s",
        "garble_frame_every",
        "phase",
    )

    def __init__(
        self,
        kill_every: int = 0,
        delay_every: int = 0,
        delay_s: float = 0.1,
        hang_every: int = 0,
        hang_s: float = 3600.0,
        corrupt_every: int = 0,
        poison_marker: str = "",
        drop_conn_every: int = 0,
        delay_frame_every: int = 0,
        delay_frame_s: float = 0.05,
        garble_frame_every: int = 0,
        phase: int = 0,
    ):
        self.kill_every = int(kill_every)
        self.delay_every = int(delay_every)
        self.delay_s = float(delay_s)
        self.hang_every = int(hang_every)
        self.hang_s = float(hang_s)
        self.corrupt_every = int(corrupt_every)
        self.poison_marker = poison_marker
        self.drop_conn_every = int(drop_conn_every)
        self.delay_frame_every = int(delay_frame_every)
        self.delay_frame_s = float(delay_frame_s)
        self.garble_frame_every = int(garble_frame_every)
        self.phase = int(phase)

    @property
    def enabled(self) -> bool:
        return bool(
            self.kill_every
            or self.delay_every
            or self.hang_every
            or self.corrupt_every
            or self.poison_marker
            or self.transport_enabled
        )

    @property
    def transport_enabled(self) -> bool:
        """Whether any *network* fault kind is active (router-side)."""
        return bool(
            self.drop_conn_every
            or self.delay_frame_every
            or self.garble_frame_every
        )

    @classmethod
    def parse(cls, spec: Optional[str]) -> "FaultPlan":
        """Parse a ``key=value,key=value`` spec string (``None``/"" -> off)."""
        plan = cls()
        if not spec:
            return plan
        for part in spec.split(","):
            part = part.strip()
            if not part:
                continue
            key, sep, value = part.partition("=")
            key = key.strip()
            if not sep or key not in cls.__slots__:
                raise ServeError(f"bad fault spec field {part!r}")
            current = getattr(plan, key)
            try:
                if isinstance(current, int):
                    setattr(plan, key, int(value))
                elif isinstance(current, float):
                    setattr(plan, key, float(value))
                else:
                    setattr(plan, key, value.strip())
            except ValueError:
                raise ServeError(f"bad fault spec value {part!r}") from None
        return plan

    def spec(self) -> str:
        """The compact spec string (round-trips through :meth:`parse`)."""
        defaults = FaultPlan()
        parts: List[str] = []
        for field in self.__slots__:
            value = getattr(self, field)
            if value != getattr(defaults, field):
                parts.append(f"{field}={value}")
        return ",".join(parts)

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        return f"FaultPlan({self.spec() or 'off'})"


class FaultInjector:
    """Applies a :class:`FaultPlan` to shard calls, deterministically.

    One injector lives per shard worker (a module global in process
    workers, one per :class:`~repro.serve.executor._InlineShard` in
    inline mode).  ``hard=True`` means real worker death
    (``os._exit``); ``hard=False`` simulates the crash by raising
    :class:`~repro.errors.ShardCrashed`, which exercises the identical
    recovery path without sacrificing a process.
    """

    def __init__(self, plan: FaultPlan, hard: bool, shard_tag: str = "?"):
        self.plan = plan
        self.hard = hard
        self.shard_tag = shard_tag
        self.calls = plan.phase
        self._lock = threading.Lock()

    def _log(self, event: str, **extra) -> None:
        log_fault_event(
            event,
            call=self.calls,
            shard=self.shard_tag,
            hard=self.hard,
            **extra,
        )

    def _due(self, every: int) -> bool:
        return every > 0 and self.calls % every == 0

    def _crash(self, reason: str) -> None:
        self._log("kill", reason=reason)
        if self.hard:
            os._exit(13)
        raise ShardCrashed(
            f"shard worker died (injected: {reason}); "
            "shard respawned, retry the request"
        )

    def before_call(self, key: str, pages: List[str]) -> None:
        """Run the pre-evaluation faults for one shard call.

        May sleep, hang, raise a simulated crash, or terminate the
        process.  Returns normally when the call should proceed.
        """
        if not self.plan.enabled:
            return
        with self._lock:
            self.calls += 1
        marker = self.plan.poison_marker
        if marker and any(marker in page for page in pages):
            self._crash(f"poison marker {marker!r}")
        if self._due(self.plan.kill_every):
            self._crash(f"kill_every={self.plan.kill_every}")
        if self._due(self.plan.hang_every):
            self._log("hang", seconds=self.plan.hang_s)
            if self.hard:
                time.sleep(self.plan.hang_s)
            else:
                _HANG_RELEASE.wait(self.plan.hang_s)
        elif self._due(self.plan.delay_every):
            self._log("delay", seconds=self.plan.delay_s)
            time.sleep(self.plan.delay_s)

    def after_call(self, key: str, result: List[dict]) -> List[dict]:
        """Run the post-evaluation faults; may corrupt the result."""
        if self._due(self.plan.corrupt_every):
            self._log("corrupt")
            return [{"__corrupt__": True}] * (len(result) + 1)
        return result


class TransportFaultInjector:
    """Applies the network fault kinds to one remote shard connection.

    Lives on the *router* side (one per :class:`~repro.serve.transport`
    connection), counting frames sent, so a chaos run's network faults
    are a pure function of each connection's frame sequence -- fully
    deterministic, like the shard-call injector above.

    :meth:`next_frame` advances the counter and returns the fault due
    for this frame: ``("drop", None)``, ``("delay", seconds)``,
    ``("garble", None)`` or ``(None, None)``.  The transport layer is
    what acts on it (closing the socket, sleeping, flipping payload
    bytes); this class only decides *when*, and logs each decision to
    the shared JSONL fault log.

    Examples
    --------
    >>> plan = FaultPlan.parse("drop_conn_every=2,garble_frame_every=3")
    >>> injector = TransportFaultInjector(plan, shard_tag="shard-0")
    >>> [injector.next_frame()[0] for _ in range(6)]
    [None, 'drop', 'garble', 'drop', None, 'drop']
    """

    def __init__(self, plan: FaultPlan, shard_tag: str = "?"):
        self.plan = plan
        self.shard_tag = shard_tag
        self.frames = plan.phase
        self._lock = threading.Lock()

    def _due(self, every: int) -> bool:
        return every > 0 and self.frames % every == 0

    def next_frame(self):
        """Advance the frame counter; return ``(fault, argument)``."""
        if not self.plan.transport_enabled:
            return None, None
        with self._lock:
            self.frames += 1
        if self._due(self.plan.drop_conn_every):
            log_fault_event("drop_conn", frame=self.frames, shard=self.shard_tag)
            return "drop", None
        if self._due(self.plan.garble_frame_every):
            log_fault_event("garble_frame", frame=self.frames, shard=self.shard_tag)
            return "garble", None
        if self._due(self.plan.delay_frame_every):
            log_fault_event(
                "delay_frame",
                frame=self.frames,
                shard=self.shard_tag,
                seconds=self.plan.delay_frame_s,
            )
            return "delay", self.plan.delay_frame_s
        return None, None


#: Lazily-built injector for *process* shard workers, configured from the
#: environment the worker inherited (set by ShardExecutor before spawn).
_PROCESS_INJECTOR: Optional[FaultInjector] = None
_PROCESS_INJECTOR_SPEC: Optional[str] = None


def process_injector() -> Optional[FaultInjector]:
    """The per-worker-process injector, or ``None`` when faults are off.

    Rebuilt if the environment spec changed (a respawned worker always
    starts from a fresh counter — deterministic per worker lifetime).
    """
    global _PROCESS_INJECTOR, _PROCESS_INJECTOR_SPEC
    spec = os.environ.get(FAULTS_ENV) or None
    if spec != _PROCESS_INJECTOR_SPEC:
        _PROCESS_INJECTOR_SPEC = spec
        plan = FaultPlan.parse(spec)
        _PROCESS_INJECTOR = (
            FaultInjector(plan, hard=True, shard_tag="process")
            if plan.enabled
            else None
        )
    return _PROCESS_INJECTOR


def validate_shard_result(result: object, expected: int) -> List[Dict]:
    """Reject malformed shard results (corruption -> retryable crash).

    A healthy shard returns exactly one JSON-serializable dict per page;
    anything else means the worker (or the transport) corrupted the
    batch, and the safe response is the crash path: respawn + retry.

    >>> validate_shard_result([{"a": 1}], 1)
    [{'a': 1}]
    >>> validate_shard_result([{}, {}], 1)
    Traceback (most recent call last):
        ...
    repro.errors.ShardCrashed: shard returned 2 results for 1 page(s); treating as a crash
    """
    if (
        not isinstance(result, list)
        or len(result) != expected
        or not all(isinstance(item, dict) for item in result)
    ):
        count = len(result) if isinstance(result, list) else type(result).__name__
        raise ShardCrashed(
            f"shard returned {count} results for {expected} page(s); "
            "treating as a crash"
        )
    if any("__corrupt__" in item for item in result):
        raise ShardCrashed("shard returned a corrupted payload; treating as a crash")
    return result


def validate_warm_result(result: object, expected: int):
    """Validate the dict form a warm shard call returns.

    A healthy warm call resolves to ``{"pages": [...], "stats": [...]}``
    with one output dict and one stats dict per submitted item; the
    pages go through :func:`validate_shard_result` (so injected
    corruption is caught the same way), and a malformed stats column is
    likewise treated as a crash.  Returns ``(pages, stats)``.

    >>> validate_warm_result({"pages": [{"a": 1}], "stats": [{"warm": True}]}, 1)
    ([{'a': 1}], [{'warm': True}])
    >>> validate_warm_result([{"a": 1}], 1)
    Traceback (most recent call last):
        ...
    repro.errors.ShardCrashed: warm shard call returned list, not a pages/stats dict; treating as a crash
    """
    if not isinstance(result, dict):
        raise ShardCrashed(
            f"warm shard call returned {type(result).__name__}, not a "
            "pages/stats dict; treating as a crash"
        )
    pages = validate_shard_result(result.get("pages"), expected)
    stats = result.get("stats")
    if (
        not isinstance(stats, list)
        or len(stats) != expected
        or not all(isinstance(item, dict) for item in stats)
    ):
        raise ShardCrashed(
            f"warm shard call returned malformed stats for {expected} "
            "item(s); treating as a crash"
        )
    return pages, stats


def validate_traced_result(result: object, expected: int):
    """Validate a *traced* shard call, tolerating untraced responders.

    A tracing-aware shard returns ``{"pages": [...], "kernel": [...]}``
    (one kernel-stats dict per page); a shard or daemon that predates
    tracing answers the same request with the plain page list.  Both are
    healthy -- returns ``(pages, kernel_or_None)`` so the caller can
    degrade to a transport-only span.  A malformed kernel column is a
    crash, same as corrupted pages.

    >>> validate_traced_result([{"a": 1}], 1)
    ([{'a': 1}], None)
    >>> pages, kernel = validate_traced_result(
    ...     {"pages": [{"a": 1}], "kernel": [{"kernel_ms": 0.5}]}, 1)
    >>> kernel[0]["kernel_ms"]
    0.5
    >>> validate_traced_result({"pages": [{"a": 1}], "kernel": "bad"}, 1)
    Traceback (most recent call last):
        ...
    repro.errors.ShardCrashed: traced shard call returned malformed kernel stats for 1 page(s); treating as a crash
    """
    if isinstance(result, list):
        return validate_shard_result(result, expected), None
    if not isinstance(result, dict):
        raise ShardCrashed(
            f"traced shard call returned {type(result).__name__}, not a "
            "pages/kernel dict or page list; treating as a crash"
        )
    pages = validate_shard_result(result.get("pages"), expected)
    kernel = result.get("kernel")
    if (
        not isinstance(kernel, list)
        or len(kernel) != expected
        or not all(isinstance(item, dict) for item in kernel)
    ):
        raise ShardCrashed(
            f"traced shard call returned malformed kernel stats for "
            f"{expected} page(s); treating as a crash"
        )
    return pages, kernel

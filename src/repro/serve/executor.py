"""Sharded long-lived evaluation pool for compiled wrappers.

The batch APIs of :mod:`repro.wrap.extraction` spin a process pool up per
call; a server cannot afford that.  :class:`ShardExecutor` owns a fixed
set of *shards* -- each a single-worker ``ProcessPoolExecutor`` -- that
live for the whole server lifetime.  A compiled wrapper is pickled and
installed into each shard exactly once (plans + kernel tables, a few KB);
after that, only HTML strings travel to a shard and only flat
JSON-serializable output dicts travel back.

Documents are routed to shards by content hash, so identical documents
always land on the same shard and a multi-document batch splits into at
most one sub-batch per shard.  ``shards=0`` selects the *inline* mode --
a single thread-backed shard with no pickling -- used by tests and by
single-core boxes where process fan-out cannot pay for itself.
"""

from __future__ import annotations

import hashlib
import os
import signal
from collections import OrderedDict
from concurrent.futures import (
    BrokenExecutor,
    Future,
    ProcessPoolExecutor,
    ThreadPoolExecutor,
)
from typing import Dict, List, Optional, Tuple

from repro.errors import (
    ServeError,
    ServerOverloaded,
    ShardCrashed,
    WrapperNotResident,
)
from repro.serve.faults import FAULTS_ENV, FaultInjector, FaultPlan, release_hangs
from repro.wrap.extraction import Wrapper, WrapperState


def content_hash(html: str) -> str:
    """Stable content hash of one document (routing and cache key)."""
    return hashlib.sha256(html.encode("utf-8", "surrogatepass")).hexdigest()


#: Per-worker-process wrapper store, populated by :func:`_shard_install`.
_SHARD_WRAPPERS: Dict[str, Wrapper] = {}

#: Per-worker-process snapshot cache for the incremental warm path:
#: ``(wrapper key, doc_id) -> WrapperState`` (the previous version's
#: snapshot + derived kernel masks), LRU-bounded.  Worker death loses
#: the states, which is always safe -- a state miss is just a cold run.
_SHARD_STATES: "OrderedDict[Tuple[str, str], WrapperState]" = OrderedDict()

#: Cap on retained per-document states per worker process.  A state
#: holds one snapshot (columns + payloads, roughly the document's size in
#: memory), so this bounds worker memory like ``max_installed`` bounds
#: resident wrappers.
_STATE_CAP = 128


def _shard_install(key: str, wrapper: Wrapper) -> bool:
    _SHARD_WRAPPERS[key] = wrapper
    return True


def _shard_uninstall(key: str) -> bool:
    return _SHARD_WRAPPERS.pop(key, None) is not None


def _shard_ping() -> bool:
    """Health-check round trip: proves the worker is alive and draining."""
    return True


def _shard_wrap(key: str, pages: List[str]) -> List[dict]:
    from repro.serve.faults import process_injector

    wrapper = _SHARD_WRAPPERS.get(key)
    if wrapper is None:
        # Retryable: the wrapper was evicted or the worker was respawned;
        # the next attempt re-installs it via ensure_installed.
        raise WrapperNotResident(
            f"wrapper {key!r} is not resident on this shard; retry the request"
        )
    injector = process_injector()
    if injector is not None:
        injector.before_call(key, pages)
    result = [out.to_dict() for out in wrapper.wrap_html_many(pages)]
    if injector is not None:
        result = injector.after_call(key, result)
    return result


def _shard_wrap_traced(key: str, pages: List[str]) -> dict:
    """Traced flavor of :func:`_shard_wrap`: per-page kernel stats ride
    along as ``{"pages": [...], "kernel": [...]}``.

    Fault injection applies to the ``pages`` half only -- the kernel
    stats are observability metadata, not results, so garbling faults
    target what the client actually consumes.
    """
    from repro.serve.faults import process_injector

    wrapper = _SHARD_WRAPPERS.get(key)
    if wrapper is None:
        raise WrapperNotResident(
            f"wrapper {key!r} is not resident on this shard; retry the request"
        )
    injector = process_injector()
    if injector is not None:
        injector.before_call(key, pages)
    traced = wrapper.wrap_html_traced(pages)
    result = [out.to_dict() for out, _ in traced]
    if injector is not None:
        result = injector.after_call(key, result)
    return {"pages": result, "kernel": [trace for _, trace in traced]}


def _wrap_warm_against(
    wrapper: Wrapper,
    states: "OrderedDict[Tuple[str, str], WrapperState]",
    key: str,
    items: List[Tuple[str, str]],
) -> dict:
    """Warm-wrap ``(html, doc_id)`` items against a per-document state store.

    Shared by the process and inline shard flavors: each document is
    evaluated against the state its ``doc_id`` left behind last time (a
    miss runs cold), and the store is rotated LRU under
    :data:`_STATE_CAP`.  Returns ``{"pages": [...], "stats": [...]}`` --
    one output dict and one reuse-stats dict per item.
    """
    pages: List[dict] = []
    stats: List[dict] = []
    for html, doc_id in items:
        state_key = (key, doc_id)
        prior = states.get(state_key)
        output, state, stat = wrapper.wrap_html_stateful(html, prior)
        states[state_key] = state
        states.move_to_end(state_key)
        while len(states) > _STATE_CAP:
            states.popitem(last=False)
        pages.append(output.to_dict())
        stats.append(
            {
                "warm": stat["warm"],
                "dirty": stat["dirty"],
                "dirty_fraction": stat["dirty_fraction"],
                "engines": stat["engines"],
            }
        )
    return {"pages": pages, "stats": stats}


def _shard_wrap_warm(key: str, items: List[Tuple[str, str]]) -> dict:
    from repro.serve.faults import process_injector

    wrapper = _SHARD_WRAPPERS.get(key)
    if wrapper is None:
        raise WrapperNotResident(
            f"wrapper {key!r} is not resident on this shard; retry the request"
        )
    injector = process_injector()
    if injector is not None:
        injector.before_call(key, [html for html, _ in items])
    result = _wrap_warm_against(wrapper, _SHARD_STATES, key, items)
    if injector is not None:
        result["pages"] = injector.after_call(key, result["pages"])
    return result


def _forget_on_failure(shard, key: str):
    def callback(future: Future) -> None:
        if future.cancelled() or future.exception() is not None:
            shard.installed.pop(key, None)

    return callback


class _ProcessShard:
    """One single-worker process, wrappers installed once.

    A dead worker (OOM-killed, segfaulted) breaks its ``ProcessPoolExecutor``
    permanently; submissions after that respawn the pool -- the in-flight
    request fails with a retryable :class:`ServerOverloaded`, installed
    wrappers are forgotten (so they re-install on the next request), and
    the shard heals itself.
    """

    def __init__(self) -> None:
        self.pool = ProcessPoolExecutor(max_workers=1)
        #: Installed wrapper keys in LRU order (see ensure_installed).
        self.installed: "OrderedDict[str, bool]" = OrderedDict()

    def _submit(self, fn, *args) -> Future:
        # Never submit to a freshly respawned pool here: the respawn
        # cleared the installed set, so the caller must go back through
        # ensure_installed first.  Raising the retryable error (mapped to
        # 503) makes the next attempt do exactly that.
        # Both raises below are *blameless*: the pool broke under some
        # earlier request, so whatever documents this submission carries
        # cannot be what killed the worker -- they must not earn
        # quarantine strikes.
        if getattr(self.pool, "_broken", False):
            self._respawn()
            crash = ShardCrashed(
                "shard worker died; shard respawned, retry the request"
            )
            crash.blameless = True
            raise crash
        try:
            return self.pool.submit(fn, *args)
        except BrokenExecutor:
            self._respawn()
            crash = ShardCrashed(
                "shard worker died; shard respawned, retry the request"
            )
            crash.blameless = True
            raise crash from None

    def _respawn(self) -> None:
        self.pool.shutdown(wait=False, cancel_futures=True)
        self.pool = ProcessPoolExecutor(max_workers=1)
        self.installed.clear()

    def install(self, key: str, wrapper: Wrapper) -> Future:
        return self._submit(_shard_install, key, wrapper)

    def uninstall(self, key: str) -> Future:
        return self._submit(_shard_uninstall, key)

    def run(self, key: str, pages: List[str]) -> Future:
        return self._submit(_shard_wrap, key, pages)

    def run_traced(self, key: str, pages: List[str]) -> Future:
        return self._submit(_shard_wrap_traced, key, pages)

    def run_warm(self, key: str, items: List[Tuple[str, str]]) -> Future:
        return self._submit(_shard_wrap_warm, key, items)

    def ping(self) -> Future:
        return self._submit(_shard_ping)

    def kill(self) -> None:
        """Hard-kill the worker (hung past a deadline) and respawn.

        SIGKILL, not terminate(): a worker stuck in C code or an
        injected hang must die unconditionally.  In-flight futures fail
        with :class:`BrokenExecutor`, which callers map to the retryable
        crash path."""
        for pid in list(getattr(self.pool, "_processes", {}) or {}):
            try:
                os.kill(pid, signal.SIGKILL)
            except (ProcessLookupError, OSError):  # pragma: no cover - raced exit
                pass
        self._respawn()

    def close(self) -> None:
        self.pool.shutdown(wait=True, cancel_futures=True)


class _InlineShard:
    """Thread-backed shard: no pickling, shared-memory wrapper store.

    Faults are injected *softly* here (simulated crashes instead of
    process death), so the whole recovery stack is exercisable without
    spawning processes."""

    def __init__(self, faults: Optional[FaultPlan] = None) -> None:
        self.pool = ThreadPoolExecutor(
            max_workers=1, thread_name_prefix="repro-serve-shard"
        )
        self.installed: "OrderedDict[str, bool]" = OrderedDict()
        self._wrappers: Dict[str, Wrapper] = {}
        self._states: "OrderedDict[Tuple[str, str], WrapperState]" = OrderedDict()
        self.injector: Optional[FaultInjector] = (
            FaultInjector(faults, hard=False, shard_tag="inline")
            if faults is not None and faults.enabled
            else None
        )

    def install(self, key: str, wrapper: Wrapper) -> Future:
        return self.pool.submit(self._wrappers.__setitem__, key, wrapper)

    def uninstall(self, key: str) -> Future:
        return self.pool.submit(self._wrappers.pop, key, None)

    def run(self, key: str, pages: List[str]) -> Future:
        return self.pool.submit(self._wrap, key, pages)

    def run_traced(self, key: str, pages: List[str]) -> Future:
        return self.pool.submit(self._wrap_traced, key, pages)

    def run_warm(self, key: str, items: List[Tuple[str, str]]) -> Future:
        return self.pool.submit(self._wrap_warm, key, items)

    def ping(self) -> Future:
        return self.pool.submit(_shard_ping)

    def _wrap(self, key: str, pages: List[str]) -> List[dict]:
        wrapper = self._wrappers.get(key)
        if wrapper is None:
            raise WrapperNotResident(
                f"wrapper {key!r} is not resident on this shard; retry the request"
            )
        if self.injector is not None:
            self.injector.before_call(key, pages)
        result = [out.to_dict() for out in wrapper.wrap_html_many(pages)]
        if self.injector is not None:
            result = self.injector.after_call(key, result)
        return result

    def _wrap_traced(self, key: str, pages: List[str]) -> dict:
        wrapper = self._wrappers.get(key)
        if wrapper is None:
            raise WrapperNotResident(
                f"wrapper {key!r} is not resident on this shard; retry the request"
            )
        if self.injector is not None:
            self.injector.before_call(key, pages)
        traced = wrapper.wrap_html_traced(pages)
        result = [out.to_dict() for out, _ in traced]
        if self.injector is not None:
            result = self.injector.after_call(key, result)
        return {"pages": result, "kernel": [trace for _, trace in traced]}

    def _wrap_warm(self, key: str, items: List[Tuple[str, str]]) -> dict:
        wrapper = self._wrappers.get(key)
        if wrapper is None:
            raise WrapperNotResident(
                f"wrapper {key!r} is not resident on this shard; retry the request"
            )
        if self.injector is not None:
            self.injector.before_call(key, [html for html, _ in items])
        result = _wrap_warm_against(wrapper, self._states, key, items)
        if self.injector is not None:
            result["pages"] = self.injector.after_call(key, result["pages"])
        return result

    def kill(self) -> None:
        """Simulated hard kill: new pool, empty store, hangs released.

        Mirrors process-shard death semantics — the wrapper store is
        lost (forcing re-install) and any injected hang is unblocked so
        the abandoned worker thread can exit.  The fault injector (and
        its call counter) deliberately survives: an inline chaos run is
        one deterministic call sequence, so a plan combining
        ``kill_every`` with delays keeps firing *all* its faults instead
        of resetting to the kill-only prefix after every respawn."""
        release_hangs()
        old = self.pool
        self.pool = ThreadPoolExecutor(
            max_workers=1, thread_name_prefix="repro-serve-shard"
        )
        self.installed.clear()
        self._wrappers = {}
        self._states = OrderedDict()
        old.shutdown(wait=False, cancel_futures=True)

    def close(self) -> None:
        release_hangs()
        self.pool.shutdown(wait=True, cancel_futures=True)


class ShardExecutor:
    """A fixed set of long-lived evaluation shards.

    Parameters
    ----------
    shards:
        Number of process shards; ``0`` (default) selects one inline
        thread-backed shard.
    max_installed:
        Cap on resident compiled wrappers per shard.  Superseded or
        rarely used registrations are evicted LRU from the worker's store
        (and transparently re-installed on their next request), so a
        server whose wrappers are re-registered over time cannot grow
        worker memory without bound.

    Examples
    --------
    >>> executor = ShardExecutor(shards=0)
    >>> executor.mode, executor.n_shards
    ('inline', 1)
    >>> a = executor.shard_for(content_hash("<ul><li>x</ul>"))
    >>> a == executor.shard_for(content_hash("<ul><li>x</ul>"))
    True
    >>> executor.close()
    """

    def __init__(
        self,
        shards: int = 0,
        max_installed: int = 32,
        faults: Optional[FaultPlan] = None,
    ):
        self.faults = faults
        self._faults_env_prior: Optional[str] = None
        if faults is not None and faults.enabled and shards > 0:
            # Worker processes do not share memory with the server: they
            # pick the plan up from the environment they inherit at
            # spawn.  Restored by close().
            self._faults_env_prior = os.environ.get(FAULTS_ENV)
            os.environ[FAULTS_ENV] = faults.spec()
        if shards <= 0:
            self.mode = "inline"
            self._shards = [_InlineShard(faults)]
        else:
            self.mode = "process"
            self._shards = [_ProcessShard() for _ in range(shards)]
        self.max_installed = max(1, max_installed)
        self._closed = False

    @property
    def n_shards(self) -> int:
        return len(self._shards)

    def shard_for(self, doc_hash: str) -> int:
        """Deterministic shard index for one document content hash."""
        return int(doc_hash[:16], 16) % len(self._shards)

    def ensure_installed(
        self, key: str, wrapper: Wrapper, shard: Optional[int] = None
    ) -> List[Future]:
        """Install ``key`` on every shard that lacks it; pending futures.

        The wrapper is pickled to each process shard at most once while it
        stays resident; callers await the returned futures before
        submitting work for ``key``.  With ``shard`` given, only that
        shard's install future is returned -- the caller's request
        depends on it alone; installs elsewhere still fire but heal in
        the background (their failures just forget the key for a later
        retry).  Shard stores are LRU-bounded by ``max_installed``: the
        least recently used key is uninstalled from the worker (safe --
        its next request just re-installs), keeping worker memory flat
        however many registrations come and go.
        """
        if self._closed:
            raise ServeError("executor is closed")
        futures: List[Future] = []
        for index, target in enumerate(self._shards):
            if key in target.installed:
                target.installed.move_to_end(key)
                continue
            future = target.install(key, wrapper)
            target.installed[key] = True
            # A failed install must not poison the shard: forget the
            # key again so the next request retries the install.
            future.add_done_callback(_forget_on_failure(target, key))
            if shard is None or index == shard:
                futures.append(future)
            while len(target.installed) > self.max_installed:
                stale, _ = target.installed.popitem(last=False)
                try:
                    # Fire-and-forget: the single-worker pool is FIFO, so
                    # any batch already queued for ``stale`` runs first.
                    target.uninstall(stale)
                except (ServerOverloaded, ShardCrashed):
                    pass  # pool respawned: the whole store is gone anyway
        return futures

    def installed_on(self, key: str) -> List[int]:
        """Shard indices currently holding ``key`` (acked installs)."""
        return [
            index
            for index, shard in enumerate(self._shards)
            if key in shard.installed
        ]

    def shard_state(self, shard_index: int) -> Dict:
        """Transport view of one shard for ``/healthz`` (local flavor)."""
        return {
            "transport": "local",
            "mode": self.mode,
            "connected": not self._closed,
            "draining": False,
            "reconnects_total": 0,
            "installed_wrappers": len(self._shards[shard_index].installed),
        }

    def is_draining(self, shard_index: int) -> bool:
        """Local shards never drain independently of the server."""
        return False

    def submit(self, shard_index: int, key: str, pages: List[str]) -> Future:
        """Evaluate a sub-batch of pages on one shard (future of dicts)."""
        if self._closed:
            raise ServeError("executor is closed")
        return self._shards[shard_index].run(key, pages)

    def submit_traced(
        self,
        shard_index: int,
        key: str,
        pages: List[str],
        trace: Optional[dict] = None,
    ) -> Future:
        """Traced :meth:`submit`: resolves to ``{"pages": [...],
        "kernel": [...]}`` with one per-page kernel-stats dict alongside
        each output, for grafting into the request trace.  ``trace`` is
        accepted for signature parity with the remote transport (local
        workers do not need the trace id)."""
        if self._closed:
            raise ServeError("executor is closed")
        return self._shards[shard_index].run_traced(key, pages)

    def submit_warm(
        self, shard_index: int, key: str, items: List[Tuple[str, str]]
    ) -> Future:
        """Warm-evaluate ``(html, doc_id)`` items on one shard.

        Resolves to ``{"pages": [...], "stats": [...]}``; the caller
        routes by ``content_hash(doc_id)`` (not by document content) so
        successive versions of one document land on the shard holding
        its state.
        """
        if self._closed:
            raise ServeError("executor is closed")
        return self._shards[shard_index].run_warm(key, items)

    def ping(self, shard_index: int) -> Future:
        """Health-check round trip through one shard's queue."""
        if self._closed:
            raise ServeError("executor is closed")
        return self._shards[shard_index].ping()

    def kill_shard(self, shard_index: int) -> None:
        """Hard-kill one shard's worker (hung past a deadline) + respawn.

        Installed wrappers are forgotten; the next request re-installs.
        """
        if not self._closed:
            self._shards[shard_index].kill()

    def respawn_shard(self, shard_index: int) -> None:
        """Supervisor hook: proactively recycle one (sick) shard."""
        self.kill_shard(shard_index)

    def close(self) -> None:
        """Shut every shard down (graceful: running batches finish)."""
        if self._closed:
            return
        self._closed = True
        for shard in self._shards:
            shard.close()
        if self._faults_env_prior is not None:
            os.environ[FAULTS_ENV] = self._faults_env_prior
        elif self.faults is not None and self.faults.enabled and self.mode == "process":
            os.environ.pop(FAULTS_ENV, None)

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        return f"ShardExecutor({self.mode}, {self.n_shards} shards)"

"""Serving metrics: counters, batch-size stats, latency percentiles.

Everything is in-process and cheap: counters are a ``Counter``, latencies
live in a bounded ring (the last N observations), and percentiles are
computed on demand by :meth:`ServeMetrics.snapshot` -- which is exactly
what ``GET /metrics`` returns.
"""

from __future__ import annotations

import math
import threading
import time
from collections import Counter, deque
from typing import Dict, List


def percentile(sorted_values: List[float], q: float) -> float:
    """The ``q``-quantile (0..1) of an ascending non-empty list.

    Nearest-rank definition: ``ceil(q * n)``-th smallest value, so the
    median of an odd-length series is its middle element.

    >>> percentile([1, 2, 3, 4, 100], 0.50)
    3
    >>> percentile([1, 2, 3, 4, 100], 0.95)
    100
    """
    if not sorted_values:
        raise ValueError("percentile of empty series")
    index = max(
        0, min(len(sorted_values) - 1, math.ceil(q * len(sorted_values)) - 1)
    )
    return sorted_values[index]


class ServeMetrics:
    """Counters + latency reservoir for the serving subsystem.

    Examples
    --------
    >>> metrics = ServeMetrics()
    >>> metrics.incr("requests_total"); metrics.observe_batch(4)
    >>> for ms in (1, 2, 3, 4, 100):
    ...     metrics.observe_latency(ms / 1000.0)
    >>> snap = metrics.snapshot()
    >>> snap["counters"]["requests_total"], snap["batches"]["max_size"]
    (1, 4)
    >>> snap["latency"]["p50_ms"] <= snap["latency"]["p95_ms"]
    True
    """

    def __init__(self, latency_window: int = 4096):
        self._lock = threading.Lock()
        self._counters: Counter = Counter()
        self._gauges: Dict[str, float] = {}
        self._latencies: deque = deque(maxlen=latency_window)
        self._batch_count = 0
        self._batch_documents = 0
        self._batch_max = 0
        #: Dirty-node histogram of warm (incremental) evaluations, bucketed
        #: by the fraction of the document the snapshot diff left dirty.
        self._dirty_hist: Counter = Counter()
        self._started = time.time()

    def incr(self, name: str, count: int = 1) -> None:
        with self._lock:
            self._counters[name] += count

    def set_gauge(self, name: str, value: float) -> None:
        """Point-in-time values (breaker states, quarantine size, ...)."""
        with self._lock:
            self._gauges[name] = value

    def observe_dirty(self, fraction: float) -> None:
        """Record one warm evaluation's dirty fraction in the histogram.

        >>> metrics = ServeMetrics()
        >>> metrics.observe_dirty(0.0005); metrics.observe_dirty(0.3)
        >>> metrics.snapshot()["incremental"]["dirty_histogram"]
        {'<=0.1%': 1, '<=50%': 1}
        """
        if fraction <= 0.001:
            bucket = "<=0.1%"
        elif fraction <= 0.01:
            bucket = "<=1%"
        elif fraction <= 0.1:
            bucket = "<=10%"
        elif fraction <= 0.5:
            bucket = "<=50%"
        else:
            bucket = ">50%"
        with self._lock:
            self._dirty_hist[bucket] += 1

    def observe_batch(self, size: int) -> None:
        with self._lock:
            self._batch_count += 1
            self._batch_documents += size
            if size > self._batch_max:
                self._batch_max = size

    def observe_latency(self, seconds: float) -> None:
        with self._lock:
            self._latencies.append(seconds)

    def snapshot(self) -> Dict:
        """JSON-serializable view of every metric (the /metrics body)."""
        with self._lock:
            counters = dict(self._counters)
            gauges = dict(self._gauges)
            dirty_hist = dict(self._dirty_hist)
            latencies = sorted(self._latencies)
            batches = {
                "count": self._batch_count,
                "documents": self._batch_documents,
                "max_size": self._batch_max,
                "mean_size": (
                    round(self._batch_documents / self._batch_count, 2)
                    if self._batch_count
                    else 0.0
                ),
            }
            uptime = time.time() - self._started
        latency = {"count": len(latencies)}
        if latencies:
            latency.update(
                p50_ms=round(percentile(latencies, 0.50) * 1e3, 3),
                p95_ms=round(percentile(latencies, 0.95) * 1e3, 3),
                max_ms=round(latencies[-1] * 1e3, 3),
                mean_ms=round(sum(latencies) / len(latencies) * 1e3, 3),
            )
        hits = counters.get("incremental_hits", 0)
        misses = counters.get("incremental_misses", 0)
        if hits or misses:
            gauges["incremental_reuse_fraction"] = round(
                hits / (hits + misses), 4
            )
        return {
            "counters": counters,
            "gauges": gauges,
            "batches": batches,
            "latency": latency,
            "incremental": {
                "hits": hits,
                "misses": misses,
                "dirty_histogram": dirty_hist,
            },
            "uptime_s": round(uptime, 3),
        }

"""Serving metrics: counters, fixed-bucket latency histograms, and
Prometheus text exposition.

Everything is in-process and cheap.  Counters are a ``Counter``;
latencies land in :class:`Histogram` objects with *fixed exponential
buckets* (0.5 ms doubling up to ~16 s) instead of the old bounded
reservoir -- observation is O(log buckets), the memory footprint is
constant regardless of traffic, and two histograms merge by adding
bucket counts, which is what real dashboards aggregate.  Per-stage
histograms (``observe_stage``) decompose a request the same way the
trace spans do (queue / flush / route / shard / kernel), and per-wrapper
histograms (the ``wrapper=`` label on ``observe_latency``) break the
request latency down by wrapper version.

:meth:`ServeMetrics.snapshot` keeps the stable JSON shape ``GET
/metrics`` has always returned (percentiles are now bucket upper-bound
estimates; ``max_ms`` stays exact).  :meth:`ServeMetrics.prometheus`
renders the same state in the Prometheus text exposition format for
``GET /metrics?format=prometheus``, and :func:`parse_prometheus_text`
is the strict parser CI uses to validate that exposition round-trips.
"""

from __future__ import annotations

import math
import re
import threading
import time
from bisect import bisect_left
from collections import Counter
from typing import Callable, Dict, List, Optional, Tuple


def percentile(sorted_values: List[float], q: float) -> float:
    """The ``q``-quantile (0..1) of an ascending non-empty list.

    Nearest-rank definition: ``ceil(q * n)``-th smallest value, so the
    median of an odd-length series is its middle element.

    >>> percentile([1, 2, 3, 4, 100], 0.50)
    3
    >>> percentile([1, 2, 3, 4, 100], 0.95)
    100
    """
    if not sorted_values:
        raise ValueError("percentile of empty series")
    index = max(
        0, min(len(sorted_values) - 1, math.ceil(q * len(sorted_values)) - 1)
    )
    return sorted_values[index]


#: Histogram bucket upper bounds in seconds: 0.5 ms doubling to ~16 s.
#: Fixed and exponential, so histograms from different shards/processes
#: merge bucket-by-bucket and the relative error of any quantile
#: estimate is bounded by one doubling.
DEFAULT_BUCKETS: Tuple[float, ...] = tuple(0.0005 * 2**i for i in range(16))


class Histogram:
    """Fixed-bucket latency histogram (seconds in, milliseconds out).

    Observations are counted into the first bucket whose upper bound
    holds them (overflow goes to the implicit ``+Inf`` bucket); the
    exact sum and max ride along so ``mean_ms`` / ``max_ms`` stay
    exact while quantiles are upper-bound estimates.

    >>> h = Histogram()
    >>> for ms in (1, 2, 3, 4, 100):
    ...     h.observe(ms / 1000.0)
    >>> h.count, round(h.max * 1e3, 1)
    (5, 100.0)
    >>> h.quantile(0.50) <= h.quantile(0.95) <= 100.0
    True
    """

    __slots__ = ("bounds", "counts", "count", "total", "max")

    def __init__(self, bounds: Tuple[float, ...] = DEFAULT_BUCKETS):
        self.bounds = bounds
        #: counts[i] pairs with bounds[i]; counts[-1] is the +Inf bucket.
        self.counts = [0] * (len(bounds) + 1)
        self.count = 0
        self.total = 0.0
        self.max = 0.0

    def observe(self, seconds: float) -> None:
        self.counts[bisect_left(self.bounds, seconds)] += 1
        self.count += 1
        self.total += seconds
        if seconds > self.max:
            self.max = seconds

    def quantile(self, q: float) -> float:
        """Estimated ``q``-quantile in **milliseconds** (bucket upper
        bound, clamped to the exact max -- monotone in ``q``)."""
        if not self.count:
            return 0.0
        rank = max(1, math.ceil(q * self.count))
        seen = 0
        for index, bucket_count in enumerate(self.counts):
            seen += bucket_count
            if seen >= rank:
                if index < len(self.bounds):
                    return round(min(self.bounds[index], self.max) * 1e3, 3)
                break
        return round(self.max * 1e3, 3)

    def summary(self) -> Dict[str, float]:
        """The compact JSON view: count / p50 / p95 / mean / max (ms)."""
        out: Dict[str, float] = {"count": self.count}
        if self.count:
            out.update(
                p50_ms=self.quantile(0.50),
                p95_ms=self.quantile(0.95),
                max_ms=round(self.max * 1e3, 3),
                mean_ms=round(self.total / self.count * 1e3, 3),
            )
        return out

    def cumulative(self) -> List[Tuple[str, int]]:
        """Prometheus-style cumulative ``(le, count)`` pairs ending at
        ``+Inf`` (exposition wants cumulative counts, not per-bucket)."""
        out = []
        running = 0
        for bound, bucket_count in zip(self.bounds, self.counts):
            running += bucket_count
            out.append((repr(bound), running))
        out.append(("+Inf", self.count))
        return out


class ServeMetrics:
    """Counters + per-stage/per-wrapper latency histograms.

    ``clock`` must be a monotonic source (default ``time.monotonic``);
    it anchors ``uptime_s`` so wall-clock steps cannot skew it, and it
    is injectable for deterministic tests -- the same pattern as
    ``CircuitBreaker``.

    Examples
    --------
    >>> metrics = ServeMetrics()
    >>> metrics.incr("requests_total"); metrics.observe_batch(4)
    >>> for ms in (1, 2, 3, 4, 100):
    ...     metrics.observe_latency(ms / 1000.0, wrapper="demo@v1")
    >>> snap = metrics.snapshot()
    >>> snap["counters"]["requests_total"], snap["batches"]["max_size"]
    (1, 4)
    >>> snap["latency"]["p50_ms"] <= snap["latency"]["p95_ms"]
    True
    >>> snap["wrappers"]["demo@v1"]["count"]
    5

    >>> now = [100.0]
    >>> frozen = ServeMetrics(clock=lambda: now[0])
    >>> now[0] += 2.5
    >>> frozen.snapshot()["uptime_s"]
    2.5
    """

    def __init__(
        self,
        latency_window: int = 4096,  # kept for API compat; unused now
        clock: Callable[[], float] = time.monotonic,
    ):
        self._lock = threading.Lock()
        self._clock = clock
        self._counters: Counter = Counter()
        self._gauges: Dict[str, float] = {}
        self._latency = Histogram()
        #: Stage name -> histogram, mirroring the trace span stages.
        self._stages: Dict[str, Histogram] = {}
        #: Wrapper ref ("name@version") -> request-latency histogram.
        self._wrappers: Dict[str, Histogram] = {}
        self._batch_count = 0
        self._batch_documents = 0
        self._batch_max = 0
        #: Dirty-node histogram of warm (incremental) evaluations, bucketed
        #: by the fraction of the document the snapshot diff left dirty.
        self._dirty_hist: Counter = Counter()
        self._started = clock()

    def incr(self, name: str, count: int = 1) -> None:
        with self._lock:
            self._counters[name] += count

    def set_gauge(self, name: str, value: float) -> None:
        """Point-in-time values (breaker states, quarantine size, ...)."""
        with self._lock:
            self._gauges[name] = value

    def observe_dirty(self, fraction: float) -> None:
        """Record one warm evaluation's dirty fraction in the histogram.

        >>> metrics = ServeMetrics()
        >>> metrics.observe_dirty(0.0005); metrics.observe_dirty(0.3)
        >>> metrics.snapshot()["incremental"]["dirty_histogram"]
        {'<=0.1%': 1, '<=50%': 1}
        """
        if fraction <= 0.001:
            bucket = "<=0.1%"
        elif fraction <= 0.01:
            bucket = "<=1%"
        elif fraction <= 0.1:
            bucket = "<=10%"
        elif fraction <= 0.5:
            bucket = "<=50%"
        else:
            bucket = ">50%"
        with self._lock:
            self._dirty_hist[bucket] += 1

    def observe_batch(self, size: int) -> None:
        with self._lock:
            self._batch_count += 1
            self._batch_documents += size
            if size > self._batch_max:
                self._batch_max = size

    def observe_latency(self, seconds: float, wrapper: Optional[str] = None) -> None:
        """Record one end-to-end request latency; ``wrapper`` adds the
        observation to that wrapper version's breakdown histogram."""
        with self._lock:
            self._latency.observe(seconds)
            if wrapper is not None:
                hist = self._wrappers.get(wrapper)
                if hist is None:
                    hist = self._wrappers[wrapper] = Histogram()
                hist.observe(seconds)

    def observe_request(
        self,
        seconds: float,
        wrapper: Optional[str],
        stage_ms: Dict[str, float],
    ) -> None:
        """One traced request's latency + per-stage timings, one lock.

        Equivalent to ``observe_latency`` plus ``observe_stage`` for
        every entry of ``stage_ms`` (milliseconds, as the span tree
        reports them; ``http.request`` is skipped -- it duplicates the
        latency observation), but acquires the metrics lock once
        instead of once per stage: this runs on the server's event-loop
        thread for every traced request.

        >>> metrics = ServeMetrics()
        >>> metrics.observe_request(
        ...     0.004, None, {"http.request": 4.0, "shard.call": 2.5})
        >>> metrics.snapshot()["stages"]["shard.call"]["count"]
        1
        >>> "http.request" in metrics.snapshot()["stages"]
        False
        """
        with self._lock:
            self._latency.observe(seconds)
            if wrapper is not None:
                hist = self._wrappers.get(wrapper)
                if hist is None:
                    hist = self._wrappers[wrapper] = Histogram()
                hist.observe(seconds)
            stages = self._stages
            for stage, ms in stage_ms.items():
                if stage == "http.request":
                    continue
                hist = stages.get(stage)
                if hist is None:
                    hist = stages[stage] = Histogram()
                hist.observe(ms / 1e3)

    def observe_stage(self, stage: str, seconds: float) -> None:
        """Record one stage timing (``queue`` / ``flush`` / ``shard`` /
        ``kernel`` ... -- the same names the trace spans use).

        >>> metrics = ServeMetrics()
        >>> metrics.observe_stage("shard.call", 0.002)
        >>> metrics.snapshot()["stages"]["shard.call"]["count"]
        1
        """
        with self._lock:
            hist = self._stages.get(stage)
            if hist is None:
                hist = self._stages[stage] = Histogram()
            hist.observe(seconds)

    def snapshot(self) -> Dict:
        """JSON-serializable view of every metric (the /metrics body)."""
        with self._lock:
            counters = dict(self._counters)
            gauges = dict(self._gauges)
            dirty_hist = dict(self._dirty_hist)
            latency = self._latency.summary()
            stages = {name: h.summary() for name, h in self._stages.items()}
            wrappers = {ref: h.summary() for ref, h in self._wrappers.items()}
            batches = {
                "count": self._batch_count,
                "documents": self._batch_documents,
                "max_size": self._batch_max,
                "mean_size": (
                    round(self._batch_documents / self._batch_count, 2)
                    if self._batch_count
                    else 0.0
                ),
            }
            uptime = self._clock() - self._started
        hits = counters.get("incremental_hits", 0)
        misses = counters.get("incremental_misses", 0)
        if hits or misses:
            gauges["incremental_reuse_fraction"] = round(
                hits / (hits + misses), 4
            )
        return {
            "counters": counters,
            "gauges": gauges,
            "batches": batches,
            "latency": latency,
            "stages": stages,
            "wrappers": wrappers,
            "incremental": {
                "hits": hits,
                "misses": misses,
                "dirty_histogram": dirty_hist,
            },
            "uptime_s": round(uptime, 3),
        }

    def prometheus(self, prefix: str = "repro") -> str:
        """Render every metric in the Prometheus text exposition format.

        Counters become ``<prefix>_<name>`` counters, gauges become
        gauges, and each latency histogram becomes a real Prometheus
        histogram (``_bucket{le=...}`` / ``_sum`` / ``_count``); stage
        and wrapper breakdowns share one metric family each, labeled by
        ``stage=`` / ``wrapper=``.  The output round-trips through
        :func:`parse_prometheus_text`.

        >>> metrics = ServeMetrics()
        >>> metrics.incr("requests_total", 3)
        >>> metrics.observe_latency(0.004)
        >>> text = metrics.prometheus()
        >>> 'repro_requests_total 3' in text
        True
        >>> parsed = parse_prometheus_text(text)
        >>> parsed["types"]["repro_request_latency_seconds"]
        'histogram'
        """
        with self._lock:
            counters = sorted(self._counters.items())
            gauges = sorted(self._gauges.items())
            dirty = sorted(self._dirty_hist.items())
            latency = self._latency
            stages = sorted(self._stages.items())
            wrappers = sorted(self._wrappers.items())
            batch_count = self._batch_count
            batch_documents = self._batch_documents
            batch_max = self._batch_max
            uptime = self._clock() - self._started

            lines: List[str] = []

            def family(name: str, kind: str, help_text: str) -> None:
                lines.append(f"# HELP {name} {help_text}")
                lines.append(f"# TYPE {name} {kind}")

            def histogram_family(
                name: str, help_text: str, series: List[Tuple[str, Histogram]]
            ) -> None:
                """One histogram family; each (label_pair, hist) series
                shares it.  ``label_pair`` is '' or 'key="value"'."""
                family(name, "histogram", help_text)
                for label, hist in series:
                    sep = "," if label else ""
                    for le, cumulative in hist.cumulative():
                        lines.append(
                            f'{name}_bucket{{{label}{sep}le="{le}"}} {cumulative}'
                        )
                    suffix = f"{{{label}}}" if label else ""
                    lines.append(f"{name}_sum{suffix} {hist.total!r}")
                    lines.append(f"{name}_count{suffix} {hist.count}")

            for raw, value in counters:
                name = f"{prefix}_{_sanitize(raw)}"
                family(name, "counter", f"Serving counter {raw}.")
                lines.append(f"{name} {value}")
            for raw, value in gauges:
                name = f"{prefix}_{_sanitize(raw)}"
                family(name, "gauge", f"Serving gauge {raw}.")
                lines.append(f"{name} {value!r}")

            family(f"{prefix}_uptime_seconds", "gauge", "Monotonic process uptime.")
            lines.append(f"{prefix}_uptime_seconds {round(uptime, 3)!r}")
            family(f"{prefix}_batches_total", "counter", "Flushed micro-batches.")
            lines.append(f"{prefix}_batches_total {batch_count}")
            family(
                f"{prefix}_batch_documents_total",
                "counter",
                "Documents across all flushed batches.",
            )
            lines.append(f"{prefix}_batch_documents_total {batch_documents}")
            family(f"{prefix}_batch_max_size", "gauge", "Largest batch flushed.")
            lines.append(f"{prefix}_batch_max_size {batch_max}")

            if dirty:
                name = f"{prefix}_incremental_dirty_total"
                family(
                    name,
                    "counter",
                    "Warm evaluations by dirty-fraction bucket.",
                )
                for bucket, count in dirty:
                    lines.append(
                        f'{name}{{bucket="{_escape_label(bucket)}"}} {count}'
                    )

            histogram_family(
                f"{prefix}_request_latency_seconds",
                "End-to-end request latency.",
                [("", latency)],
            )
            if stages:
                histogram_family(
                    f"{prefix}_stage_latency_seconds",
                    "Per-stage latency, stage names matching trace spans.",
                    [
                        (f'stage="{_escape_label(stage)}"', hist)
                        for stage, hist in stages
                    ],
                )
            if wrappers:
                histogram_family(
                    f"{prefix}_wrapper_latency_seconds",
                    "Request latency by wrapper version.",
                    [
                        (f'wrapper="{_escape_label(ref)}"', hist)
                        for ref, hist in wrappers
                    ],
                )
        return "\n".join(lines) + "\n"


def _sanitize(name: str) -> str:
    """Coerce an internal counter name into a legal metric name."""
    cleaned = re.sub(r"[^a-zA-Z0-9_:]", "_", name)
    if not cleaned or not re.match(r"[a-zA-Z_:]", cleaned[0]):
        cleaned = f"_{cleaned}"
    return cleaned


def _escape_label(value: str) -> str:
    return value.replace("\\", r"\\").replace('"', r'\"').replace("\n", r"\n")


#: Exposition-format grammar (strict subset we emit and CI validates).
_METRIC_NAME = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")
_LABEL_NAME = re.compile(r"^[a-zA-Z_][a-zA-Z0-9_]*$")
_SAMPLE = re.compile(
    r"^(?P<name>[a-zA-Z_:][a-zA-Z0-9_:]*)"
    r"(?:\{(?P<labels>[^{}]*)\})?"
    r" (?P<value>\S+)"
    r"(?: (?P<timestamp>-?\d+))?$"
)
_LABEL_PAIR = re.compile(
    r'(?P<name>[a-zA-Z_][a-zA-Z0-9_]*)="(?P<value>(?:[^"\\]|\\.)*)"'
)
_TYPES = frozenset({"counter", "gauge", "histogram", "summary", "untyped"})


def parse_prometheus_text(text: str) -> Dict:
    """Strictly parse/validate Prometheus text exposition.

    Checks, line by line: metric and label name grammar, quoted+escaped
    label values, parseable sample values, ``# TYPE`` declared at most
    once per family and *before* its samples, histogram families ending
    with ``_sum``/``_count`` and every ``_bucket`` carrying an ``le``
    label, and a trailing newline.  Raises :class:`ValueError` with the
    offending line number on any violation; returns the parsed view::

        {"types": {family: type}, "help": {family: text},
         "samples": [(name, {label: value}, float_value)]}

    >>> parsed = parse_prometheus_text(
    ...     "# HELP up Is it up.\\n# TYPE up gauge\\nup 1\\n")
    >>> parsed["samples"]
    [('up', {}, 1.0)]
    >>> parse_prometheus_text("bad-name 1\\n")
    Traceback (most recent call last):
        ...
    ValueError: line 1: unparseable sample line: 'bad-name 1'
    >>> parse_prometheus_text("# TYPE h histogram\\nh_bucket{x=\\"1\\"} 1\\n")
    Traceback (most recent call last):
        ...
    ValueError: line 2: histogram bucket sample missing 'le' label
    """
    if text and not text.endswith("\n"):
        raise ValueError("exposition must end with a newline")
    types: Dict[str, str] = {}
    helps: Dict[str, str] = {}
    samples: List[Tuple[str, Dict[str, str], float]] = []
    seen_families: set = set()
    histogram_series: Dict[str, set] = {}

    for number, line in enumerate(text.splitlines(), start=1):
        if not line.strip():
            continue
        if line.startswith("#"):
            parts = line.split(None, 3)
            if len(parts) < 3 or parts[1] not in ("HELP", "TYPE"):
                raise ValueError(f"line {number}: malformed comment: {line!r}")
            _, keyword, family = parts[:3]
            if not _METRIC_NAME.match(family):
                raise ValueError(
                    f"line {number}: invalid metric name {family!r}"
                )
            if keyword == "TYPE":
                kind = parts[3] if len(parts) > 3 else ""
                if kind not in _TYPES:
                    raise ValueError(
                        f"line {number}: invalid metric type {kind!r}"
                    )
                if family in types:
                    raise ValueError(
                        f"line {number}: duplicate TYPE for {family!r}"
                    )
                if family in seen_families:
                    raise ValueError(
                        f"line {number}: TYPE for {family!r} after its samples"
                    )
                types[family] = kind
            else:
                helps[family] = parts[3] if len(parts) > 3 else ""
            continue

        match = _SAMPLE.match(line)
        if match is None:
            raise ValueError(
                f"line {number}: unparseable sample line: {line!r}"
            )
        name = match.group("name")
        labels: Dict[str, str] = {}
        raw_labels = match.group("labels")
        if raw_labels is not None and raw_labels.strip():
            consumed = 0
            for pair in _LABEL_PAIR.finditer(raw_labels):
                if not _LABEL_NAME.match(pair.group("name")):
                    raise ValueError(
                        f"line {number}: invalid label name "
                        f"{pair.group('name')!r}"
                    )
                labels[pair.group("name")] = pair.group("value")
                consumed += len(pair.group(0))
            leftovers = re.sub(r"[,\s]", "", raw_labels)
            matched = "".join(
                pair.group(0) for pair in _LABEL_PAIR.finditer(raw_labels)
            )
            if len(leftovers) != len(re.sub(r"[,\s]", "", matched)):
                raise ValueError(
                    f"line {number}: malformed label set {{{raw_labels}}}"
                )
        try:
            value = float(match.group("value"))
        except ValueError:
            raise ValueError(
                f"line {number}: unparseable sample value "
                f"{match.group('value')!r}"
            ) from None

        family = name
        for suffix in ("_bucket", "_sum", "_count"):
            base = name[: -len(suffix)] if name.endswith(suffix) else None
            if base and types.get(base) == "histogram":
                family = base
                histogram_series.setdefault(base, set()).add(suffix)
                if suffix == "_bucket" and "le" not in labels:
                    raise ValueError(
                        f"line {number}: histogram bucket sample missing "
                        "'le' label"
                    )
                break
        seen_families.add(family)
        samples.append((name, labels, value))

    for family, suffixes in histogram_series.items():
        missing = {"_bucket", "_sum", "_count"} - suffixes
        if missing:
            raise ValueError(
                f"histogram {family!r} missing series: {sorted(missing)}"
            )
    return {"types": types, "help": helps, "samples": samples}

"""Serving metrics: counters, batch-size stats, latency percentiles.

Everything is in-process and cheap: counters are a ``Counter``, latencies
live in a bounded ring (the last N observations), and percentiles are
computed on demand by :meth:`ServeMetrics.snapshot` -- which is exactly
what ``GET /metrics`` returns.
"""

from __future__ import annotations

import math
import threading
import time
from collections import Counter, deque
from typing import Dict, List


def percentile(sorted_values: List[float], q: float) -> float:
    """The ``q``-quantile (0..1) of an ascending non-empty list.

    Nearest-rank definition: ``ceil(q * n)``-th smallest value, so the
    median of an odd-length series is its middle element.

    >>> percentile([1, 2, 3, 4, 100], 0.50)
    3
    >>> percentile([1, 2, 3, 4, 100], 0.95)
    100
    """
    if not sorted_values:
        raise ValueError("percentile of empty series")
    index = max(
        0, min(len(sorted_values) - 1, math.ceil(q * len(sorted_values)) - 1)
    )
    return sorted_values[index]


class ServeMetrics:
    """Counters + latency reservoir for the serving subsystem.

    Examples
    --------
    >>> metrics = ServeMetrics()
    >>> metrics.incr("requests_total"); metrics.observe_batch(4)
    >>> for ms in (1, 2, 3, 4, 100):
    ...     metrics.observe_latency(ms / 1000.0)
    >>> snap = metrics.snapshot()
    >>> snap["counters"]["requests_total"], snap["batches"]["max_size"]
    (1, 4)
    >>> snap["latency"]["p50_ms"] <= snap["latency"]["p95_ms"]
    True
    """

    def __init__(self, latency_window: int = 4096):
        self._lock = threading.Lock()
        self._counters: Counter = Counter()
        self._gauges: Dict[str, float] = {}
        self._latencies: deque = deque(maxlen=latency_window)
        self._batch_count = 0
        self._batch_documents = 0
        self._batch_max = 0
        self._started = time.time()

    def incr(self, name: str, count: int = 1) -> None:
        with self._lock:
            self._counters[name] += count

    def set_gauge(self, name: str, value: float) -> None:
        """Point-in-time values (breaker states, quarantine size, ...)."""
        with self._lock:
            self._gauges[name] = value

    def observe_batch(self, size: int) -> None:
        with self._lock:
            self._batch_count += 1
            self._batch_documents += size
            if size > self._batch_max:
                self._batch_max = size

    def observe_latency(self, seconds: float) -> None:
        with self._lock:
            self._latencies.append(seconds)

    def snapshot(self) -> Dict:
        """JSON-serializable view of every metric (the /metrics body)."""
        with self._lock:
            counters = dict(self._counters)
            gauges = dict(self._gauges)
            latencies = sorted(self._latencies)
            batches = {
                "count": self._batch_count,
                "documents": self._batch_documents,
                "max_size": self._batch_max,
                "mean_size": (
                    round(self._batch_documents / self._batch_count, 2)
                    if self._batch_count
                    else 0.0
                ),
            }
            uptime = time.time() - self._started
        latency = {"count": len(latencies)}
        if latencies:
            latency.update(
                p50_ms=round(percentile(latencies, 0.50) * 1e3, 3),
                p95_ms=round(percentile(latencies, 0.95) * 1e3, 3),
                max_ms=round(latencies[-1] * 1e3, 3),
                mean_ms=round(sum(latencies) / len(latencies) * 1e3, 3),
            )
        return {
            "counters": counters,
            "gauges": gauges,
            "batches": batches,
            "latency": latency,
            "uptime_s": round(uptime, 3),
        }

"""``repro.serve``: the wrapper-serving subsystem.

The paper's wrappers were built to run continuously against live Web
pages; this package is the layer that actually *serves* them.  It sits on
top of the compile-once / kernel / streaming stack and is composed of
four pieces, each usable on its own:

* :mod:`repro.serve.registry` -- :class:`WrapperRegistry`: named and
  versioned compiled wrappers (Elog- or monadic datalog source ->
  :meth:`repro.wrap.extraction.Wrapper.compile`), persisted to a disk
  cache via pickle with source-hash invalidation and warm-loaded on
  startup;
* :mod:`repro.serve.executor` -- :class:`ShardExecutor`: a long-lived
  pool of single-worker process shards (generalizing the per-call
  ``workers=`` fan-out of the batch APIs); each compiled wrapper is
  pickled to a shard exactly once and documents are routed to shards by
  content hash;
* :mod:`repro.serve.batcher` -- :class:`MicroBatcher`: coalesces
  concurrent single-document requests into kernel batches (flush on size
  or deadline), dedupes identical documents inside a batch, and fronts
  everything with a content-hash LRU :class:`repro.serve.cache.ResultCache`
  so repeated documents skip parse + fixpoint entirely;
* :mod:`repro.serve.server` -- :class:`ExtractionServer`: a stdlib-only
  asyncio HTTP server exposing ``POST /extract/{wrapper}@{version}``,
  ``POST /batch``, ``GET/POST /wrappers``, ``GET /healthz`` and
  ``GET /metrics``, with bounded-queue backpressure (503) and graceful
  shutdown.  Run it as ``python -m repro.serve``.

Fault tolerance rides on top (``repro.serve.supervisor`` /
``repro.serve.faults``): size-derived per-request deadlines with hung
workers killed at the bound, automatic retry with jittered backoff for
crashed shards, poison-page quarantine (batch bisection isolates the
offending document; 422 after N strikes, ``/quarantine`` to inspect),
per-shard circuit breakers fed by a background health checker that
respawn sick shards and reroute their keys, and a deterministic fault
injector (kill / delay / hang / corrupt on the Nth call, poison-marker
pages, plus the network kinds drop_conn / delay_frame / garble_frame)
used by the chaos tests and the CI chaos jobs.

The cluster layer (``repro.serve.shard`` / ``repro.serve.transport`` /
``repro.serve.ring``) extends the same machinery across boxes: shard
daemons (``python -m repro.serve.shard --listen host:port``) speak a
length-prefixed frame protocol, :class:`RemoteShardExecutor` maps every
transport failure onto the error taxonomy above (so retries, breakers
and quarantine apply unchanged), and a consistent-hash :class:`HashRing`
in the supervisor routes keys with minimal movement under membership
change -- a dead or draining daemon moves only its own key interval.

Observability (``repro.serve.tracing`` / ``repro.serve.metrics``): every
request gets a :class:`~repro.serve.tracing.Span` tree --
``http.request`` down through batcher queueing, ring routing, shard RPC,
and the kernel run itself (engine, rounds, fallback reason), with remote
daemons shipping kernel stats back over an optional trace frame field
that old daemons simply ignore.  A bounded :class:`Tracer` retains
recent traces plus slow/error exemplars behind ``GET /debug/traces``;
:class:`ServeMetrics` keeps fixed-bucket latency histograms per stage
and per wrapper version, exported as JSON (``/metrics``) or Prometheus
text exposition (``/metrics?format=prometheus``); and
:class:`RequestLog` emits one structured JSON line per request.

Quickstart::

    from repro.serve import ExtractionServer, WrapperRegistry

    registry = WrapperRegistry("var/wrappers")      # persistent, warm-loads
    registry.register("catalog", ELOG_SOURCE, kind="elog")
    server = ExtractionServer(registry, port=8421, shards=2)
    # await server.start() inside an event loop, or:
    #   python -m repro.serve --registry-dir var/wrappers --shards 2
"""

from repro.serve.batcher import MicroBatcher
from repro.serve.cache import ResultCache
from repro.serve.executor import ShardExecutor, content_hash
from repro.serve.faults import FaultInjector, FaultPlan
from repro.serve.metrics import ServeMetrics, parse_prometheus_text
from repro.serve.registry import RegisteredWrapper, WrapperRegistry
from repro.serve.ring import HashRing
from repro.serve.server import ExtractionServer, ServerThread
from repro.serve.shard import DaemonThread, ShardDaemon
from repro.serve.supervisor import CircuitBreaker, Quarantine, ShardSupervisor
from repro.serve.tracing import RequestLog, Span, Tracer, find_spans, stage_timings
from repro.serve.transport import RemoteShardExecutor

__all__ = [
    "CircuitBreaker",
    "DaemonThread",
    "ExtractionServer",
    "FaultInjector",
    "FaultPlan",
    "HashRing",
    "MicroBatcher",
    "Quarantine",
    "RegisteredWrapper",
    "RemoteShardExecutor",
    "RequestLog",
    "ResultCache",
    "ServeMetrics",
    "ServerThread",
    "ShardDaemon",
    "ShardExecutor",
    "ShardSupervisor",
    "Span",
    "Tracer",
    "WrapperRegistry",
    "content_hash",
    "find_spans",
    "parse_prometheus_text",
    "stage_timings",
]

"""``repro.serve``: the wrapper-serving subsystem.

The paper's wrappers were built to run continuously against live Web
pages; this package is the layer that actually *serves* them.  It sits on
top of the compile-once / kernel / streaming stack and is composed of
four pieces, each usable on its own:

* :mod:`repro.serve.registry` -- :class:`WrapperRegistry`: named and
  versioned compiled wrappers (Elog- or monadic datalog source ->
  :meth:`repro.wrap.extraction.Wrapper.compile`), persisted to a disk
  cache via pickle with source-hash invalidation and warm-loaded on
  startup;
* :mod:`repro.serve.executor` -- :class:`ShardExecutor`: a long-lived
  pool of single-worker process shards (generalizing the per-call
  ``workers=`` fan-out of the batch APIs); each compiled wrapper is
  pickled to a shard exactly once and documents are routed to shards by
  content hash;
* :mod:`repro.serve.batcher` -- :class:`MicroBatcher`: coalesces
  concurrent single-document requests into kernel batches (flush on size
  or deadline), dedupes identical documents inside a batch, and fronts
  everything with a content-hash LRU :class:`repro.serve.cache.ResultCache`
  so repeated documents skip parse + fixpoint entirely;
* :mod:`repro.serve.server` -- :class:`ExtractionServer`: a stdlib-only
  asyncio HTTP server exposing ``POST /extract/{wrapper}@{version}``,
  ``POST /batch``, ``GET/POST /wrappers``, ``GET /healthz`` and
  ``GET /metrics``, with bounded-queue backpressure (503) and graceful
  shutdown.  Run it as ``python -m repro.serve``.

Quickstart::

    from repro.serve import ExtractionServer, WrapperRegistry

    registry = WrapperRegistry("var/wrappers")      # persistent, warm-loads
    registry.register("catalog", ELOG_SOURCE, kind="elog")
    server = ExtractionServer(registry, port=8421, shards=2)
    # await server.start() inside an event loop, or:
    #   python -m repro.serve --registry-dir var/wrappers --shards 2
"""

from repro.serve.batcher import MicroBatcher
from repro.serve.cache import ResultCache
from repro.serve.executor import ShardExecutor, content_hash
from repro.serve.metrics import ServeMetrics
from repro.serve.registry import RegisteredWrapper, WrapperRegistry
from repro.serve.server import ExtractionServer, ServerThread

__all__ = [
    "ExtractionServer",
    "MicroBatcher",
    "RegisteredWrapper",
    "ResultCache",
    "ServeMetrics",
    "ServerThread",
    "ShardExecutor",
    "WrapperRegistry",
    "content_hash",
]

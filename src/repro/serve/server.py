"""Stdlib-only asyncio HTTP server for wrapper extraction.

Routes (all bodies and responses are JSON):

=======  ==========================  ===========================================
method   path                        behavior
=======  ==========================  ===========================================
POST     /extract/{name}[@{ver}]     ``{"html": ...}`` -> one wrapped output
                                     (through the micro-batcher + cache);
                                     add ``"doc_id"`` for the incremental
                                     warm path across re-crawls of one
                                     document
POST     /batch                      ``{"wrapper": ref, "documents": [...]}``
                                     -> one output per document
GET      /wrappers                   list registered wrappers
POST     /wrappers                   register ``{"name", "source", "kind",
                                     "patterns"?, "version"?}``
GET      /healthz                    liveness + queue depth
GET      /metrics                    counters, batch stats, per-stage and
                                     per-wrapper latency histograms (JSON);
                                     ``?format=prometheus`` for text
                                     exposition
GET      /debug/traces               retained request traces (recent ring +
                                     slow/error exemplars)
GET      /debug/traces/{id}          one full span tree by trace id
=======  ==========================  ===========================================

Observability: every ``/extract`` and ``/batch`` request gets a trace id
(returned in the response payload) and a span tree recorded by the
server's :class:`~repro.serve.tracing.Tracer` -- ``http.request`` down
through batcher queueing, ring routing, shard RPC, and the kernel run
itself (engine, rounds, fallback), including kernel spans grafted back
from remote shard daemons over the framed RPC protocol.  Stage timings
feed the per-stage histograms in ``/metrics``; an ``access_log`` sink
emits one structured JSON line per request (trace id, status, stage
timings, retries, reroutes, quarantine strikes).  ``tracing=False``
disables all of it -- the hot path then threads ``span=None`` with one
``is not None`` test per stage.

The request path is fully asynchronous: handlers never run a fixpoint on
the event loop -- documents go through the
:class:`~repro.serve.batcher.MicroBatcher` into the
:class:`~repro.serve.executor.ShardExecutor`.  When the pending-document
budget is exhausted the server answers ``503`` immediately (bounded
queue -> backpressure).  ``stop()`` is graceful: the listener closes
first, queued batches flush, in-flight connections finish, then the
shards shut down.

Fault tolerance (the paper's linear-time bound, made operational):

* every extraction carries a **deadline derived from document size** --
  ``deadline_base + deadline_per_mb * megabytes`` seconds per shard
  call.  Monadic-datalog wrappers evaluate in time linear in the
  document (Gottlob & Koch 2002), so a call that blows this budget is
  *wedged, not slow*: the worker is killed and respawned and the call
  fails retryable;
* **retryable failures are retried here**, with jittered exponential
  backoff, before any client sees an error: worker death
  (:class:`~repro.errors.ShardCrashed`, includes "wrapper not
  resident") and deadline overruns
  (:class:`~repro.errors.RequestTimeout`).  Only exhausted retries
  surface, as 503 / 504;
* documents that repeatedly *crash* workers are quarantined
  (:class:`~repro.serve.supervisor.Quarantine`) and answered ``422``;
  ``GET /quarantine`` inspects the ledger, ``POST /quarantine/release``
  un-quarantines a hash;
* a :class:`~repro.serve.supervisor.ShardSupervisor` pings every shard
  in the background, trips a per-shard circuit breaker after
  consecutive failures (proactively respawning the shard), and routes
  keys around open breakers; its per-shard state is in ``/healthz``.

Error mapping: 422 poison document, 503 retryable (crashed shard /
overload / shutdown), 504 deadline exceeded after retries.
"""

from __future__ import annotations

import asyncio
import contextlib
import functools
import json
import random
import threading
import time
from concurrent.futures import BrokenExecutor
from typing import Dict, List, Optional, Sequence, Tuple, Union

from repro.errors import (
    PoisonDocument,
    ReproError,
    RequestTimeout,
    RetryableServeError,
    ServeError,
    ServerOverloaded,
    ShardCrashed,
)
from repro.serve.batcher import MicroBatcher
from repro.serve.cache import ResultCache
from repro.serve.executor import ShardExecutor
from repro.serve.faults import FaultPlan
from repro.serve.metrics import ServeMetrics
from repro.serve.registry import WrapperRegistry
from repro.serve.supervisor import Quarantine, ShardSupervisor
from repro.serve.tracing import RequestLog, Span, Tracer, find_spans, stage_timings
from repro.serve.transport import RemoteShardExecutor

_REASONS = {
    200: "OK",
    201: "Created",
    400: "Bad Request",
    404: "Not Found",
    405: "Method Not Allowed",
    413: "Payload Too Large",
    422: "Unprocessable Entity",
    500: "Internal Server Error",
    503: "Service Unavailable",
    504: "Gateway Timeout",
}

#: Routes whose duration feeds the latency percentiles.
_TIMED_ROUTES = ("/extract/", "/batch")


class ExtractionServer:
    """The serving stack wired together behind one asyncio listener."""

    def __init__(
        self,
        registry: WrapperRegistry,
        host: str = "127.0.0.1",
        port: int = 0,
        shards: int = 0,
        max_batch: int = 16,
        max_delay: float = 0.010,
        max_pending: int = 256,
        cache_size: int = 512,
        cache_ttl: Optional[float] = None,
        cache_max_weight: Optional[int] = None,
        bypass_concurrency: int = 1,
        max_body: int = 8 * 1024 * 1024,
        idle_timeout: float = 60.0,
        deadline_base: float = 2.0,
        deadline_per_mb: float = 5.0,
        max_retries: int = 3,
        retry_backoff: float = 0.02,
        quarantine_strikes: int = 3,
        health_interval: float = 1.0,
        breaker_threshold: int = 3,
        breaker_cooldown: float = 5.0,
        faults: Union[FaultPlan, str, None] = None,
        remote_shards: Optional[Sequence[str]] = None,
        tracing: bool = True,
        trace_buffer: int = 256,
        access_log: Union[str, object, None] = None,
    ):
        self.registry = registry
        self.host = host
        self.port = port  # 0 -> ephemeral; set to the bound port by start()
        self.metrics = ServeMetrics()
        #: Bounded trace store behind /debug/traces; ``None`` when tracing
        #: is disabled (hot path then carries ``span=None`` throughout).
        self.tracer: Optional[Tracer] = (
            Tracer(capacity=trace_buffer) if tracing else None
        )
        #: Structured per-request JSON log; ``None`` keeps the server
        #: silent (tests, embedded use).  ``__main__`` turns it on.
        self.request_log: Optional[RequestLog] = (
            RequestLog(access_log) if access_log is not None else None
        )
        self.cache = ResultCache(
            cache_size, ttl=cache_ttl, max_weight=cache_max_weight
        )
        self._shard_count = shards
        #: ``host:port`` shard daemon addresses; when given, evaluation
        #: runs on those remote boxes instead of local shards.
        self.remote_shards: List[str] = list(remote_shards or [])
        self._max_batch = max_batch
        self._max_delay = max_delay
        self._max_pending = max_pending
        self._bypass_concurrency = bypass_concurrency
        self.max_body = max_body
        self.idle_timeout = idle_timeout
        #: Per-shard-call deadline: base + per-MB seconds of document.
        #: The kernel is linear in document size (the paper's Theorem
        #: 4.2/5.2 bound), so a linear budget is the honest contract.
        self.deadline_base = deadline_base
        self.deadline_per_mb = deadline_per_mb
        self.max_retries = max(0, max_retries)
        self.retry_backoff = retry_backoff
        self.health_interval = health_interval
        self._breaker_threshold = breaker_threshold
        self._breaker_cooldown = breaker_cooldown
        self.quarantine = Quarantine(strikes=quarantine_strikes)
        self.faults = (
            FaultPlan.parse(faults) if isinstance(faults, str) else faults
        )
        #: Backoff jitter: seeded, so test runs are reproducible.
        self._rng = random.Random(0x5EED)
        self.executor: Optional[ShardExecutor] = None
        self.batcher: Optional[MicroBatcher] = None
        self.supervisor: Optional[ShardSupervisor] = None
        self._server: Optional[asyncio.AbstractServer] = None
        self._connections: set = set()
        self._stopping = False
        # Monotonic, so reported uptime never jumps on wall-clock steps
        # (mirrors ServeMetrics' clock choice).
        self._started = time.monotonic()

    # -- lifecycle -----------------------------------------------------------

    async def start(self) -> None:
        """Bind the listener and bring the executor + batcher up."""
        if self.remote_shards:
            # RemoteShardExecutor must be created on the serving loop
            # (its connections and tasks live there).
            self.executor = RemoteShardExecutor(
                self.remote_shards, faults=self.faults
            )
        else:
            self.executor = ShardExecutor(self._shard_count, faults=self.faults)
        self.supervisor = ShardSupervisor(
            self.executor,
            self.metrics,
            interval=self.health_interval,
            threshold=self._breaker_threshold,
            cooldown=self._breaker_cooldown,
        )
        self.batcher = MicroBatcher(
            self.executor,
            self.cache,
            self.metrics,
            max_batch=self._max_batch,
            max_delay=self._max_delay,
            max_pending=self._max_pending,
            bypass_concurrency=self._bypass_concurrency,
            quarantine=self.quarantine,
            supervisor=self.supervisor,
        )
        try:
            self._server = await asyncio.start_server(
                self._client_connected, self.host, self.port
            )
        except Exception:
            # A failed bind must not leak shard worker processes.
            executor, self.executor, self.batcher = self.executor, None, None
            await self._close_executor(executor)
            raise
        self.port = self._server.sockets[0].getsockname()[1]
        self._started = time.monotonic()
        await self.supervisor.start()

    async def stop(self) -> None:
        """Graceful shutdown: stop accepting, drain, close the shards.

        New extraction work arriving on established keep-alive
        connections is rejected with 503 from this point, so the drain
        cannot be starved by a client that keeps posting.
        """
        self._stopping = True
        if self._server is not None:
            self._server.close()
        if self.supervisor is not None:
            await self.supervisor.stop()
        if self.batcher is not None:
            await self.batcher.drain()
        if self._connections:
            # Give in-flight responses a moment to finish, then cut idle
            # keep-alive connections loose.  (Handlers also force
            # ``Connection: close`` once _stopping is set.)
            _, pending = await asyncio.wait(
                set(self._connections), timeout=0.5
            )
            for task in pending:
                task.cancel()
            if pending:
                await asyncio.gather(*pending, return_exceptions=True)
        if self._server is not None:
            # All handlers are done, so this resolves immediately (on
            # 3.11 wait_closed blocks while connections are still live).
            await self._server.wait_closed()
            self._server = None
        if self.executor is not None:
            executor = self.executor
            self.executor = None
            await self._close_executor(executor)

    @staticmethod
    async def _close_executor(executor) -> None:
        """Shut an executor down from the serving loop.

        Remote executors close natively on the loop (``aclose``); local
        process pools block on worker exit, so they close off-loop."""
        aclose = getattr(executor, "aclose", None)
        if aclose is not None:
            await aclose()
        else:
            await asyncio.get_running_loop().run_in_executor(None, executor.close)

    async def serve_forever(self) -> None:
        if self._server is None:
            await self.start()
        assert self._server is not None
        await self._server.serve_forever()

    @property
    def address(self) -> str:
        return f"http://{self.host}:{self.port}"

    # -- connection handling -------------------------------------------------

    async def _client_connected(self, reader, writer) -> None:
        task = asyncio.current_task()
        if task is not None:
            self._connections.add(task)
            task.add_done_callback(self._connections.discard)
        try:
            await self._serve_connection(reader, writer)
        except asyncio.CancelledError:
            pass  # deliberate: stop() cancels idle keep-alive connections
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError):  # pragma: no cover - racy close
                pass

    async def _serve_connection(self, reader, writer) -> None:
        while True:
            try:
                request_line = await asyncio.wait_for(
                    reader.readline(), timeout=self.idle_timeout
                )
            except asyncio.TimeoutError:
                return
            except ValueError:
                # Request line exceeds the stream's line-length limit.
                await self._respond(writer, 400, {"error": "request line too long"})
                return
            except (ConnectionError, OSError):
                return
            if not request_line:
                return
            parts = request_line.decode("latin-1").strip().split()
            if len(parts) < 2:
                await self._respond(writer, 400, {"error": "malformed request line"})
                return
            method = parts[0].upper()
            target = parts[1]
            version = parts[2] if len(parts) > 2 else "HTTP/1.0"
            headers: Dict[str, str] = {}
            try:
                # The idle timeout also bounds header/body reads, so a
                # stalled client cannot hold a connection task forever.
                while True:
                    line = await asyncio.wait_for(
                        reader.readline(), timeout=self.idle_timeout
                    )
                    if line in (b"\r\n", b"\n", b""):
                        break
                    if len(headers) >= 100:
                        await self._respond(
                            writer, 400, {"error": "too many headers"}
                        )
                        return
                    name, _, value = line.decode("latin-1").partition(":")
                    headers[name.strip().lower()] = value.strip()
                try:
                    length = int(headers.get("content-length", "0") or "0")
                except ValueError:
                    await self._respond(writer, 400, {"error": "bad content-length"})
                    return
                if length < 0:
                    await self._respond(writer, 400, {"error": "bad content-length"})
                    return
                if length > self.max_body:
                    await self._respond(writer, 413, {"error": "body too large"})
                    return
                if "100-continue" in headers.get("expect", "").lower():
                    # curl sends this for large bodies and waits ~1s for
                    # the interim response before posting anyway.
                    writer.write(b"HTTP/1.1 100 Continue\r\n\r\n")
                    await writer.drain()
                body = (
                    await asyncio.wait_for(
                        reader.readexactly(length), timeout=self.idle_timeout
                    )
                    if length
                    else b""
                )
            except asyncio.TimeoutError:
                return
            except ValueError:
                await self._respond(writer, 400, {"error": "header line too long"})
                return
            except (asyncio.IncompleteReadError, ConnectionError, OSError):
                return
            keep_alive = (
                version == "HTTP/1.1"
                and headers.get("connection", "").lower() != "close"
                and not self._stopping
            )
            started = time.perf_counter()
            path = target.split("?", 1)[0]
            timed = method == "POST" and path.startswith(_TIMED_ROUTES)
            span: Optional[Span] = None
            # One read of self.tracer per request: a request started
            # while tracing was enabled finishes against the same
            # tracer even if tracing is toggled off mid-flight.
            tracer = self.tracer if timed else None
            if tracer is not None:
                span = tracer.start_trace(
                    "http.request", route=path, method=method
                )
            status, payload = await self._dispatch(method, target, body, span=span)
            if self._stopping:
                keep_alive = False
            elapsed = time.perf_counter() - started
            if span is not None:
                if status >= 400 and isinstance(payload, dict):
                    span.fail(str(payload.get("error", status)))
                span.tag(status=status)
                trace_id = tracer.finish_trace(span)
                if isinstance(payload, dict) and "trace_id" not in payload:
                    payload["trace_id"] = trace_id
                self._record_request(span, trace_id, status, elapsed)
            elif timed:
                self.metrics.observe_latency(elapsed)
            ok = await self._respond(writer, status, payload, keep_alive)
            if not ok or not keep_alive:
                return

    def _record_request(
        self, span: Span, trace_id: str, status: int, elapsed: float
    ) -> None:
        """Feed one finished request into histograms and the access log.

        Per-stage times come straight from the span tree, so the
        ``/metrics`` stage histograms and ``/debug/traces`` always agree
        about where a request spent its time."""
        wrapper = span.tags.get("wrapper")
        timings = stage_timings(span)
        self.metrics.observe_request(elapsed, wrapper, timings)
        if self.request_log is None:
            return
        root = span.to_dict()
        reroutes = sum(
            1 for s in find_spans(root, "ring.route") if s["tags"].get("rerouted")
        )
        failed_calls = sum(
            1 for s in find_spans(root, "shard.call") if s.get("error")
        )
        self.request_log.log(
            "request",
            trace_id=trace_id,
            route=span.tags.get("route"),
            wrapper=wrapper,
            status=status,
            elapsed_ms=round(elapsed * 1e3, 3),
            stages=timings,
            retries=span.tags.get("retries", 0),
            reroutes=reroutes,
            failed_shard_calls=failed_calls,
            quarantine_strikes=span.tags.get("quarantine_strikes", 0),
            error=root.get("error"),
        )

    async def _respond(self, writer, status, payload, keep_alive=False) -> bool:
        if isinstance(payload, str):
            # Text exposition (``/metrics?format=prometheus``).
            data = payload.encode("utf-8")
            content_type = "text/plain; version=0.0.4; charset=utf-8"
        else:
            data = json.dumps(payload).encode("utf-8")
            content_type = "application/json"
        head = (
            f"HTTP/1.1 {status} {_REASONS.get(status, 'OK')}\r\n"
            f"Content-Type: {content_type}\r\n"
            f"Content-Length: {len(data)}\r\n"
            f"Connection: {'keep-alive' if keep_alive else 'close'}\r\n"
            "\r\n"
        ).encode("latin-1")
        try:
            writer.write(head + data)
            await writer.drain()
            return True
        except (ConnectionError, OSError):
            return False

    # -- deadlines and retries -----------------------------------------------

    def deadline_for(self, *documents: str) -> float:
        """The shard-call budget for a request, in seconds.

        Linear in total document size, because wrapper evaluation is
        (Theorem 4.2): a call that exceeds this is treated as hung."""
        total = sum(len(doc) for doc in documents)
        return self.deadline_base + self.deadline_per_mb * (total / 1_048_576)

    async def _with_retries(self, attempt_factory, span: Optional[Span] = None):
        """Run one extraction attempt, retrying retryable failures.

        ``attempt_factory`` builds a fresh coroutine per attempt.
        Retries use seeded jittered exponential backoff
        (``retry_backoff * 2^n * U[0.5, 1.5)``) so synchronized clients
        do not re-converge on a just-respawned shard.  Non-retryable
        errors (including :class:`~repro.errors.PoisonDocument` once a
        document crosses the quarantine threshold mid-retry) propagate
        immediately."""
        attempt = 0
        while True:
            try:
                result = await attempt_factory()
                if span is not None and attempt:
                    span.tag(retries=attempt)
                return result
            except RetryableServeError as exc:
                if attempt >= self.max_retries:
                    if span is not None and attempt:
                        span.tag(retries=attempt)
                    raise
                self.metrics.incr("retries")
                backoff = (
                    self.retry_backoff
                    * (2 ** attempt)
                    * (0.5 + self._rng.random())
                )
                attempt += 1
                await asyncio.sleep(backoff)

    # -- routing -------------------------------------------------------------

    async def _dispatch(
        self,
        method: str,
        target: str,
        body: bytes,
        span: Optional[Span] = None,
    ) -> Tuple[int, dict]:
        path, _, query = target.partition("?")
        self.metrics.incr("requests_total")
        try:
            if method == "GET":
                return self._dispatch_get(path, query)
            if method == "POST":
                return await self._dispatch_post(path, body, span=span)
            return 405, {"error": f"method {method} not allowed"}
        except PoisonDocument as exc:
            # Deliberately not retried and not a server fault: the
            # document itself is what keeps crashing workers.
            return 422, {"error": str(exc), "retryable": False}
        except RequestTimeout as exc:
            self.metrics.incr("errors")
            return 504, {"error": str(exc), "retryable": True}
        except ServerOverloaded as exc:
            return 503, {"error": str(exc), "retryable": True}
        except (ShardCrashed, BrokenExecutor) as exc:
            # Retries exhausted on worker death; the shard respawns on
            # the next submission, so the client may retry later.
            self.metrics.incr("errors")
            message = str(exc) or "shard worker died; retry the request"
            return 503, {"error": message, "retryable": True}
        except ReproError as exc:
            # Library errors surfaced by client input (bad wrapper
            # source, unparsable registration, unknown patterns, ...).
            return 400, {"error": f"{type(exc).__name__}: {exc}"}
        except Exception as exc:  # defensive: never kill the connection loop
            self.metrics.incr("errors")
            return 500, {"error": f"{type(exc).__name__}: {exc}"}

    def _dispatch_get(self, path: str, query: str = "") -> Tuple[int, dict]:
        if path == "/healthz":
            assert self.batcher is not None
            shard_health = (
                self.supervisor.describe() if self.supervisor is not None else []
            )
            if self.executor is not None and hasattr(self.executor, "shard_state"):
                # Per-shard transport state (local|remote, connected,
                # reconnects, draining) merged into the health entries.
                for entry in shard_health:
                    entry.update(self.executor.shard_state(entry["shard"]))
            degraded = any(s["state"] != "closed" for s in shard_health)
            return 200, {
                "status": "degraded" if degraded else "ok",
                "wrappers": len(self.registry),
                "pending_documents": self.batcher.pending,
                "max_pending": self.batcher.max_pending,
                "shards": self.executor.n_shards if self.executor else 0,
                "transport": self.executor.mode if self.executor else "none",
                "shard_health": shard_health,
                "ring": (
                    self.supervisor.describe_ring()
                    if self.supervisor is not None
                    else {}
                ),
                "quarantined_documents": len(self.quarantine),
                "uptime_s": round(time.monotonic() - self._started, 3),
            }
        if path == "/metrics":
            if self.supervisor is not None:
                states = [b.state for b in self.supervisor.breakers]
                self.metrics.set_gauge(
                    "breakers_open", states.count("open") + states.count("half_open")
                )
                self.metrics.set_gauge(
                    "ring_generation", self.supervisor.ring.generation
                )
                self.metrics.set_gauge("ring_members", len(self.supervisor.ring))
            if self.executor is not None and hasattr(self.executor, "shard_state"):
                self.metrics.set_gauge(
                    "shards_connected",
                    sum(
                        1
                        for index in range(self.executor.n_shards)
                        if self.executor.shard_state(index).get("connected")
                    ),
                )
                self.metrics.set_gauge(
                    "reconnects_total",
                    sum(
                        self.executor.shard_state(index).get("reconnects_total", 0)
                        for index in range(self.executor.n_shards)
                    ),
                )
            self.metrics.set_gauge("quarantined_documents", len(self.quarantine))
            if "format=prometheus" in query.split("&"):
                # Text exposition; _respond switches to text/plain for
                # string payloads.
                return 200, self.metrics.prometheus()
            return 200, self.metrics.snapshot()
        if path == "/debug/traces":
            if self.tracer is None:
                return 404, {"error": "tracing is disabled"}
            return 200, {"traces": self.tracer.list()}
        if path.startswith("/debug/traces/"):
            if self.tracer is None:
                return 404, {"error": "tracing is disabled"}
            trace_id = path[len("/debug/traces/") :]
            record = self.tracer.get(trace_id)
            if record is None:
                return 404, {"error": f"trace {trace_id!r} not retained"}
            return 200, record
        if path == "/wrappers":
            return 200, {"wrappers": self.registry.list()}
        if path == "/quarantine":
            return 200, self.quarantine.describe()
        return 404, {"error": f"no such route {path!r}"}

    async def _dispatch_post(
        self, path: str, body: bytes, span: Optional[Span] = None
    ) -> Tuple[int, dict]:
        assert self.batcher is not None
        if self._stopping:
            return 503, {"error": "server is shutting down"}
        if path.startswith("/extract/"):
            ref = path[len("/extract/") :]
            data = self._json_body(body)
            html = data.get("html")
            if not isinstance(html, str):
                return 400, {"error": "body must be {'html': '<...>'}"}
            doc_id = data.get("doc_id")
            if doc_id is not None and not isinstance(doc_id, str):
                return 400, {"error": "'doc_id' must be a string"}
            try:
                entry = self.registry.resolve(ref)
            except ServeError as exc:
                return 404, {"error": str(exc)}
            self.metrics.incr("extract_requests")
            if span is not None:
                span.tag(wrapper=f"{entry.name}@{entry.version}")
            timeout = self.deadline_for(html)
            if doc_id:
                # Incremental warm path: the shard holding this doc_id's
                # previous snapshot re-derives only the changed region.
                payload = await self._with_retries(
                    lambda: self.batcher.submit_warm(
                        entry, html, doc_id, timeout=timeout, span=span
                    ),
                    span=span,
                )
            else:
                payload = await self._with_retries(
                    lambda: self.batcher.submit(
                        entry, html, timeout=timeout, span=span
                    ),
                    span=span,
                )
            return 200, {
                "wrapper": entry.name,
                "version": entry.version,
                "result": payload,
            }
        if path == "/batch":
            data = self._json_body(body)
            ref = data.get("wrapper")
            documents = data.get("documents")
            if not isinstance(ref, str) or not isinstance(documents, list) or not all(
                isinstance(doc, str) for doc in documents
            ):
                return 400, {
                    "error": "body must be {'wrapper': ref, 'documents': [html, ...]}"
                }
            try:
                entry = self.registry.resolve(ref)
            except ServeError as exc:
                return 404, {"error": str(exc)}
            self.metrics.incr("batch_requests")
            if span is not None:
                span.tag(wrapper=f"{entry.name}@{entry.version}")
            # Budget the whole batch like one linear pass; retries only
            # recompute the documents that failed (successes are cached).
            timeout = self.deadline_for(*documents)
            results = await self._with_retries(
                lambda: self.batcher.run_batch(
                    entry, documents, timeout=timeout, span=span
                ),
                span=span,
            )
            return 200, {
                "wrapper": entry.name,
                "version": entry.version,
                "results": results,
            }
        if path == "/wrappers":
            data = self._json_body(body)
            name = data.get("name")
            source = data.get("source")
            patterns = data.get("patterns")
            version = data.get("version")
            if not isinstance(name, str) or not isinstance(source, str):
                return 400, {"error": "registration needs 'name' and 'source'"}
            if patterns is not None and (
                not isinstance(patterns, list)
                or not all(isinstance(p, str) for p in patterns)
            ):
                return 400, {"error": "'patterns' must be a list of strings"}
            if version is not None and not isinstance(version, int):
                return 400, {"error": "'version' must be an integer"}
            # Compilation and persistence are CPU/disk work: run them off
            # the event loop so in-flight extractions never stall.
            entry = await asyncio.get_running_loop().run_in_executor(
                None,
                functools.partial(
                    self.registry.register,
                    name,
                    source,
                    kind=data.get("kind", "elog"),
                    patterns=patterns,
                    version=version,
                ),
            )
            self.metrics.incr("registrations")
            # Pre-install the fresh wrapper and report which shards
            # acked: operators learn immediately whether the cluster can
            # serve it (a dead daemon simply does not appear here -- its
            # install self-heals when it comes back).
            shards_acked: List[int] = []
            if self.executor is not None:
                with contextlib.suppress(Exception):
                    installs = self.executor.ensure_installed(
                        entry.cache_key, entry.wrapper
                    )
                    for install in installs:
                        with contextlib.suppress(Exception):
                            await asyncio.wait_for(
                                asyncio.wrap_future(install), self.deadline_base
                            )
                    shards_acked = self.executor.installed_on(entry.cache_key)
            return 201, dict(entry.describe(), shards_acked=shards_acked)
        if path == "/quarantine/release":
            data = self._json_body(body)
            doc_hash = data.get("hash")
            if not isinstance(doc_hash, str) or not doc_hash:
                return 400, {"error": "body must be {'hash': '<content hash>'}"}
            released = self.quarantine.release(doc_hash)
            return (200 if released else 404), {
                "hash": doc_hash,
                "released": released,
            }
        return 404, {"error": f"no such route {path!r}"}

    @staticmethod
    def _json_body(body: bytes) -> dict:
        if not body:
            return {}
        try:
            data = json.loads(body)
        except ValueError:
            raise ServeError("request body is not valid JSON") from None
        if not isinstance(data, dict):
            raise ServeError("request body must be a JSON object")
        return data


class ServerThread:
    """Run an :class:`ExtractionServer` on a dedicated event-loop thread.

    The embedding harness used by the test suite, the benchmark driver and
    any synchronous caller: ``start()`` blocks until the port is bound
    (propagating startup errors), ``stop()`` performs the server's
    graceful shutdown and joins the thread.
    """

    def __init__(self, server: ExtractionServer):
        self.server = server
        self._thread: Optional[threading.Thread] = None
        self._started = threading.Event()
        self._error: Optional[BaseException] = None
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._stop_event: Optional[asyncio.Event] = None

    def start(self) -> Tuple[str, int]:
        self._thread = threading.Thread(
            target=self._run, name="repro-serve", daemon=True
        )
        self._thread.start()
        if not self._started.wait(timeout=30):
            raise ServeError("server thread failed to start within 30s")
        if self._error is not None:
            raise ServeError(f"server failed to start: {self._error}")
        return self.server.host, self.server.port

    def stop(self) -> None:
        if self._thread is None:
            return
        if self._loop is not None and self._stop_event is not None:
            try:
                self._loop.call_soon_threadsafe(self._stop_event.set)
            except RuntimeError:  # loop already closed
                pass
        self._thread.join(timeout=30)
        self._thread = None

    def _run(self) -> None:
        asyncio.run(self._main())

    async def _main(self) -> None:
        self._loop = asyncio.get_running_loop()
        self._stop_event = asyncio.Event()
        try:
            await self.server.start()
        except Exception as exc:
            self._error = exc
            self._started.set()
            return
        self._started.set()
        await self._stop_event.wait()
        await self.server.stop()

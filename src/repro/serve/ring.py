"""Consistent-hash ring: shard membership with minimal-movement routing.

The flat ``hash % n_shards`` routing the executor started with has a
fatal cluster property: any membership change (a shard joins, a shard
dies, a daemon drains for deploy) remaps almost *every* key, so all the
per-shard affinity the serving stack depends on -- warm ``doc_id``
states, resident compiled wrappers, result locality -- is destroyed at
once.  A consistent-hash ring confines the damage to the keys that
actually lived on the changed shard: each node owns ``vnodes`` points on
a 64-bit circle, a key routes to the first point at or after its own
hash, and adding or removing one node moves only the key intervals
adjacent to that node's points (about ``1/n`` of the keyspace).

Everything is derived from SHA-256, so routing is deterministic across
processes, machines and Python versions -- a router can be restarted (or
run N-way redundant) and make the identical decisions.  A moved key is
therefore always *safe*: at worst it lands on a shard without its warm
state and takes one cold evaluation, never a wrong answer.

Examples
--------
>>> ring = HashRing(["a", "b", "c"], vnodes=8)
>>> ring.node_for("some-document-hash") in {"a", "b", "c"}
True
>>> before = {k: ring.node_for(k) for k in map(str, range(100))}
>>> _ = ring.remove("b")
>>> after = {k: ring.node_for(k) for k in map(str, range(100))}
>>> all(after[k] == before[k] for k in after if before[k] != "b")
True
>>> ring.generation
1
"""

from __future__ import annotations

import hashlib
from bisect import bisect_right
from typing import Dict, Hashable, Iterable, Iterator, List, Tuple


def _point(data: str) -> int:
    """A deterministic 64-bit position on the ring circle."""
    return int.from_bytes(hashlib.sha256(data.encode("utf-8")).digest()[:8], "big")


class HashRing:
    """A consistent-hash ring over hashable node ids.

    Parameters
    ----------
    nodes:
        Initial members (shard indices, addresses -- any hashable with a
        stable ``str()``).
    vnodes:
        Virtual nodes per member.  More vnodes -> better balance; at 64
        the max/ideal load ratio over random keys stays under 2x (see
        ``tests/test_ring.py``).

    Examples
    --------
    >>> ring = HashRing([0, 1], vnodes=4)
    >>> sorted(ring.members), len(ring), 0 in ring
    ([0, 1], 2, True)
    >>> ring.add(2); sorted(ring.members)
    True
    [0, 1, 2]
    >>> ring.add(2)          # already present: no-op, no generation bump
    False
    >>> ring.generation
    1
    """

    def __init__(self, nodes: Iterable[Hashable] = (), vnodes: int = 64):
        self.vnodes = max(1, int(vnodes))
        #: Monotonic membership-change counter (the "ring generation"
        #: reported by /healthz and /metrics).
        self.generation = 0
        self._members: Dict[Hashable, List[int]] = {}
        #: Sorted vnode points and the node owning each, kept aligned.
        self._points: List[int] = []
        self._owners: List[Hashable] = []
        for node in nodes:
            self._insert(node)

    # -- membership ---------------------------------------------------------

    def _node_points(self, node: Hashable) -> List[int]:
        return [_point(f"{node!s}#vn{i}") for i in range(self.vnodes)]

    def _insert(self, node: Hashable) -> bool:
        if node in self._members:
            return False
        points = self._node_points(node)
        self._members[node] = points
        for point in points:
            index = bisect_right(self._points, point)
            self._points.insert(index, point)
            self._owners.insert(index, node)
        return True

    def add(self, node: Hashable) -> bool:
        """Join ``node``; True (and a generation bump) if it was absent."""
        if self._insert(node):
            self.generation += 1
            return True
        return False

    def remove(self, node: Hashable) -> bool:
        """Leave ``node``; True (and a generation bump) if it was present."""
        points = self._members.pop(node, None)
        if points is None:
            return False
        keep = [
            (point, owner)
            for point, owner in zip(self._points, self._owners)
            if owner != node
        ]
        self._points = [point for point, _ in keep]
        self._owners = [owner for _, owner in keep]
        self.generation += 1
        return True

    @property
    def members(self) -> List[Hashable]:
        return list(self._members)

    def __contains__(self, node: Hashable) -> bool:
        return node in self._members

    def __len__(self) -> int:
        return len(self._members)

    # -- routing ------------------------------------------------------------

    def node_for(self, key: str) -> Hashable:
        """The member owning ``key`` (first vnode at/after its point).

        Raises :class:`LookupError` on an empty ring.
        """
        if not self._points:
            raise LookupError("consistent-hash ring has no members")
        index = bisect_right(self._points, _point(key))
        if index == len(self._points):
            index = 0
        return self._owners[index]

    def successors(self, key: str) -> Iterator[Hashable]:
        """Distinct members in ring order starting from ``key``'s point.

        The first yielded node is :meth:`node_for`; the rest are the
        fallback order a breaker-aware router walks when the owner is
        unhealthy -- deterministic, so every router agrees on the
        reroute target too.
        """
        count = len(self._points)
        if not count:
            return
        start = bisect_right(self._points, _point(key)) % count
        seen = set()
        for offset in range(count):
            owner = self._owners[(start + offset) % count]
            if owner not in seen:
                seen.add(owner)
                yield owner

    def describe(self) -> Dict:
        """JSON view for /healthz: members, generation, vnodes."""
        return {
            "members": sorted(self._members, key=str),
            "generation": self.generation,
            "vnodes": self.vnodes,
        }

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        return (
            f"HashRing({sorted(self._members, key=str)!r}, "
            f"vnodes={self.vnodes}, generation={self.generation})"
        )

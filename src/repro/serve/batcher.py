"""Micro-batching queue: coalesce concurrent requests into kernel batches.

Single-document requests arriving within a short window are queued per
wrapper and flushed together -- when the queue reaches ``max_batch`` or
when the oldest entry's deadline (``max_delay`` seconds) expires,
whichever comes first.  One flush turns into at most one
:class:`~repro.serve.executor.ShardExecutor` submission per shard, so
under concurrency the per-request process-pool round trip (pickling,
queue hand-off, wakeup) is amortized across the whole batch -- that is
where the measured >=2x over the naive one-request-one-submission path
comes from (``benchmarks/bench_serve.py``).

Two further document-level savings happen before anything is submitted:

* identical documents inside one batch are deduplicated by content hash
  and evaluated once;
* every document is first looked up in the shared
  :class:`~repro.serve.cache.ResultCache`; hits never leave the event
  loop.

Coalescing is *adaptive*: queueing only pays off when requests actually
overlap, and at concurrency 1 the ``max_delay`` wait is pure added
latency (the measured 0.26x-of-naive regression).  ``submit`` therefore
bypasses the queue and evaluates immediately whenever the observed
concurrency -- the number of documents already queued or in flight --
is below ``bypass_concurrency`` and no batch is forming for the same
wrapper.  Under load the pending count rises past the threshold within
one round trip and coalescing engages as before.

Backpressure is a bounded pending-document budget: when ``max_pending``
documents are queued or in flight, new work raises
:class:`~repro.errors.ServerOverloaded` (the HTTP layer maps it to 503).
The budget is released in ``finally`` blocks on every path, so a
crash-looping shard cannot leak the server into permanent 503s.

Fault tolerance (see also :mod:`repro.serve.supervisor`):

* every shard call is bounded by the request's ``timeout`` -- a call
  that exceeds it gets its worker **killed and respawned** and fails
  with the retryable :class:`~repro.errors.RequestTimeout`, so one hung
  evaluation can never wedge a coalesced batch;
* shard results are validated (one dict per page); corruption is
  treated as a crash;
* when a *multi-document* shard call crashes, the batch is **bisected**
  and the halves re-submitted, isolating the offending document(s):
  innocent batch-mates still succeed, and each single-document crash
  earns the document a quarantine strike
  (:class:`~repro.serve.supervisor.Quarantine`) -- quarantined hashes
  are rejected with :class:`~repro.errors.PoisonDocument` before any
  shard is risked again;
* failures are per *document*: one poison page in a coalesced flush
  fails only its own future;
* when a :class:`~repro.serve.supervisor.ShardSupervisor` is attached,
  submissions route around shards whose circuit breaker is open and
  every call outcome feeds the breakers.

The batcher must be used from a single asyncio event loop.
"""

from __future__ import annotations

import asyncio
from concurrent.futures import BrokenExecutor
from typing import Dict, List, Optional, Sequence, Set, Tuple, Union

from repro.errors import (
    PoisonDocument,
    RequestTimeout,
    RetryableServeError,
    ServeError,
    ServerOverloaded,
    ShardCrashed,
)
from repro.serve.cache import ResultCache
from repro.serve.executor import ShardExecutor, content_hash
from repro.serve.faults import (
    validate_shard_result,
    validate_traced_result,
    validate_warm_result,
)
from repro.serve.metrics import ServeMetrics
from repro.serve.registry import RegisteredWrapper
from repro.serve.supervisor import Quarantine, ShardSupervisor
from repro.serve.tracing import Span

#: A per-document evaluation outcome: the payload, or the error that
#: should reach exactly that document's waiter.
Outcome = Union[dict, BaseException]


class _Queue:
    """Per-wrapper pending micro-batch."""

    __slots__ = ("entry", "items", "timer")

    def __init__(self, entry: RegisteredWrapper):
        self.entry = entry
        #: ``(html, doc_hash, future, timeout, span, queue_span)`` tuples
        #: awaiting a flush; the span pair is ``(None, None)`` when the
        #: request is untraced.
        self.items: List[
            Tuple[
                str,
                str,
                asyncio.Future,
                Optional[float],
                Optional[Span],
                Optional[Span],
            ]
        ] = []
        self.timer: Optional[asyncio.TimerHandle] = None


class MicroBatcher:
    """Coalesces requests, dedupes documents, fronts the shard executor."""

    def __init__(
        self,
        executor: ShardExecutor,
        cache: ResultCache,
        metrics: ServeMetrics,
        max_batch: int = 16,
        max_delay: float = 0.010,
        max_pending: int = 256,
        bypass_concurrency: int = 1,
        quarantine: Optional[Quarantine] = None,
        supervisor: Optional[ShardSupervisor] = None,
    ):
        self._executor = executor
        self._cache = cache
        self._metrics = metrics
        self.max_batch = max_batch
        self.max_delay = max_delay
        self.max_pending = max_pending
        self.bypass_concurrency = bypass_concurrency
        self.quarantine = quarantine if quarantine is not None else Quarantine()
        self.supervisor = supervisor
        self._queues: Dict[str, _Queue] = {}
        self._pending = 0
        #: Unresolved futures of queued/in-flight coalesced requests, so
        #: drain() can fail them explicitly instead of abandoning them.
        self._inflight: Set[asyncio.Future] = set()

    async def _content_hashes(self, pages: Sequence[str]) -> List[str]:
        """Content hashes for a batch, off the event loop when large.

        sha256 over megabytes of HTML is real CPU time; beyond ~1MB total
        it moves to the default thread pool so concurrent requests,
        health checks and flush timers keep running.
        """
        if sum(len(page) for page in pages) <= 1_000_000:
            return [content_hash(page) for page in pages]
        return await asyncio.get_running_loop().run_in_executor(
            None, lambda: [content_hash(page) for page in pages]
        )

    @property
    def pending(self) -> int:
        """Documents currently queued or in flight."""
        return self._pending

    def _route(self, routing_hash: str) -> int:
        """The shard for one routing key (doc content hash or doc_id hash).

        With a supervisor attached this is consistent-hash ring routing
        over the healthy shards (membership change moves only the
        affected key intervals); without one it is the executor's flat
        home-shard mapping."""
        if self.supervisor is not None:
            return self.supervisor.route_hash(routing_hash)
        return self._executor.shard_for(routing_hash)

    # -- request entry points ------------------------------------------------

    async def submit(
        self,
        entry: RegisteredWrapper,
        html: str,
        timeout: Optional[float] = None,
        span: Optional[Span] = None,
    ) -> dict:
        """One document through the coalescing queue; returns its payload.

        ``timeout`` bounds each *shard call* this document participates
        in; a call that exceeds it kills the hung worker and fails with
        :class:`~repro.errors.RequestTimeout` (retryable upstream).
        ``span``, when given, is the request's root span: the batcher
        hangs ``batcher.queue`` / ``batch.flush`` / ``ring.route`` /
        ``shard.call`` children off it as the document moves through.
        """
        doc_hash = (await self._content_hashes([html]))[0]
        # Quarantine outranks the cache: a poisoned hash is rejected
        # before it can touch any shared machinery again.
        self.quarantine.check(doc_hash)
        hit = self._cache.get((entry.cache_key, doc_hash))
        if hit is not None:
            self._metrics.incr("cache_hits")
            return hit
        if self._pending >= self.max_pending:
            self._metrics.incr("rejected")
            raise ServerOverloaded(
                f"serving queue full ({self._pending}/{self.max_pending} documents)"
            )
        queue = self._queues.get(entry.cache_key)
        if self._pending < self.bypass_concurrency and (
            queue is None or not queue.items
        ):
            # Below the concurrency threshold coalescing cannot help (there
            # is nothing to coalesce with) and the flush delay is pure
            # latency: evaluate immediately on this task, skipping the
            # queue -- one document, one shard, one future.
            self._metrics.incr("bypassed")
            self._pending += 1
            try:
                outcome = (
                    await self._evaluate(
                        entry, [(html, doc_hash)], timeout, span=span
                    )
                )[0]
            finally:
                self._pending -= 1
            if isinstance(outcome, BaseException):
                raise outcome
            return outcome
        loop = asyncio.get_running_loop()
        if queue is None:
            queue = self._queues[entry.cache_key] = _Queue(entry)
        future: asyncio.Future = loop.create_future()
        self._inflight.add(future)
        future.add_done_callback(self._inflight.discard)
        queue_span = span.child("batcher.queue") if span is not None else None
        queue.items.append((html, doc_hash, future, timeout, span, queue_span))
        self._pending += 1
        if len(queue.items) >= self.max_batch:
            self._schedule_flush(entry.cache_key)
        elif queue.timer is None:
            queue.timer = loop.call_later(
                self.max_delay, self._schedule_flush, entry.cache_key
            )
        return await future

    async def submit_warm(
        self,
        entry: RegisteredWrapper,
        html: str,
        doc_id: str,
        timeout: Optional[float] = None,
        span: Optional[Span] = None,
    ) -> dict:
        """One document through the incremental warm path.

        ``doc_id`` names the document across versions (a URL, a crawl
        key); requests are routed by ``content_hash(doc_id)`` -- not by
        document content -- so every version of one document lands on
        the shard process holding its previous snapshot + derived masks.
        A state miss (first visit, evicted state, respawned worker) is
        simply a cold run on the shard, so the path is always correct;
        the exact-match result cache still short-circuits unchanged
        re-crawls before any shard is touched.  Warm requests bypass the
        coalescing queue: re-crawl traffic is per-document serial, and a
        coalesced batch would route by content instead of by ``doc_id``.
        """
        doc_hash = (await self._content_hashes([html]))[0]
        self.quarantine.check(doc_hash)
        hit = self._cache.get((entry.cache_key, doc_hash))
        if hit is not None:
            self._metrics.incr("cache_hits")
            return hit
        if self._pending >= self.max_pending:
            self._metrics.incr("rejected")
            raise ServerOverloaded(
                f"serving queue full ({self._pending}/{self.max_pending} documents)"
            )
        self._metrics.incr("cache_misses")
        self._pending += 1
        try:
            route_span = span.child("ring.route") if span is not None else None
            shard = self._route(content_hash(doc_id))
            if route_span is not None:
                route_span.tag(
                    shard=shard,
                    rerouted=bool(
                        self.supervisor is not None
                        and self.supervisor.last_route_rerouted
                    ),
                )
                route_span.finish()
            try:
                payload = await self._call_warm(
                    entry, shard, html, doc_id, timeout, span=span
                )
            except RetryableServeError as exc:
                if self.supervisor is not None:
                    self.supervisor.record_failure(shard)
                if isinstance(exc, ShardCrashed) and not exc.blameless:
                    if self.quarantine.strike(doc_hash):
                        self._metrics.incr("quarantined")
                    if span is not None:
                        span.tag(
                            quarantine_strikes=span.tags.get(
                                "quarantine_strikes", 0
                            )
                            + 1
                        )
                raise
            if self.supervisor is not None:
                self.supervisor.record_success(shard)
            self.quarantine.absolve(doc_hash)
            self._cache.put((entry.cache_key, doc_hash), payload, weight=len(html))
            self._metrics.incr("documents")
            return payload
        finally:
            self._pending -= 1

    async def _call_warm(
        self,
        entry: RegisteredWrapper,
        shard: int,
        html: str,
        doc_id: str,
        timeout: Optional[float],
        span: Optional[Span] = None,
    ) -> dict:
        """One bounded warm shard call (mirrors ``_call_once``).

        Validates the ``{"pages", "stats"}`` payload and feeds the reuse
        stats into the incremental metrics before returning the single
        page's output dict.  The ``shard.call`` span is tagged with the
        warm/engines/dirty reuse stats (warm calls carry no per-stage
        shard timings; the engines list still names the kernel used)."""
        call_span = (
            span.child("shard.call", shard=shard, pages=1, warm=True)
            if span is not None
            else None
        )
        try:
            try:
                try:
                    installs = self._executor.ensure_installed(
                        entry.cache_key, entry.wrapper, shard=shard
                    )
                    for install in installs:
                        await asyncio.wait_for(
                            asyncio.wrap_future(install), timeout
                        )
                    submission = self._executor.submit_warm(
                        shard, entry.cache_key, [(html, doc_id)]
                    )
                except ShardCrashed as exc:
                    exc.blameless = True
                    raise
                except BrokenExecutor:
                    crash = ShardCrashed(
                        "shard worker died before this batch was submitted; "
                        "shard respawned, retry the request"
                    )
                    crash.blameless = True
                    raise crash from None
                result = await asyncio.wait_for(
                    asyncio.wrap_future(submission), timeout
                )
            except asyncio.TimeoutError:
                self._metrics.incr("timeouts")
                self._executor.kill_shard(shard)
                raise RequestTimeout(
                    f"shard call exceeded its {timeout:.3f}s budget; "
                    "worker killed and respawned, retry the request"
                ) from None
            except BrokenExecutor:
                raise ShardCrashed(
                    "shard worker died under this request; "
                    "shard respawned, retry the request"
                ) from None
            pages, stats = validate_warm_result(result, 1)
        except BaseException as exc:
            if call_span is not None:
                call_span.fail(f"{type(exc).__name__}: {exc}")
            raise
        for stat in stats:
            if stat.get("warm"):
                self._metrics.incr("incremental_hits")
                fraction = stat.get("dirty_fraction")
                if fraction is not None:
                    self._metrics.observe_dirty(fraction)
            else:
                self._metrics.incr("incremental_misses")
        if call_span is not None:
            stat = stats[0]
            call_span.tag(
                warm=bool(stat.get("warm")),
                engines=stat.get("engines"),
                dirty_fraction=stat.get("dirty_fraction"),
            )
            call_span.finish()
        return pages[0]

    async def run_batch(
        self,
        entry: RegisteredWrapper,
        pages: Sequence[str],
        timeout: Optional[float] = None,
        span: Optional[Span] = None,
    ) -> List[dict]:
        """An already-batched request (``POST /batch``): no coalescing
        wait, but the same cache, dedup, sharding and backpressure.

        All-or-nothing: if any document fails after isolation, the worst
        error propagates (retryable errors first, so an upstream retry
        can still complete the batch -- successes are already cached)."""
        if not pages:
            return []
        if len(pages) > self.max_pending:
            # Never satisfiable at this size: a client error, not load.
            raise ServeError(
                f"batch of {len(pages)} documents exceeds the server's "
                f"pending budget of {self.max_pending}; split the batch"
            )
        if self._pending + len(pages) > self.max_pending:
            self._metrics.incr("rejected")
            raise ServerOverloaded(
                f"serving queue full ({self._pending}+{len(pages)}"
                f"/{self.max_pending} documents)"
            )
        self._pending += len(pages)
        try:
            hashes = await self._content_hashes(pages)
            outcomes = await self._evaluate(
                entry, list(zip(pages, hashes)), timeout, span=span
            )
        finally:
            self._pending -= len(pages)
        failure: Optional[BaseException] = None
        for outcome in outcomes:
            if isinstance(outcome, BaseException):
                if isinstance(outcome, RetryableServeError):
                    raise outcome
                failure = failure or outcome
        if failure is not None:
            raise failure
        return outcomes  # type: ignore[return-value]

    async def drain(self, timeout: float = 30.0) -> None:
        """Flush every pending queue and wait for the results (shutdown).

        Bounded: after ``timeout`` seconds, requests that still have not
        resolved are *failed explicitly* (each waiter gets a
        :class:`~repro.errors.ShardCrashed` -- retryable against the
        replacement server) and counted in the ``drain_abandoned``
        metric, rather than being silently dropped with the event loop.
        """
        flushes = [
            self._flush(key) for key in list(self._queues) if self._queues[key].items
        ]
        if flushes:
            await asyncio.gather(*flushes, return_exceptions=True)
        deadline = asyncio.get_running_loop().time() + timeout
        while self._pending and asyncio.get_running_loop().time() < deadline:
            await asyncio.sleep(0.005)
        if self._pending:
            abandoned = [f for f in list(self._inflight) if not f.done()]
            for future in abandoned:
                future.set_exception(
                    ShardCrashed(
                        "server shut down before this request completed; "
                        "retry against the replacement"
                    )
                )
            if abandoned:
                self._metrics.incr("drain_abandoned", len(abandoned))

    # -- internals -----------------------------------------------------------

    def _schedule_flush(self, key: str) -> None:
        queue = self._queues.get(key)
        if queue is None or not queue.items:
            return
        if queue.timer is not None:
            queue.timer.cancel()
            queue.timer = None
        asyncio.ensure_future(self._flush(key))

    async def _flush(self, key: str) -> None:
        queue = self._queues.pop(key, None)
        if queue is None or not queue.items:
            return
        if queue.timer is not None:
            queue.timer.cancel()
            queue.timer = None
        items = queue.items
        # One shard call serves the whole batch: bound it by the most
        # generous member budget; stricter per-request deadlines are
        # enforced upstream by the server's retry loop.
        timeouts = [timeout for _, _, _, timeout, _, _ in items]
        timeout = None if any(t is None for t in timeouts) else max(timeouts)
        self._metrics.observe_batch(len(items))
        # One shared ``batch.flush`` span object, attached into *every*
        # traced member's tree: each trace shows the same flush (same
        # timings, same batch size) its request rode in.
        flush_span: Optional[Span] = None
        for _, _, _, _, span, queue_span in items:
            if queue_span is not None:
                queue_span.finish()
            if span is not None:
                if flush_span is None:
                    flush_span = Span("batch.flush", clock=span.clock)
                    flush_span.tag(batch_size=len(items))
                span.attach(flush_span)
        try:
            outcomes = await self._evaluate(
                queue.entry,
                [(html, doc_hash) for html, doc_hash, _, _, _, _ in items],
                timeout,
                span=flush_span,
            )
            for (_, _, future, _, _, _), outcome in zip(items, outcomes):
                if future.done():
                    continue
                if isinstance(outcome, BaseException):
                    future.set_exception(outcome)
                else:
                    future.set_result(outcome)
        except Exception as exc:  # defensive: propagate to every waiter
            for _, _, future, _, _, _ in items:
                if not future.done():
                    future.set_exception(exc)
        finally:
            if flush_span is not None:
                flush_span.finish()
            self._pending -= len(items)

    async def _evaluate(
        self,
        entry: RegisteredWrapper,
        docs: Sequence[Tuple[str, str]],
        timeout: Optional[float] = None,
        span: Optional[Span] = None,
    ) -> List[Outcome]:
        """Resolve ``(html, hash)`` docs to per-document outcomes, via the
        cache, with in-batch dedup and one submission per healthy shard.

        ``span`` is the parent for ``ring.route`` / ``shard.call``
        children: the request's root span on the bypass path, the shared
        ``batch.flush`` span for a coalesced flush."""
        results: List[Optional[Outcome]] = [None] * len(docs)
        misses: Dict[str, List[int]] = {}
        for index, (_, doc_hash) in enumerate(docs):
            if self.quarantine.is_quarantined(doc_hash):
                self._metrics.incr("poison_rejected")
                results[index] = PoisonDocument(
                    f"document {doc_hash[:12]} is quarantined; "
                    "POST /quarantine/release to retry it"
                )
                continue
            hit = self._cache.get((entry.cache_key, doc_hash))
            if hit is not None:
                self._metrics.incr("cache_hits")
                results[index] = hit
            else:
                misses.setdefault(doc_hash, []).append(index)
        if misses:
            # Per *document*, like cache_hits, so hits + misses adds up
            # to documents and /metrics hit rates are meaningful.
            self._metrics.incr(
                "cache_misses", sum(len(indexes) for indexes in misses.values())
            )
            route_span = span.child("ring.route") if span is not None else None
            by_shard: Dict[int, List[str]] = {}
            rerouted = 0
            for doc_hash in misses:
                by_shard.setdefault(self._route(doc_hash), []).append(doc_hash)
                if (
                    self.supervisor is not None
                    and self.supervisor.last_route_rerouted
                ):
                    rerouted += 1
            if route_span is not None:
                route_span.tag(shards=sorted(by_shard), rerouted=rerouted)
                route_span.finish()
            pages_by_hash = {h: docs[indexes[0]][0] for h, indexes in misses.items()}
            groups = await asyncio.gather(
                *(
                    self._call_group(
                        entry, shard, hashes, pages_by_hash, timeout, span=span
                    )
                    for shard, hashes in by_shard.items()
                )
            )
            for group in groups:
                for doc_hash, outcome in group.items():
                    if not isinstance(outcome, BaseException):
                        self._cache.put(
                            (entry.cache_key, doc_hash),
                            outcome,
                            weight=len(pages_by_hash[doc_hash]),
                        )
                    for index in misses[doc_hash]:
                        results[index] = outcome
        self._metrics.incr("documents", len(docs))
        return results  # type: ignore[return-value]

    async def _call_group(
        self,
        entry: RegisteredWrapper,
        shard: int,
        hashes: List[str],
        pages_by_hash: Dict[str, str],
        timeout: Optional[float],
        span: Optional[Span] = None,
    ) -> Dict[str, Outcome]:
        """One shard sub-batch, with crash bisection.

        Returns an outcome per content hash.  On a crash/timeout of a
        multi-document call the batch is split and both halves re-run
        (the shard has respawned in between; ``_call_once`` re-installs
        the wrapper), so only genuinely poisonous documents keep
        failing.  A single-document crash earns a quarantine strike.
        Each attempt (including bisection halves) opens its own
        ``shard.call`` child span, so retries are visible per trace."""
        pages = [pages_by_hash[h] for h in hashes]
        try:
            payloads = await self._call_once(
                entry, shard, pages, timeout, span=span
            )
        except RetryableServeError as exc:
            if self.supervisor is not None:
                self.supervisor.record_failure(shard)
            if len(hashes) == 1:
                # Strike only when the crash is attributable to this
                # document: the worker died *while evaluating it*.
                # Blameless crashes (install failures, a pool broken by
                # an earlier request, wrapper-not-resident) and plain
                # timeouts never quarantine.
                if isinstance(exc, ShardCrashed) and not exc.blameless:
                    if self.quarantine.strike(hashes[0]):
                        self._metrics.incr("quarantined")
                    if span is not None:
                        span.tag(
                            quarantine_strikes=span.tags.get(
                                "quarantine_strikes", 0
                            )
                            + 1
                        )
                return {hashes[0]: exc}
            self._metrics.incr("bisections")
            mid = len(hashes) // 2
            left = await self._call_group(
                entry, shard, hashes[:mid], pages_by_hash, timeout, span=span
            )
            right = await self._call_group(
                entry, shard, hashes[mid:], pages_by_hash, timeout, span=span
            )
            left.update(right)
            return left
        if self.supervisor is not None:
            self.supervisor.record_success(shard)
        outcomes: Dict[str, Outcome] = {}
        for doc_hash, payload in zip(hashes, payloads):
            self.quarantine.absolve(doc_hash)
            outcomes[doc_hash] = payload
        return outcomes

    async def _call_once(
        self,
        entry: RegisteredWrapper,
        shard: int,
        pages: List[str],
        timeout: Optional[float],
        span: Optional[Span] = None,
    ) -> List[dict]:
        """One bounded shard call: install if needed, submit, validate.

        Maps worker death to :class:`~repro.errors.ShardCrashed` and a
        deadline overrun to a worker kill + respawn +
        :class:`~repro.errors.RequestTimeout`.  Failures in the install
        phase -- before the pages ever reach a worker -- are marked
        ``blameless`` so an innocent document retrying into a pool that
        an *earlier* crash broke does not accumulate quarantine strikes.

        With ``span`` set the submission goes through ``submit_traced``:
        the shard ships per-page kernel stats back and they are grafted
        into the ``shard.call`` child span as ``snapshot.build`` /
        ``kernel.run`` spans.  An executor without ``submit_traced`` (or
        a remote daemon that ignores the trace frame field) degrades to
        a transport-only span tagged ``degraded``."""
        call_span = (
            span.child("shard.call", shard=shard, pages=len(pages))
            if span is not None
            else None
        )
        submit_traced = (
            getattr(self._executor, "submit_traced", None)
            if call_span is not None
            else None
        )
        try:
            try:
                try:
                    installs = self._executor.ensure_installed(
                        entry.cache_key, entry.wrapper, shard=shard
                    )
                    for install in installs:
                        await asyncio.wait_for(
                            asyncio.wrap_future(install), timeout
                        )
                    if submit_traced is not None:
                        submission = submit_traced(
                            shard,
                            entry.cache_key,
                            pages,
                            trace={"trace_id": span.tags.get("trace_id")},
                        )
                    else:
                        submission = self._executor.submit(
                            shard, entry.cache_key, pages
                        )
                except ShardCrashed as exc:
                    exc.blameless = True
                    raise
                except BrokenExecutor:
                    crash = ShardCrashed(
                        "shard worker died before this batch was submitted; "
                        "shard respawned, retry the request"
                    )
                    crash.blameless = True
                    raise crash from None
                result = await asyncio.wait_for(
                    asyncio.wrap_future(submission), timeout
                )
            except asyncio.TimeoutError:
                self._metrics.incr("timeouts")
                # The worker is wedged (or just too slow for this budget):
                # kill it so the rest of its queue is not stuck behind it.
                self._executor.kill_shard(shard)
                raise RequestTimeout(
                    f"shard call exceeded its {timeout:.3f}s budget; "
                    "worker killed and respawned, retry the request"
                ) from None
            except BrokenExecutor:
                raise ShardCrashed(
                    "shard worker died under this request; "
                    "shard respawned, retry the request"
                ) from None
            if submit_traced is not None:
                payloads, kernel = validate_traced_result(result, len(pages))
            else:
                payloads, kernel = validate_shard_result(result, len(pages)), None
        except BaseException as exc:
            if call_span is not None:
                call_span.fail(f"{type(exc).__name__}: {exc}")
            raise
        if call_span is not None:
            if kernel is not None:
                for trace in kernel:
                    call_span.graft_kernel_stats(trace)
            elif submit_traced is not None:
                # The responder answered the untraced shape: an old
                # daemon that ignored the trace frame field.
                call_span.tag(degraded="untraced_shard")
            call_span.finish()
        return payloads

"""Micro-batching queue: coalesce concurrent requests into kernel batches.

Single-document requests arriving within a short window are queued per
wrapper and flushed together -- when the queue reaches ``max_batch`` or
when the oldest entry's deadline (``max_delay`` seconds) expires,
whichever comes first.  One flush turns into at most one
:class:`~repro.serve.executor.ShardExecutor` submission per shard, so
under concurrency the per-request process-pool round trip (pickling,
queue hand-off, wakeup) is amortized across the whole batch -- that is
where the measured >=2x over the naive one-request-one-submission path
comes from (``benchmarks/bench_serve.py``).

Two further document-level savings happen before anything is submitted:

* identical documents inside one batch are deduplicated by content hash
  and evaluated once;
* every document is first looked up in the shared
  :class:`~repro.serve.cache.ResultCache`; hits never leave the event
  loop.

Coalescing is *adaptive*: queueing only pays off when requests actually
overlap, and at concurrency 1 the ``max_delay`` wait is pure added
latency (the measured 0.26x-of-naive regression).  ``submit`` therefore
bypasses the queue and evaluates immediately whenever the observed
concurrency -- the number of documents already queued or in flight --
is below ``bypass_concurrency`` and no batch is forming for the same
wrapper.  Under load the pending count rises past the threshold within
one round trip and coalescing engages as before.

Backpressure is a bounded pending-document budget: when ``max_pending``
documents are queued or in flight, new work raises
:class:`~repro.errors.ServerOverloaded` (the HTTP layer maps it to 503).

The batcher must be used from a single asyncio event loop.
"""

from __future__ import annotations

import asyncio
from typing import Dict, List, Optional, Sequence, Tuple

from repro.errors import ServeError, ServerOverloaded
from repro.serve.cache import ResultCache
from repro.serve.executor import ShardExecutor, content_hash
from repro.serve.metrics import ServeMetrics
from repro.serve.registry import RegisteredWrapper


class _Queue:
    """Per-wrapper pending micro-batch."""

    __slots__ = ("entry", "items", "timer")

    def __init__(self, entry: RegisteredWrapper):
        self.entry = entry
        #: ``(html, doc_hash, future)`` triples awaiting a flush.
        self.items: List[Tuple[str, str, asyncio.Future]] = []
        self.timer: Optional[asyncio.TimerHandle] = None


class MicroBatcher:
    """Coalesces requests, dedupes documents, fronts the shard executor."""

    def __init__(
        self,
        executor: ShardExecutor,
        cache: ResultCache,
        metrics: ServeMetrics,
        max_batch: int = 16,
        max_delay: float = 0.010,
        max_pending: int = 256,
        bypass_concurrency: int = 1,
    ):
        self._executor = executor
        self._cache = cache
        self._metrics = metrics
        self.max_batch = max_batch
        self.max_delay = max_delay
        self.max_pending = max_pending
        self.bypass_concurrency = bypass_concurrency
        self._queues: Dict[str, _Queue] = {}
        self._pending = 0

    async def _content_hashes(self, pages: Sequence[str]) -> List[str]:
        """Content hashes for a batch, off the event loop when large.

        sha256 over megabytes of HTML is real CPU time; beyond ~1MB total
        it moves to the default thread pool so concurrent requests,
        health checks and flush timers keep running.
        """
        if sum(len(page) for page in pages) <= 1_000_000:
            return [content_hash(page) for page in pages]
        return await asyncio.get_running_loop().run_in_executor(
            None, lambda: [content_hash(page) for page in pages]
        )

    @property
    def pending(self) -> int:
        """Documents currently queued or in flight."""
        return self._pending

    # -- request entry points ------------------------------------------------

    async def submit(self, entry: RegisteredWrapper, html: str) -> dict:
        """One document through the coalescing queue; returns its payload."""
        doc_hash = (await self._content_hashes([html]))[0]
        hit = self._cache.get((entry.cache_key, doc_hash))
        if hit is not None:
            self._metrics.incr("cache_hits")
            return hit
        if self._pending >= self.max_pending:
            self._metrics.incr("rejected")
            raise ServerOverloaded(
                f"serving queue full ({self._pending}/{self.max_pending} documents)"
            )
        queue = self._queues.get(entry.cache_key)
        if self._pending < self.bypass_concurrency and (
            queue is None or not queue.items
        ):
            # Below the concurrency threshold coalescing cannot help (there
            # is nothing to coalesce with) and the flush delay is pure
            # latency: submit immediately on this task, skipping the batch
            # assembly machinery -- one document, one shard, one future.
            self._metrics.incr("bypassed")
            self._metrics.incr("cache_misses")
            self._pending += 1
            try:
                installs = self._executor.ensure_installed(
                    entry.cache_key, entry.wrapper
                )
                for install in installs:
                    await asyncio.wrap_future(install)
                shard = self._executor.shard_for(doc_hash)
                submission = self._executor.submit(shard, entry.cache_key, [html])
                payload = (await asyncio.wrap_future(submission))[0]
            finally:
                self._pending -= 1
            self._cache.put(
                (entry.cache_key, doc_hash), payload, weight=len(html)
            )
            self._metrics.incr("documents")
            return payload
        loop = asyncio.get_running_loop()
        if queue is None:
            queue = self._queues[entry.cache_key] = _Queue(entry)
        future: asyncio.Future = loop.create_future()
        queue.items.append((html, doc_hash, future))
        self._pending += 1
        if len(queue.items) >= self.max_batch:
            self._schedule_flush(entry.cache_key)
        elif queue.timer is None:
            queue.timer = loop.call_later(
                self.max_delay, self._schedule_flush, entry.cache_key
            )
        return await future

    async def run_batch(
        self, entry: RegisteredWrapper, pages: Sequence[str]
    ) -> List[dict]:
        """An already-batched request (``POST /batch``): no coalescing
        wait, but the same cache, dedup, sharding and backpressure."""
        if not pages:
            return []
        if len(pages) > self.max_pending:
            # Never satisfiable at this size: a client error, not load.
            raise ServeError(
                f"batch of {len(pages)} documents exceeds the server's "
                f"pending budget of {self.max_pending}; split the batch"
            )
        if self._pending + len(pages) > self.max_pending:
            self._metrics.incr("rejected")
            raise ServerOverloaded(
                f"serving queue full ({self._pending}+{len(pages)}"
                f"/{self.max_pending} documents)"
            )
        self._pending += len(pages)
        try:
            hashes = await self._content_hashes(pages)
            return await self._evaluate(entry, list(zip(pages, hashes)))
        finally:
            self._pending -= len(pages)

    async def drain(self, timeout: float = 30.0) -> None:
        """Flush every pending queue and wait for the results (shutdown).

        Bounded: gives up after ``timeout`` seconds so shutdown can never
        hang on work that refuses to finish.
        """
        flushes = [
            self._flush(key) for key in list(self._queues) if self._queues[key].items
        ]
        if flushes:
            await asyncio.gather(*flushes, return_exceptions=True)
        deadline = asyncio.get_running_loop().time() + timeout
        while self._pending and asyncio.get_running_loop().time() < deadline:
            await asyncio.sleep(0.005)

    # -- internals -----------------------------------------------------------

    def _schedule_flush(self, key: str) -> None:
        queue = self._queues.get(key)
        if queue is None or not queue.items:
            return
        if queue.timer is not None:
            queue.timer.cancel()
            queue.timer = None
        asyncio.ensure_future(self._flush(key))

    async def _flush(self, key: str) -> None:
        queue = self._queues.pop(key, None)
        if queue is None or not queue.items:
            return
        if queue.timer is not None:
            queue.timer.cancel()
            queue.timer = None
        items = queue.items
        self._metrics.observe_batch(len(items))
        try:
            payloads = await self._evaluate(
                queue.entry, [(html, doc_hash) for html, doc_hash, _ in items]
            )
            for (_, _, future), payload in zip(items, payloads):
                if not future.done():
                    future.set_result(payload)
        except Exception as exc:  # propagate to every waiter
            for _, _, future in items:
                if not future.done():
                    future.set_exception(exc)
        finally:
            self._pending -= len(items)

    async def _evaluate(
        self, entry: RegisteredWrapper, docs: Sequence[Tuple[str, str]]
    ) -> List[dict]:
        """Resolve a batch of ``(html, hash)`` docs to payloads, via the
        cache, with in-batch dedup and one submission per shard."""
        results: List[Optional[dict]] = [None] * len(docs)
        misses: Dict[str, List[int]] = {}
        for index, (_, doc_hash) in enumerate(docs):
            hit = self._cache.get((entry.cache_key, doc_hash))
            if hit is not None:
                self._metrics.incr("cache_hits")
                results[index] = hit
            else:
                misses.setdefault(doc_hash, []).append(index)
        if misses:
            # Per *document*, like cache_hits, so hits + misses adds up
            # to documents and /metrics hit rates are meaningful.
            self._metrics.incr(
                "cache_misses", sum(len(indexes) for indexes in misses.values())
            )
            installs = self._executor.ensure_installed(entry.cache_key, entry.wrapper)
            for install in installs:
                await asyncio.wrap_future(install)
            by_shard: Dict[int, List[str]] = {}
            for doc_hash in misses:
                shard = self._executor.shard_for(doc_hash)
                by_shard.setdefault(shard, []).append(doc_hash)
            submissions = []
            for shard, hashes in by_shard.items():
                pages = [docs[misses[h][0]][0] for h in hashes]
                future = self._executor.submit(shard, entry.cache_key, pages)
                submissions.append((hashes, asyncio.wrap_future(future)))
            # Gather so one failing shard neither discards the others'
            # finished work nor leaves unretrieved futures behind.
            outcomes = await asyncio.gather(
                *(future for _, future in submissions), return_exceptions=True
            )
            failure: Optional[BaseException] = None
            for (hashes, _), outcome in zip(submissions, outcomes):
                if isinstance(outcome, BaseException):
                    failure = failure or outcome
                    continue
                for doc_hash, payload in zip(hashes, outcome):
                    self._cache.put(
                        (entry.cache_key, doc_hash),
                        payload,
                        weight=len(docs[misses[doc_hash][0]][0]),
                    )
                    for index in misses[doc_hash]:
                        results[index] = payload
            if failure is not None:
                raise failure
        self._metrics.incr("documents", len(docs))
        return results  # type: ignore[return-value]

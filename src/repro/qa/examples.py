"""Concrete query automata from the paper, plus SQAu specimens.

* :func:`even_a_qa` -- Example 4.9: the ranked query automaton selecting
  roots of subtrees with an even number of ``a``-labeled nodes (binary
  trees);
* :func:`a_beta_qa` -- Example 4.21: the family ``A_beta`` whose runs on
  complete binary trees take ``Theta(n * ((n+1)/2)^alpha)`` steps;
* :func:`even_a_sqau` -- an SQAu computing the Example 3.2 query on
  *unranked* trees (up-languages given by parity NFAs), used to cross-check
  SQAu runs against the datalog program and the MSO pipeline;
* :func:`even_position_sqau` -- an SQAu whose stay transition (a 2DFA with
  selection) marks every node at an even sibling position.
"""

from __future__ import annotations

from typing import Dict, Sequence, Set, Tuple

from repro.automata.nfa import NFA
from repro.automata.twodfa import RIGHT, TwoDFA
from repro.qa.ranked import RankedQA
from repro.qa.unranked import StrongUnrankedQA


def even_a_qa(labels: Sequence[str] = ("a",)) -> RankedQA:
    """Example 4.9: even-``a`` subtree roots on full binary trees.

    States ``down`` (descending), ``s0`` / ``s1`` (parity of ``a``-labeled
    nodes strictly below the current node).  Selection: ``(s0, l)`` for
    ``l != a`` and ``(s1, a)``.
    """
    labels = tuple(labels)
    states = {"down", "s0", "s1"}
    down_pairs = {("down", l) for l in labels}
    up_pairs = {(s, l) for s in ("s0", "s1") for l in labels}

    down = {("down", l, 2): ("down", "down") for l in labels}
    leaf = {("down", l): "s0" for l in labels}
    up: Dict[Tuple, str] = {}
    for i in range(2):
        for j in range(2):
            for l1 in labels:
                for l2 in labels:
                    parity = (i + j + (l1 == "a") + (l2 == "a")) % 2
                    up[((f"s{i}", l1), (f"s{j}", l2))] = f"s{parity}"
    selection = {("s0", l) for l in labels if l != "a"} | {("s1", "a")}
    return RankedQA(
        states=states,
        labels=set(labels),
        final={"s0", "s1"},
        start="down",
        up=up,
        down=down,
        root={},
        leaf=leaf,
        selection=selection,
        up_pairs=up_pairs,
        down_pairs=down_pairs,
    )


def a_beta_qa(alpha: int) -> RankedQA:
    """Example 4.21: the automaton ``A_beta`` with ``beta = 2^alpha``.

    On a complete binary ``a``-tree each node at depth ``d`` is visited
    ``Theta(beta^d)`` times, so runs take superpolynomially many steps,
    while the datalog simulation of Theorem 4.11 stays linear in the tree.
    """
    if alpha < 1:
        raise ValueError("alpha must be >= 1")
    beta = 2 ** alpha
    states = {("q", i, j) for i in range(1, beta + 2) for j in range(1, beta + 2)}
    down_pairs = {
        (("q", i, j), "a")
        for i in range(1, beta + 2)
        for j in range(1, beta + 1)
    }
    up_pairs = {(("q", i, beta + 1), "a") for i in range(1, beta + 2)}

    down = {
        (("q", i, j), "a", 2): (("q", i, 1), ("q", j, 1))
        for i in range(1, beta + 2)
        for j in range(1, beta + 1)
    }
    leaf = {(("q", i, 1), "a"): ("q", i, beta + 1) for i in range(1, beta + 2)}
    up = {
        (
            (("q", i, beta + 1), "a"),
            (("q", j, beta + 1), "a"),
        ): ("q", i, j + 1)
        for i in range(1, beta + 2)
        for j in range(1, beta + 1)
    }
    final = {("q", 1, beta + 1)}
    return RankedQA(
        states=states,
        labels={"a"},
        final=final,
        start=("q", 1, 1),
        up=up,
        down=down,
        root={},
        leaf=leaf,
        selection={(("q", 1, beta + 1), "a")},
        up_pairs=up_pairs,
        down_pairs=down_pairs,
    )


def _parity_nfa(labels: Sequence[str], accept_parity: int) -> NFA:
    """NFA over pairs ``((p_i, l))`` accepting words whose total weight
    ``sum(i + [l == 'a'])`` has the given parity."""
    alphabet = {(f"p{i}", l) for i in range(2) for l in labels}
    transitions: Dict[Tuple[int, Tuple[str, str]], Set[int]] = {}
    for s in range(2):
        for i in range(2):
            for l in labels:
                weight = (i + (l == "a")) % 2
                transitions[(s, (f"p{i}", l))] = {(s + weight) % 2}
    return NFA(2, alphabet, transitions, {}, {0}, {accept_parity})


def even_a_sqau(labels: Sequence[str] = ("a", "b")) -> StrongUnrankedQA:
    """An SQAu computing Example 3.2's even-``a`` query on unranked trees.

    State ``p_i`` = parity of ``a``-labeled nodes strictly below the node;
    the up-language of ``p_i`` is the parity-``i`` word language over
    children pairs (a 2-state NFA); selection mirrors Example 4.9.
    """
    labels = tuple(labels)
    states = {"down", "p0", "p1"}
    down_pairs = {("down", l) for l in labels}
    up_pairs = {(f"p{i}", l) for i in range(2) for l in labels}
    down = {
        ("down", l): [((), ("down",), ())] for l in labels
    }
    leaf = {("down", l): "p0" for l in labels}
    up = {"p0": _parity_nfa(labels, 0), "p1": _parity_nfa(labels, 1)}
    selection = {("p0", l) for l in labels if l != "a"} | {("p1", "a")}
    return StrongUnrankedQA(
        states=states,
        labels=set(labels),
        final={"p0", "p1"},
        start="down",
        down=down,
        up=up,
        root={},
        leaf=leaf,
        selection=selection,
        up_pairs=up_pairs,
        down_pairs=down_pairs,
    )


def _pairs_plus_nfa(state: str, labels: Sequence[str]) -> NFA:
    """NFA accepting nonempty words of pairs whose state component is
    ``state`` (any label)."""
    alphabet = {(state, l) for l in labels}
    transitions: Dict[Tuple[int, Tuple[str, str]], Set[int]] = {}
    for l in labels:
        transitions[(0, (state, l))] = {1}
        transitions[(1, (state, l))] = {1}
    return NFA(2, alphabet, transitions, {}, {0}, {1})


def even_position_sqau(labels: Sequence[str] = ("a", "b")) -> StrongUnrankedQA:
    """An SQAu selecting every node at an even (2nd, 4th, ...) sibling
    position, computed through a stay transition.

    Children are first assigned the scan state; the stay 2DFA walks the
    sibling word left to right, alternating the selected states ``odd`` /
    ``even``; subtrees then continue downward, and completed groups move up
    through the ``done`` up-language.
    """
    labels = tuple(labels)
    states = {"down", "scan", "odd", "even", "done"}
    down_pairs = {(s, l) for s in ("down", "odd", "even") for l in labels}
    up_pairs = {(s, l) for s in ("scan", "done") for l in labels}

    down = {
        (s, l): [((), ("scan",), ())]
        for s in ("down", "odd", "even")
        for l in labels
    }
    leaf = {(s, l): "done" for s in ("down", "odd", "even") for l in labels}
    up = {"done": _pairs_plus_nfa("done", labels)}

    stay_gate = _pairs_plus_nfa("scan", labels)
    stay_transitions = {}
    stay_selection = {}
    for l in labels:
        stay_transitions[("o", ("scan", l))] = ("e", RIGHT)
        stay_transitions[("e", ("scan", l))] = ("o", RIGHT)
        stay_selection[("o", ("scan", l))] = "odd"
        stay_selection[("e", ("scan", l))] = "even"
    stay = TwoDFA({"o", "e"}, "o", stay_transitions, {"o", "e"}, stay_selection)

    selection = {("even", l) for l in labels}
    return StrongUnrankedQA(
        states=states,
        labels=set(labels),
        final={"done"},
        start="down",
        down=down,
        up=up,
        root={},
        leaf=leaf,
        selection=selection,
        up_pairs=up_pairs,
        down_pairs=down_pairs,
        stay_gate=stay_gate,
        stay=stay,
    )

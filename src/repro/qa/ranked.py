"""Ranked query automata (Definition 4.8).

A ranked query automaton is a two-way deterministic ranked tree automaton
with a selection function.  It walks a tree through *configurations*: maps
from a *cut* (an antichain meeting every root-to-leaf path) to states.
Four transition kinds move the cut:

* **down**  -- replace a node by its children (``(q, a) in D``);
* **up**    -- replace all children of a node by the node
  (``(q_i, a_i) in U`` for every child);
* **root**  -- rewrite the root's state when the cut is ``{root}``;
* **leaf**  -- rewrite a leaf's state (``(q, a) in D``).

The ``U``/``D`` partition of ``Q x Sigma`` makes at most one transition
applicable per node, so the run is deterministic up to irrelevant
interleaving.  The automaton *selects* node ``n`` whenever some
configuration of an accepting run assigns ``n`` a state ``q`` with
``lambda(q, label(n)) = 1``.

Runs can take superpolynomially many steps (Example 4.21);
:class:`RankedQARun` counts steps so the benchmark harness can exhibit the
blow-up against the linear-time datalog simulation of Theorem 4.11.
"""

from __future__ import annotations

from typing import Dict, Hashable, List, Optional, Sequence, Set, Tuple

from repro.errors import QueryAutomatonError
from repro.trees.node import Node

State = Hashable
Label = str
Pair = Tuple[State, Label]


class RankedQA:
    """A ranked query automaton ``(Q, Sigma, F, s, d_up, d_down, d_root,
    d_leaf, selection)`` with the ``U``/``D`` partition given explicitly.

    Parameters
    ----------
    states / labels / final / start:
        The finite ingredients of Definition 4.8.
    up:
        ``d_up``: maps tuples of ``(state, label)`` pairs (one per child,
        left to right) to the parent's new state.
    down:
        ``d_down``: maps ``(state, label, arity)`` to the tuple of children
        states.
    root:
        ``d_root``: maps ``(state, label)`` to a state (applied only when
        the cut is exactly the root).
    leaf:
        ``d_leaf``: maps ``(state, label)`` to a state (applied to leaves).
    selection:
        The set of pairs ``(state, label)`` with ``lambda = 1``.
    up_pairs / down_pairs:
        The partition ``U`` / ``D`` of ``Q x Sigma``.
    """

    def __init__(
        self,
        states: Set[State],
        labels: Set[Label],
        final: Set[State],
        start: State,
        up: Dict[Tuple[Pair, ...], State],
        down: Dict[Tuple[State, Label, int], Tuple[State, ...]],
        root: Dict[Pair, State],
        leaf: Dict[Pair, State],
        selection: Set[Pair],
        up_pairs: Set[Pair],
        down_pairs: Set[Pair],
    ):
        self.states = set(states)
        self.labels = set(labels)
        self.final = set(final)
        self.start = start
        self.up = dict(up)
        self.down = dict(down)
        self.root = dict(root)
        self.leaf = dict(leaf)
        self.selection = set(selection)
        self.up_pairs = set(up_pairs)
        self.down_pairs = set(down_pairs)
        self._validate()

    def _validate(self) -> None:
        if self.start not in self.states:
            raise QueryAutomatonError("start state not in state set")
        if not self.final:
            raise QueryAutomatonError("final state set must be nonempty")
        if self.up_pairs & self.down_pairs:
            overlap = self.up_pairs & self.down_pairs
            raise QueryAutomatonError(f"U and D overlap: {overlap}")
        for pair in self.up_pairs | self.down_pairs:
            if pair[0] not in self.states or pair[1] not in self.labels:
                raise QueryAutomatonError(f"partition pair {pair} out of range")
        for key in self.down:
            if (key[0], key[1]) not in self.down_pairs:
                raise QueryAutomatonError(f"down transition on non-D pair {key}")
        for key in self.leaf:
            if key not in self.down_pairs:
                raise QueryAutomatonError(f"leaf transition on non-D pair {key}")
        for key in self.root:
            if key not in self.up_pairs:
                raise QueryAutomatonError(f"root transition on non-U pair {key}")
        for key in self.up:
            for pair in key:
                if pair not in self.up_pairs:
                    raise QueryAutomatonError(f"up transition uses non-U pair {pair}")

    def classify(self, state: State, label: Label) -> str:
        """``"U"`` or ``"D"`` for the given pair."""
        if (state, label) in self.up_pairs:
            return "U"
        if (state, label) in self.down_pairs:
            return "D"
        raise QueryAutomatonError(f"pair ({state!r}, {label!r}) unclassified")

    def run(
        self,
        tree: Node,
        max_steps: int = 10_000_000,
        trace: bool = False,
    ) -> "RankedQARun":
        """Execute the automaton on ``tree`` (see :class:`RankedQARun`)."""
        return RankedQARun(self, tree, max_steps=max_steps, trace=trace)


class RankedQARun:
    """One (the) run of a :class:`RankedQA` on a tree.

    Attributes
    ----------
    accepted:
        Whether the run is accepting (terminal configuration maps the root
        to a final state).
    selected:
        Nodes selected by the run (empty unless accepting).
    steps:
        Number of transitions performed (Example 4.21's cost measure).
    trace:
        When requested, the list of configurations as ``{node: state}``
        dictionaries (Example 4.9's c0..c4).
    """

    def __init__(self, qa: RankedQA, tree: Node, max_steps: int, trace: bool):
        self.qa = qa
        self.tree = tree
        self.steps = 0
        self.trace: List[Dict[int, State]] = []
        self._node_by_id: Dict[int, Node] = {id(n): n for n in tree.iter_subtree()}

        cut: Dict[int, State] = {id(tree): qa.start}
        selected_raw: Set[int] = set()

        def note_selection(node: Node, state: State) -> None:
            if (state, node.label) in qa.selection:
                selected_raw.add(id(node))

        note_selection(tree, qa.start)
        if trace:
            self.trace.append(dict(cut))

        # FIFO scheduling visits nodes in the paper's document-order style
        # (Example 4.9's c0..c4 trace); the selected set and acceptance are
        # scheduling-independent by determinism (Definition 4.8).
        from collections import deque

        agenda = deque([tree])
        while agenda:
            if self.steps > max_steps:
                raise QueryAutomatonError(
                    f"run exceeded {max_steps} steps (non-terminating automaton?)"
                )
            node = agenda.popleft()
            if id(node) not in cut:
                continue
            state = cut[id(node)]
            label = node.label
            kind = qa.classify(state, label)
            if kind == "D":
                if node.is_leaf:
                    new_state = qa.leaf.get((state, label))
                    if new_state is None:
                        continue
                    cut[id(node)] = new_state
                    note_selection(node, new_state)
                    self._bump(trace, cut)
                    agenda.append(node)
                else:
                    children_states = qa.down.get((state, label, len(node.children)))
                    if children_states is None:
                        continue
                    del cut[id(node)]
                    for child, child_state in zip(node.children, children_states):
                        cut[id(child)] = child_state
                        note_selection(child, child_state)
                        agenda.append(child)
                    self._bump(trace, cut)
            else:  # U
                if node.parent is None:
                    if len(cut) == 1:
                        new_state = qa.root.get((state, label))
                        if new_state is None:
                            continue
                        cut[id(node)] = new_state
                        note_selection(node, new_state)
                        self._bump(trace, cut)
                        agenda.append(node)
                    continue
                parent = node.parent
                word: List[Pair] = []
                ready = True
                for sibling in parent.children:
                    sibling_state = cut.get(id(sibling))
                    if sibling_state is None:
                        ready = False
                        break
                    pair = (sibling_state, sibling.label)
                    if pair not in qa.up_pairs:
                        ready = False
                        break
                    word.append(pair)
                if not ready:
                    continue
                new_state = qa.up.get(tuple(word))
                if new_state is None:
                    continue
                for sibling in parent.children:
                    del cut[id(sibling)]
                cut[id(parent)] = new_state
                note_selection(parent, new_state)
                self._bump(trace, cut)
                agenda.append(parent)

        root_state = cut.get(id(tree))
        self.final_cut = cut
        self.accepted = root_state is not None and root_state in qa.final
        if self.accepted:
            self.selected: Set[Node] = {self._node_by_id[i] for i in selected_raw}
        else:
            self.selected = set()

    def _bump(self, trace: bool, cut: Dict[int, State]) -> None:
        self.steps += 1
        if trace:
            self.trace.append(dict(cut))

    def trace_states(self) -> List[Dict[Node, State]]:
        """The trace with :class:`Node` keys (for readable assertions)."""
        return [
            {self._node_by_id[i]: s for i, s in config.items()} for config in self.trace
        ]

"""Strong unranked query automata (Definition 4.12).

A strong unranked query automaton (SQAu) extends the ranked model to
unbounded fan-out:

* **down** transitions assign the children of a node a *word* of states
  from a constant-density regular language ``L_down(q, a)``, provided in
  the paper's normal form as a finite union of ``u v* w`` expressions
  (Proposition 4.13);
* **up** transitions read the word of ``(state, label)`` pairs of a
  complete sibling group and map it to a parent state; each target state
  ``q`` owns a regular language ``L_up(q)`` given by an NFA, and
  determinism requires these languages to be pairwise disjoint;
* **stay** transitions re-assign states to a sibling group through a 2DFA
  with a selection function (each node may be involved in a stay
  transition at most once);
* **root** / **leaf** transitions are as in the ranked case.

Conventions where Definition 4.12 leaves freedom (see DESIGN.md): the
up/stay decision for a ready sibling group first tries the up-languages; if
none matches, the stay gate ``U_stay`` is tried; a group matching several
up-languages is a determinism error.
"""

from __future__ import annotations

from collections import deque
from typing import Dict, Hashable, List, Optional, Sequence, Set, Tuple

from repro.automata.nfa import NFA
from repro.automata.twodfa import TwoDFA
from repro.errors import QueryAutomatonError
from repro.trees.node import Node

State = Hashable
Label = str
Pair = Tuple[State, Label]

#: A down language in Proposition 4.13 normal form: a list of (u, v, w)
#: triples of state words.
UVW = Tuple[Tuple[State, ...], Tuple[State, ...], Tuple[State, ...]]


def match_uvw(
    triples: Sequence[UVW], length: int
) -> Optional[Tuple[State, ...]]:
    """The unique word of ``length`` in ``U_i u_i v_i* w_i``, if any.

    Constant density (Proposition 4.13) guarantees at most one word per
    length across the whole union; the first matching triple is returned.
    """
    for u, v, w in triples:
        base = len(u) + len(w)
        if len(v) == 0:
            if length == base:
                return tuple(u) + tuple(w)
            continue
        if length < base or (length - base) % len(v) != 0:
            continue
        k = (length - base) // len(v)
        return tuple(u) + tuple(v) * k + tuple(w)
    return None


class StrongUnrankedQA:
    """An SQAu with explicit ``U``/``D`` partition.

    Parameters
    ----------
    down:
        ``{(state, label): [(u, v, w), ...]}`` -- the languages
        ``L_down(q, a)`` in normal form.
    up:
        ``{target_state: NFA}`` -- the languages ``L_up(q)`` over the pair
        alphabet; pairwise disjointness is the automaton designer's
        responsibility (violations raise at run time).
    stay_gate:
        NFA for ``U_stay`` over the pair alphabet (or ``None``).
    stay:
        The 2DFA ``B`` computing stay transitions, with its selection
        function assigning states of this automaton.
    """

    def __init__(
        self,
        states: Set[State],
        labels: Set[Label],
        final: Set[State],
        start: State,
        down: Dict[Pair, Sequence[UVW]],
        up: Dict[State, NFA],
        root: Dict[Pair, State],
        leaf: Dict[Pair, State],
        selection: Set[Pair],
        up_pairs: Set[Pair],
        down_pairs: Set[Pair],
        stay_gate: Optional[NFA] = None,
        stay: Optional[TwoDFA] = None,
    ):
        self.states = set(states)
        self.labels = set(labels)
        self.final = set(final)
        self.start = start
        self.down = {key: list(value) for key, value in down.items()}
        self.up = dict(up)
        self.root = dict(root)
        self.leaf = dict(leaf)
        self.selection = set(selection)
        self.up_pairs = set(up_pairs)
        self.down_pairs = set(down_pairs)
        self.stay_gate = stay_gate
        self.stay = stay
        if self.up_pairs & self.down_pairs:
            raise QueryAutomatonError("U and D overlap")
        if (stay_gate is None) != (stay is None):
            raise QueryAutomatonError("stay gate and stay 2DFA come together")

    def classify(self, state: State, label: Label) -> str:
        """``"U"`` or ``"D"`` for the given pair."""
        if (state, label) in self.up_pairs:
            return "U"
        if (state, label) in self.down_pairs:
            return "D"
        raise QueryAutomatonError(f"pair ({state!r}, {label!r}) unclassified")

    def run(self, tree: Node, max_steps: int = 1_000_000) -> "SQAuRun":
        """Execute the automaton on ``tree``."""
        return SQAuRun(self, tree, max_steps)


class SQAuRun:
    """One run of a :class:`StrongUnrankedQA` (see :class:`RankedQARun`
    for the attribute conventions)."""

    def __init__(self, qa: StrongUnrankedQA, tree: Node, max_steps: int):
        self.qa = qa
        self.tree = tree
        self.steps = 0
        self._node_by_id = {id(n): n for n in tree.iter_subtree()}

        cut: Dict[int, State] = {id(tree): qa.start}
        selected_raw: Set[int] = set()
        stayed: Set[int] = set()  # parents whose stay transition fired

        def note(node: Node, state: State) -> None:
            if (state, node.label) in qa.selection:
                selected_raw.add(id(node))

        note(tree, qa.start)
        agenda = deque([tree])
        while agenda:
            if self.steps > max_steps:
                raise QueryAutomatonError(f"run exceeded {max_steps} steps")
            node = agenda.popleft()
            if id(node) not in cut:
                continue
            state = cut[id(node)]
            label = node.label
            kind = qa.classify(state, label)
            if kind == "D":
                if node.is_leaf:
                    new_state = qa.leaf.get((state, label))
                    if new_state is None:
                        continue
                    cut[id(node)] = new_state
                    note(node, new_state)
                    self.steps += 1
                    agenda.append(node)
                else:
                    triples = qa.down.get((state, label))
                    if triples is None:
                        continue
                    word = match_uvw(triples, len(node.children))
                    if word is None:
                        continue
                    del cut[id(node)]
                    for child, child_state in zip(node.children, word):
                        cut[id(child)] = child_state
                        note(child, child_state)
                        agenda.append(child)
                    self.steps += 1
                continue
            # U pair.
            if node.parent is None:
                if len(cut) == 1:
                    new_state = qa.root.get((state, label))
                    if new_state is not None:
                        cut[id(node)] = new_state
                        note(node, new_state)
                        self.steps += 1
                        agenda.append(node)
                continue
            parent = node.parent
            word_pairs: List[Pair] = []
            ready = True
            for sibling in parent.children:
                sibling_state = cut.get(id(sibling))
                if sibling_state is None:
                    ready = False
                    break
                pair = (sibling_state, sibling.label)
                if pair not in qa.up_pairs:
                    ready = False
                    break
                word_pairs.append(pair)
            if not ready:
                continue
            # Try up transitions (disjoint languages -> at most one target).
            targets = [
                target
                for target, nfa in qa.up.items()
                if nfa.accepts(word_pairs)
            ]
            if len(targets) > 1:
                raise QueryAutomatonError(
                    f"up-languages not disjoint on word {word_pairs}: {targets}"
                )
            if targets:
                for sibling in parent.children:
                    del cut[id(sibling)]
                cut[id(parent)] = targets[0]
                note(parent, targets[0])
                self.steps += 1
                agenda.append(parent)
                continue
            # Try the stay transition.
            if (
                qa.stay_gate is not None
                and id(parent) not in stayed
                and qa.stay_gate.accepts(word_pairs)
            ):
                stayed.add(id(parent))
                accepted, assignments, _ = qa.stay.run(
                    word_pairs, require_total_selection=True
                )
                if not accepted:
                    raise QueryAutomatonError(
                        f"stay 2DFA rejected a gated word {word_pairs}"
                    )
                for sibling, new_state in zip(parent.children, assignments):
                    cut[id(sibling)] = new_state
                    note(sibling, new_state)
                    agenda.append(sibling)
                self.steps += 1

        root_state = cut.get(id(tree))
        self.final_cut = cut
        self.accepted = root_state is not None and root_state in qa.final
        self.selected: Set[Node] = (
            {self._node_by_id[i] for i in selected_raw} if self.accepted else set()
        )

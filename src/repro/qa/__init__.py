"""Query automata (Section 4.3).

* :mod:`repro.qa.ranked` -- ranked query automata (Definition 4.8): two-way
  deterministic ranked tree automata with a selection function, executed
  over cuts, with step counting (Example 4.21);
* :mod:`repro.qa.unranked` -- strong unranked query automata
  (Definition 4.12) with ``u v* w`` down-languages, NFA up-languages and
  2DFA stay transitions;
* :mod:`repro.qa.examples` -- the paper's concrete automata: the even-``a``
  automaton of Example 4.9, the ``A_beta`` family of Example 4.21, and
  SQAu specimens used by the tests;
* :mod:`repro.qa.to_datalog` -- Theorems 4.11 and 4.14: translations into
  equivalent monadic datalog programs (including the staged ``u v* w``
  down-transition encoding of Example 4.15 / Figure 2).
"""

from repro.qa.ranked import RankedQA, RankedQARun
from repro.qa.unranked import StrongUnrankedQA, SQAuRun
from repro.qa.to_datalog import ranked_qa_to_datalog, sqau_to_datalog
from repro.qa.examples import even_a_qa, a_beta_qa, even_a_sqau, even_position_sqau

__all__ = [
    "RankedQA",
    "RankedQARun",
    "StrongUnrankedQA",
    "SQAuRun",
    "ranked_qa_to_datalog",
    "sqau_to_datalog",
    "even_a_qa",
    "a_beta_qa",
    "even_a_sqau",
    "even_position_sqau",
]

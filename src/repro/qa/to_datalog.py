"""Theorems 4.11 / 4.14: query automata to monadic datalog.

Both translations encode the *history* of the automaton run -- the set of
state assignments ``(q, n)`` made in any configuration -- with pair
predicates ``<q0, q>(n)``: "at some point, ``n`` was assigned ``q``, and
the most recent prior assignment to ``n``'s parent was ``q0``" (``q0`` is
the sentinel ``nabla`` for the root).  The pairing is what makes up
transitions sound (Lemma 4.10: imminent-return states are functions of the
parent's state and the node).

We additionally compute a *reachable-pair closure* before emitting rules:
rules are only generated for pair predicates the run could ever derive.
This keeps the emitted program at the quadratic size the paper advertises
(for ``A_beta``: ``O(beta^4)`` rules rather than the naive ``O(beta^6)``)
without affecting equivalence -- pruned rules have underivable bodies.

The unranked translation (Theorem 4.14) contains the staged
``u_i v_i* w_i`` down-transition encoding worked through in Example 4.15 /
Figure 2 (predicates ``utmp``/``wtmp``/``bwtmp``/``vtmp``/``succ``), the
NFA-scan encoding of up transitions, and a 2DFA simulation for stay
transitions.
"""

from __future__ import annotations

import re
from typing import Dict, Hashable, List, Sequence, Set, Tuple

from repro.automata.nfa import NFA
from repro.datalog.program import Program, Rule
from repro.datalog.terms import Atom, var
from repro.errors import QueryAutomatonError
from repro.qa.ranked import RankedQA
from repro.qa.unranked import StrongUnrankedQA

NABLA = "<nabla>"

_X = var("x")
_X0 = var("x0")
_X1 = var("x1")
_Y = var("y")


class _Names:
    """Collision-free sanitization of arbitrary state objects into
    predicate-name tokens."""

    def __init__(self):
        self._tokens: Dict[Hashable, str] = {}
        self._used: Set[str] = set()

    def token(self, value: Hashable) -> str:
        if value in self._tokens:
            return self._tokens[value]
        base = re.sub(r"[^0-9A-Za-z]+", "_", str(value)).strip("_") or "s"
        candidate = base
        i = 0
        while candidate in self._used:
            i += 1
            candidate = f"{base}_{i}"
        self._used.add(candidate)
        self._tokens[value] = candidate
        return candidate


def _pair_closure_ranked(qa: RankedQA) -> Set[Tuple[Hashable, Hashable]]:
    """Over-approximate the derivable pair predicates (label-blind)."""
    pairs: Set[Tuple[Hashable, Hashable]] = {(NABLA, qa.start)}
    changed = True
    while changed:
        changed = False
        known_q = {q for _, q in pairs}
        # Down transitions: (q0, q) + delta_down(q, a, m) -> (q, q_i).
        for (q, _a, _m), word in qa.down.items():
            if q in known_q:
                for qi in word:
                    if (q, qi) not in pairs:
                        pairs.add((q, qi))
                        changed = True
        # Leaf transitions: (q0, q) -> (q0, q').
        for (q, _a), q2 in qa.leaf.items():
            for q0, q1 in list(pairs):
                if q1 == q and (q0, q2) not in pairs:
                    pairs.add((q0, q2))
                    changed = True
        # Root transitions: (nabla, q) -> (nabla, q').
        for (q, _a), q2 in qa.root.items():
            if (NABLA, q) in pairs and (NABLA, q2) not in pairs:
                pairs.add((NABLA, q2))
                changed = True
        # Up transitions.
        for word, q_new in qa.up.items():
            child_states = [p[0] for p in word]
            for q0, q in list(pairs):
                if all((q, qc) in pairs for qc in child_states):
                    if (q0, q_new) not in pairs:
                        pairs.add((q0, q_new))
                        changed = True
    return pairs


def ranked_qa_to_datalog(
    qa: RankedQA,
    query_pred: str = "qa_query",
    accept_pred: str = "qa_accept",
) -> Program:
    """Theorem 4.11: an equivalent monadic datalog program over ``tau_rk``.

    The program's ``query_pred`` selects exactly the nodes the automaton
    selects; ``accept_pred`` holds at the root iff the run is accepting.
    Verified run-vs-program on randomized trees in
    ``tests/test_qa_to_datalog.py``.
    """
    names = _Names()
    pairs = _pair_closure_ranked(qa)
    q0s_of = lambda q: [q0 for (q0, q1) in pairs if q1 == q]

    def pp(q0: Hashable, q: Hashable) -> str:
        return f"st_{names.token(q0)}__{names.token(q)}"

    rules: List[Rule] = []

    # (1) Start state.
    rules.append(Rule(Atom(pp(NABLA, qa.start), (_X,)), [Atom("root", (_X,))]))

    # (2) Up transitions.
    for word, q_new in qa.up.items():
        child_states = [p[0] for p in word]
        child_labels = [p[1] for p in word]
        m = len(word)
        for q in qa.states:
            if not all((q, qc) in pairs for qc in child_states):
                continue
            for q0 in q0s_of(q):
                child_vars = [var(f"x{i + 1}") for i in range(m)]
                body = [Atom(pp(q0, q), (_X,))]
                for i in range(m):
                    body.append(Atom(f"child{i + 1}", (_X, child_vars[i])))
                    body.append(Atom(pp(q, child_states[i]), (child_vars[i],)))
                    body.append(Atom(f"label_{child_labels[i]}", (child_vars[i],)))
                rules.append(Rule(Atom(pp(q0, q_new), (_X,)), body))

    # (3) Down transitions.
    for (q, a, m), word in qa.down.items():
        for q0 in q0s_of(q):
            for i, qi in enumerate(word):
                xi = var(f"x{i + 1}")
                rules.append(
                    Rule(
                        Atom(pp(q, qi), (xi,)),
                        [
                            Atom(pp(q0, q), (_X,)),
                            Atom(f"child{i + 1}", (_X, xi)),
                            Atom(f"label_{a}", (_X,)),
                        ],
                    )
                )

    # (4) Root transitions.
    for (q, a), q2 in qa.root.items():
        if (NABLA, q) in pairs:
            rules.append(
                Rule(
                    Atom(pp(NABLA, q2), (_X,)),
                    [
                        Atom(pp(NABLA, q), (_X,)),
                        Atom(f"label_{a}", (_X,)),
                        Atom("root", (_X,)),
                    ],
                )
            )

    # (5) Leaf transitions.
    for (q, a), q2 in qa.leaf.items():
        for q0 in q0s_of(q):
            rules.append(
                Rule(
                    Atom(pp(q0, q2), (_X,)),
                    [
                        Atom(pp(q0, q), (_X,)),
                        Atom(f"label_{a}", (_X,)),
                        Atom("leaf", (_X,)),
                    ],
                )
            )

    # (6) Acceptance.
    for q in qa.final:
        for q0 in q0s_of(q):
            rules.append(
                Rule(
                    Atom(accept_pred, (_X,)),
                    [Atom("root", (_X,)), Atom(pp(q0, q), (_X,))],
                )
            )

    # (7) Selection.
    for (q, a) in qa.selection:
        for q0 in q0s_of(q):
            rules.append(
                Rule(
                    Atom(query_pred, (_X,)),
                    [
                        Atom(pp(q0, q), (_X,)),
                        Atom(f"label_{a}", (_X,)),
                        Atom(accept_pred, (_Y,)),
                    ],
                )
            )

    declared = {pp(q0, q) for q0, q in pairs} | {accept_pred, query_pred}
    return Program(rules, query=query_pred, declared=declared)


# ---------------------------------------------------------------------------
# Theorem 4.14: SQAu.
# ---------------------------------------------------------------------------


def _nfa_effective(nfa: NFA):
    """Epsilon-free view: (start_states, transition dict, accept set)."""
    start = nfa.epsilon_closure(nfa.start)
    table: Dict[Tuple[int, Hashable], Set[int]] = {}
    for (state, symbol), targets in nfa.transitions.items():
        table.setdefault((state, symbol), set()).update(
            nfa.epsilon_closure(targets)
        )
    # Transitions must also fire from epsilon-reachable states; fold the
    # closure into a state-level table.
    return start, table, set(nfa.accept)


def _pair_closure_sqau(qa: StrongUnrankedQA) -> Set[Tuple[Hashable, Hashable]]:
    pairs: Set[Tuple[Hashable, Hashable]] = {(NABLA, qa.start)}
    stay_range: Set[Hashable] = set(qa.stay.selection.values()) if qa.stay else set()
    changed = True
    while changed:
        changed = False
        known_q = {q for _, q in pairs}
        for (q, _a), triples in qa.down.items():
            if q in known_q:
                for u, v, w in triples:
                    for qi in tuple(u) + tuple(v) + tuple(w):
                        if (q, qi) not in pairs:
                            pairs.add((q, qi))
                            changed = True
        for (q, _a), q2 in qa.leaf.items():
            for q0, q1 in list(pairs):
                if q1 == q and (q0, q2) not in pairs:
                    pairs.add((q0, q2))
                    changed = True
        for (q, _a), q2 in qa.root.items():
            if (NABLA, q) in pairs and (NABLA, q2) not in pairs:
                pairs.add((NABLA, q2))
                changed = True
        # Up: children under parent-state q can reach target q_t when the
        # up-language mentions states all pairable with q.
        for q_t, nfa in qa.up.items():
            mentioned = {sym[0] for (_s, sym) in nfa.transitions.keys()}
            for q0, q in list(pairs):
                if any((q, qc) in pairs for qc in mentioned):
                    if (q0, q_t) not in pairs:
                        pairs.add((q0, q_t))
                        changed = True
        # Stay: children under parent-state q can be re-assigned any
        # selection output.
        if stay_range:
            for q0, q in list(pairs):
                has_child_pairs = any((q, qc) in pairs for qc in qa.states)
                if has_child_pairs:
                    for sigma in stay_range:
                        if (q, sigma) not in pairs:
                            pairs.add((q, sigma))
                            changed = True
    return pairs


def sqau_to_datalog(
    qa: StrongUnrankedQA,
    query_pred: str = "qa_query",
    accept_pred: str = "qa_accept",
) -> "SQAuTranslation":
    """Theorem 4.14: an equivalent monadic datalog program over
    ``tau_ur u {lastchild}``.

    Returns an :class:`SQAuTranslation` exposing the program plus the
    stage-predicate namers needed by the Figure 2 reproduction test.
    """
    return SQAuTranslation(qa, query_pred, accept_pred)


class SQAuTranslation:
    """The Theorem 4.14 translation with inspectable naming."""

    def __init__(self, qa: StrongUnrankedQA, query_pred: str, accept_pred: str):
        self.qa = qa
        self.query_pred = query_pred
        self.accept_pred = accept_pred
        self.names = _Names()
        self.pairs = _pair_closure_sqau(qa)
        self.rules: List[Rule] = []
        self.declared: Set[str] = {query_pred, accept_pred}
        self._emit()
        self.program = Program(
            self.rules, query=query_pred, declared=self.declared
        )

    # -- predicate naming (stable, used by tests) ---------------------------

    def pp(self, q0: Hashable, q: Hashable) -> str:
        """The pair predicate ``<q0, q>``."""
        return f"st_{self.names.token(q0)}__{self.names.token(q)}"

    def utmp(self, q: Hashable, a: str, i: int, k: int) -> str:
        """Stage (a) marker: k-th position of ``u_i`` (Example 4.15)."""
        return f"utmp_{self.names.token(q)}_{a}_{i}_{k}"

    def wtmp(self, q: Hashable, a: str, i: int, k: int) -> str:
        """Stage (b) marker: k-th position of ``w_i``."""
        return f"wtmp_{self.names.token(q)}_{a}_{i}_{k}"

    def bwtmp(self, q: Hashable, a: str, i: int) -> str:
        """Stage (c) marker: strictly before the ``w_i`` span."""
        return f"bwtmp_{self.names.token(q)}_{a}_{i}"

    def vtmp(self, q: Hashable, a: str, i: int, k: int) -> str:
        """Stage (d) marker: position ``k`` within the cycling ``v_i``."""
        return f"vtmp_{self.names.token(q)}_{a}_{i}_{k}"

    def succ(self, q: Hashable, a: str, i: int) -> str:
        """Stage (e) marker: subexpression ``i`` matched the fan-out."""
        return f"succ_{self.names.token(q)}_{a}_{i}"

    # -- emission ------------------------------------------------------------

    def _add(self, head: Atom, body: List[Atom]) -> None:
        self.rules.append(Rule(head, body))
        self.declared.add(head.pred)

    def _q0s_of(self, q: Hashable) -> List[Hashable]:
        return [q0 for (q0, q1) in self.pairs if q1 == q]

    def _emit(self) -> None:
        qa = self.qa
        self._add(Atom(self.pp(NABLA, qa.start), (_X,)), [Atom("root", (_X,))])
        self._emit_down()
        self._emit_up()
        self._emit_stay()
        for (q, a), q2 in qa.leaf.items():
            for q0 in self._q0s_of(q):
                self._add(
                    Atom(self.pp(q0, q2), (_X,)),
                    [
                        Atom(self.pp(q0, q), (_X,)),
                        Atom(f"label_{a}", (_X,)),
                        Atom("leaf", (_X,)),
                    ],
                )
        for (q, a), q2 in qa.root.items():
            if (NABLA, q) in self.pairs:
                self._add(
                    Atom(self.pp(NABLA, q2), (_X,)),
                    [
                        Atom(self.pp(NABLA, q), (_X,)),
                        Atom(f"label_{a}", (_X,)),
                        Atom("root", (_X,)),
                    ],
                )
        for q in qa.final:
            for q0 in self._q0s_of(q):
                self._add(
                    Atom(self.accept_pred, (_X,)),
                    [Atom("root", (_X,)), Atom(self.pp(q0, q), (_X,))],
                )
        for (q, a) in qa.selection:
            for q0 in self._q0s_of(q):
                self._add(
                    Atom(self.query_pred, (_X,)),
                    [
                        Atom(self.pp(q0, q), (_X,)),
                        Atom(f"label_{a}", (_X,)),
                        Atom(self.accept_pred, (_Y,)),
                    ],
                )

    def _emit_down(self) -> None:
        """The staged u v* w encoding -- stages (a)..(f) of the proof."""
        qa = self.qa
        for (q, a), triples in qa.down.items():
            q0s = self._q0s_of(q)
            if not q0s:
                continue
            anchor = [Atom(self.pp(q0, q), (_X,)) for q0 in q0s]
            for i, (u, v, w) in enumerate(triples, start=1):
                u, v, w = tuple(u), tuple(v), tuple(w)
                # (a) mark the |u| leftmost children.
                for q0_atom in anchor:
                    if u:
                        self._add(
                            Atom(self.utmp(q, a, i, 1), (_X1,)),
                            [q0_atom, Atom("firstchild", (_X, _X1)), Atom(f"label_{a}", (_X,))],
                        )
                for k in range(1, len(u)):
                    xk, xk1 = var(f"x{k}"), var(f"x{k + 1}")
                    self._add(
                        Atom(self.utmp(q, a, i, k + 1), (xk1,)),
                        [
                            Atom(self.utmp(q, a, i, k), (xk,)),
                            Atom("nextsibling", (xk, xk1)),
                        ],
                    )
                # (b) mark the |w| rightmost children.
                for q0_atom in anchor:
                    if w:
                        self._add(
                            Atom(self.wtmp(q, a, i, len(w)), (_Y,)),
                            [q0_atom, Atom("lastchild", (_X, _Y)), Atom(f"label_{a}", (_X,))],
                        )
                for l in range(len(w), 1, -1):
                    self._add(
                        Atom(self.wtmp(q, a, i, l - 1), (_X0,)),
                        [
                            Atom(self.wtmp(q, a, i, l), (_X,)),
                            Atom("nextsibling", (_X0, _X)),
                        ],
                    )
                # (c) everything strictly before the w-span (or all children
                # when w is empty).
                if w:
                    self._add(
                        Atom(self.bwtmp(q, a, i), (_X0,)),
                        [
                            Atom(self.wtmp(q, a, i, 1), (_X,)),
                            Atom("nextsibling", (_X0, _X)),
                        ],
                    )
                else:
                    for q0_atom in anchor:
                        self._add(
                            Atom(self.bwtmp(q, a, i), (_Y,)),
                            [q0_atom, Atom("lastchild", (_X, _Y)), Atom(f"label_{a}", (_X,))],
                        )
                self._add(
                    Atom(self.bwtmp(q, a, i), (_X0,)),
                    [
                        Atom(self.bwtmp(q, a, i), (_X,)),
                        Atom("nextsibling", (_X0, _X)),
                    ],
                )
                # (d) cycle v-markings through the middle span.
                if v:
                    if u:
                        self._add(
                            Atom(self.vtmp(q, a, i, 1), (_Y,)),
                            [
                                Atom(self.utmp(q, a, i, len(u)), (_X,)),
                                Atom("nextsibling", (_X, _Y)),
                                Atom(self.bwtmp(q, a, i), (_Y,)),
                            ],
                        )
                    else:
                        for q0_atom in anchor:
                            self._add(
                                Atom(self.vtmp(q, a, i, 1), (_Y,)),
                                [
                                    q0_atom,
                                    Atom("firstchild", (_X, _Y)),
                                    Atom(f"label_{a}", (_X,)),
                                    Atom(self.bwtmp(q, a, i), (_Y,)),
                                ],
                            )
                    for m in range(1, len(v)):
                        self._add(
                            Atom(self.vtmp(q, a, i, m + 1), (_Y,)),
                            [
                                Atom(self.vtmp(q, a, i, m), (_X,)),
                                Atom("nextsibling", (_X, _Y)),
                                Atom(self.bwtmp(q, a, i), (_Y,)),
                            ],
                        )
                    self._add(
                        Atom(self.vtmp(q, a, i, 1), (_Y,)),
                        [
                            Atom(self.vtmp(q, a, i, len(v)), (_X,)),
                            Atom("nextsibling", (_X, _Y)),
                            Atom(self.bwtmp(q, a, i), (_Y,)),
                        ],
                    )
                # (e) success: the subexpression has a word of length m.
                succ = self.succ(q, a, i)
                if u and w:
                    self._add(
                        Atom(succ, (_X0,)),
                        [
                            Atom(self.utmp(q, a, i, len(u)), (_X0,)),
                            Atom("nextsibling", (_X0, _X)),
                            Atom(self.wtmp(q, a, i, 1), (_X,)),
                        ],
                    )
                if not u and w:
                    for q0_atom in anchor:
                        self._add(
                            Atom(succ, (_Y,)),
                            [
                                q0_atom,
                                Atom("firstchild", (_X, _Y)),
                                Atom(f"label_{a}", (_X,)),
                                Atom(self.wtmp(q, a, i, 1), (_Y,)),
                            ],
                        )
                if u and not w:
                    self._add(
                        Atom(succ, (_X,)),
                        [
                            Atom(self.utmp(q, a, i, len(u)), (_X,)),
                            Atom("lastsibling", (_X,)),
                        ],
                    )
                if v and w:
                    self._add(
                        Atom(succ, (_X0,)),
                        [
                            Atom(self.vtmp(q, a, i, len(v)), (_X0,)),
                            Atom("nextsibling", (_X0, _X)),
                            Atom(self.wtmp(q, a, i, 1), (_X,)),
                        ],
                    )
                if v and not w:
                    self._add(
                        Atom(succ, (_X,)),
                        [
                            Atom(self.vtmp(q, a, i, len(v)), (_X,)),
                            Atom("lastsibling", (_X,)),
                        ],
                    )
                self._add(
                    Atom(succ, (_Y,)),
                    [Atom(succ, (_X,)), Atom("nextsibling", (_X, _Y))],
                )
                self._add(
                    Atom(succ, (_X0,)),
                    [Atom(succ, (_X,)), Atom("nextsibling", (_X0, _X))],
                )
                # (f) assign the new states.
                for k, sigma in enumerate(u, start=1):
                    self._add(
                        Atom(self.pp(q, sigma), (_X,)),
                        [Atom(succ, (_X,)), Atom(self.utmp(q, a, i, k), (_X,))],
                    )
                for k, sigma in enumerate(v, start=1):
                    self._add(
                        Atom(self.pp(q, sigma), (_X,)),
                        [Atom(succ, (_X,)), Atom(self.vtmp(q, a, i, k), (_X,))],
                    )
                for k, sigma in enumerate(w, start=1):
                    self._add(
                        Atom(self.pp(q, sigma), (_X,)),
                        [Atom(succ, (_X,)), Atom(self.wtmp(q, a, i, k), (_X,))],
                    )

    def _emit_up(self) -> None:
        """NFA scan over the sibling word, then back to the parent."""
        qa = self.qa
        for q_target, nfa in qa.up.items():
            start, table, accept = _nfa_effective(nfa)
            target_token = self.names.token(q_target)
            for q2 in qa.states:
                # Parent-last-state q2; scan predicates per NFA state.
                def tmp(s: Hashable) -> str:
                    return f"up_{target_token}_{self.names.token(q2)}_{self.names.token(s)}"

                emitted = False
                for (s, symbol), targets in table.items():
                    q_child, a = symbol
                    if (q2, q_child) not in self.pairs:
                        continue
                    self.declared.add(tmp(s))
                    for s2 in targets:
                        self.declared.add(tmp(s2))
                        if s in start:
                            self._add(
                                Atom(tmp(s2), (_X,)),
                                [
                                    Atom("firstchild", (_X0, _X)),
                                    Atom(self.pp(q2, q_child), (_X,)),
                                    Atom(f"label_{a}", (_X,)),
                                ],
                            )
                        self._add(
                            Atom(tmp(s2), (_Y,)),
                            [
                                Atom(tmp(s), (_X,)),
                                Atom("nextsibling", (_X, _Y)),
                                Atom(self.pp(q2, q_child), (_Y,)),
                                Atom(f"label_{a}", (_Y,)),
                            ],
                        )
                        emitted = True
                if not emitted:
                    continue
                bck = f"bck_{target_token}_{self.names.token(q2)}"
                for s in accept:
                    self._add(
                        Atom(bck, (_X,)),
                        [Atom(tmp(s), (_X,)), Atom("lastsibling", (_X,))],
                    )
                self._add(
                    Atom(bck, (_X0,)),
                    [Atom("nextsibling", (_X0, _X)), Atom(bck, (_X,))],
                )
                for q1 in self._q0s_of(q2):
                    self._add(
                        Atom(self.pp(q1, q_target), (_X0,)),
                        [
                            Atom(self.pp(q1, q2), (_X0,)),
                            Atom("firstchild", (_X0, _X)),
                            Atom(bck, (_X,)),
                        ],
                    )

    def _emit_stay(self) -> None:
        """Gate on U_stay with an NFA scan, then simulate the 2DFA."""
        qa = self.qa
        if qa.stay_gate is None or qa.stay is None:
            return
        start, table, accept = _nfa_effective(qa.stay_gate)
        for q2 in qa.states:
            def gate_tmp(s: Hashable) -> str:
                return f"sg_{self.names.token(q2)}_{self.names.token(s)}"

            emitted = False
            for (s, symbol), targets in table.items():
                q_child, a = symbol
                if (q2, q_child) not in self.pairs:
                    continue
                self.declared.add(gate_tmp(s))
                for s2 in targets:
                    self.declared.add(gate_tmp(s2))
                    if s in start:
                        self._add(
                            Atom(gate_tmp(s2), (_X,)),
                            [
                                Atom("firstchild", (_X0, _X)),
                                Atom(self.pp(q2, q_child), (_X,)),
                                Atom(f"label_{a}", (_X,)),
                            ],
                        )
                    self._add(
                        Atom(gate_tmp(s2), (_Y,)),
                        [
                            Atom(gate_tmp(s), (_X,)),
                            Atom("nextsibling", (_X, _Y)),
                            Atom(self.pp(q2, q_child), (_Y,)),
                            Atom(f"label_{a}", (_Y,)),
                        ],
                    )
                    emitted = True
            if not emitted:
                continue
            gate_ok = f"sgok_{self.names.token(q2)}"
            for s in accept:
                self._add(
                    Atom(gate_ok, (_X,)),
                    [Atom(gate_tmp(s), (_X,)), Atom("lastsibling", (_X,))],
                )
            self._add(
                Atom(gate_ok, (_X0,)),
                [Atom("nextsibling", (_X0, _X)), Atom(gate_ok, (_X,))],
            )
            # 2DFA simulation seeded at the first sibling.
            def bst(s: Hashable) -> str:
                return f"bst_{self.names.token(q2)}_{self.names.token(s)}"

            self._add(
                Atom(bst(qa.stay.start), (_X,)),
                [Atom(gate_ok, (_X,)), Atom("firstsibling", (_X,))],
            )
            for (s, symbol), (s2, direction) in qa.stay.transitions.items():
                q_child, a = symbol
                if (q2, q_child) not in self.pairs:
                    continue
                self.declared.add(bst(s))
                self.declared.add(bst(s2))
                if direction == "R":
                    self._add(
                        Atom(bst(s2), (_Y,)),
                        [
                            Atom(bst(s), (_X,)),
                            Atom(self.pp(q2, q_child), (_X,)),
                            Atom(f"label_{a}", (_X,)),
                            Atom("nextsibling", (_X, _Y)),
                        ],
                    )
                else:
                    self._add(
                        Atom(bst(s2), (_X0,)),
                        [
                            Atom(bst(s), (_X,)),
                            Atom(self.pp(q2, q_child), (_X,)),
                            Atom(f"label_{a}", (_X,)),
                            Atom("nextsibling", (_X0, _X)),
                        ],
                    )
            for (s, symbol), sigma in qa.stay.selection.items():
                q_child, a = symbol
                if (q2, q_child) not in self.pairs:
                    continue
                self._add(
                    Atom(self.pp(q2, sigma), (_X,)),
                    [
                        Atom(bst(s), (_X,)),
                        Atom(self.pp(q2, q_child), (_X,)),
                        Atom(f"label_{a}", (_X,)),
                    ],
                )

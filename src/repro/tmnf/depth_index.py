"""Proposition 5.3: depth-index maps of digraphs.

A depth-index map of a digraph ``G = (V, E)`` is a total function
``d : V -> Z`` with ``d(v) + 1 = d(w)`` iff ``(v, w) in E``.  One exists iff
all paths between any two nodes have the same length (in particular, iff
``G`` has no directed cycle reachable in its shadow in an inconsistent way);
it is computed by a single traversal of the shadow graph.
"""

from __future__ import annotations

from typing import Dict, Hashable, Iterable, List, Optional, Set, Tuple

Node = Hashable
Edge = Tuple[Node, Node]


def depth_index_map(
    nodes: Iterable[Node], edges: Iterable[Edge]
) -> Optional[Dict[Node, int]]:
    """Compute a depth-index map, or ``None`` if none exists.

    Each connected component of the shadow graph is anchored at depth 0 for
    its first-visited node; the relative depths are forced.  After the
    traversal every edge is re-verified (this also rejects parallel
    constraints like an edge ``(v, w)`` together with ``(w, v)``).

    >>> depth_index_map("abc", [("a", "b"), ("b", "c")])
    {'a': 0, 'b': 1, 'c': 2}
    >>> depth_index_map("ab", [("a", "b"), ("b", "a")]) is None
    True
    """
    node_list = list(nodes)
    out_edges: Dict[Node, List[Node]] = {}
    in_edges: Dict[Node, List[Node]] = {}
    edge_list = list(edges)
    for source, target in edge_list:
        out_edges.setdefault(source, []).append(target)
        in_edges.setdefault(target, []).append(source)

    depth: Dict[Node, int] = {}
    for start in node_list:
        if start in depth:
            continue
        depth[start] = 0
        stack: List[Node] = [start]
        while stack:
            node = stack.pop()
            d = depth[node]
            for successor in out_edges.get(node, ()):
                if successor in depth:
                    if depth[successor] != d + 1:
                        return None
                else:
                    depth[successor] = d + 1
                    stack.append(successor)
            for predecessor in in_edges.get(node, ()):
                if predecessor in depth:
                    if depth[predecessor] != d - 1:
                        return None
                else:
                    depth[predecessor] = d - 1
                    stack.append(predecessor)

    for source, target in edge_list:
        if depth[source] + 1 != depth[target]:
            return None
    return depth


class UnionFind:
    """Textbook union-find over hashable items (used to merge variables)."""

    def __init__(self):
        self._parent: Dict[Node, Node] = {}

    def find(self, item: Node) -> Node:
        parent = self._parent.setdefault(item, item)
        if parent == item:
            return item
        root = self.find(parent)
        self._parent[item] = root
        return root

    def union(self, a: Node, b: Node) -> None:
        ra, rb = self.find(a), self.find(b)
        if ra != rb:
            self._parent[ra] = rb

    def groups(self) -> Dict[Node, Set[Node]]:
        """Map each representative to its equivalence class."""
        out: Dict[Node, Set[Node]] = {}
        for item in list(self._parent):
            out.setdefault(self.find(item), set()).add(item)
        return out

"""Theorem 5.2: the full TMNF normalization pipeline.

``to_tmnf(program)`` rewrites any monadic datalog program over
``tau_ur u {child, lastchild}`` into an equivalent TMNF program over
``tau_ur`` in (near-)linear time, through five stages:

A. expand ``lastchild`` (Lemma 5.6 preprocessing);
B. acyclicize every rule (Lemma 5.5), dropping rules the chase proves
   unsatisfiable; output may use the helper relation ``nextsibling_star``;
C. connect disconnected rules by inserting the *total* caterpillar atom
   ``(docorder | eps | docorder^-1)(x, y)`` between the head component and
   every other component (proof of Theorem 5.2);
D. decompose every rule into the three TMNF shapes (Lemmas 5.7/5.8), still
   over the helper binaries ``nextsibling_star`` / ``total``;
E. eliminate the helper binaries via Lemma 5.9's Thompson-automaton
   encoding, whose output is TMNF over pure ``tau_ur``.

All intermediate programs are recorded on the returned :class:`TMNFResult`
for inspection and for the Figure 3 reproduction tests.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set, Tuple

from repro.caterpillar.compile import caterpillar_to_datalog
from repro.caterpillar.order import total_expression
from repro.caterpillar.syntax import CatExpr, cat_atom, cat_inverse, cat_star
from repro.datalog.analysis import variable_components
from repro.datalog.program import Program, Rule
from repro.datalog.terms import Atom, Variable
from repro.errors import TMNFError
from repro.tmnf.acyclic import (
    NEXTSIBLING_STAR,
    acyclicize_rule_ranked,
    acyclicize_rule_unranked,
)
from repro.tmnf.decompose import _NameSupply, decompose_rule
from repro.tmnf.forms import TAU_UR_BINARY, is_tmnf

#: Helper binary relations eliminated in stage E, with their caterpillar
#: definitions over ``tau_ur``.
_HELPER_EXPRESSIONS = {
    NEXTSIBLING_STAR: lambda: cat_star(cat_atom("nextsibling")),
    "total": total_expression,
}


class TMNFResult:
    """Output of :func:`to_tmnf` with all intermediate stages."""

    def __init__(
        self,
        program: Program,
        acyclic: Program,
        connected: Program,
        decomposed: Program,
        dropped_rules: List[Rule],
    ):
        #: The final TMNF program over ``tau_ur``.
        self.program = program
        #: Stage B output (acyclic rules over ``tau_ur u {nextsibling_star}``).
        self.acyclic = acyclic
        #: Stage C output (every rule connected, ``total`` atoms inserted).
        self.connected = connected
        #: Stage D output (TMNF shapes over helper binaries).
        self.decomposed = decomposed
        #: Rules the acyclicization chase proved unsatisfiable.
        self.dropped_rules = dropped_rules


def _connect_rule(rule: Rule, names: _NameSupply) -> Rule:
    """Stage C: join disconnected components with ``total`` atoms."""
    components = variable_components(rule)
    if len(components) <= 1:
        return rule
    head_vars = rule.head.variables()
    if head_vars:
        main = next(c for c in components if head_vars & c)
    else:
        raise TMNFError(f"propositional heads unsupported here: {rule}")
    anchor = next(iter(head_vars))
    extra: List[Atom] = []
    for component in components:
        if component is main:
            continue
        representative = sorted(component, key=lambda v: v.name)[0]
        extra.append(Atom("total", (anchor, representative)))
    return Rule(rule.head, list(rule.body) + extra)


def _eliminate_helpers(rules: List[Rule], names: _NameSupply) -> List[Rule]:
    """Stage E: replace form-(2) rules over helper binaries by Lemma 5.9
    programs."""
    out: List[Rule] = []
    for rule in rules:
        helper_atoms = [
            a for a in rule.body if a.arity == 2 and a.pred in _HELPER_EXPRESSIONS
        ]
        if not helper_atoms:
            out.append(rule)
            continue
        if len(rule.body) != 2 or len(helper_atoms) != 1:
            raise TMNFError(
                f"stage D should leave helper binaries in two-atom rules: {rule}"
            )
        binary = helper_atoms[0]
        unary = next(a for a in rule.body if a.arity == 1)
        expr: CatExpr = _HELPER_EXPRESSIONS[binary.pred]()
        head_var = rule.head.args[0]
        if binary.args == (unary.args[0], head_var):
            pass  # forward: head = p0 . E
        elif binary.args == (head_var, unary.args[0]):
            expr = cat_inverse(expr)  # inverse direction: head = p0 . E^-1
        else:
            raise TMNFError(f"unexpected helper-atom shape: {rule}")
        target = rule.head.pred
        sub_program, _ = caterpillar_to_datalog(
            expr, unary.pred, target, prefix=names.fresh("cat")
        )
        out.extend(sub_program.rules)
    return out


def to_tmnf(
    program: Program,
    signature: str = "unranked",
    max_rank: int = 2,
) -> TMNFResult:
    """Normalize a monadic datalog program into TMNF (Theorem 5.2).

    Parameters
    ----------
    program:
        Monadic program over ``tau_ur u {child, lastchild}`` (signature
        ``"unranked"``) or over ``tau_rk`` (signature ``"ranked"``).
    signature:
        ``"unranked"`` (default) or ``"ranked"``.
    max_rank:
        Maximum rank ``K`` for ranked signatures.

    Returns
    -------
    TMNFResult
        Final program plus all intermediate stages.  Equivalence of input
        and output is property-tested in ``tests/test_tmnf.py``.
    """
    if not program.is_monadic():
        raise TMNFError("TMNF normalization requires a monadic program")
    names = _NameSupply(set(program.predicates()), "tmnf")

    # Stage A+B: acyclicize.
    acyclic_rules: List[Rule] = []
    dropped: List[Rule] = []
    for rule in program.rules:
        if signature == "unranked":
            rewritten = acyclicize_rule_unranked(rule)
        elif signature == "ranked":
            rewritten = acyclicize_rule_ranked(rule, max_rank)
        else:
            raise TMNFError(f"unknown signature {signature!r}")
        if rewritten is None:
            dropped.append(rule)
        else:
            acyclic_rules.append(rewritten)
    acyclic = Program(acyclic_rules, declared=program.declared)

    # Stage C: connect.
    connected_rules = [_connect_rule(r, names) for r in acyclic_rules]
    connected = Program(connected_rules, declared=program.declared)

    # Stage D: decompose into TMNF shapes (helpers allowed).
    decomposed_rules: List[Rule] = []
    for rule in connected_rules:
        decomposed_rules.extend(decompose_rule(rule, names))
    decomposed = Program(decomposed_rules, declared=program.declared)

    # Stage E: eliminate helper binaries.
    final_rules = _eliminate_helpers(decomposed_rules, names)
    declared = set(program.declared) | {
        r.head.pred for r in final_rules
    } | program.intensional_predicates()
    final = Program(final_rules, query=program.query, declared=declared)

    if signature == "unranked":
        ok, reason = is_tmnf(final, TAU_UR_BINARY)
    else:
        ok, reason = is_tmnf(
            final, tuple(f"child{k}" for k in range(1, max_rank + 1))
        )
    if not ok:
        raise TMNFError(f"pipeline produced a non-TMNF rule: {reason}")
    return TMNFResult(final, acyclic, connected, decomposed, dropped)

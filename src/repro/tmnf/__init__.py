"""TMNF -- the Tree-Marking Normal Form of Section 5 (Theorem 5.2).

Every monadic datalog program over ``tau_ur u {child, lastchild}`` (or over
``tau_rk``) rewrites in linear time into an equivalent program whose rules
all have one of the three shapes of Definition 5.1:

    (1) p(x) <- p0(x).
    (2) p(x) <- p0(x0), B(x0, x).     B = R or R^-1, R binary in the schema
    (3) p(x) <- p0(x), p1(x).

Pipeline stages (each an importable function; ``to_tmnf`` runs them all):

* :mod:`repro.tmnf.depth_index` -- Proposition 5.3 depth-index maps;
* :mod:`repro.tmnf.acyclic` -- Lemmas 5.4 (ranked) and 5.5/5.6 (unranked
  with ``child``/``lastchild``): rewrite every rule into an acyclic one,
  detecting unsatisfiable rules;
* :mod:`repro.tmnf.decompose` -- Lemmas 5.7/5.8: ear decomposition into the
  three TMNF shapes (still over helper relations ``nextsibling_star`` /
  ``total``);
* :mod:`repro.tmnf.pipeline` -- Theorem 5.2: connect disconnected rules
  with the total caterpillar, then eliminate helper relations via
  Lemma 5.9's automaton encoding.
"""

from repro.tmnf.forms import is_tmnf, check_tmnf_rule
from repro.tmnf.depth_index import depth_index_map
from repro.tmnf.acyclic import acyclicize_rule_ranked, acyclicize_rule_unranked
from repro.tmnf.decompose import decompose_rule
from repro.tmnf.pipeline import TMNFResult, to_tmnf

__all__ = [
    "is_tmnf",
    "check_tmnf_rule",
    "depth_index_map",
    "acyclicize_rule_ranked",
    "acyclicize_rule_unranked",
    "decompose_rule",
    "to_tmnf",
    "TMNFResult",
]

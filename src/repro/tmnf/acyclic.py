"""Lemmas 5.4-5.6: rewriting rules into acyclic ones.

The rewriting "chases" the bidirectional functional dependencies of the
tree relations (Proposition 4.1): variables that the dependencies force to
be equal are merged, unsatisfiable rules are detected (and dropped by the
pipeline), and remaining ``child`` atoms are re-expressed through
``firstchild`` and the helper relation ``nextsibling_star``.

The paper sequences the merges carefully to achieve a single linear pass;
we run the same merges as a fixpoint (each round is linear, and the number
of rounds is bounded by the rule's variable count), which keeps the code
auditable while preserving the near-linear behaviour benchmarked in
``benchmarks/bench_tmnf.py``.  Deviation noted in DESIGN.md: Lemma 5.6's
final "replace lastsibling by lastchild" step is dropped -- ``lastsibling``
already belongs to ``tau_ur``.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set, Tuple

from repro.datalog.program import Rule, fresh_variable_factory
from repro.datalog.terms import Atom, Variable
from repro.errors import TMNFError
from repro.tmnf.depth_index import UnionFind, depth_index_map

#: Helper relation name introduced for ``nextsibling*`` atoms (Lemma 5.5).
NEXTSIBLING_STAR = "nextsibling_star"


def _check_variables_only(rule: Rule) -> None:
    for atom in (rule.head, *rule.body):
        for term in atom.args:
            if not isinstance(term, Variable):
                raise TMNFError(
                    f"the TMNF pipeline handles variable-only rules; found "
                    f"constant in {atom}"
                )


def _apply_merges(rule: Rule, uf: UnionFind) -> Rule:
    mapping: Dict[Variable, Variable] = {}
    for v in rule.variables():
        mapping[v] = uf.find(v)
    new_head = rule.head.substitute(dict(mapping))
    seen: Set[Atom] = set()
    body: List[Atom] = []
    for atom in rule.body:
        new_atom = atom.substitute(dict(mapping))
        if new_atom not in seen:
            seen.add(new_atom)
            body.append(new_atom)
    return Rule(new_head, body)


# ---------------------------------------------------------------------------
# Lemma 5.4: ranked trees.
# ---------------------------------------------------------------------------


def acyclicize_rule_ranked(rule: Rule, max_rank: int) -> Optional[Rule]:
    """Rewrite a rule over ``tau_rk`` into an equivalent acyclic rule.

    Returns ``None`` when the chase proves the rule unsatisfiable.
    """
    _check_variables_only(rule)
    child_names = {f"child{k}" for k in range(1, max_rank + 1)}

    while True:
        variables = list(rule.variables())
        edges = [
            (a.args[0], a.args[1])
            for a in rule.body
            if a.pred in child_names
        ]
        depth = depth_index_map(variables, edges)
        if depth is None:
            return None

        uf = UnionFind()
        merged = False
        for name in child_names:
            # Connected components of this child_k's subgraph.
            comp = UnionFind()
            for a in rule.body:
                if a.pred == name:
                    comp.union(a.args[0], a.args[1])
            by_class: Dict[Tuple, List[Variable]] = {}
            for v in variables:
                key = (comp.find(v), depth[v])
                by_class.setdefault(key, []).append(v)
            for group in by_class.values():
                for other in group[1:]:
                    if uf.find(group[0]) != uf.find(other):
                        uf.union(group[0], other)
                        merged = True
        if not merged:
            break
        rule = _apply_merges(rule, uf)

    # Remaining cycles can only pair two different child relations on a
    # common target, which is unsatisfiable (a node is the k-th child for
    # at most one k); also catch R(x, x) self-loops.
    from repro.datalog.analysis import is_acyclic

    if not is_acyclic(rule):
        return None
    return rule


# ---------------------------------------------------------------------------
# Lemmas 5.5 / 5.6: unranked trees with child / lastchild.
# ---------------------------------------------------------------------------


def expand_lastchild(rule: Rule) -> Rule:
    """Lemma 5.6 preprocessing: ``lastchild(x, y)`` becomes
    ``child(x, y), lastsibling(y)``."""
    body: List[Atom] = []
    for atom in rule.body:
        if atom.pred == "lastchild":
            body.append(Atom("child", atom.args))
            body.append(Atom("lastsibling", (atom.args[1],)))
        else:
            body.append(atom)
    return Rule(rule.head, body)


def _ns_components(rule: Rule) -> Dict[Variable, Set[Variable]]:
    """Connected components of the nextsibling subgraph (keyed by rep)."""
    comp = UnionFind()
    for v in rule.variables():
        comp.find(v)
    for atom in rule.body:
        if atom.pred == "nextsibling":
            comp.union(atom.args[0], atom.args[1])
    return comp.groups()


def acyclicize_rule_unranked(rule: Rule) -> Optional[Rule]:
    """Lemma 5.5/5.6: rewrite a rule over ``tau_ur u {child, lastchild}``
    into an equivalent acyclic rule over ``tau_ur u {nextsibling_star}``.

    Returns ``None`` when the chase proves the rule unsatisfiable.
    """
    _check_variables_only(rule)
    rule = expand_lastchild(rule)
    fresh = fresh_variable_factory("w")

    # Fixpoint of the three merge chases.
    while True:
        variables = list(rule.variables())
        groups = _ns_components(rule)
        member_to_rep = {
            member: rep for rep, members in groups.items() for member in members
        }

        # Step (1): the coarsened child graph must admit a depth-index map.
        coarse_edges = set()
        for atom in rule.body:
            if atom.pred in ("firstchild", "child"):
                coarse_edges.add(
                    (member_to_rep[atom.args[0]], member_to_rep[atom.args[1]])
                )
        if depth_index_map(groups.keys(), coarse_edges) is None:
            return None

        uf = UnionFind()
        merged = False

        def union(a: Variable, b: Variable) -> None:
            nonlocal merged
            if uf.find(a) != uf.find(b):
                uf.union(a, b)
                merged = True

        # Chase child/firstchild: $2 -> $1 -- all parents of one
        # nextsibling-component coincide (steps (1)/(2) of the paper).
        parents: Dict[Variable, List[Variable]] = {}
        for atom in rule.body:
            if atom.pred in ("firstchild", "child"):
                parents.setdefault(member_to_rep[atom.args[1]], []).append(
                    atom.args[0]
                )
        for parent_list in parents.values():
            for other in parent_list[1:]:
                union(parent_list[0], other)

        # Chase nextsibling's bidirectional dependency inside each
        # component: equal depth => equal variable (steps (3)/(4)).
        for rep, members in groups.items():
            ns_edges = [
                (a.args[0], a.args[1])
                for a in rule.body
                if a.pred == "nextsibling"
                and a.args[0] in members
                and a.args[1] in members
            ]
            depth = depth_index_map(members, ns_edges)
            if depth is None:
                return None
            by_depth: Dict[int, List[Variable]] = {}
            for v in members:
                by_depth.setdefault(depth[v], []).append(v)
            for group in by_depth.values():
                for other in group[1:]:
                    union(group[0], other)

        # Chase firstchild: $1 -> $2 -- all firstchild-children of one
        # variable coincide (step (4)).
        fc_children: Dict[Variable, List[Variable]] = {}
        for atom in rule.body:
            if atom.pred == "firstchild":
                fc_children.setdefault(atom.args[0], []).append(atom.args[1])
        for child_list in fc_children.values():
            for other in child_list[1:]:
                union(child_list[0], other)

        if not merged:
            break
        rule = _apply_merges(rule, uf)

    # Step (5): eliminate child atoms.
    groups = _ns_components(rule)
    member_to_rep = {m: rep for rep, ms in groups.items() for m in ms}

    # Chain order within each component, for choosing anchors.
    chain_depth: Dict[Variable, int] = {}
    for rep, members in groups.items():
        ns_edges = [
            (a.args[0], a.args[1])
            for a in rule.body
            if a.pred == "nextsibling" and a.args[0] in members
        ]
        depth = depth_index_map(members, ns_edges)
        if depth is None:
            return None
        chain_depth.update(depth)

    body: List[Atom] = [a for a in rule.body if a.pred != "child"]
    child_targets: Dict[Variable, List[Atom]] = {}
    for atom in rule.body:
        if atom.pred == "child":
            child_targets.setdefault(member_to_rep[atom.args[1]], []).append(atom)

    fc_anchor: Dict[Variable, Variable] = {}
    fc_of_parent: Dict[Variable, Variable] = {}
    for atom in rule.body:
        if atom.pred == "firstchild":
            fc_anchor[member_to_rep[atom.args[1]]] = atom.args[1]
            fc_of_parent[atom.args[0]] = atom.args[1]

    for rep, atoms in child_targets.items():
        members = groups[rep]
        parent = atoms[0].args[0]  # all parents merged already
        if rep in fc_anchor:
            anchor = fc_anchor[rep]
            # The first child must be the chain minimum, otherwise some
            # sibling precedes it -- unsatisfiable.
            if chain_depth[anchor] != min(chain_depth[m] for m in members):
                return None
            continue  # child atoms implied by the anchor; already dropped
        chosen = min(members, key=lambda m: chain_depth[m])
        if parent in fc_of_parent:
            body.append(Atom(NEXTSIBLING_STAR, (fc_of_parent[parent], chosen)))
        else:
            y0 = fresh()
            body.append(Atom("firstchild", (parent, y0)))
            body.append(Atom(NEXTSIBLING_STAR, (y0, chosen)))
            fc_of_parent[parent] = y0

    result = Rule(rule.head, body)
    from repro.datalog.analysis import is_acyclic

    if not is_acyclic(result):
        # Residual cycles indicate conflicting functional atoms.
        return None
    return result

"""Definition 5.1: the TMNF rule shapes and their checker."""

from __future__ import annotations

from typing import Iterable, Optional, Tuple

from repro.datalog.program import Program, Rule
from repro.datalog.terms import Atom, Variable

#: Binary relations of ``tau_ur`` admissible inside TMNF form (2).
TAU_UR_BINARY = ("firstchild", "nextsibling")

#: Unary relations of ``tau_ur`` admissible as ``p0`` / ``p1``.
TAU_UR_UNARY_PREFIXES = ("label_",)
TAU_UR_UNARY = ("dom", "root", "leaf", "lastsibling")


def _is_schema_unary(name: str) -> bool:
    return name in TAU_UR_UNARY or name.startswith(TAU_UR_UNARY_PREFIXES)


def check_tmnf_rule(
    rule: Rule, binary_relations: Iterable[str] = TAU_UR_BINARY
) -> Optional[str]:
    """Return ``None`` if the rule is in TMNF, else a reason string.

    ``binary_relations`` is the admissible set of schema binaries (defaults
    to ``tau_ur``; pass ``("child1", "child2", ...)`` for ranked programs).
    """
    binaries = set(binary_relations)
    head = rule.head
    if head.arity != 1 or not isinstance(head.args[0], Variable):
        return f"head must be unary over a variable: {rule}"
    x = head.args[0]
    body = rule.body
    if len(body) == 1:
        atom = body[0]
        if atom.arity == 1 and atom.args == (x,):
            return None  # form (1)
        return f"single-atom body must be p0(x): {rule}"
    if len(body) != 2:
        return f"TMNF bodies have one or two atoms: {rule}"
    unary = [a for a in body if a.arity == 1]
    binary = [a for a in body if a.arity == 2]
    if len(unary) == 2 and not binary:
        if all(a.args == (x,) for a in unary):
            return None  # form (3)
        return f"form (3) requires both atoms on the head variable: {rule}"
    if len(unary) == 1 and len(binary) == 1:
        u = unary[0]
        b = binary[0]
        if b.pred not in binaries:
            return f"binary relation {b.pred!r} not in the schema: {rule}"
        args = b.args
        if not all(isinstance(t, Variable) for t in args):
            return f"binary atom must be over variables: {rule}"
        x0 = u.args[0]
        if not isinstance(x0, Variable):
            return f"unary atom must be over a variable: {rule}"
        # form (2): p(x) <- p0(x0), B(x0, x)   with B = R or R^-1.
        if args == (x0, x) or args == (x, x0):
            if x0 == x:
                return f"form (2) requires distinct variables: {rule}"
            return None
        return f"binary atom must connect body variable to head variable: {rule}"
    return f"rule fits no TMNF shape: {rule}"


def is_tmnf(
    program: Program, binary_relations: Iterable[str] = TAU_UR_BINARY
) -> Tuple[bool, Optional[str]]:
    """Whether every rule of the program is in TMNF; reason on failure."""
    for rule in program.rules:
        reason = check_tmnf_rule(rule, binary_relations)
        if reason is not None:
            return False, reason
    return True, None

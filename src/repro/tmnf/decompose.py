"""Lemmas 5.7 / 5.8: decomposing acyclic connected rules into TMNF shapes.

The decomposition repeatedly

* *folds* multiple unary atoms on one variable into a single fresh
  predicate through form-(3) rules, and
* *plucks ears* (Lemma 5.7): a variable in exactly one binary atom is
  eliminated by introducing a fresh predicate defined through a form-(2)
  rule.

The output rules are in the three shapes of Definition 5.1, possibly still
over the helper binary relations ``nextsibling_star`` / ``total`` that the
pipeline's final stage (Lemma 5.9) eliminates.
"""

from __future__ import annotations

from typing import Dict, List, Set, Tuple

from repro.datalog.program import Rule
from repro.datalog.terms import Atom, Variable
from repro.errors import TMNFError

#: Universal unary predicate available in the schema (seed for bare ears).
DOM = "dom"


class _NameSupply:
    """Generates fresh predicate names within one pipeline run."""

    def __init__(self, used: Set[str], prefix: str):
        self.used = set(used)
        self.prefix = prefix
        self.counter = 0

    def fresh(self, hint: str = "p") -> str:
        while True:
            name = f"{self.prefix}_{hint}_{self.counter}"
            self.counter += 1
            if name not in self.used:
                self.used.add(name)
                return name


def decompose_rule(rule: Rule, names: _NameSupply) -> List[Rule]:
    """Decompose one acyclic *connected* rule into TMNF-shaped rules.

    The head must be unary over a variable; the body may contain unary
    atoms and binary atoms over distinct variables.
    """
    if rule.head.arity != 1 or not isinstance(rule.head.args[0], Variable):
        raise TMNFError(f"head must be unary over a variable: {rule}")
    head_var: Variable = rule.head.args[0]

    unary: Dict[Variable, List[str]] = {}
    binary: List[Atom] = []
    for atom in rule.body:
        if atom.arity == 1:
            term = atom.args[0]
            if not isinstance(term, Variable):
                raise TMNFError(f"constants unsupported in decomposition: {rule}")
            unary.setdefault(term, []).append(atom.pred)
        elif atom.arity == 2:
            a, b = atom.args
            if not (isinstance(a, Variable) and isinstance(b, Variable)):
                raise TMNFError(f"constants unsupported in decomposition: {rule}")
            if a == b:
                raise TMNFError(f"self-loop binary atom unsupported: {rule}")
            binary.append(atom)
        else:
            raise TMNFError(f"unsupported atom arity in {rule}")

    out: List[Rule] = []
    x = Variable("x")

    def fold(variable: Variable) -> str:
        """Reduce the unary atoms on ``variable`` to exactly one predicate."""
        preds = unary.get(variable, [])
        if not preds:
            unary[variable] = [DOM]
            return DOM
        while len(preds) > 1:
            p1 = preds.pop()
            p2 = preds.pop()
            name = names.fresh("and")
            out.append(
                Rule(Atom(name, (x,)), [Atom(p1, (x,)), Atom(p2, (x,))])
            )
            preds.append(name)
        return preds[0]

    # Pluck ears until only the head variable remains.
    while binary:
        degree: Dict[Variable, int] = {}
        for atom in binary:
            for term in atom.args:
                degree[term] = degree.get(term, 0) + 1
        ear = None
        for variable, count in degree.items():
            if count == 1 and variable != head_var:
                ear = variable
                break
        if ear is None:
            raise TMNFError(
                f"no ear found; rule is cyclic or disconnected: {rule}"
            )
        ear_pred = fold(ear)
        atom = next(a for a in binary if ear in a.args)
        binary.remove(atom)
        other = atom.args[0] if atom.args[1] == ear else atom.args[1]
        name = names.fresh("via")
        x0 = Variable("x0")
        if atom.args == (ear, other):
            # q(x) <- p0(x0), R(x0, x).
            out.append(
                Rule(
                    Atom(name, (x,)),
                    [Atom(ear_pred, (x0,)), Atom(atom.pred, (x0, x))],
                )
            )
        else:
            # q(x) <- p0(x0), R(x, x0)   (inverse direction).
            out.append(
                Rule(
                    Atom(name, (x,)),
                    [Atom(ear_pred, (x0,)), Atom(atom.pred, (x, x0))],
                )
            )
        unary.pop(ear, None)
        unary.setdefault(other, []).append(name)

    stray = [v for v in unary if v != head_var]
    if stray:
        raise TMNFError(f"rule is not connected: leftover variables {stray}")

    final_pred = fold(head_var)
    out.append(Rule(rule.head, [Atom(final_pred, (head_var,))]))
    return out

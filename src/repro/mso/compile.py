"""Compiling MSO formulas to bottom-up tree automata (Proposition 2.1).

The classical Thatcher-Wright/Doner construction, over the marked
firstchild/nextsibling binary encoding:

* a formula with free variables ``V`` becomes a DTA over the alphabet
  ``Sigma x 2^V`` (each tree node carries the set of variables "parked" on
  it);
* atomic relations get small hand-built automata (validated against the
  naive semantics in the test suite);
* conjunction/disjunction are automaton products, negation is
  complementation of the (total, deterministic) automaton;
* existential quantification is alphabet projection followed by the subset
  construction -- for first-order variables the automaton is first
  intersected with the "exactly one occurrence" validity automaton.

Automata produced here are only required to be correct on *valid* markings
(each free first-order variable occurs exactly once); the validity
intersection before each first-order projection, and at the very end for
the query variable, keeps that discipline sound under complementation.

The compiler is exact but, as the paper stresses (citing Frick & Grohe),
non-elementary in the quantifier alternation of the formula --
``benchmarks/bench_mso_compile.py`` measures that blow-up.
"""

from __future__ import annotations

from itertools import chain, combinations
from typing import Callable, Dict, FrozenSet, Iterable, List, Sequence, Set, Tuple

from repro.automata.treeauto import DTA, dta_from_step, intersect, product, union_dta
from repro.automata.unary import UnaryQueryDTA
from repro.errors import MSOError
from repro.mso.syntax import (
    And,
    Exists,
    FOVar,
    Forall,
    Formula,
    Iff,
    Implies,
    Member,
    Not,
    Or,
    Rel,
    SOVar,
    Subset,
    free_variables,
    standardize_apart,
)

Symbol = Tuple[str, FrozenSet[str]]

#: Cap on determinization size during quantifier elimination.
MAX_AUTOMATON_STATES = 6000


def _alphabet(labels: Sequence[str], context: Sequence[str]) -> Set[Symbol]:
    marks = [
        frozenset(c)
        for c in chain.from_iterable(
            combinations(sorted(context), r) for r in range(len(context) + 1)
        )
    ]
    return {(label, m) for label in labels for m in marks}


# ---------------------------------------------------------------------------
# Atomic automata.
#
# Every automaton below is a small DTA built from a step function
#   step(symbol=(label, marks), q_left, q_right) -> state
# with a dedicated empty state that the step function never returns, so that
# "missing child" is observable (needed by leaf / lastsibling).  States are
# documented per automaton.  Correctness is only claimed for valid markings
# (each first-order variable exactly once), per the module docstring.
# ---------------------------------------------------------------------------

_EMPTY = 0  # the conventional empty state for all atomic automata


def _atom_label(labels: Sequence[str], context: Sequence[str], x: str, target: str) -> DTA:
    """``label_target(x)``: 1=no-x-yet, 2=x seen with the right label,
    3=x seen with a wrong label."""

    def step(symbol: Symbol, ql: int, qr: int) -> int:
        node_label, marks = symbol
        if x in marks:
            return 2 if node_label == target else 3
        for q in (ql, qr):
            if q in (2, 3):
                return q
        return 1

    return dta_from_step(_alphabet(labels, context), 4, _EMPTY, step, {2})


def _atom_root(labels: Sequence[str], context: Sequence[str], x: str) -> DTA:
    """``root(x)``: 1=no-x, 2=x at the root of this binary subtree,
    3=x strictly inside."""

    def step(symbol: Symbol, ql: int, qr: int) -> int:
        _, marks = symbol
        if x in marks:
            return 2
        if ql in (2, 3) or qr in (2, 3):
            return 3
        return 1

    return dta_from_step(_alphabet(labels, context), 4, _EMPTY, step, {2})


def _atom_leaf(labels: Sequence[str], context: Sequence[str], x: str) -> DTA:
    """``leaf(x)``: x's node must lack a left (firstchild) subtree.
    1=no-x, 2=x ok, 3=x not a leaf."""

    def step(symbol: Symbol, ql: int, qr: int) -> int:
        _, marks = symbol
        if x in marks:
            return 2 if ql == _EMPTY else 3
        for q in (ql, qr):
            if q in (2, 3):
                return q
        return 1

    return dta_from_step(_alphabet(labels, context), 4, _EMPTY, step, {2})


def _atom_lastsibling(labels: Sequence[str], context: Sequence[str], x: str) -> DTA:
    """``lastsibling(x)``: x lacks a right (nextsibling) subtree and is not
    the root.  1=no-x, 2=x ok but still at subtree root, 3=x ok and strictly
    inside, 4=x has a next sibling."""

    def step(symbol: Symbol, ql: int, qr: int) -> int:
        _, marks = symbol
        if x in marks:
            return 2 if qr == _EMPTY else 4
        if ql == 2 or qr == 2:
            return 3
        for q in (ql, qr):
            if q in (3, 4):
                return q
        return 1

    return dta_from_step(_alphabet(labels, context), 5, _EMPTY, step, {3})


def _atom_firstsibling(labels: Sequence[str], context: Sequence[str], x: str) -> DTA:
    """``firstsibling(x)``: x is the left (firstchild) child of its binary
    parent.  1=no-x, 2=x at subtree root (pending), 3=ok, 4=x is a right
    child (i.e. a next sibling) -- false."""

    def step(symbol: Symbol, ql: int, qr: int) -> int:
        _, marks = symbol
        if x in marks:
            return 2
        if ql == 2:
            return 3
        if qr == 2:
            return 4
        for q in (ql, qr):
            if q in (3, 4):
                return q
        return 1

    return dta_from_step(_alphabet(labels, context), 5, _EMPTY, step, {3})


def _atom_eq(labels: Sequence[str], context: Sequence[str], x: str, y: str) -> DTA:
    """``x = y``: both marks on the same node.  1=none, 2=ok, 3=false."""

    def step(symbol: Symbol, ql: int, qr: int) -> int:
        _, marks = symbol
        mx, my = x in marks, y in marks
        if mx and my:
            return 2
        if mx or my:
            return 3
        if ql == 3 or qr == 3:
            return 3
        if ql == 2 or qr == 2:
            return 2
        return 1

    return dta_from_step(_alphabet(labels, context), 4, _EMPTY, step, {2})


def _atom_firstchild(labels: Sequence[str], context: Sequence[str], x: str, y: str) -> DTA:
    """``firstchild(x, y)``: y is the left child of x in the encoding.
    1=none, 2=y at subtree root, 3=pair matched, 4=false."""

    def step(symbol: Symbol, ql: int, qr: int) -> int:
        _, marks = symbol
        mx, my = x in marks, y in marks
        if mx and my:
            return 4
        if my:
            if ql in (2, 3, 4) or qr in (2, 3, 4):
                return 4
            return 2
        if mx:
            return 3 if ql == 2 else 4
        if ql == 2 or qr == 2:
            return 4  # y's binary parent is not x
        for q in (ql, qr):
            if q in (3, 4):
                return q
        return 1

    return dta_from_step(_alphabet(labels, context), 5, _EMPTY, step, {3})


def _atom_nextsibling(labels: Sequence[str], context: Sequence[str], x: str, y: str) -> DTA:
    """``nextsibling(x, y)``: y is the right child of x in the encoding."""

    def step(symbol: Symbol, ql: int, qr: int) -> int:
        _, marks = symbol
        mx, my = x in marks, y in marks
        if mx and my:
            return 4
        if my:
            if ql in (2, 3, 4) or qr in (2, 3, 4):
                return 4
            return 2
        if mx:
            return 3 if qr == 2 else 4
        if ql == 2 or qr == 2:
            return 4
        for q in (ql, qr):
            if q in (3, 4):
                return q
        return 1

    return dta_from_step(_alphabet(labels, context), 5, _EMPTY, step, {3})


def _atom_child(labels: Sequence[str], context: Sequence[str], x: str, y: str) -> DTA:
    """``child(x, y)``: y reachable from x by one left edge then right
    edges (``firstchild.nextsibling*``).  1=none, 2=y on the right spine of
    this subtree, 3=ok, 4=false."""

    def step(symbol: Symbol, ql: int, qr: int) -> int:
        _, marks = symbol
        mx, my = x in marks, y in marks
        if mx and my:
            return 4
        if my:
            if ql in (2, 3, 4) or qr in (2, 3, 4):
                return 4
            return 2
        if mx:
            return 3 if ql == 2 else 4
        if ql == 2:
            return 4  # spine broken by a left edge below a non-x node
        if qr == 2:
            return 2  # spine extends through the right edge
        for q in (ql, qr):
            if q in (3, 4):
                return q
        return 1

    return dta_from_step(_alphabet(labels, context), 5, _EMPTY, step, {3})


def _atom_descendant(labels: Sequence[str], context: Sequence[str], x: str, y: str) -> DTA:
    """``descendant(x, y)`` (``child+``): y strictly below x in the
    original tree, i.e. anywhere in x's left (firstchild) subtree."""

    def step(symbol: Symbol, ql: int, qr: int) -> int:
        _, marks = symbol
        mx, my = x in marks, y in marks
        if mx and my:
            return 4
        if my:
            if ql in (2, 3, 4) or qr in (2, 3, 4):
                return 4
            return 2
        if mx:
            return 3 if ql == 2 else 4
        if ql == 2 or qr == 2:
            return 2
        for q in (ql, qr):
            if q in (3, 4):
                return q
        return 1

    return dta_from_step(_alphabet(labels, context), 5, _EMPTY, step, {3})


def _atom_sibling_before(labels: Sequence[str], context: Sequence[str], x: str, y: str) -> DTA:
    """``sibling_before(x, y)`` (``nextsibling+``): y reachable from x by
    one or more right edges."""

    def step(symbol: Symbol, ql: int, qr: int) -> int:
        _, marks = symbol
        mx, my = x in marks, y in marks
        if mx and my:
            return 4
        if my:
            if ql in (2, 3, 4) or qr in (2, 3, 4):
                return 4
            return 2
        if mx:
            return 3 if qr == 2 else 4
        if qr == 2:
            return 2  # right spine extends
        if ql == 2:
            return 4  # spine broken by a left edge
        for q in (ql, qr):
            if q in (3, 4):
                return q
        return 1

    return dta_from_step(_alphabet(labels, context), 5, _EMPTY, step, {3})


def _atom_before(labels: Sequence[str], context: Sequence[str], x: str, y: str) -> DTA:
    """``before(x, y)``: x strictly precedes y in document order.

    Document order is the preorder of the binary encoding (node, left
    subtree, right subtree).  States: 1=none, 2=x only, 3=y only,
    4=x before y (ok), 5=y before x (false)."""

    def step(symbol: Symbol, ql: int, qr: int) -> int:
        _, marks = symbol
        mx, my = x in marks, y in marks
        seen_x = False
        seen_y = False
        if mx and my:
            return 5  # same node: not *strictly* before
        if mx:
            seen_x = True
        if my:
            seen_y = True
        for q in (ql, qr):  # preorder: current node, then left, then right
            if q == 4:
                return 4
            if q == 5:
                return 5
            if q == 2:
                if seen_y:
                    return 5
                seen_x = True
            elif q == 3:
                if seen_x:
                    return 4
                seen_y = True
        if seen_x and seen_y:
            # both marks at this very node handled above; x at node plus y
            # in a subtree was resolved in the loop, so this is unreachable
            # on valid markings -- classify as ok for definiteness.
            return 4
        if seen_x:
            return 2
        if seen_y:
            return 3
        return 1

    return dta_from_step(_alphabet(labels, context), 6, _EMPTY, step, {4})


def _atom_member(labels: Sequence[str], context: Sequence[str], x: str, bigx: str) -> DTA:
    """``x in X``: the x-marked node also carries the X mark."""

    def step(symbol: Symbol, ql: int, qr: int) -> int:
        _, marks = symbol
        if x in marks:
            return 2 if bigx in marks else 3
        for q in (ql, qr):
            if q in (2, 3):
                return q
        return 1

    return dta_from_step(_alphabet(labels, context), 4, _EMPTY, step, {2})


def _atom_subset(labels: Sequence[str], context: Sequence[str], bigx: str, bigy: str) -> DTA:
    """``X sub Y``: every X-marked node is Y-marked.  1=ok so far, 2=bad."""

    def step(symbol: Symbol, ql: int, qr: int) -> int:
        _, marks = symbol
        if bigx in marks and bigy not in marks:
            return 2
        if ql == 2 or qr == 2:
            return 2
        return 1

    return dta_from_step(_alphabet(labels, context), 3, _EMPTY, step, {1})


def exactly_one(labels: Sequence[str], context: Sequence[str], x: str) -> DTA:
    """Validity automaton: the mark ``x`` occurs on exactly one node.
    1=zero so far, 2=one, 3=more than one."""

    def step(symbol: Symbol, ql: int, qr: int) -> int:
        _, marks = symbol
        count = (1 if x in marks else 0)
        for q in (ql, qr):
            if q == 2:
                count += 1
            elif q == 3:
                return 3
        if count > 1:
            return 3
        return 2 if count == 1 else 1

    return dta_from_step(_alphabet(labels, context), 4, _EMPTY, step, {2})


_ATOMIC_BUILDERS: Dict[str, Callable[..., DTA]] = {
    "root": _atom_root,
    "leaf": _atom_leaf,
    "lastsibling": _atom_lastsibling,
    "firstsibling": _atom_firstsibling,
    "eq": _atom_eq,
    "firstchild": _atom_firstchild,
    "nextsibling": _atom_nextsibling,
    "child": _atom_child,
    "descendant": _atom_descendant,
    "sibling_before": _atom_sibling_before,
    "before": _atom_before,
}


# ---------------------------------------------------------------------------
# The compiler proper.
# ---------------------------------------------------------------------------


class _Compiler:
    def __init__(self, labels: Sequence[str]):
        self.labels = sorted(set(labels))
        if not self.labels:
            raise MSOError("compilation requires a nonempty label alphabet")

    def compile(self, formula: Formula, context: Tuple[str, ...]) -> DTA:
        if isinstance(formula, Rel):
            return self._compile_rel(formula, context)
        if isinstance(formula, Member):
            self._check_in_context(formula.element.name, context)
            self._check_in_context(formula.container.name, context)
            return _atom_member(
                self.labels, context, formula.element.name, formula.container.name
            )
        if isinstance(formula, Subset):
            self._check_in_context(formula.left.name, context)
            self._check_in_context(formula.right.name, context)
            return _atom_subset(
                self.labels, context, formula.left.name, formula.right.name
            )
        if isinstance(formula, Not):
            return self.compile(formula.inner, context).complement()
        if isinstance(formula, And):
            out = self.compile(formula.parts[0], context)
            for part in formula.parts[1:]:
                out = intersect(out, self.compile(part, context))
            return out
        if isinstance(formula, Or):
            out = self.compile(formula.parts[0], context)
            for part in formula.parts[1:]:
                out = union_dta(out, self.compile(part, context))
            return out
        if isinstance(formula, Implies):
            return union_dta(
                self.compile(formula.antecedent, context).complement(),
                self.compile(formula.consequent, context),
            )
        if isinstance(formula, Iff):
            left = self.compile(formula.left, context)
            right = self.compile(formula.right, context)
            return product(left, right, lambda a, b: a == b)
        if isinstance(formula, Exists):
            return self._compile_exists(formula.var, formula.body, context)
        if isinstance(formula, Forall):
            inner = Exists(formula.var, Not(formula.body))
            return self._compile_exists(inner.var, inner.body, context).complement()
        raise MSOError(f"unknown formula node {formula!r}")

    def _check_in_context(self, name: str, context: Tuple[str, ...]) -> None:
        if name not in context:
            raise MSOError(f"variable {name!r} not in compilation context {context}")

    def _compile_rel(self, formula: Rel, context: Tuple[str, ...]) -> DTA:
        for arg in formula.args:
            self._check_in_context(arg.name, context)
        names = [a.name for a in formula.args]
        if formula.name.startswith("label_"):
            if len(names) != 1:
                raise MSOError("label atoms are unary")
            return _atom_label(
                self.labels, context, names[0], formula.name[len("label_") :]
            )
        builder = _ATOMIC_BUILDERS.get(formula.name)
        if builder is None:
            raise MSOError(f"unsupported atomic relation {formula.name!r}")
        return builder(self.labels, context, *names)

    def _compile_exists(
        self, variable, body: Formula, context: Tuple[str, ...]
    ) -> DTA:
        name = variable.name
        if name in context:
            raise MSOError(
                f"quantified variable {name!r} shadows the context; run "
                "standardize_apart first"
            )
        inner_context = tuple(sorted(context + (name,)))
        inner = self.compile(body, inner_context)
        if isinstance(variable, FOVar):
            inner = intersect(inner, exactly_one(self.labels, inner_context, name))

        def project(symbol: Symbol) -> Symbol:
            label, marks = symbol
            return (label, marks - {name})

        nta = inner.minimize().to_nta().relabel(project)
        return nta.determinize(max_states=MAX_AUTOMATON_STATES).minimize()


def compile_formula(
    formula: Formula, context: Sequence[str], labels: Sequence[str]
) -> DTA:
    """Compile ``formula`` to a DTA over alphabet ``labels x 2^context``.

    ``context`` must contain all free variables (first- and second-order).
    The formula is standardized apart first.
    """
    formula = standardize_apart(formula)
    fo_free, so_free = free_variables(formula)
    missing = (fo_free | so_free) - set(context)
    if missing:
        raise MSOError(f"free variables {sorted(missing)} missing from context")
    return _Compiler(labels).compile(formula, tuple(sorted(set(context))))


def compile_sentence(formula: Formula, labels: Sequence[str]) -> DTA:
    """Compile a sentence to a DTA over the *plain* label alphabet
    (Proposition 2.1: MSO-definable = regular)."""
    fo_free, so_free = free_variables(formula)
    if fo_free or so_free:
        raise MSOError(
            f"sentence expected; free variables {sorted(fo_free | so_free)}"
        )
    marked = compile_formula(formula, (), labels).minimize()
    # Strip the (label, frozenset()) wrapping: a bijective relabeling.
    delta = {
        (symbol[0], ql, qr): q
        for (symbol, ql, qr), q in marked.delta.items()
    }
    return DTA(
        marked.num_states,
        {symbol[0] for symbol in marked.alphabet},
        marked.empty_state,
        delta,
        marked.accept,
    )


def compile_query(
    formula: Formula, free_var: str, labels: Sequence[str]
) -> UnaryQueryDTA:
    """Compile a unary query ``phi(x)`` to a :class:`UnaryQueryDTA`.

    The result is intersected with the exactly-one validity automaton for
    the query variable, so its language consists precisely of the correctly
    marked witnesses.
    """
    fo_free, so_free = free_variables(formula)
    if so_free or fo_free - {free_var}:
        raise MSOError(
            f"query must have exactly the free variable {free_var!r}; "
            f"found FO={sorted(fo_free)}, SO={sorted(so_free)}"
        )
    dta = compile_formula(formula, (free_var,), labels)
    dta = intersect(dta, exactly_one(sorted(set(labels)), (free_var,), free_var))
    return UnaryQueryDTA(dta.minimize(), free_var)

"""Theorem 4.4: unary MSO queries compile to monadic datalog over ``tau_ur``.

The paper proves the theorem with an (effective but non-constructive as
stated) Ehrenfeucht-Fraisse type construction.  We realize the same result
through the classical automata route:

    MSO formula  --(Thatcher-Wright compilation)-->  DTA over the marked
    binary encoding  --(two-pass decomposition)-->  monadic datalog.

The emitted program has exactly the anatomy of the paper's proof: the
``st_*``/``fcst_*``/``nsst_*`` predicates compute the bottom-up "types" of
part (1), the ``acc_*`` predicates the top-down envelope types of part (2),
and the final selection rules are the combination rules of part (3).

Evaluating the emitted program with the Theorem 4.2 engine gives linear
data complexity, while the formula-to-automaton step carries the
non-elementary constant the paper attributes to MSO (Frick & Grohe).
"""

from __future__ import annotations

from typing import Sequence, Tuple

from repro.automata.dta_to_datalog import unary_dta_to_datalog
from repro.automata.unary import UnaryQueryDTA
from repro.datalog.program import Program
from repro.mso.compile import compile_query
from repro.mso.syntax import Formula


def mso_to_datalog(
    formula: Formula,
    free_var: str,
    labels: Sequence[str],
    query_pred: str = "select",
) -> Tuple[Program, UnaryQueryDTA]:
    """Compile a unary MSO query to an equivalent monadic datalog program.

    Parameters
    ----------
    formula:
        MSO formula with exactly one free first-order variable.
    free_var:
        The free variable's name.
    labels:
        The label alphabet the query will run against (trees containing
        other labels are rejected by the automaton and must not be passed
        to the emitted program).
    query_pred:
        Name for the program's query predicate.

    Returns
    -------
    (Program, UnaryQueryDTA)
        The datalog program and the intermediate automaton (useful for
        direct linear-time evaluation and for containment tests).
    """
    query = compile_query(formula, free_var, labels)
    program = unary_dta_to_datalog(query, labels=sorted(set(labels)), query_pred=query_pred)
    return program, query

"""A small textual syntax for MSO formulas.

Grammar (precedence low to high: ``<->``, ``->``, ``|``, ``&``, ``~``)::

    formula   ::= iff
    iff       ::= implies ("<->" implies)*
    implies   ::= or ("->" or)*            (right associative)
    or        ::= and ("|" and)*
    and       ::= unary ("&" unary)*
    unary     ::= "~" unary | quantifier | primary
    quantifier::= ("exists" | "forall") var+ "(" formula ")"
    primary   ::= "(" formula ")" | atom
    atom      ::= name "(" var ("," var)* ")"
                | var "in" VAR | VAR "sub" VAR
                | var "=" var  | var "<" var

First-order variables start with a lowercase letter, second-order (set)
variables with an uppercase letter.  ``x < y`` denotes document order
(``before``), ``x = y`` equality.

>>> str(parse_mso("exists y (firstchild(y, x) & label_a(y))"))
'exists y ((firstchild(y, x) & label_a(y)))'
"""

from __future__ import annotations

from typing import List

from repro.errors import ParseError
from repro.mso.syntax import (
    And,
    Exists,
    FOVar,
    Forall,
    Formula,
    Iff,
    Implies,
    Member,
    Not,
    Or,
    Rel,
    SOVar,
    Subset,
)

_IDENT_START = set("abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ_")
_IDENT_CHARS = _IDENT_START | set("0123456789")


class _Reader:
    def __init__(self, text: str):
        self.text = text
        self.pos = 0

    def error(self, message: str) -> ParseError:
        return ParseError(message, position=self.pos)

    def skip(self) -> None:
        while self.pos < len(self.text) and self.text[self.pos].isspace():
            self.pos += 1

    def peek_token(self) -> str:
        self.skip()
        if self.pos >= len(self.text):
            return ""
        c = self.text[self.pos]
        if c in _IDENT_START:
            end = self.pos
            while end < len(self.text) and self.text[end] in _IDENT_CHARS:
                end += 1
            return self.text[self.pos : end]
        for op in ("<->", "->", "<", "=", "|", "&", "~", "(", ")", ","):
            if self.text.startswith(op, self.pos):
                return op
        return c

    def consume(self, token: str) -> None:
        if self.peek_token() != token:
            raise self.error(f"expected {token!r}")
        self.pos += len(token)

    def try_consume(self, token: str) -> bool:
        if self.peek_token() == token:
            self.pos += len(token)
            return True
        return False

    def identifier(self) -> str:
        token = self.peek_token()
        if not token or token[0] not in _IDENT_START:
            raise self.error("expected an identifier")
        self.pos += len(token)
        return token


def _variable(name: str):
    return SOVar(name) if name[0].isupper() else FOVar(name)


def _parse_formula(r: _Reader) -> Formula:
    return _parse_iff(r)


def _parse_iff(r: _Reader) -> Formula:
    left = _parse_implies(r)
    while r.try_consume("<->"):
        right = _parse_implies(r)
        left = Iff(left, right)
    return left


def _parse_implies(r: _Reader) -> Formula:
    left = _parse_or(r)
    if r.try_consume("->"):
        right = _parse_implies(r)
        return Implies(left, right)
    return left


def _parse_or(r: _Reader) -> Formula:
    parts = [_parse_and(r)]
    while r.try_consume("|"):
        parts.append(_parse_and(r))
    return parts[0] if len(parts) == 1 else Or(tuple(parts))


def _parse_and(r: _Reader) -> Formula:
    parts = [_parse_unary(r)]
    while r.try_consume("&"):
        parts.append(_parse_unary(r))
    return parts[0] if len(parts) == 1 else And(tuple(parts))


def _parse_unary(r: _Reader) -> Formula:
    token = r.peek_token()
    if token == "~":
        r.consume("~")
        return Not(_parse_unary(r))
    if token in ("exists", "forall"):
        r.consume(token)
        variables: List = []
        while True:
            name = r.identifier()
            variables.append(_variable(name))
            if r.peek_token() == "(":
                break
        r.consume("(")
        body = _parse_formula(r)
        r.consume(")")
        for variable in reversed(variables):
            body = Exists(variable, body) if token == "exists" else Forall(variable, body)
        return body
    if token == "(":
        r.consume("(")
        inner = _parse_formula(r)
        r.consume(")")
        return inner
    return _parse_atom(r)


def _parse_atom(r: _Reader) -> Formula:
    name = r.identifier()
    token = r.peek_token()
    if token == "(":
        r.consume("(")
        args = [r.identifier()]
        while r.try_consume(","):
            args.append(r.identifier())
        r.consume(")")
        variables = []
        for arg in args:
            variable = _variable(arg)
            if isinstance(variable, SOVar):
                raise r.error(f"set variable {arg!r} in a structural atom")
            variables.append(variable)
        return Rel(name, tuple(variables))
    if token == "in":
        r.consume("in")
        container = r.identifier()
        if not container[0].isupper():
            raise r.error("the right side of 'in' must be a set variable")
        if name[0].isupper():
            raise r.error("the left side of 'in' must be a node variable")
        return Member(FOVar(name), SOVar(container))
    if token == "sub":
        r.consume("sub")
        right = r.identifier()
        if not (name[0].isupper() and right[0].isupper()):
            raise r.error("'sub' relates two set variables")
        return Subset(SOVar(name), SOVar(right))
    if token == "=":
        r.consume("=")
        right = r.identifier()
        return Rel("eq", (FOVar(name), FOVar(right)))
    if token == "<":
        r.consume("<")
        right = r.identifier()
        return Rel("before", (FOVar(name), FOVar(right)))
    raise r.error(f"unexpected token after {name!r}")


def parse_mso(text: str) -> Formula:
    """Parse an MSO formula from text (see module docstring for grammar)."""
    reader = _Reader(text)
    formula = _parse_formula(reader)
    reader.skip()
    if reader.pos != len(reader.text):
        raise reader.error("trailing input after formula")
    return formula

"""Abstract syntax of MSO over unranked trees.

Section 2 defines MSO over tree structures with node variables, set
variables, boolean connectives and quantifiers over both sorts.  Atomic
formulas are the relations of ``tau_ur`` plus equality and membership; we
additionally support the standard MSO-definable relations ``child``,
``descendant``, ``before`` (document order) and ``sibling_before`` as
built-in atoms (each carries a direct automaton in
:mod:`repro.mso.compile`, avoiding an unnecessary quantifier blow-up).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, Set, Tuple, Union


@dataclass(frozen=True, order=True)
class FOVar:
    """A first-order (node) variable."""

    name: str

    def __str__(self) -> str:
        return self.name


@dataclass(frozen=True, order=True)
class SOVar:
    """A second-order (set) variable."""

    name: str

    def __str__(self) -> str:
        return self.name


Var = Union[FOVar, SOVar]


def fo(name: str) -> FOVar:
    """Shorthand for :class:`FOVar`."""
    return FOVar(name)


def so(name: str) -> SOVar:
    """Shorthand for :class:`SOVar`."""
    return SOVar(name)


class Formula:
    """Base class of MSO formulas."""


#: Unary structural relations over ``tau_ur`` (plus ``firstsibling``).
UNARY_RELATIONS = ("root", "leaf", "lastsibling", "firstsibling")

#: Binary relations with direct automata in the compiler.
BINARY_RELATIONS = (
    "eq",
    "firstchild",
    "nextsibling",
    "child",
    "descendant",
    "before",
    "sibling_before",
)


@dataclass(frozen=True)
class Rel(Formula):
    """An atomic structural relation over first-order variables.

    ``name`` is one of :data:`UNARY_RELATIONS`, :data:`BINARY_RELATIONS`, or
    ``label_<a>`` for a label ``a``.
    """

    name: str
    args: Tuple[FOVar, ...]

    def __str__(self) -> str:
        return f"{self.name}({', '.join(str(a) for a in self.args)})"


@dataclass(frozen=True)
class Member(Formula):
    """Membership ``x in X``."""

    element: FOVar
    container: SOVar

    def __str__(self) -> str:
        return f"{self.element} in {self.container}"


@dataclass(frozen=True)
class Subset(Formula):
    """Set inclusion ``X sub Y`` (syntactic sugar the paper allows)."""

    left: SOVar
    right: SOVar

    def __str__(self) -> str:
        return f"{self.left} sub {self.right}"


@dataclass(frozen=True)
class Not(Formula):
    """Negation."""

    inner: Formula

    def __str__(self) -> str:
        return f"~({self.inner})"


@dataclass(frozen=True)
class And(Formula):
    """Conjunction of two or more formulas."""

    parts: Tuple[Formula, ...]

    def __str__(self) -> str:
        return "(" + " & ".join(str(p) for p in self.parts) + ")"


@dataclass(frozen=True)
class Or(Formula):
    """Disjunction of two or more formulas."""

    parts: Tuple[Formula, ...]

    def __str__(self) -> str:
        return "(" + " | ".join(str(p) for p in self.parts) + ")"


@dataclass(frozen=True)
class Implies(Formula):
    """Implication."""

    antecedent: Formula
    consequent: Formula

    def __str__(self) -> str:
        return f"({self.antecedent} -> {self.consequent})"


@dataclass(frozen=True)
class Iff(Formula):
    """Biconditional."""

    left: Formula
    right: Formula

    def __str__(self) -> str:
        return f"({self.left} <-> {self.right})"


@dataclass(frozen=True)
class Exists(Formula):
    """Existential quantification over a node or set variable."""

    var: Var
    body: Formula

    def __str__(self) -> str:
        sort = "set " if isinstance(self.var, SOVar) else ""
        return f"exists {sort}{self.var} ({self.body})"


@dataclass(frozen=True)
class Forall(Formula):
    """Universal quantification over a node or set variable."""

    var: Var
    body: Formula

    def __str__(self) -> str:
        sort = "set " if isinstance(self.var, SOVar) else ""
        return f"forall {sort}{self.var} ({self.body})"


def conj(*parts: Formula) -> Formula:
    """N-ary conjunction convenience (flattens; unit for one part)."""
    flat = []
    for part in parts:
        if isinstance(part, And):
            flat.extend(part.parts)
        else:
            flat.append(part)
    return flat[0] if len(flat) == 1 else And(tuple(flat))


def disj(*parts: Formula) -> Formula:
    """N-ary disjunction convenience."""
    flat = []
    for part in parts:
        if isinstance(part, Or):
            flat.extend(part.parts)
        else:
            flat.append(part)
    return flat[0] if len(flat) == 1 else Or(tuple(flat))


def label(name: str, x: FOVar) -> Rel:
    """``label_<name>(x)``."""
    return Rel(f"label_{name}", (x,))


def free_variables(formula: Formula) -> Tuple[Set[str], Set[str]]:
    """Free first-order and second-order variable names of a formula."""
    fo_free: Set[str] = set()
    so_free: Set[str] = set()

    def walk(f: Formula, bound_fo: FrozenSet[str], bound_so: FrozenSet[str]) -> None:
        if isinstance(f, Rel):
            for arg in f.args:
                if arg.name not in bound_fo:
                    fo_free.add(arg.name)
        elif isinstance(f, Member):
            if f.element.name not in bound_fo:
                fo_free.add(f.element.name)
            if f.container.name not in bound_so:
                so_free.add(f.container.name)
        elif isinstance(f, Subset):
            for v in (f.left, f.right):
                if v.name not in bound_so:
                    so_free.add(v.name)
        elif isinstance(f, Not):
            walk(f.inner, bound_fo, bound_so)
        elif isinstance(f, (And, Or)):
            for part in f.parts:
                walk(part, bound_fo, bound_so)
        elif isinstance(f, Implies):
            walk(f.antecedent, bound_fo, bound_so)
            walk(f.consequent, bound_fo, bound_so)
        elif isinstance(f, Iff):
            walk(f.left, bound_fo, bound_so)
            walk(f.right, bound_fo, bound_so)
        elif isinstance(f, (Exists, Forall)):
            if isinstance(f.var, FOVar):
                walk(f.body, bound_fo | {f.var.name}, bound_so)
            else:
                walk(f.body, bound_fo, bound_so | {f.var.name})
        else:
            raise TypeError(f"unknown formula node {f!r}")

    walk(formula, frozenset(), frozenset())
    return fo_free, so_free


def quantifier_rank(formula: Formula) -> int:
    """Maximum nesting depth of quantifiers (Section 2)."""
    if isinstance(formula, (Rel, Member, Subset)):
        return 0
    if isinstance(formula, Not):
        return quantifier_rank(formula.inner)
    if isinstance(formula, (And, Or)):
        return max(quantifier_rank(p) for p in formula.parts)
    if isinstance(formula, Implies):
        return max(quantifier_rank(formula.antecedent), quantifier_rank(formula.consequent))
    if isinstance(formula, Iff):
        return max(quantifier_rank(formula.left), quantifier_rank(formula.right))
    if isinstance(formula, (Exists, Forall)):
        return 1 + quantifier_rank(formula.body)
    raise TypeError(f"unknown formula node {formula!r}")


def standardize_apart(formula: Formula) -> Formula:
    """Rename bound variables so that no name is bound twice or shadows a
    free variable.  The compiler requires this discipline."""
    fo_free, so_free = free_variables(formula)
    used: Set[str] = set(fo_free) | set(so_free)
    counter = [0]

    def fresh(base: str) -> str:
        candidate = base
        while candidate in used:
            counter[0] += 1
            candidate = f"{base}_{counter[0]}"
        used.add(candidate)
        return candidate

    def walk(f: Formula, ren_fo: Dict[str, str], ren_so: Dict[str, str]) -> Formula:
        if isinstance(f, Rel):
            return Rel(f.name, tuple(FOVar(ren_fo.get(a.name, a.name)) for a in f.args))
        if isinstance(f, Member):
            return Member(
                FOVar(ren_fo.get(f.element.name, f.element.name)),
                SOVar(ren_so.get(f.container.name, f.container.name)),
            )
        if isinstance(f, Subset):
            return Subset(
                SOVar(ren_so.get(f.left.name, f.left.name)),
                SOVar(ren_so.get(f.right.name, f.right.name)),
            )
        if isinstance(f, Not):
            return Not(walk(f.inner, ren_fo, ren_so))
        if isinstance(f, And):
            return And(tuple(walk(p, ren_fo, ren_so) for p in f.parts))
        if isinstance(f, Or):
            return Or(tuple(walk(p, ren_fo, ren_so) for p in f.parts))
        if isinstance(f, Implies):
            return Implies(walk(f.antecedent, ren_fo, ren_so), walk(f.consequent, ren_fo, ren_so))
        if isinstance(f, Iff):
            return Iff(walk(f.left, ren_fo, ren_so), walk(f.right, ren_fo, ren_so))
        if isinstance(f, (Exists, Forall)):
            cls = type(f)
            if isinstance(f.var, FOVar):
                new_name = fresh(f.var.name)
                body = walk(f.body, {**ren_fo, f.var.name: new_name}, ren_so)
                return cls(FOVar(new_name), body)
            new_name = fresh(f.var.name)
            body = walk(f.body, ren_fo, {**ren_so, f.var.name: new_name})
            return cls(SOVar(new_name), body)
        raise TypeError(f"unknown formula node {f!r}")

    return walk(formula, {}, {})

"""Monadic second-order logic over unranked trees (Sections 2 and 4.2).

* :mod:`repro.mso.syntax` -- the formula AST (first-order and set
  variables, atomic relations of ``tau_ur`` plus standard derived relations,
  boolean connectives, quantifiers);
* :mod:`repro.mso.parser` -- a small textual syntax;
* :mod:`repro.mso.naive` -- direct model checking by enumeration (the
  semantics reference; exponential, for small trees);
* :mod:`repro.mso.compile` -- compilation to deterministic bottom-up tree
  automata over the marked binary encoding (the Thatcher-Wright /
  Doner route behind Proposition 2.1);
* :mod:`repro.mso.to_datalog` -- Theorem 4.4: every unary MSO query becomes
  an equivalent monadic datalog program over ``tau_ur``.
"""

from repro.mso.syntax import (
    And,
    Exists,
    FOVar,
    Forall,
    Formula,
    Iff,
    Implies,
    Member,
    Not,
    Or,
    Rel,
    SOVar,
    Subset,
    fo,
    so,
    free_variables,
)
from repro.mso.parser import parse_mso
from repro.mso.naive import naive_check, naive_eval, naive_select
from repro.mso.compile import compile_query, compile_sentence
from repro.mso.to_datalog import mso_to_datalog

__all__ = [
    "Formula",
    "FOVar",
    "SOVar",
    "fo",
    "so",
    "Rel",
    "Member",
    "Subset",
    "Not",
    "And",
    "Or",
    "Implies",
    "Iff",
    "Exists",
    "Forall",
    "free_variables",
    "parse_mso",
    "naive_eval",
    "naive_check",
    "naive_select",
    "compile_query",
    "compile_sentence",
    "mso_to_datalog",
]

"""Naive MSO model checking by enumeration (the semantics reference).

First-order quantifiers range over the domain; set quantifiers range over
all ``2^n`` subsets, so this evaluator is exponential and guarded by a size
limit.  It exists to pin down the semantics: the automaton compiler of
:mod:`repro.mso.compile` and the datalog translation of Theorem 4.4 are
validated against it on randomized small trees.
"""

from __future__ import annotations

from itertools import chain, combinations
from typing import Dict, FrozenSet, Iterable, Set

from repro.errors import MSOError
from repro.mso.syntax import (
    And,
    Exists,
    FOVar,
    Forall,
    Formula,
    Iff,
    Implies,
    Member,
    Not,
    Or,
    Rel,
    SOVar,
    Subset,
)
from repro.trees.unranked import UnrankedStructure

#: Trees larger than this refuse set quantification (2^n subsets).
_SO_LIMIT = 16

_REL_MAP = {
    "eq": None,  # handled directly
    "before": None,  # document order = identifier order
    "firstchild": "firstchild",
    "nextsibling": "nextsibling",
    "child": "child",
    "descendant": "child_plus",
    "sibling_before": "nextsibling_plus",
}


def _subsets(domain: Iterable[int]) -> Iterable[FrozenSet[int]]:
    items = list(domain)
    return (
        frozenset(c)
        for c in chain.from_iterable(
            combinations(items, r) for r in range(len(items) + 1)
        )
    )


def naive_eval(
    formula: Formula,
    structure: UnrankedStructure,
    fo_assign: Dict[str, int] | None = None,
    so_assign: Dict[str, FrozenSet[int]] | None = None,
) -> bool:
    """Evaluate a formula under explicit assignments (Tarskian semantics)."""
    fo_env = dict(fo_assign or {})
    so_env = dict(so_assign or {})

    def ev(f: Formula, fo_env: Dict[str, int], so_env: Dict[str, FrozenSet[int]]) -> bool:
        if isinstance(f, Rel):
            values = []
            for arg in f.args:
                if arg.name not in fo_env:
                    raise MSOError(f"unbound first-order variable {arg.name!r}")
                values.append(fo_env[arg.name])
            if f.name == "eq":
                return values[0] == values[1]
            if f.name == "before":
                return values[0] < values[1]
            rel_name = _REL_MAP.get(f.name, f.name)
            return tuple(values) in structure.relation(rel_name)
        if isinstance(f, Member):
            if f.element.name not in fo_env:
                raise MSOError(f"unbound first-order variable {f.element.name!r}")
            if f.container.name not in so_env:
                raise MSOError(f"unbound set variable {f.container.name!r}")
            return fo_env[f.element.name] in so_env[f.container.name]
        if isinstance(f, Subset):
            for v in (f.left, f.right):
                if v.name not in so_env:
                    raise MSOError(f"unbound set variable {v.name!r}")
            return so_env[f.left.name] <= so_env[f.right.name]
        if isinstance(f, Not):
            return not ev(f.inner, fo_env, so_env)
        if isinstance(f, And):
            return all(ev(p, fo_env, so_env) for p in f.parts)
        if isinstance(f, Or):
            return any(ev(p, fo_env, so_env) for p in f.parts)
        if isinstance(f, Implies):
            return (not ev(f.antecedent, fo_env, so_env)) or ev(f.consequent, fo_env, so_env)
        if isinstance(f, Iff):
            return ev(f.left, fo_env, so_env) == ev(f.right, fo_env, so_env)
        if isinstance(f, (Exists, Forall)):
            exists = isinstance(f, Exists)
            if isinstance(f.var, FOVar):
                witnesses = (
                    ev(f.body, {**fo_env, f.var.name: v}, so_env)
                    for v in structure.domain
                )
            else:
                if structure.size > _SO_LIMIT:
                    raise MSOError(
                        f"naive set quantification refuses trees with more "
                        f"than {_SO_LIMIT} nodes (got {structure.size})"
                    )
                witnesses = (
                    ev(f.body, fo_env, {**so_env, f.var.name: s})
                    for s in _subsets(structure.domain)
                )
            return any(witnesses) if exists else all(witnesses)
        raise MSOError(f"unknown formula node {f!r}")

    return ev(formula, fo_env, so_env)


def naive_check(formula: Formula, structure: UnrankedStructure) -> bool:
    """Evaluate a sentence (no free variables)."""
    return naive_eval(formula, structure)


def naive_select(
    formula: Formula, free_var: str, structure: UnrankedStructure
) -> Set[int]:
    """The unary query ``{x | t |= phi(x)}`` by direct enumeration."""
    return {
        v
        for v in structure.domain
        if naive_eval(formula, structure, fo_assign={free_var: v})
    }

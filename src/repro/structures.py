"""Finite relational structures.

The paper evaluates (monadic) datalog over two kinds of structures:

* arbitrary finite structures (Propositions 3.4-3.7), and
* tree structures presented by the schemata ``tau_rk`` / ``tau_ur``
  (Section 2).

This module defines the minimal interface the datalog engine needs
(:class:`Structure`) together with :class:`GenericStructure`, a plain
dictionary-backed implementation used for the "arbitrary finite structure"
results and in tests, and :class:`IndexedStructure`, the shared per-document
evaluation runtime: a caching wrapper that builds relation extensions,
functional maps and positional hash indexes once and serves them to every
query evaluated on the same document.  The tree-backed implementations live
in :mod:`repro.trees.unranked` and :mod:`repro.trees.ranked`.

Conventions
-----------
* The domain is always ``range(n)`` for some ``n >= 0``; domain elements are
  plain integers.
* ``relation(name)`` returns a set of tuples, regardless of arity; a unary
  fact for element ``v`` is the 1-tuple ``(v,)``.
* ``functional(name)`` exposes the bidirectional functional dependencies of
  Proposition 4.1 (each binary tree relation is a partial bijection); it
  returns ``None`` for relations that are not bidirectionally functional,
  which is how the engine decides whether Theorem 4.2's linear grounding
  strategy applies.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Iterable, List, Optional, Set, Tuple, Union

from repro.errors import DatalogError

Fact = Tuple[int, ...]


class Structure:
    """Abstract finite relational structure over domain ``range(size)``."""

    @property
    def size(self) -> int:
        """Number of domain elements."""
        raise NotImplementedError

    @property
    def domain(self) -> range:
        """The domain, always ``range(self.size)``."""
        return range(self.size)

    def has_relation(self, name: str) -> bool:
        """Return whether this structure can supply relation ``name``."""
        raise NotImplementedError

    def relation(self, name: str) -> FrozenSet[Fact]:
        """Return the extension of relation ``name`` as a set of tuples."""
        raise NotImplementedError

    def arity(self, name: str) -> int:
        """Return the arity of relation ``name``."""
        raise NotImplementedError

    def functional(self, name: str) -> Optional[Tuple[Dict[int, int], Dict[int, int]]]:
        """Forward/backward maps for bidirectionally functional relations.

        Returns ``(forward, backward)`` dictionaries when relation ``name``
        is binary and satisfies both functional dependencies
        ``$1 -> $2`` and ``$2 -> $1`` (Proposition 4.1), else ``None``.
        """
        return None

    def relation_names(self) -> Iterable[str]:
        """Iterate over the names of all available relations."""
        raise NotImplementedError

    def snapshot(self):
        """Columnar :class:`repro.trees.snapshot.TreeSnapshot`, if any.

        Tree-backed structures (:class:`repro.trees.unranked.UnrankedStructure`,
        :class:`repro.trees.ranked.RankedStructure`,
        :class:`repro.wrap.document.Document`) return their cached
        snapshot; the default ``None`` tells the propagation kernel the
        strategy does not apply here.
        """
        return None

    # -- convenience -------------------------------------------------------

    def facts(self) -> Set[Tuple[str, Fact]]:
        """All facts of the structure as ``(relation_name, tuple)`` pairs."""
        out: Set[Tuple[str, Fact]] = set()
        for name in self.relation_names():
            for tup in self.relation(name):
                out.add((name, tup))
        return out

    def total_size(self) -> int:
        """``|sigma|``: domain size plus the number of stored facts."""
        return self.size + sum(len(self.relation(n)) for n in self.relation_names())


class GenericStructure(Structure):
    """A finite structure given explicitly by its relations.

    Parameters
    ----------
    size:
        Domain size; the domain is ``range(size)``.
    relations:
        Mapping from relation name to an iterable of facts.  Unary facts may
        be given as bare integers; they are normalized to 1-tuples.
    arities:
        Optional mapping from relation name to its declared arity.  Without
        it, an *empty* relation silently reports arity 1, which can mask
        arity mismatches; declaring arities makes empty relations report
        their true arity and turns a declared-vs-stored mismatch into an
        error at construction time.

    Examples
    --------
    >>> s = GenericStructure(3, {"edge": [(0, 1), (1, 2)], "start": [0]})
    >>> sorted(s.relation("edge"))
    [(0, 1), (1, 2)]
    >>> s.arity("start")
    1
    >>> GenericStructure(3, {"edge": []}, arities={"edge": 2}).arity("edge")
    2
    """

    def __init__(
        self,
        size: int,
        relations: Dict[str, Iterable],
        arities: Optional[Dict[str, int]] = None,
    ):
        if size < 0:
            raise DatalogError("structure size must be non-negative")
        self._size = size
        self._relations: Dict[str, FrozenSet[Fact]] = {}
        self._arities: Dict[str, int] = {}
        for name, declared_arity in (arities or {}).items():
            if name not in relations:
                raise DatalogError(
                    f"declared arity for unknown relation {name!r}"
                )
            if declared_arity < 0:
                raise DatalogError(f"negative arity for relation {name!r}")
            self._arities[name] = declared_arity
        for name, tuples in relations.items():
            normalized: Set[Fact] = set()
            for item in tuples:
                if isinstance(item, int):
                    fact: Fact = (item,)
                else:
                    fact = tuple(item)
                for value in fact:
                    if not 0 <= value < size:
                        raise DatalogError(
                            f"fact {fact!r} of relation {name!r} is outside "
                            f"the domain range(0, {size})"
                        )
                normalized.add(fact)
            if normalized:
                stored = {len(f) for f in normalized}
                if len(stored) != 1:
                    raise DatalogError(f"relation {name!r} has mixed arities")
                arity = stored.pop()
                declared = self._arities.setdefault(name, arity)
                if declared != arity:
                    raise DatalogError(
                        f"relation {name!r} declared with arity {declared} "
                        f"but stores {arity}-tuples"
                    )
            self._relations[name] = frozenset(normalized)

    @property
    def size(self) -> int:
        return self._size

    def has_relation(self, name: str) -> bool:
        return name in self._relations

    def relation(self, name: str) -> FrozenSet[Fact]:
        if name not in self._relations:
            raise DatalogError(f"unknown relation {name!r}")
        return self._relations[name]

    def arity(self, name: str) -> int:
        if name not in self._arities:
            # An empty relation with no declared arity defaults to 1 (pass
            # ``arities=`` at construction to make the true arity known).
            if name in self._relations:
                return 1
            raise DatalogError(f"unknown relation {name!r}")
        return self._arities[name]

    def functional(self, name: str) -> Optional[Tuple[Dict[int, int], Dict[int, int]]]:
        if not self.has_relation(name) or self.arity(name) != 2:
            return None
        forward: Dict[int, int] = {}
        backward: Dict[int, int] = {}
        for a, b in self.relation(name):
            if forward.get(a, b) != b or backward.get(b, a) != a:
                return None
            forward[a] = b
            backward[b] = a
        return forward, backward

    def relation_names(self) -> Iterable[str]:
        return self._relations.keys()


class IndexedStructure(Structure):
    """Caching, index-building view of another :class:`Structure`.

    Every evaluation strategy keeps re-asking a structure for the same
    relations, functional maps, and positional lookups.  An
    ``IndexedStructure`` is built **once per document** and shared across
    all queries on that document (the :class:`repro.wrap.extraction.Wrapper`
    batch APIs and :class:`repro.datalog.plan.CompiledProgram` both rely on
    this): relation extensions, bidirectional-functional maps and hash
    indexes are each computed on first use and memoized for the lifetime of
    the wrapper.

    Attribute access not covered by the :class:`Structure` interface (for
    example :meth:`repro.trees.unranked.UnrankedStructure.node` or
    ``root_node``) is delegated to the underlying base structure, so an
    ``IndexedStructure`` can be passed anywhere the base structure is
    expected.

    Examples
    --------
    >>> base = GenericStructure(4, {"edge": [(0, 1), (1, 2), (1, 3)]})
    >>> s = IndexedStructure(base)
    >>> sorted(s.index("edge", (0,))[(1,)])
    [(1, 2), (1, 3)]
    >>> s.index("edge", (0, 1))[(0, 1)]
    [(0, 1)]
    """

    def __init__(self, base: Structure):
        if isinstance(base, IndexedStructure):
            base = base.base
        self._base = base
        self._relations: Dict[str, FrozenSet[Fact]] = {}
        self._has: Dict[str, bool] = {}
        self._functional: Dict[
            str, Optional[Tuple[Dict[int, int], Dict[int, int]]]
        ] = {}
        self._indexes: Dict[
            Tuple[str, Tuple[int, ...]], Dict[Fact, List[Fact]]
        ] = {}
        self._facts: Optional[Set[Tuple[str, Fact]]] = None
        self._total_size: Optional[int] = None
        self._snapshot_cache: Optional[tuple] = None

    @property
    def base(self) -> Structure:
        """The wrapped structure."""
        return self._base

    @property
    def size(self) -> int:
        return self._base.size

    def has_relation(self, name: str) -> bool:
        if name not in self._has:
            self._has[name] = self._base.has_relation(name)
        return self._has[name]

    def relation(self, name: str) -> FrozenSet[Fact]:
        if name not in self._relations:
            self._relations[name] = self._base.relation(name)
        return self._relations[name]

    def arity(self, name: str) -> int:
        return self._base.arity(name)

    def functional(self, name: str) -> Optional[Tuple[Dict[int, int], Dict[int, int]]]:
        if name not in self._functional:
            self._functional[name] = self._base.functional(name)
        return self._functional[name]

    def relation_names(self) -> Iterable[str]:
        return self._base.relation_names()

    def facts(self) -> Set[Tuple[str, Fact]]:
        """All facts of the structure, computed once and cached."""
        if self._facts is None:
            self._facts = self._base.facts()
        return self._facts

    def total_size(self) -> int:
        """``|sigma|``, computed once and cached (benchmarks sweep this)."""
        if self._total_size is None:
            self._total_size = self._base.total_size()
        return self._total_size

    def snapshot(self):
        """The base structure's columnar tree snapshot, cached here.

        Returns ``None`` when the base structure has no snapshot (it is not
        tree-backed), which the kernel treats as "not applicable".
        """
        if self._snapshot_cache is None:
            build = getattr(self._base, "snapshot", None)
            self._snapshot_cache = (build() if build is not None else None,)
        return self._snapshot_cache[0]

    def index(
        self, name: str, positions: Union[int, Tuple[int, ...]]
    ) -> Dict[Fact, List[Fact]]:
        """Hash index of relation ``name`` on the given argument positions.

        Maps the tuple of values at ``positions`` to the list of matching
        facts.  Works for any arity; built lazily and memoized per
        ``(name, positions)`` pair.
        """
        if isinstance(positions, int):
            positions = (positions,)
        key = (name, positions)
        if key not in self._indexes:
            index: Dict[Fact, List[Fact]] = {}
            for tup in self.relation(name):
                index.setdefault(tuple(tup[p] for p in positions), []).append(tup)
            self._indexes[key] = index
        return self._indexes[key]

    def __getattr__(self, attr: str):
        # Delegate extra capabilities of the base structure (node lookup,
        # root_node, labels, ...) so the wrapper is a drop-in replacement.
        if attr.startswith("_"):
            raise AttributeError(attr)
        return getattr(self._base, attr)

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        return f"IndexedStructure({self._base!r})"


def as_indexed(structure: Structure) -> IndexedStructure:
    """Wrap ``structure`` in an :class:`IndexedStructure` (idempotent)."""
    if isinstance(structure, IndexedStructure):
        return structure
    return IndexedStructure(structure)

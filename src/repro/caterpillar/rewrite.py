"""Propositions 2.3 / 2.4: pushing inversions to atomic subexpressions.

The identities

    (E.F)^-1   = F^-1 . E^-1
    (E u F)^-1 = E^-1 u F^-1
    (E*)^-1    = (E^-1)*
    (E^-1)^-1  = E

rewrite any caterpillar expression into an equivalent inverse-free one over
the extended relation alphabet ``Gamma u {R^-1 | R in Gamma}`` in linear
time.  Unary relations are symmetric (identity pairs), so their inversions
simply drop.
"""

from __future__ import annotations

from repro.caterpillar.syntax import (
    EPSILON_NAME,
    CatAtom,
    CatConcat,
    CatExpr,
    CatInverse,
    CatStar,
    CatUnion,
    is_unary_relation,
)


def push_inversions(expr: CatExpr) -> CatExpr:
    """Equivalent expression whose only inversions are on atomic relations.

    >>> from repro.caterpillar.syntax import parse_caterpillar
    >>> str(push_inversions(parse_caterpillar("(firstchild.nextsibling)^-1")))
    'nextsibling^-1.firstchild^-1'
    """
    return _push(expr, inverted=False)


def _push(expr: CatExpr, inverted: bool) -> CatExpr:
    if isinstance(expr, CatAtom):
        if expr.name == EPSILON_NAME or is_unary_relation(expr.name):
            # eps and identity filters are symmetric.
            return CatAtom(expr.name, False)
        return CatAtom(expr.name, expr.inverted != inverted)
    if isinstance(expr, CatInverse):
        return _push(expr.inner, not inverted)
    if isinstance(expr, CatStar):
        return CatStar(_push(expr.inner, inverted))
    if isinstance(expr, CatUnion):
        return CatUnion(tuple(_push(p, inverted) for p in expr.parts))
    if isinstance(expr, CatConcat):
        parts = expr.parts[::-1] if inverted else expr.parts
        return CatConcat(tuple(_push(p, inverted) for p in parts))
    raise TypeError(f"unknown caterpillar node {expr!r}")


def atomic_steps(expr: CatExpr) -> set:
    """All ``(name, inverted)`` atomic steps of an inverse-free expression."""
    out = set()

    def walk(e: CatExpr) -> None:
        if isinstance(e, CatAtom):
            if e.name != EPSILON_NAME:
                out.add((e.name, e.inverted))
        elif isinstance(e, (CatConcat, CatUnion)):
            for p in e.parts:
                walk(p)
        elif isinstance(e, CatStar):
            walk(e.inner)
        elif isinstance(e, CatInverse):
            raise ValueError("expression still contains compound inversions")
        else:
            raise TypeError(f"unknown caterpillar node {e!r}")

    walk(expr)
    return out

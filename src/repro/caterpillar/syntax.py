"""Caterpillar expression AST and parser (Section 2).

Grammar (precedence: ``|`` lowest, then ``.``, then postfix ``*``, ``+``,
``^-1``)::

    expr    ::= seq ("|" seq)*
    seq     ::= postfix ("." postfix)*
    postfix ::= primary ("*" | "+" | "^-1")*
    primary ::= "(" expr ")" | "eps" | name

Atomic names denote binary relations (``firstchild``, ``nextsibling``,
``child``, ...) or unary relations (``root``, ``leaf``, ``lastsibling``,
``label_a``, ...); unary relations are interpreted as identity pairs
``{(x, x) | P(x)}`` as in the paper.

>>> str(parse_caterpillar("firstchild.nextsibling*"))
'firstchild.nextsibling*'
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

from repro.errors import ParseError

#: Relation names treated as unary (identity filters) by default.
UNARY_RELATION_NAMES = ("root", "leaf", "lastsibling", "firstsibling", "dom")


def is_unary_relation(name: str) -> bool:
    """Whether ``name`` denotes a unary relation (identity-pair filter)."""
    return name in UNARY_RELATION_NAMES or name.startswith(
        ("label_", "notlabel_")
    )


class CatExpr:
    """Base class of caterpillar expression nodes."""

    def size(self) -> int:
        """Number of AST nodes (the ``|E|`` of Proposition 2.4)."""
        raise NotImplementedError


@dataclass(frozen=True)
class CatAtom(CatExpr):
    """An atomic expression: a relation name, or ``eps`` for the empty word.

    ``inverted`` marks an atomic inversion (``R^-1``), the only kind of
    inversion surviving :func:`repro.caterpillar.rewrite.push_inversions`.
    """

    name: str
    inverted: bool = False

    def size(self) -> int:
        return 1

    def __str__(self) -> str:
        return f"{self.name}^-1" if self.inverted else self.name


@dataclass(frozen=True)
class CatConcat(CatExpr):
    """Concatenation (relation composition)."""

    parts: Tuple[CatExpr, ...]

    def size(self) -> int:
        return 1 + sum(p.size() for p in self.parts)

    def __str__(self) -> str:
        return ".".join(_wrap(p) for p in self.parts)


@dataclass(frozen=True)
class CatUnion(CatExpr):
    """Union."""

    parts: Tuple[CatExpr, ...]

    def size(self) -> int:
        return 1 + sum(p.size() for p in self.parts)

    def __str__(self) -> str:
        return "(" + " | ".join(str(p) for p in self.parts) + ")"


@dataclass(frozen=True)
class CatStar(CatExpr):
    """Reflexive-transitive closure."""

    inner: CatExpr

    def size(self) -> int:
        return 1 + self.inner.size()

    def __str__(self) -> str:
        return f"{_wrap(self.inner)}*"


@dataclass(frozen=True)
class CatInverse(CatExpr):
    """Inversion of a compound expression (eliminated by Proposition 2.4)."""

    inner: CatExpr

    def size(self) -> int:
        return 1 + self.inner.size()

    def __str__(self) -> str:
        return f"{_wrap(self.inner)}^-1"


def _wrap(e: CatExpr) -> str:
    if isinstance(e, (CatUnion, CatConcat)):
        return f"({e})"
    return str(e)


EPSILON_NAME = "eps"


def cat_atom(name: str, inverted: bool = False) -> CatAtom:
    """Atomic expression constructor."""
    return CatAtom(name, inverted)


def cat_concat(*parts: CatExpr) -> CatExpr:
    """Concatenation with flattening."""
    flat = []
    for p in parts:
        if isinstance(p, CatConcat):
            flat.extend(p.parts)
        else:
            flat.append(p)
    if not flat:
        return CatAtom(EPSILON_NAME)
    return flat[0] if len(flat) == 1 else CatConcat(tuple(flat))


def cat_union(*parts: CatExpr) -> CatExpr:
    """Union with flattening."""
    flat = []
    for p in parts:
        if isinstance(p, CatUnion):
            flat.extend(p.parts)
        else:
            flat.append(p)
    if not flat:
        raise ParseError("empty union")
    return flat[0] if len(flat) == 1 else CatUnion(tuple(flat))


def cat_star(inner: CatExpr) -> CatStar:
    """Kleene star constructor."""
    return CatStar(inner)


def cat_plus(inner: CatExpr) -> CatExpr:
    """``E+`` as ``E.E*`` (Section 2)."""
    return cat_concat(inner, CatStar(inner))


def cat_inverse(inner: CatExpr) -> CatExpr:
    """Inversion constructor (atomic inversions fold in place)."""
    if isinstance(inner, CatAtom) and inner.name != EPSILON_NAME:
        return CatAtom(inner.name, not inner.inverted)
    return CatInverse(inner)


_NAME_CHARS = set(
    "abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ0123456789_"
)


class _Reader:
    def __init__(self, text: str):
        self.text = text
        self.pos = 0

    def error(self, message: str) -> ParseError:
        return ParseError(message, position=self.pos)

    def skip(self) -> None:
        while self.pos < len(self.text) and self.text[self.pos].isspace():
            self.pos += 1

    def peek(self) -> str:
        self.skip()
        return self.text[self.pos] if self.pos < len(self.text) else ""

    def parse_expr(self) -> CatExpr:
        parts = [self.parse_seq()]
        while self.peek() == "|":
            self.pos += 1
            parts.append(self.parse_seq())
        return cat_union(*parts)

    def parse_seq(self) -> CatExpr:
        parts = [self.parse_postfix()]
        while self.peek() == ".":
            self.pos += 1
            parts.append(self.parse_postfix())
        return cat_concat(*parts)

    def parse_postfix(self) -> CatExpr:
        expr = self.parse_primary()
        while True:
            c = self.peek()
            if c == "*":
                self.pos += 1
                expr = cat_star(expr)
            elif c == "+":
                self.pos += 1
                expr = cat_plus(expr)
            elif c == "^":
                self.skip()
                if self.text.startswith("^-1", self.pos):
                    self.pos += 3
                    expr = cat_inverse(expr)
                else:
                    raise self.error("expected ^-1")
            else:
                return expr

    def parse_primary(self) -> CatExpr:
        c = self.peek()
        if c == "(":
            self.pos += 1
            inner = self.parse_expr()
            self.skip()
            if self.peek() != ")":
                raise self.error("expected ')'")
            self.pos += 1
            return inner
        start = self.pos
        while self.pos < len(self.text) and self.text[self.pos] in _NAME_CHARS:
            self.pos += 1
        if self.pos == start:
            raise self.error("expected a relation name")
        return CatAtom(self.text[start : self.pos])


def parse_caterpillar(text: str) -> CatExpr:
    """Parse a caterpillar expression (see module docstring)."""
    reader = _Reader(text)
    expr = reader.parse_expr()
    reader.skip()
    if reader.pos != len(text):
        raise reader.error("trailing input after expression")
    return expr

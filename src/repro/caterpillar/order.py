"""Named caterpillar expressions from the paper's examples.

* Example 2.5: document order
  ``child+  u  (child^-1)*.nextsibling+.child*`` with
  ``child = firstchild.nextsibling*``;
* Example 5.10: the ``child`` shortcut itself;
* the *total* expression ``(docorder | eps | docorder^-1)`` used by the
  connectedness step in the proof of Theorem 5.2.
"""

from __future__ import annotations

from repro.caterpillar.syntax import (
    CatExpr,
    cat_atom,
    cat_concat,
    cat_inverse,
    cat_plus,
    cat_star,
    cat_union,
)


def child_expression() -> CatExpr:
    """``child`` over ``tau_ur``: ``firstchild.nextsibling*`` (Example 5.10)."""
    return cat_concat(cat_atom("firstchild"), cat_star(cat_atom("nextsibling")))


def document_order_expression() -> CatExpr:
    """Document order ``<`` over ``tau_ur`` (Example 2.5).

    ``child+ u (child^-1)*.nextsibling+.child*``: a node precedes its
    descendants, and precedes everything inside subtrees hanging off right
    siblings of its ancestors (including itself).
    """
    child = child_expression()
    return cat_union(
        cat_plus(child),
        cat_concat(
            cat_star(cat_inverse(child)),
            cat_plus(cat_atom("nextsibling")),
            cat_star(child),
        ),
    )


def total_expression() -> CatExpr:
    """The total relation ``(< | eps | <^-1)`` (proof of Theorem 5.2).

    Document order is a total order on ``dom``, so this expression relates
    every pair of nodes; it is used to connect disconnected rule bodies.
    """
    doc = document_order_expression()
    return cat_union(doc, cat_atom("eps"), cat_inverse(doc))

"""Direct evaluation of caterpillar expressions over tree structures.

``[[E]]`` is computed as a binary relation over node identifiers, following
the inductive semantics of Section 2.  For large trees prefer
:func:`image`, which computes ``p.E = {y | exists x in p: (x, y) in [[E]]}``
by an NFA-style reachability sweep without materializing the full relation.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Iterable, Set, Tuple

from repro.automata.nfa import thompson
from repro.automata.regex import Concat, Empty, Epsilon, Regex, Star, Sym, Union
from repro.caterpillar.rewrite import push_inversions
from repro.caterpillar.syntax import (
    EPSILON_NAME,
    CatAtom,
    CatConcat,
    CatExpr,
    CatStar,
    CatUnion,
    is_unary_relation,
)
from repro.trees.unranked import UnrankedStructure

Pair = Tuple[int, int]


def _atom_pairs(structure: UnrankedStructure, name: str, inverted: bool) -> Set[Pair]:
    if name == EPSILON_NAME:
        return {(v, v) for v in structure.domain}
    if is_unary_relation(name):
        return {(v, v) for (v,) in structure.relation(name)}
    pairs = {(a, b) for (a, b) in structure.relation(name)}
    if inverted:
        pairs = {(b, a) for (a, b) in pairs}
    return pairs


def _compose(left: Set[Pair], right: Set[Pair]) -> Set[Pair]:
    by_first: Dict[int, Set[int]] = {}
    for a, b in right:
        by_first.setdefault(a, set()).add(b)
    out: Set[Pair] = set()
    for a, b in left:
        for c in by_first.get(b, ()):
            out.add((a, c))
    return out


def _closure(pairs: Set[Pair], domain: Iterable[int]) -> Set[Pair]:
    # Reflexive-transitive closure by iterated squaring over adjacency sets.
    successors: Dict[int, Set[int]] = {v: {v} for v in domain}
    for a, b in pairs:
        successors.setdefault(a, {a}).add(b)
    changed = True
    while changed:
        changed = False
        for a, targets in successors.items():
            new = set()
            for b in targets:
                new |= successors.get(b, {b})
            if not new <= targets:
                targets |= new
                changed = True
    return {(a, b) for a, targets in successors.items() for b in targets}


def evaluate_caterpillar(
    expr: CatExpr, structure: UnrankedStructure
) -> FrozenSet[Pair]:
    """The full relation ``[[E]]`` (quadratic in the worst case)."""
    expr = push_inversions(expr)

    def ev(e: CatExpr) -> Set[Pair]:
        if isinstance(e, CatAtom):
            return _atom_pairs(structure, e.name, e.inverted)
        if isinstance(e, CatConcat):
            out = ev(e.parts[0])
            for part in e.parts[1:]:
                out = _compose(out, ev(part))
            return out
        if isinstance(e, CatUnion):
            out: Set[Pair] = set()
            for part in e.parts:
                out |= ev(part)
            return out
        if isinstance(e, CatStar):
            return _closure(ev(e.inner), structure.domain)
        raise TypeError(f"unknown caterpillar node {e!r}")

    return frozenset(ev(expr))


def to_word_regex(expr: CatExpr) -> Regex:
    """View an inverse-free caterpillar expression as a word regex whose
    symbols are ``(relation_name, inverted)`` pairs (unary filters become
    ``(name, False)``)."""
    expr = push_inversions(expr)

    def conv(e: CatExpr) -> Regex:
        if isinstance(e, CatAtom):
            if e.name == EPSILON_NAME:
                return Epsilon()
            return Sym((e.name, e.inverted))
        if isinstance(e, CatConcat):
            return Concat(tuple(conv(p) for p in e.parts))
        if isinstance(e, CatUnion):
            return Union(tuple(conv(p) for p in e.parts))
        if isinstance(e, CatStar):
            return Star(conv(e.inner))
        raise TypeError(f"unknown caterpillar node {e!r}")

    return conv(expr)


def image(
    expr: CatExpr, structure: UnrankedStructure, sources: Iterable[int]
) -> Set[int]:
    """``p.E``: nodes reachable from ``sources`` through ``[[E]]``.

    Runs the Thompson automaton of the expression as a product with the
    tree: a worklist over (automaton state, node) pairs -- the evaluation
    strategy underlying Lemma 5.9, linear in ``|E| * |tree|`` for
    fixed-degree relations.
    """
    nfa = thompson(to_word_regex(expr))

    # Relation successor maps, fetched lazily.
    forward: Dict[Tuple[str, bool], Dict[int, Set[int]]] = {}

    def successors(name: str, inverted: bool, node: int) -> Set[int]:
        key = (name, inverted)
        if key not in forward:
            table: Dict[int, Set[int]] = {}
            if is_unary_relation(name):
                for (v,) in structure.relation(name):
                    table.setdefault(v, set()).add(v)
            else:
                for a, b in structure.relation(name):
                    if inverted:
                        a, b = b, a
                    table.setdefault(a, set()).add(b)
            forward[key] = table
        return forward[key].get(node, set())

    start_states = nfa.epsilon_closure(nfa.start)
    agenda = [(q, v) for v in sources for q in start_states]
    seen = set(agenda)
    out: Set[int] = set()
    while agenda:
        state, node = agenda.pop()
        if state in nfa.accept:
            out.add(node)
        for (q, symbol), targets in nfa.transitions.items():
            if q != state:
                continue
            name, inverted = symbol
            for succ_node in successors(name, inverted, node):
                for target in targets:
                    for closed in nfa.epsilon_closure([target]):
                        item = (closed, succ_node)
                        if item not in seen:
                            seen.add(item)
                            agenda.append(item)
    return out

"""Lemma 5.9: caterpillar expressions compile to TMNF monadic datalog.

Given a unary predicate ``p`` and a caterpillar expression ``E``, the
program below defines ``p.E = {x | exists x0: p(x0) and (x0, x) in [[E]]}``
by simulating the Thompson epsilon-NFA of ``E`` (inversions pushed to the
atoms first, Proposition 2.4):

    s(x)      <- p(x).                      (start state seeding)
    q2(x)     <- q1(x).                     (epsilon transitions)
    q2(x)     <- q1(x0), r(x0, x).          (forward relation steps)
    q2(x)     <- q1(x0), r(x, x0).          (inverted relation steps)
    q2(x)     <- q1(x), u(x).               (unary filter steps)
    p.E(x)    <- qf(x).                     (accepting states)

Every rule is in TMNF (Definition 5.1), and the construction is linear in
``|E|``.
"""

from __future__ import annotations

from typing import List, Tuple

from repro.automata.nfa import thompson
from repro.caterpillar.evaluate import to_word_regex
from repro.caterpillar.syntax import CatExpr, is_unary_relation
from repro.datalog.program import Program, Rule
from repro.datalog.terms import Atom, var

_X = var("x")
_X0 = var("x0")


def caterpillar_to_datalog(
    expr: CatExpr,
    source_pred: str,
    target_pred: str,
    prefix: str | None = None,
) -> Tuple[Program, List[str]]:
    """Emit the TMNF program defining ``target_pred = source_pred . E``.

    Parameters
    ----------
    expr:
        The caterpillar expression ``E``.
    source_pred:
        The unary predicate ``p`` seeding the traversal (extensional or
        defined elsewhere).
    target_pred:
        Name for the defined predicate ``p.E``.
    prefix:
        Namespace prefix for the automaton-state predicates (defaults to
        ``target_pred``).

    Returns
    -------
    (Program, state_predicates)
        The rules plus the list of generated state predicate names (callers
        merging several compilations use them to avoid collisions).
    """
    nfa = thompson(to_word_regex(expr))
    prefix = prefix if prefix is not None else target_pred

    def state_pred(q: int) -> str:
        return f"{prefix}__q{q}"

    rules: List[Rule] = []
    for q in nfa.start:
        rules.append(Rule(Atom(state_pred(q), (_X,)), [Atom(source_pred, (_X,))]))
    for q1, targets in nfa.epsilon.items():
        for q2 in targets:
            rules.append(
                Rule(Atom(state_pred(q2), (_X,)), [Atom(state_pred(q1), (_X,))])
            )
    for (q1, symbol), targets in nfa.transitions.items():
        name, inverted = symbol
        for q2 in targets:
            if is_unary_relation(name):
                rules.append(
                    Rule(
                        Atom(state_pred(q2), (_X,)),
                        [Atom(state_pred(q1), (_X,)), Atom(name, (_X,))],
                    )
                )
            elif inverted:
                rules.append(
                    Rule(
                        Atom(state_pred(q2), (_X,)),
                        [Atom(state_pred(q1), (_X0,)), Atom(name, (_X, _X0))],
                    )
                )
            else:
                rules.append(
                    Rule(
                        Atom(state_pred(q2), (_X,)),
                        [Atom(state_pred(q1), (_X0,)), Atom(name, (_X0, _X))],
                    )
                )
    for q in nfa.accept:
        rules.append(Rule(Atom(target_pred, (_X,)), [Atom(state_pred(q), (_X,))]))

    state_names = [state_pred(q) for q in range(nfa.num_states)]
    return (
        Program(rules, declared=set(state_names) | {target_pred}),
        state_names,
    )

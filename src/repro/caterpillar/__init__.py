"""Caterpillar expressions (Section 2) and their compilation (Lemma 5.9).

A caterpillar expression is a regular expression over the binary relations
of a tree signature, extended with unary relations (read as identity-pair
filters) and inversion ``E^-1``:

* :mod:`repro.caterpillar.syntax` -- AST and parser;
* :mod:`repro.caterpillar.rewrite` -- Propositions 2.3/2.4: pushing
  inversions down to atomic subexpressions in linear time;
* :mod:`repro.caterpillar.evaluate` -- the semantics ``[[E]]`` as a binary
  relation over a tree, and the image ``p.E`` of a node set;
* :mod:`repro.caterpillar.compile` -- Lemma 5.9: a TMNF monadic datalog
  program defining ``p.E`` via a Thompson automaton;
* :mod:`repro.caterpillar.order` -- the document-order expression of
  Example 2.5 and the ``child`` shortcut of Example 5.10.
"""

from repro.caterpillar.syntax import (
    CatExpr,
    CatAtom,
    CatConcat,
    CatInverse,
    CatStar,
    CatUnion,
    cat_atom,
    cat_concat,
    cat_inverse,
    cat_star,
    cat_union,
    parse_caterpillar,
)
from repro.caterpillar.rewrite import push_inversions
from repro.caterpillar.evaluate import evaluate_caterpillar, image
from repro.caterpillar.compile import caterpillar_to_datalog
from repro.caterpillar.order import child_expression, document_order_expression, total_expression

__all__ = [
    "CatExpr",
    "CatAtom",
    "CatConcat",
    "CatUnion",
    "CatStar",
    "CatInverse",
    "cat_atom",
    "cat_concat",
    "cat_union",
    "cat_star",
    "cat_inverse",
    "parse_caterpillar",
    "push_inversions",
    "evaluate_caterpillar",
    "image",
    "caterpillar_to_datalog",
    "document_order_expression",
    "child_expression",
    "total_expression",
]

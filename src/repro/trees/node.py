"""Ordered labeled trees.

The paper models Web documents as finite ordered trees whose nodes carry
labels from an alphabet Sigma (Section 2).  :class:`Node` is the single tree
representation used across the whole library; relational views over it are
built by :mod:`repro.trees.unranked` and :mod:`repro.trees.ranked`.

Trees can be written and read in a compact s-expression syntax::

    a(b, c(d, e), f)

which is used pervasively in tests and documentation.  Labels containing
characters outside ``[A-Za-z0-9_#:-]`` must be double-quoted.
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Optional

from repro.errors import ParseError, TreeError

_BARE_LABEL_CHARS = set(
    "abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ0123456789_#:-."
)


class Node:
    """A node of an ordered labeled tree.

    Attributes
    ----------
    label:
        The node's symbol from the alphabet.
    children:
        Ordered list of child nodes.
    parent:
        The parent node, or ``None`` for a root.
    attrs:
        Optional attribute dictionary (used by the HTML front end; empty for
        plain trees).
    text:
        Optional text payload (used for HTML text nodes).
    """

    __slots__ = ("label", "children", "parent", "attrs", "text")

    def __init__(
        self,
        label: str,
        children: Optional[List["Node"]] = None,
        attrs: Optional[Dict[str, str]] = None,
        text: Optional[str] = None,
    ):
        self.label = label
        self.children: List[Node] = []
        self.parent: Optional[Node] = None
        self.attrs: Dict[str, str] = attrs or {}
        self.text = text
        for child in children or []:
            self.add_child(child)

    # -- construction ------------------------------------------------------

    def add_child(self, child: "Node") -> "Node":
        """Append ``child`` as the rightmost child and return it."""
        if child.parent is not None:
            raise TreeError("node already has a parent")
        child.parent = self
        self.children.append(child)
        return child

    def new_child(self, label: str, **kwargs) -> "Node":
        """Create, append and return a fresh child with the given label."""
        return self.add_child(Node(label, **kwargs))

    def copy(self) -> "Node":
        """Return a deep copy of the subtree rooted at this node."""
        clone = Node(self.label, attrs=dict(self.attrs), text=self.text)
        for child in self.children:
            clone.add_child(child.copy())
        return clone

    # -- inspection --------------------------------------------------------

    @property
    def is_leaf(self) -> bool:
        """Whether this node has no children."""
        return not self.children

    @property
    def is_root(self) -> bool:
        """Whether this node has no parent."""
        return self.parent is None

    @property
    def first_child(self) -> Optional["Node"]:
        """The leftmost child, or ``None``."""
        return self.children[0] if self.children else None

    @property
    def last_child(self) -> Optional["Node"]:
        """The rightmost child, or ``None``."""
        return self.children[-1] if self.children else None

    @property
    def child_index(self) -> int:
        """Zero-based position among siblings (0 for a root)."""
        if self.parent is None:
            return 0
        for i, sibling in enumerate(self.parent.children):
            if sibling is self:
                return i
        raise TreeError("node not found among its parent's children")

    @property
    def next_sibling(self) -> Optional["Node"]:
        """The sibling immediately to the right, or ``None``."""
        if self.parent is None:
            return None
        i = self.child_index
        siblings = self.parent.children
        return siblings[i + 1] if i + 1 < len(siblings) else None

    @property
    def prev_sibling(self) -> Optional["Node"]:
        """The sibling immediately to the left, or ``None``."""
        if self.parent is None:
            return None
        i = self.child_index
        return self.parent.children[i - 1] if i > 0 else None

    @property
    def is_last_sibling(self) -> bool:
        """Whether this node is its parent's rightmost child.

        Following the paper, the root is *not* a last sibling, as it has no
        parent.
        """
        return self.parent is not None and self.parent.children[-1] is self

    @property
    def is_first_sibling(self) -> bool:
        """Whether this node is its parent's leftmost child (root excluded)."""
        return self.parent is not None and self.parent.children[0] is self

    def subtree_size(self) -> int:
        """Number of nodes in the subtree rooted here."""
        return 1 + sum(child.subtree_size() for child in self.children)

    def depth(self) -> int:
        """Distance to the root (0 for a root)."""
        node, d = self, 0
        while node.parent is not None:
            node = node.parent
            d += 1
        return d

    def root(self) -> "Node":
        """The root of the tree containing this node."""
        node = self
        while node.parent is not None:
            node = node.parent
        return node

    def ancestors(self) -> Iterator["Node"]:
        """Iterate over proper ancestors, nearest first."""
        node = self.parent
        while node is not None:
            yield node
            node = node.parent

    def iter_subtree(self) -> Iterator["Node"]:
        """Iterate over the subtree in document (pre-) order."""
        stack = [self]
        while stack:
            node = stack.pop()
            yield node
            stack.extend(reversed(node.children))

    def label_path_from(self, ancestor: "Node") -> List[str]:
        """Labels on the path from ``ancestor`` down to this node.

        The returned list excludes ``ancestor``'s own label and includes this
        node's label; this is exactly the path alphabet used by ``subelem``
        paths (Definition 6.1).
        """
        path: List[str] = []
        node: Optional[Node] = self
        while node is not None and node is not ancestor:
            path.append(node.label)
            node = node.parent
        if node is not ancestor:
            raise TreeError("given node is not an ancestor")
        path.reverse()
        return path

    # -- formatting --------------------------------------------------------

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        return f"Node({to_sexpr(self)})"

    def __str__(self) -> str:
        return to_sexpr(self)


def _quote_label(label: str) -> str:
    if label and all(c in _BARE_LABEL_CHARS for c in label):
        return label
    escaped = label.replace("\\", "\\\\").replace('"', '\\"')
    return f'"{escaped}"'


def to_sexpr(node: Node) -> str:
    """Serialize the subtree rooted at ``node`` to s-expression syntax.

    >>> to_sexpr(Node("a", [Node("b"), Node("c")]))
    'a(b, c)'
    """
    head = _quote_label(node.label)
    if not node.children:
        return head
    inner = ", ".join(to_sexpr(child) for child in node.children)
    return f"{head}({inner})"


class _SexprReader:
    """Recursive-descent reader for the s-expression tree syntax."""

    def __init__(self, text: str):
        self.text = text
        self.pos = 0

    def error(self, message: str) -> ParseError:
        return ParseError(message, position=self.pos)

    def skip_ws(self) -> None:
        while self.pos < len(self.text) and self.text[self.pos].isspace():
            self.pos += 1

    def peek(self) -> str:
        return self.text[self.pos] if self.pos < len(self.text) else ""

    def read_label(self) -> str:
        self.skip_ws()
        if self.peek() == '"':
            self.pos += 1
            out: List[str] = []
            while True:
                if self.pos >= len(self.text):
                    raise self.error("unterminated quoted label")
                c = self.text[self.pos]
                self.pos += 1
                if c == "\\":
                    if self.pos >= len(self.text):
                        raise self.error("dangling escape in label")
                    out.append(self.text[self.pos])
                    self.pos += 1
                elif c == '"':
                    return "".join(out)
                else:
                    out.append(c)
        start = self.pos
        while self.pos < len(self.text) and self.text[self.pos] in _BARE_LABEL_CHARS:
            self.pos += 1
        if self.pos == start:
            raise self.error("expected a label")
        return self.text[start : self.pos]

    def read_node(self) -> Node:
        label = self.read_label()
        node = Node(label)
        self.skip_ws()
        if self.peek() == "(":
            self.pos += 1
            self.skip_ws()
            if self.peek() == ")":
                raise self.error("empty child list; drop the parentheses")
            while True:
                node.add_child(self.read_node())
                self.skip_ws()
                c = self.peek()
                if c == ",":
                    self.pos += 1
                elif c == ")":
                    self.pos += 1
                    break
                else:
                    raise self.error("expected ',' or ')'")
        return node


def parse_sexpr(text: str) -> Node:
    """Parse a tree from s-expression syntax.

    >>> str(parse_sexpr("a(b, c(d))"))
    'a(b, c(d))'
    """
    reader = _SexprReader(text)
    node = reader.read_node()
    reader.skip_ws()
    if reader.pos != len(text):
        raise reader.error("trailing input after tree")
    return node

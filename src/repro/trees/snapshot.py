"""Columnar tree snapshots: the document as flat integer arrays.

The linear-time propagation kernel (:mod:`repro.datalog.kernel`) never
touches :class:`~repro.trees.node.Node` objects or tuple sets on its hot
path.  Instead, each tree structure exposes a :class:`TreeSnapshot` -- a
set of parallel integer columns built once per document in a single
document-order pass:

* ``parent[i]`` / ``firstchild[i]`` / ``nextsibling[i]`` /
  ``prevsibling[i]`` / ``lastchild[i]`` -- the tree edges as partial
  functions (``-1`` where undefined), realizing Proposition 4.1's
  observation that every binary relation of a tree schema is a partial
  bijection (or, for ``child``, backward-functional);
* ``label_ids[i]`` -- interned label identifiers (``labels`` /
  ``label_index`` translate back and forth);
* byte masks for the unary schema relations (``root``, ``leaf``,
  ``lastsibling``, ``firstsibling``, ``label_a``, ...), plus the node
  lists behind them for selective enumeration.

Everything derived (masks, node lists, per-direction functional maps) is
memoized on the snapshot, so it is shared by every program evaluated on
the same document.  The ``schema`` field (``"unranked"`` or ``"ranked"``)
gates name resolution to exactly the relations the owning structure
would itself supply: asking for a relation outside the schema returns
``None``, which the kernel treats as "not applicable, fall back".
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Optional, Sequence, Tuple

from repro.trees.node import Node


class TreeSnapshot:
    """Flat columnar view of one document tree.

    Built by :meth:`repro.trees.unranked.UnrankedStructure.snapshot` /
    :meth:`repro.trees.ranked.RankedStructure.snapshot` (and cached there
    and on :class:`repro.structures.IndexedStructure`) via
    :meth:`from_tree`, or column-by-column -- without any
    :class:`~repro.trees.node.Node` allocation -- by the streaming
    :class:`repro.trees.stream.SnapshotBuilder`; not usually constructed
    by hand.

    The optional ``texts`` / ``attrs`` side columns carry the text payload
    and attribute dictionary per node (sparse ``node id -> value``
    mappings; most nodes have neither), so HTML documents can be wrapped
    -- including text capture on output nodes -- from the columns alone.

    Examples
    --------
    >>> from repro.trees import parse_sexpr
    >>> from repro.trees.unranked import UnrankedStructure
    >>> snap = UnrankedStructure(parse_sexpr("a(b, c(d), b)")).snapshot()
    >>> snap.parent
    [-1, 0, 0, 2, 0]
    >>> snap.firstchild
    [1, -1, 3, -1, -1]
    >>> snap.nextsibling
    [-1, 2, 4, -1, -1]
    >>> snap.labels[snap.label_ids[3]]
    'd'
    """

    __slots__ = (
        "size",
        "schema",
        "max_rank",
        "parent",
        "firstchild",
        "nextsibling",
        "prevsibling",
        "lastchild",
        "label_ids",
        "labels",
        "label_index",
        "texts",
        "attrs",
        "_unary_masks",
        "_unary_nodes",
        "_forward",
        "_backward",
        "_child_index",
        "_label_nodes",
    )

    def __init__(
        self,
        schema: str,
        parent: List[int],
        firstchild: List[int],
        nextsibling: List[int],
        prevsibling: List[int],
        lastchild: List[int],
        label_ids: List[int],
        labels: List[str],
        label_index: Dict[str, int],
        max_rank: int = 0,
        texts: Optional[Dict[int, str]] = None,
        attrs: Optional[Dict[int, Dict[str, str]]] = None,
    ):
        self.size = len(parent)
        self.schema = schema
        self.max_rank = max_rank
        self.parent = parent
        self.firstchild = firstchild
        self.nextsibling = nextsibling
        self.prevsibling = prevsibling
        self.lastchild = lastchild
        self.label_ids = label_ids
        self.labels = labels
        self.label_index = label_index
        self.texts = texts
        self.attrs = attrs
        self._unary_masks: Dict[str, Optional[bytearray]] = {}
        self._unary_nodes: Dict[str, Optional[List[int]]] = {}
        self._forward: Dict[str, Optional[List[int]]] = {}
        self._backward: Dict[str, Optional[List[int]]] = {}
        self._child_index: Optional[List[int]] = None
        self._label_nodes: Optional[List[List[int]]] = None

    @classmethod
    def from_tree(
        cls,
        nodes: Sequence[Node],
        ids: Dict[int, int],
        schema: str,
        max_rank: int = 0,
    ) -> "TreeSnapshot":
        """Flatten an existing :class:`Node` tree (document-order ids)."""
        n = len(nodes)
        parent = [-1] * n
        firstchild = [-1] * n
        nextsibling = [-1] * n
        prevsibling = [-1] * n
        lastchild = [-1] * n
        label_ids = [0] * n
        labels: List[str] = []
        label_index: Dict[str, int] = {}
        texts: Dict[int, str] = {}
        attrs: Dict[int, Dict[str, str]] = {}
        for i, node in enumerate(nodes):
            lid = label_index.get(node.label)
            if lid is None:
                lid = label_index[node.label] = len(labels)
                labels.append(node.label)
            label_ids[i] = lid
            if node.text:
                texts[i] = node.text
            if node.attrs:
                attrs[i] = node.attrs
            children = node.children
            if children:
                previous = -1
                for child in children:
                    ci = ids[id(child)]
                    parent[ci] = i
                    if previous < 0:
                        firstchild[i] = ci
                    else:
                        nextsibling[previous] = ci
                        prevsibling[ci] = previous
                    previous = ci
                lastchild[i] = previous
        return cls(
            schema,
            parent,
            firstchild,
            nextsibling,
            prevsibling,
            lastchild,
            label_ids,
            labels,
            label_index,
            max_rank=max_rank,
            texts=texts,
            attrs=attrs,
        )

    # -- unary relations ---------------------------------------------------

    def label_nodes(self) -> List[List[int]]:
        """Node-id lists per label id (one document-order pass, cached).

        The anchor lists behind every ``label_a`` sweep of the kernel, so
        a document with many distinct labels pays one scan total instead
        of one scan per queried label.
        """
        if self._label_nodes is None:
            by_label: List[List[int]] = [[] for _ in self.labels]
            label_ids = self.label_ids
            for i in range(self.size):
                by_label[label_ids[i]].append(i)
            self._label_nodes = by_label
        return self._label_nodes

    def _compute_unary_mask(self, name: str) -> Optional[bytearray]:
        n = self.size
        if name == "dom":
            return bytearray(b"\x01" * n)
        if name == "root":
            mask = bytearray(n)
            if n:
                mask[0] = 1
            return mask
        if name == "leaf":
            # Non-leaves are exactly the nodes that occur as a parent.
            mask = bytearray(b"\x01" * n)
            for p in self.parent:
                if p >= 0:
                    mask[p] = 0
            return mask
        if self.schema == "unranked" and name == "lastsibling":
            # Last siblings are exactly the ``lastchild`` targets.
            mask = bytearray(n)
            for v in self.lastchild:
                if v >= 0:
                    mask[v] = 1
            return mask
        if self.schema == "unranked" and name == "firstsibling":
            # First siblings are exactly the ``firstchild`` targets.
            mask = bytearray(n)
            for v in self.firstchild:
                if v >= 0:
                    mask[v] = 1
            return mask
        if name.startswith("label_"):
            lid = self.label_index.get(name[len("label_") :])
            mask = bytearray(n)
            if lid is not None:
                for i in self.label_nodes()[lid]:
                    mask[i] = 1
            return mask
        if name.startswith("notlabel_"):
            lid = self.label_index.get(name[len("notlabel_") :])
            mask = bytearray(b"\x01" * n)
            if lid is not None:
                for i in self.label_nodes()[lid]:
                    mask[i] = 0
            return mask
        return None

    def unary_mask(self, name: str) -> Optional[bytearray]:
        """Byte mask of unary relation ``name``; ``None`` if unsupported."""
        if name not in self._unary_masks:
            self._unary_masks[name] = self._compute_unary_mask(name)
        return self._unary_masks[name]

    def unary_nodes(self, name: str) -> Optional[List[int]]:
        """Node ids satisfying unary relation ``name`` (anchor lists)."""
        if name not in self._unary_nodes:
            if name.startswith("label_"):
                lid = self.label_index.get(name[len("label_") :])
                nodes: Optional[List[int]] = (
                    [] if lid is None else self.label_nodes()[lid]
                )
            else:
                mask = self.unary_mask(name)
                nodes = (
                    None
                    if mask is None
                    else [i for i in range(self.size) if mask[i]]
                )
            self._unary_nodes[name] = nodes
        return self._unary_nodes[name]

    # -- binary relations --------------------------------------------------

    def _child_k(self, name: str) -> Optional[int]:
        suffix = name[len("child") :]
        if not suffix.isdigit():
            return None
        k = int(suffix)
        if not 1 <= k <= self.max_rank:
            return None
        return k

    def _child_indexes(self) -> List[int]:
        """Position of each node among its siblings (0 for first/root)."""
        if self._child_index is None:
            out = [0] * self.size
            nextsibling = self.nextsibling
            firstchild = self.firstchild
            for i in range(self.size):
                child = firstchild[i]
                index = 0
                while child >= 0:
                    out[child] = index
                    index += 1
                    child = nextsibling[child]
            self._child_index = out
        return self._child_index

    def forward_map(self, name: str) -> Optional[List[int]]:
        """Array ``a`` with ``R(v, a[v])`` when ``R`` is forward-functional.

        Returns ``None`` for unknown relations and for ``child`` (whose
        forward direction branches; use :attr:`firstchild` /
        :attr:`nextsibling` to enumerate children instead).
        """
        if name not in self._forward:
            self._forward[name] = self._compute_forward(name)
        return self._forward[name]

    def _compute_forward(self, name: str) -> Optional[List[int]]:
        if self.schema == "unranked":
            if name == "firstchild":
                return self.firstchild
            if name == "nextsibling":
                return self.nextsibling
            if name == "lastchild":
                return self.lastchild
            return None
        k = self._child_k(name)
        if k is None:
            return None
        nextsibling = self.nextsibling
        out = list(self.firstchild)
        for _ in range(k - 1):
            out = [nextsibling[v] if v >= 0 else -1 for v in out]
        return out

    def backward_map(self, name: str) -> Optional[List[int]]:
        """Array ``a`` with ``R(a[v], v)`` when ``R`` is backward-functional."""
        if name not in self._backward:
            self._backward[name] = self._compute_backward(name)
        return self._backward[name]

    def _compute_backward(self, name: str) -> Optional[List[int]]:
        n = self.size
        parent = self.parent
        if name == "child":
            # ``child`` is backward-functional over any tree schema: the
            # ranked signature derives it as the union of the ``child_k``
            # partial bijections (Lemma 5.4's reading), so branching-heavy
            # ``tau_rk`` programs can ride the kernel too.
            return parent
        if self.schema == "unranked":
            if name == "firstchild":
                prevsibling = self.prevsibling
                return [
                    parent[v] if prevsibling[v] < 0 else -1 for v in range(n)
                ]
            if name == "nextsibling":
                return self.prevsibling
            if name == "lastchild":
                nextsibling = self.nextsibling
                return [
                    parent[v] if nextsibling[v] < 0 else -1 for v in range(n)
                ]
            return None
        k = self._child_k(name)
        if k is None:
            return None
        child_index = self._child_indexes()
        return [
            parent[v] if parent[v] >= 0 and child_index[v] == k - 1 else -1
            for v in range(n)
        ]

    def branches_forward(self, name: str) -> bool:
        """Whether ``name`` is traversable forward by child enumeration.

        True for ``child`` over both schemata: the ``firstchild`` /
        ``nextsibling`` columns exist regardless of the owning structure's
        signature, and ranked structures supply ``child`` as the union of
        their ``child_k`` relations.
        """
        return name == "child"

    # -- tree navigation ---------------------------------------------------

    def children(self, v: int) -> Iterator[int]:
        """Ids of ``v``'s children, left to right."""
        child = self.firstchild[v]
        nextsibling = self.nextsibling
        while child >= 0:
            yield child
            child = nextsibling[child]

    def subtree(self, v: int) -> Iterator[int]:
        """Ids of the subtree rooted at ``v`` in document (pre-) order."""
        firstchild = self.firstchild
        nextsibling = self.nextsibling
        stack = [v]
        pop = stack.pop
        while stack:
            u = pop()
            yield u
            child = firstchild[u]
            if child >= 0:
                row = [child]
                child = nextsibling[child]
                while child >= 0:
                    row.append(child)
                    child = nextsibling[child]
                stack.extend(reversed(row))

    def node_text(self, v: int) -> str:
        """Concatenated text payloads of ``v``'s subtree, in document order.

        Mirrors :func:`repro.wrap.output.node_text`; returns ``""`` when
        the snapshot carries no text column.
        """
        return self.node_texts((v,))[0]

    def node_texts(self, ids: Sequence[int]) -> List[str]:
        """:meth:`node_text` for a batch of nodes, binding the walk once.

        The single columnar implementation of the strip-and-join rule:
        the wrapped-output builder feeds every captured leaf through this
        in one call.
        """
        texts = self.texts
        if not texts:
            return [""] * len(ids)
        get = texts.get
        firstchild = self.firstchild
        nextsibling = self.nextsibling
        out: List[str] = []
        for v in ids:
            child = firstchild[v]
            if (
                child >= 0
                and firstchild[child] < 0
                and nextsibling[child] < 0
                and v not in texts
            ):
                # Fast path: an element whose whole subtree is one leaf
                # (e.g. a table cell holding a single text node).
                t = get(child)
                out.append(t.strip() if t else "")
                continue
            parts: List[str] = []
            stack = [v]
            pop = stack.pop
            while stack:
                u = pop()
                t = get(u)
                if t:
                    t = t.strip()
                    if t:
                        parts.append(t)
                child = firstchild[u]
                if child >= 0:
                    row = [child]
                    child = nextsibling[child]
                    while child >= 0:
                        row.append(child)
                        child = nextsibling[child]
                    stack.extend(reversed(row))
            out.append(" ".join(parts))
        return out

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        return f"TreeSnapshot({self.schema!r}, {self.size} nodes)"

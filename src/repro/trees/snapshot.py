"""Columnar tree snapshots: the document as flat integer arrays.

The linear-time propagation kernel (:mod:`repro.datalog.kernel`) never
touches :class:`~repro.trees.node.Node` objects or tuple sets on its hot
path.  Instead, each tree structure exposes a :class:`TreeSnapshot` -- a
set of parallel integer columns built once per document in a single
document-order pass:

* ``parent[i]`` / ``firstchild[i]`` / ``nextsibling[i]`` /
  ``prevsibling[i]`` / ``lastchild[i]`` -- the tree edges as partial
  functions (``-1`` where undefined), realizing Proposition 4.1's
  observation that every binary relation of a tree schema is a partial
  bijection (or, for ``child``, backward-functional);
* ``label_ids[i]`` -- interned label identifiers (``labels`` /
  ``label_index`` translate back and forth);
* byte masks for the unary schema relations (``root``, ``leaf``,
  ``lastsibling``, ``firstsibling``, ``label_a``, ...), plus the node
  lists behind them for selective enumeration.

Everything derived (masks, node lists, per-direction functional maps) is
memoized on the snapshot, so it is shared by every program evaluated on
the same document.  The ``schema`` field (``"unranked"`` or ``"ranked"``)
gates name resolution to exactly the relations the owning structure
would itself supply: asking for a relation outside the schema returns
``None``, which the kernel treats as "not applicable, fall back".

The integer columns are stored as ``array('i')`` rather than Python
lists, so per-node boxed objects disappear from the snapshot itself, and
each column exposes a buffer for bulk operations.  On top of the columns
the snapshot also serves the *frontier-at-a-time* kernel: byte-lane big
ints (:meth:`unary_int`) and bulk set moves (:meth:`vector_move`) that
push a whole node set through one tree relation in a handful of big-int
shifts -- see the kernel module docstring for the layout contract.
"""

from __future__ import annotations

import re
from array import array
from typing import Callable, Dict, Iterator, List, Optional, Sequence, Tuple

from repro.trees.node import Node

#: Non-zero bytes of a packed node set (survivor enumeration).
_NONZERO = re.compile(rb"[^\x00]")

#: Maximum number of distinct ``target - source`` deltas a functional map
#: may have before :func:`_shift_classes` gives up and the move falls back
#: to the O(n) byte-gather form.  Chains, sibling links and ``child_k``
#: maps sit far below this; the many-to-one ``parent`` map of a broad
#: tree (one delta per child position) is the map that exceeds it.
_SHIFT_CLASS_CAP = 16


def _shift_classes(arr: Sequence[int], size: int):
    """Decompose a functional map into shift classes, or ``None``.

    Groups sources ``v`` with ``arr[v] >= 0`` by the byte delta
    ``arr[v] - v`` and returns ``((shift_bits, class_mask_int), ...)``:
    the image of a byte-lane set ``S`` under the map is exactly
    ``OR_d (S & mask_d) << shift_d`` (negative shifts shift right).
    Returns ``None`` when the map needs more than ``_SHIFT_CLASS_CAP``
    distinct deltas.
    """
    classes: Dict[int, bytearray] = {}
    for v, w in enumerate(arr):
        if w < 0:
            continue
        delta = w - v
        mask = classes.get(delta)
        if mask is None:
            if len(classes) >= _SHIFT_CLASS_CAP:
                return None
            mask = classes[delta] = bytearray(size)
        mask[v] = 1
    return tuple(
        (8 * delta, int.from_bytes(mask, "little"))
        for delta, mask in classes.items()
    )


def _scatter(pairs) -> Callable[[int], int]:
    """Image function of a shift-class decomposition (``v -> arr[v]``)."""

    def image(s: int) -> int:
        out = 0
        for shift, mask in pairs:
            part = s & mask
            if part:
                out |= (part << shift) if shift >= 0 else (part >> -shift)
        return out

    return image


def _gather(pairs) -> Callable[[int], int]:
    """Preimage function of a shift-class decomposition."""

    def preimage(t: int) -> int:
        out = 0
        for shift, mask in pairs:
            part = (t >> shift) if shift >= 0 else (t << -shift)
            part &= mask
            if part:
                out |= part
        return out

    return preimage


def _byte_gather(arr: Sequence[int], size: int) -> Callable[[int], int]:
    """O(n) preimage through ``arr`` at C speed (no shift classes).

    ``result[v] = S[arr[v]]``: every node reads the byte of its image, so
    the returned function computes ``{v : arr[v] in S}`` -- one
    ``to_bytes`` / ``map`` / ``from_bytes`` round trip, no Python-level
    per-node loop.  Undefined entries (``-1``) read a padding zero byte.
    """
    pad = [w if w >= 0 else size for w in arr]

    def preimage(t: int) -> int:
        buf = t.to_bytes(size, "little") + b"\x00"
        return int.from_bytes(bytes(map(buf.__getitem__, pad)), "little")

    return preimage


#: Popcount at or below which bulk moves decode set bits one by one
#: instead of paying an O(n) buffer round trip.  Narrow frontiers (a
#: handful of nodes descending a deep chain) hit a move every round, so
#: the O(n) floor of the dense forms would make n rounds quadratic.
_SPARSE_MOVE_CUTOFF = 8


def _sparse_tier(
    column: Sequence[int], dense: Callable[[int], int]
) -> Callable[[int], int]:
    """Wrap a dense bulk move with a per-bit walk for tiny sets.

    ``column`` must map each source node to its single target (``-1``
    where undefined): the image of a tiny set is just ``column[v]`` per
    set bit.  Preimages through a partial bijection use the *inverse*
    column, which maps exactly the same way.
    """

    def move(t: int) -> int:
        if t.bit_count() > _SPARSE_MOVE_CUTOFF:
            return dense(t)
        out = 0
        while t:
            low = t & -t
            w = column[(low.bit_length() - 1) >> 3]
            if w >= 0:
                out |= 1 << (w << 3)
            t ^= low
        return out

    return move


def _column(values) -> array:
    """An ``array('i')`` column (idempotent on arrays)."""
    if isinstance(values, array):
        return values
    return array("i", values)


class TreeSnapshot:
    """Flat columnar view of one document tree.

    Built by :meth:`repro.trees.unranked.UnrankedStructure.snapshot` /
    :meth:`repro.trees.ranked.RankedStructure.snapshot` (and cached there
    and on :class:`repro.structures.IndexedStructure`) via
    :meth:`from_tree`, or column-by-column -- without any
    :class:`~repro.trees.node.Node` allocation -- by the streaming
    :class:`repro.trees.stream.SnapshotBuilder`; not usually constructed
    by hand.

    The optional ``texts`` / ``attrs`` side columns carry the text payload
    and attribute dictionary per node (sparse ``node id -> value``
    mappings; most nodes have neither), so HTML documents can be wrapped
    -- including text capture on output nodes -- from the columns alone.

    Examples
    --------
    >>> from repro.trees import parse_sexpr
    >>> from repro.trees.unranked import UnrankedStructure
    >>> snap = UnrankedStructure(parse_sexpr("a(b, c(d), b)")).snapshot()
    >>> snap.parent
    array('i', [-1, 0, 0, 2, 0])
    >>> snap.firstchild
    array('i', [1, -1, 3, -1, -1])
    >>> snap.nextsibling
    array('i', [-1, 2, 4, -1, -1])
    >>> snap.labels[snap.label_ids[3]]
    'd'
    """

    __slots__ = (
        "size",
        "schema",
        "max_rank",
        "parent",
        "firstchild",
        "nextsibling",
        "prevsibling",
        "lastchild",
        "label_ids",
        "labels",
        "label_index",
        "texts",
        "attrs",
        "_unary_masks",
        "_unary_nodes",
        "_unary_ints",
        "_forward",
        "_backward",
        "_child_index",
        "_label_nodes",
        "_vector_moves",
        "_vector_plans",
        "_merkle",
        "_sig",
        "_diff",
    )

    def __init__(
        self,
        schema: str,
        parent: List[int],
        firstchild: List[int],
        nextsibling: List[int],
        prevsibling: List[int],
        lastchild: List[int],
        label_ids: List[int],
        labels: List[str],
        label_index: Dict[str, int],
        max_rank: int = 0,
        texts: Optional[Dict[int, str]] = None,
        attrs: Optional[Dict[int, Dict[str, str]]] = None,
    ):
        self.size = len(parent)
        self.schema = schema
        self.max_rank = max_rank
        # One `array('i')` per column: unboxed storage, built once here so
        # every producer (streaming builder, tree flattener) can keep
        # assembling plain lists.
        self.parent = _column(parent)
        self.firstchild = _column(firstchild)
        self.nextsibling = _column(nextsibling)
        self.prevsibling = _column(prevsibling)
        self.lastchild = _column(lastchild)
        self.label_ids = _column(label_ids)
        self.labels = labels
        self.label_index = label_index
        self.texts = texts
        self.attrs = attrs
        self._unary_masks: Dict[str, Optional[bytearray]] = {}
        self._unary_nodes: Dict[str, Optional[List[int]]] = {}
        self._unary_ints: Dict[str, Optional[int]] = {}
        self._forward: Dict[str, Optional[Sequence[int]]] = {}
        self._backward: Dict[str, Optional[Sequence[int]]] = {}
        self._child_index: Optional[List[int]] = None
        self._label_nodes: Optional[List[List[int]]] = None
        self._vector_moves: Dict = {}
        #: Per-snapshot cache of compiled frontier plans, keyed by the
        #: kernel lowering object (identity); owned here so the plan dies
        #: with the document instead of accumulating on the program.
        self._vector_plans: Dict = {}
        #: Cached :func:`repro.trees.merkle.merkle_table` result (subtree
        #: hashes + sizes); computed on first use, shared by every diff
        #: against this snapshot.
        self._merkle = None
        #: Cached :func:`repro.trees.merkle.signature_table` lanes (the
        #: bulk-comparison form the snapshot diff actually matches on).
        self._sig = None
        #: One-entry diff memo ``(new_snapshot, SnapshotDiff)`` held by the
        #: *old* version, so wrappers diffing the same pair once per
        #: compiled plan pay for one diff (and dropping the old version
        #: frees the whole chain).
        self._diff = None

    @classmethod
    def from_tree(
        cls,
        nodes: Sequence[Node],
        ids: Dict[int, int],
        schema: str,
        max_rank: int = 0,
    ) -> "TreeSnapshot":
        """Flatten an existing :class:`Node` tree (document-order ids)."""
        n = len(nodes)
        parent = [-1] * n
        firstchild = [-1] * n
        nextsibling = [-1] * n
        prevsibling = [-1] * n
        lastchild = [-1] * n
        label_ids = [0] * n
        labels: List[str] = []
        label_index: Dict[str, int] = {}
        texts: Dict[int, str] = {}
        attrs: Dict[int, Dict[str, str]] = {}
        for i, node in enumerate(nodes):
            lid = label_index.get(node.label)
            if lid is None:
                lid = label_index[node.label] = len(labels)
                labels.append(node.label)
            label_ids[i] = lid
            if node.text:
                texts[i] = node.text
            if node.attrs:
                attrs[i] = node.attrs
            children = node.children
            if children:
                previous = -1
                for child in children:
                    ci = ids[id(child)]
                    parent[ci] = i
                    if previous < 0:
                        firstchild[i] = ci
                    else:
                        nextsibling[previous] = ci
                        prevsibling[ci] = previous
                    previous = ci
                lastchild[i] = previous
        return cls(
            schema,
            parent,
            firstchild,
            nextsibling,
            prevsibling,
            lastchild,
            label_ids,
            labels,
            label_index,
            max_rank=max_rank,
            texts=texts,
            attrs=attrs,
        )

    # -- unary relations ---------------------------------------------------

    def label_nodes(self) -> List[List[int]]:
        """Node-id lists per label id (one document-order pass, cached).

        The anchor lists behind every ``label_a`` sweep of the kernel, so
        a document with many distinct labels pays one scan total instead
        of one scan per queried label.
        """
        if self._label_nodes is None:
            by_label: List[List[int]] = [[] for _ in self.labels]
            label_ids = self.label_ids
            for i in range(self.size):
                by_label[label_ids[i]].append(i)
            self._label_nodes = by_label
        return self._label_nodes

    def _compute_unary_mask(self, name: str) -> Optional[bytearray]:
        n = self.size
        if name == "dom":
            return bytearray(b"\x01" * n)
        if name == "root":
            mask = bytearray(n)
            if n:
                mask[0] = 1
            return mask
        if name == "leaf":
            # Non-leaves are exactly the nodes that occur as a parent.
            mask = bytearray(b"\x01" * n)
            for p in self.parent:
                if p >= 0:
                    mask[p] = 0
            return mask
        if self.schema == "unranked" and name == "lastsibling":
            # Last siblings are exactly the ``lastchild`` targets.
            mask = bytearray(n)
            for v in self.lastchild:
                if v >= 0:
                    mask[v] = 1
            return mask
        if self.schema == "unranked" and name == "firstsibling":
            # First siblings are exactly the ``firstchild`` targets.
            mask = bytearray(n)
            for v in self.firstchild:
                if v >= 0:
                    mask[v] = 1
            return mask
        if name.startswith("label_"):
            lid = self.label_index.get(name[len("label_") :])
            mask = bytearray(n)
            if lid is not None:
                for i in self.label_nodes()[lid]:
                    mask[i] = 1
            return mask
        if name.startswith("notlabel_"):
            lid = self.label_index.get(name[len("notlabel_") :])
            mask = bytearray(b"\x01" * n)
            if lid is not None:
                for i in self.label_nodes()[lid]:
                    mask[i] = 0
            return mask
        return None

    def unary_mask(self, name: str) -> Optional[bytearray]:
        """Byte mask of unary relation ``name``; ``None`` if unsupported."""
        if name not in self._unary_masks:
            self._unary_masks[name] = self._compute_unary_mask(name)
        return self._unary_masks[name]

    def unary_int(self, name: str) -> Optional[int]:
        """Unary relation ``name`` as one byte-lane big int.

        Little-endian packing of :meth:`unary_mask`: byte ``v`` of the
        integer is 1 exactly when node ``v`` is in the relation, so set
        intersection is a single big-int ``&``.  ``None`` if unsupported.

        >>> from repro.trees import parse_sexpr
        >>> from repro.trees.unranked import UnrankedStructure
        >>> snap = UnrankedStructure(parse_sexpr("a(b, c(d), b)")).snapshot()
        >>> snap.unary_int("leaf") == (1 << 8) | (1 << 24) | (1 << 32)
        True
        """
        if name not in self._unary_ints:
            mask = self.unary_mask(name)
            self._unary_ints[name] = (
                None if mask is None else int.from_bytes(mask, "little")
            )
        return self._unary_ints[name]

    def unary_nodes(self, name: str) -> Optional[List[int]]:
        """Node ids satisfying unary relation ``name`` (anchor lists)."""
        if name not in self._unary_nodes:
            if name.startswith("label_"):
                lid = self.label_index.get(name[len("label_") :])
                nodes: Optional[List[int]] = (
                    [] if lid is None else self.label_nodes()[lid]
                )
            else:
                mask = self.unary_mask(name)
                nodes = (
                    None
                    if mask is None
                    else [i for i in range(self.size) if mask[i]]
                )
            self._unary_nodes[name] = nodes
        return self._unary_nodes[name]

    # -- binary relations --------------------------------------------------

    def _child_k(self, name: str) -> Optional[int]:
        suffix = name[len("child") :]
        if not suffix.isdigit():
            return None
        k = int(suffix)
        if not 1 <= k <= self.max_rank:
            return None
        return k

    def _child_indexes(self) -> List[int]:
        """Position of each node among its siblings (0 for first/root)."""
        if self._child_index is None:
            out = [0] * self.size
            nextsibling = self.nextsibling
            firstchild = self.firstchild
            for i in range(self.size):
                child = firstchild[i]
                index = 0
                while child >= 0:
                    out[child] = index
                    index += 1
                    child = nextsibling[child]
            self._child_index = out
        return self._child_index

    def forward_map(self, name: str) -> Optional[Sequence[int]]:
        """Array ``a`` with ``R(v, a[v])`` when ``R`` is forward-functional.

        Returns ``None`` for unknown relations and for ``child`` (whose
        forward direction branches; use :attr:`firstchild` /
        :attr:`nextsibling` to enumerate children instead).
        """
        if name not in self._forward:
            computed = self._compute_forward(name)
            if computed is not None:
                computed = _column(computed)
            self._forward[name] = computed
        return self._forward[name]

    def _compute_forward(self, name: str) -> Optional[List[int]]:
        if self.schema == "unranked":
            if name == "firstchild":
                return self.firstchild
            if name == "nextsibling":
                return self.nextsibling
            if name == "lastchild":
                return self.lastchild
            return None
        k = self._child_k(name)
        if k is None:
            return None
        nextsibling = self.nextsibling
        out = list(self.firstchild)
        for _ in range(k - 1):
            out = [nextsibling[v] if v >= 0 else -1 for v in out]
        return out

    def backward_map(self, name: str) -> Optional[Sequence[int]]:
        """Array ``a`` with ``R(a[v], v)`` when ``R`` is backward-functional."""
        if name not in self._backward:
            computed = self._compute_backward(name)
            if computed is not None:
                computed = _column(computed)
            self._backward[name] = computed
        return self._backward[name]

    def _compute_backward(self, name: str) -> Optional[List[int]]:
        n = self.size
        parent = self.parent
        if name == "child":
            # ``child`` is backward-functional over any tree schema: the
            # ranked signature derives it as the union of the ``child_k``
            # partial bijections (Lemma 5.4's reading), so branching-heavy
            # ``tau_rk`` programs can ride the kernel too.
            return parent
        if self.schema == "unranked":
            if name == "firstchild":
                prevsibling = self.prevsibling
                return [
                    parent[v] if prevsibling[v] < 0 else -1 for v in range(n)
                ]
            if name == "nextsibling":
                return self.prevsibling
            if name == "lastchild":
                nextsibling = self.nextsibling
                return [
                    parent[v] if nextsibling[v] < 0 else -1 for v in range(n)
                ]
            return None
        k = self._child_k(name)
        if k is None:
            return None
        child_index = self._child_indexes()
        return [
            parent[v] if parent[v] >= 0 and child_index[v] == k - 1 else -1
            for v in range(n)
        ]

    def branches_forward(self, name: str) -> bool:
        """Whether ``name`` is traversable forward by child enumeration.

        True for ``child`` over both schemata: the ``firstchild`` /
        ``nextsibling`` columns exist regardless of the owning structure's
        signature, and ranked structures supply ``child`` as the union of
        their ``child_k`` relations.
        """
        return name == "child"

    # -- bulk set moves (frontier-at-a-time kernel) ------------------------

    def _functional_move(self, arr, inverse):
        """``(image, preimage)`` closures for partial-bijection map ``arr``.

        When ``arr`` decomposes into few shift classes both directions are
        a handful of big-int shift/AND ops; otherwise each direction is an
        O(n) byte gather through the array that reads it (``image`` needs
        the ``inverse`` array and is ``None`` without one).
        """
        pairs = _shift_classes(arr, self.size)
        if pairs is not None:
            image, preimage = _scatter(pairs), _gather(pairs)
        else:
            image = (
                _byte_gather(inverse, self.size) if inverse is not None else None
            )
            preimage = _byte_gather(arr, self.size)
        # Tiny sets skip the dense forms entirely and read the raw
        # columns bit by bit (images through ``arr``, preimages through
        # ``inverse`` when the map is a partial bijection).
        if image is not None:
            image = _sparse_tier(arr, image)
        if inverse is not None:
            preimage = _sparse_tier(inverse, preimage)
        return (image, preimage)

    def _children_move(self, dense: Callable[[int], int]):
        """Adaptive children-of-set: sparse walk below a popcount cutoff.

        The dense form pays O(n) however small the input set; enumerating
        a handful of parents and walking their child lists directly is
        much cheaper for the selective sets that dominate real sweeps
        (e.g. the children of the one ``table`` node).
        """
        size = self.size
        firstchild = self.firstchild
        nextsibling = self.nextsibling
        cutoff = max(8, size // 16)

        def children(t: int) -> int:
            count = t.bit_count()
            if count > cutoff:
                return dense(t)
            if count <= _SPARSE_MOVE_CUTOFF:
                # Tiny parent sets: per-bit child-list walks, no O(n)
                # buffer round trip (the narrow-frontier hot case).
                out = 0
                while t:
                    low = t & -t
                    v = firstchild[(low.bit_length() - 1) >> 3]
                    while v >= 0:
                        out |= 1 << (v << 3)
                        v = nextsibling[v]
                    t ^= low
                return out
            out = bytearray(size)
            for hit in _NONZERO.finditer(t.to_bytes(size, "little")):
                v = firstchild[hit.start()]
                while v >= 0:
                    out[v] = 1
                    v = nextsibling[v]
            return int.from_bytes(out, "little")

        return children

    def vector_move(self, rel: str, forward: bool):
        """Bulk image/preimage functions for one relation traversal.

        Returns ``(fwd, back)`` where ``fwd(S)`` is the byte-lane big-int
        image of node set ``S`` under the ``forward``-direction traversal
        of ``rel`` and ``back(T)`` its preimage -- the building blocks of
        the frontier-at-a-time kernel.  Either function may be ``None``
        when that direction has no linear-time bulk form (the image
        through a broad tree's ``parent`` map); the whole result is
        ``None`` when the snapshot does not supply the relation at all.
        Cached per ``(rel, forward)``.

        >>> from repro.trees import parse_sexpr
        >>> from repro.trees.unranked import UnrankedStructure
        >>> snap = UnrankedStructure(parse_sexpr("a(b, c(d), b)")).snapshot()
        >>> fwd, back = snap.vector_move("firstchild", True)
        >>> fwd(1 << 0) == 1 << 8, back(1 << 24) == 1 << 16
        (True, True)
        >>> children, parents = snap.vector_move("child", True)
        >>> children(1 << 0) == (1 << 8) | (1 << 16) | (1 << 32)
        True
        """
        key = (rel, forward)
        if key in self._vector_moves:
            return self._vector_moves[key]
        move = None
        if rel == "child":
            # ``child`` is backward-functional: both directions ride the
            # ``parent`` column.  Children of ``S`` are the *preimage*
            # through ``parent`` (always available, byte gather at worst);
            # parents of ``S`` are its image (shift classes or nothing).
            parents, children = self._functional_move(self.parent, None)
            children = self._children_move(children)
            move = (children, parents) if forward else (parents, children)
        else:
            arr = self.forward_map(rel) if forward else self.backward_map(rel)
            if arr is not None:
                inverse = (
                    self.backward_map(rel) if forward else self.forward_map(rel)
                )
                move = self._functional_move(arr, inverse)
        self._vector_moves[key] = move
        return move

    # -- tree navigation ---------------------------------------------------

    def children(self, v: int) -> Iterator[int]:
        """Ids of ``v``'s children, left to right."""
        child = self.firstchild[v]
        nextsibling = self.nextsibling
        while child >= 0:
            yield child
            child = nextsibling[child]

    def subtree(self, v: int) -> Iterator[int]:
        """Ids of the subtree rooted at ``v`` in document (pre-) order."""
        firstchild = self.firstchild
        nextsibling = self.nextsibling
        stack = [v]
        pop = stack.pop
        while stack:
            u = pop()
            yield u
            child = firstchild[u]
            if child >= 0:
                row = [child]
                child = nextsibling[child]
                while child >= 0:
                    row.append(child)
                    child = nextsibling[child]
                stack.extend(reversed(row))

    def node_text(self, v: int) -> str:
        """Concatenated text payloads of ``v``'s subtree, in document order.

        Mirrors :func:`repro.wrap.output.node_text`; returns ``""`` when
        the snapshot carries no text column.
        """
        return self.node_texts((v,))[0]

    def node_texts(self, ids: Sequence[int]) -> List[str]:
        """:meth:`node_text` for a batch of nodes, binding the walk once.

        The single columnar implementation of the strip-and-join rule:
        the wrapped-output builder feeds every captured leaf through this
        in one call.
        """
        texts = self.texts
        if not texts:
            return [""] * len(ids)
        get = texts.get
        firstchild = self.firstchild
        nextsibling = self.nextsibling
        out: List[str] = []
        for v in ids:
            child = firstchild[v]
            if (
                child >= 0
                and firstchild[child] < 0
                and nextsibling[child] < 0
                and v not in texts
            ):
                # Fast path: an element whose whole subtree is one leaf
                # (e.g. a table cell holding a single text node).
                t = get(child)
                out.append(t.strip() if t else "")
                continue
            parts: List[str] = []
            stack = [v]
            pop = stack.pop
            while stack:
                u = pop()
                t = get(u)
                if t:
                    t = t.strip()
                    if t:
                        parts.append(t)
                child = firstchild[u]
                if child >= 0:
                    row = [child]
                    child = nextsibling[child]
                    while child >= 0:
                        row.append(child)
                        child = nextsibling[child]
                    stack.extend(reversed(row))
            out.append(" ".join(parts))
        return out

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        return f"TreeSnapshot({self.schema!r}, {self.size} nodes)"

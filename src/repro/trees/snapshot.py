"""Columnar tree snapshots: the document as flat integer arrays.

The linear-time propagation kernel (:mod:`repro.datalog.kernel`) never
touches :class:`~repro.trees.node.Node` objects or tuple sets on its hot
path.  Instead, each tree structure exposes a :class:`TreeSnapshot` -- a
set of parallel integer columns built once per document in a single
document-order pass:

* ``parent[i]`` / ``firstchild[i]`` / ``nextsibling[i]`` /
  ``prevsibling[i]`` / ``lastchild[i]`` -- the tree edges as partial
  functions (``-1`` where undefined), realizing Proposition 4.1's
  observation that every binary relation of a tree schema is a partial
  bijection (or, for ``child``, backward-functional);
* ``label_ids[i]`` -- interned label identifiers (``labels`` /
  ``label_index`` translate back and forth);
* byte masks for the unary schema relations (``root``, ``leaf``,
  ``lastsibling``, ``firstsibling``, ``label_a``, ...), plus the node
  lists behind them for selective enumeration.

Everything derived (masks, node lists, per-direction functional maps) is
memoized on the snapshot, so it is shared by every program evaluated on
the same document.  The ``schema`` field (``"unranked"`` or ``"ranked"``)
gates name resolution to exactly the relations the owning structure
would itself supply: asking for a relation outside the schema returns
``None``, which the kernel treats as "not applicable, fall back".
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from repro.trees.node import Node


class TreeSnapshot:
    """Flat columnar view of one document tree.

    Built by :meth:`repro.trees.unranked.UnrankedStructure.snapshot` /
    :meth:`repro.trees.ranked.RankedStructure.snapshot` (and cached there
    and on :class:`repro.structures.IndexedStructure`); not usually
    constructed by hand.

    Examples
    --------
    >>> from repro.trees import parse_sexpr
    >>> from repro.trees.unranked import UnrankedStructure
    >>> snap = UnrankedStructure(parse_sexpr("a(b, c(d), b)")).snapshot()
    >>> snap.parent
    [-1, 0, 0, 2, 0]
    >>> snap.firstchild
    [1, -1, 3, -1, -1]
    >>> snap.nextsibling
    [-1, 2, 4, -1, -1]
    >>> snap.labels[snap.label_ids[3]]
    'd'
    """

    __slots__ = (
        "size",
        "schema",
        "max_rank",
        "parent",
        "firstchild",
        "nextsibling",
        "prevsibling",
        "lastchild",
        "label_ids",
        "labels",
        "label_index",
        "_unary_masks",
        "_unary_nodes",
        "_forward",
        "_backward",
        "_child_index",
    )

    def __init__(
        self,
        nodes: Sequence[Node],
        ids: Dict[int, int],
        schema: str,
        max_rank: int = 0,
    ):
        n = len(nodes)
        self.size = n
        self.schema = schema
        self.max_rank = max_rank
        parent = [-1] * n
        firstchild = [-1] * n
        nextsibling = [-1] * n
        prevsibling = [-1] * n
        lastchild = [-1] * n
        label_ids = [0] * n
        labels: List[str] = []
        label_index: Dict[str, int] = {}
        for i, node in enumerate(nodes):
            lid = label_index.get(node.label)
            if lid is None:
                lid = label_index[node.label] = len(labels)
                labels.append(node.label)
            label_ids[i] = lid
            children = node.children
            if children:
                previous = -1
                for child in children:
                    ci = ids[id(child)]
                    parent[ci] = i
                    if previous < 0:
                        firstchild[i] = ci
                    else:
                        nextsibling[previous] = ci
                        prevsibling[ci] = previous
                    previous = ci
                lastchild[i] = previous
        self.parent = parent
        self.firstchild = firstchild
        self.nextsibling = nextsibling
        self.prevsibling = prevsibling
        self.lastchild = lastchild
        self.label_ids = label_ids
        self.labels = labels
        self.label_index = label_index
        self._unary_masks: Dict[str, Optional[bytearray]] = {}
        self._unary_nodes: Dict[str, Optional[List[int]]] = {}
        self._forward: Dict[str, Optional[List[int]]] = {}
        self._backward: Dict[str, Optional[List[int]]] = {}
        self._child_index: Optional[List[int]] = None

    # -- unary relations ---------------------------------------------------

    def _compute_unary_mask(self, name: str) -> Optional[bytearray]:
        n = self.size
        if name == "dom":
            return bytearray(b"\x01" * n)
        if name == "root":
            mask = bytearray(n)
            if n:
                mask[0] = 1
            return mask
        if name == "leaf":
            firstchild = self.firstchild
            return bytearray(1 if firstchild[i] < 0 else 0 for i in range(n))
        if self.schema == "unranked" and name == "lastsibling":
            parent, nextsibling = self.parent, self.nextsibling
            return bytearray(
                1 if parent[i] >= 0 and nextsibling[i] < 0 else 0 for i in range(n)
            )
        if self.schema == "unranked" and name == "firstsibling":
            parent, prevsibling = self.parent, self.prevsibling
            return bytearray(
                1 if parent[i] >= 0 and prevsibling[i] < 0 else 0 for i in range(n)
            )
        if name.startswith("label_"):
            lid = self.label_index.get(name[len("label_") :])
            if lid is None:
                return bytearray(n)
            label_ids = self.label_ids
            return bytearray(1 if label_ids[i] == lid else 0 for i in range(n))
        if name.startswith("notlabel_"):
            lid = self.label_index.get(name[len("notlabel_") :])
            if lid is None:
                return bytearray(b"\x01" * n)
            label_ids = self.label_ids
            return bytearray(0 if label_ids[i] == lid else 1 for i in range(n))
        return None

    def unary_mask(self, name: str) -> Optional[bytearray]:
        """Byte mask of unary relation ``name``; ``None`` if unsupported."""
        if name not in self._unary_masks:
            self._unary_masks[name] = self._compute_unary_mask(name)
        return self._unary_masks[name]

    def unary_nodes(self, name: str) -> Optional[List[int]]:
        """Node ids satisfying unary relation ``name`` (anchor lists)."""
        if name not in self._unary_nodes:
            mask = self.unary_mask(name)
            self._unary_nodes[name] = (
                None if mask is None else [i for i in range(self.size) if mask[i]]
            )
        return self._unary_nodes[name]

    # -- binary relations --------------------------------------------------

    def _child_k(self, name: str) -> Optional[int]:
        suffix = name[len("child") :]
        if not suffix.isdigit():
            return None
        k = int(suffix)
        if not 1 <= k <= self.max_rank:
            return None
        return k

    def _child_indexes(self) -> List[int]:
        """Position of each node among its siblings (0 for first/root)."""
        if self._child_index is None:
            out = [0] * self.size
            nextsibling = self.nextsibling
            firstchild = self.firstchild
            for i in range(self.size):
                child = firstchild[i]
                index = 0
                while child >= 0:
                    out[child] = index
                    index += 1
                    child = nextsibling[child]
            self._child_index = out
        return self._child_index

    def forward_map(self, name: str) -> Optional[List[int]]:
        """Array ``a`` with ``R(v, a[v])`` when ``R`` is forward-functional.

        Returns ``None`` for unknown relations and for ``child`` (whose
        forward direction branches; use :attr:`firstchild` /
        :attr:`nextsibling` to enumerate children instead).
        """
        if name not in self._forward:
            self._forward[name] = self._compute_forward(name)
        return self._forward[name]

    def _compute_forward(self, name: str) -> Optional[List[int]]:
        if self.schema == "unranked":
            if name == "firstchild":
                return self.firstchild
            if name == "nextsibling":
                return self.nextsibling
            if name == "lastchild":
                return self.lastchild
            return None
        k = self._child_k(name)
        if k is None:
            return None
        nextsibling = self.nextsibling
        out = list(self.firstchild)
        for _ in range(k - 1):
            out = [nextsibling[v] if v >= 0 else -1 for v in out]
        return out

    def backward_map(self, name: str) -> Optional[List[int]]:
        """Array ``a`` with ``R(a[v], v)`` when ``R`` is backward-functional."""
        if name not in self._backward:
            self._backward[name] = self._compute_backward(name)
        return self._backward[name]

    def _compute_backward(self, name: str) -> Optional[List[int]]:
        n = self.size
        parent = self.parent
        if self.schema == "unranked":
            if name == "firstchild":
                prevsibling = self.prevsibling
                return [
                    parent[v] if prevsibling[v] < 0 else -1 for v in range(n)
                ]
            if name == "nextsibling":
                return self.prevsibling
            if name == "lastchild":
                nextsibling = self.nextsibling
                return [
                    parent[v] if nextsibling[v] < 0 else -1 for v in range(n)
                ]
            if name == "child":
                return parent
            return None
        k = self._child_k(name)
        if k is None:
            return None
        child_index = self._child_indexes()
        return [
            parent[v] if parent[v] >= 0 and child_index[v] == k - 1 else -1
            for v in range(n)
        ]

    def branches_forward(self, name: str) -> bool:
        """Whether ``name`` is traversable forward by child enumeration."""
        return self.schema == "unranked" and name == "child"

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        return f"TreeSnapshot({self.schema!r}, {self.size} nodes)"

"""Ranked alphabets and the relational schema ``tau_rk``.

Section 2 of the paper represents a ranked tree as the structure::

    t_rk = <dom, root, leaf, (child_k)_{k <= K}, (label_a)_{a in Sigma}>

where each symbol ``a`` has a fixed rank (arity) and a node labeled with a
rank-``k`` symbol has exactly ``k`` children.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Iterable, List, Optional, Set, Tuple

from repro.errors import DatalogError, TreeError
from repro.structures import Fact, Structure
from repro.trees.node import Node
from repro.trees.snapshot import TreeSnapshot


class RankedAlphabet:
    """A finite alphabet in which every symbol has a fixed rank.

    >>> sigma = RankedAlphabet({"a": 2, "b": 0})
    >>> sigma.rank("a")
    2
    >>> sigma.max_rank
    2
    """

    def __init__(self, ranks: Dict[str, int]):
        if not ranks:
            raise TreeError("ranked alphabet must be nonempty")
        for symbol, rank in ranks.items():
            if rank < 0:
                raise TreeError(f"symbol {symbol!r} has negative rank")
        self._ranks = dict(ranks)

    def rank(self, symbol: str) -> int:
        """The rank of ``symbol``."""
        if symbol not in self._ranks:
            raise TreeError(f"symbol {symbol!r} not in ranked alphabet")
        return self._ranks[symbol]

    def __contains__(self, symbol: str) -> bool:
        return symbol in self._ranks

    def symbols(self) -> Iterable[str]:
        """All symbols of the alphabet."""
        return self._ranks.keys()

    def symbols_of_rank(self, k: int) -> List[str]:
        """Symbols of rank exactly ``k`` (the partition Sigma_k)."""
        return sorted(s for s, r in self._ranks.items() if r == k)

    @property
    def max_rank(self) -> int:
        """The maximum rank ``K``."""
        return max(self._ranks.values())

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        return f"RankedAlphabet({self._ranks!r})"


def validate_ranked(root: Node, alphabet: RankedAlphabet) -> None:
    """Check that every node's child count matches its label's rank.

    Raises :class:`TreeError` on the first violation.
    """
    for node in root.iter_subtree():
        expected = alphabet.rank(node.label)
        if len(node.children) != expected:
            raise TreeError(
                f"node labeled {node.label!r} has {len(node.children)} "
                f"children but rank {expected}"
            )


class RankedStructure(Structure):
    """Relational view of a ranked tree (schema ``tau_rk``).

    Node identifiers are assigned in document order.  The binary relations
    ``child1 .. childK`` each satisfy both functional dependencies of
    Proposition 4.1.

    >>> from repro.trees import parse_sexpr
    >>> sigma = RankedAlphabet({"f": 2, "c": 0})
    >>> s = RankedStructure(parse_sexpr("f(c, f(c, c))"), sigma)
    >>> sorted(s.relation("child2"))
    [(0, 2), (2, 4)]
    """

    def __init__(
        self,
        root: Node,
        alphabet: Optional[RankedAlphabet] = None,
        max_rank: Optional[int] = None,
    ):
        """Build the view; with an explicit ``alphabet`` the tree is
        validated against it, otherwise ranks are taken from the tree
        itself (Example 4.9 uses the same label at several ranks, which
        the paper glosses by partitioning Sigma implicitly)."""
        if alphabet is not None:
            validate_ranked(root, alphabet)
        else:
            k = max_rank if max_rank is not None else max(
                len(n.children) for n in root.iter_subtree()
            )
            labels = {n.label for n in root.iter_subtree()}
            alphabet = RankedAlphabet({label: max(k, 1) for label in labels})
        self._root = root
        self._alphabet = alphabet
        self._nodes: List[Node] = list(root.iter_subtree())
        self._ids: Dict[int, int] = {id(n): i for i, n in enumerate(self._nodes)}
        self._cache: Dict[str, FrozenSet[Fact]] = {}
        self._functional_cache: Dict[str, Tuple[Dict[int, int], Dict[int, int]]] = {}
        self._snapshot: Optional[TreeSnapshot] = None

    @property
    def size(self) -> int:
        return len(self._nodes)

    def snapshot(self) -> TreeSnapshot:
        """Columnar snapshot of the tree (built once, then cached).

        Feeds the linear-time propagation kernel
        (:mod:`repro.datalog.kernel`); the ``tau_rk`` schema gates
        resolution to ``child1 .. childK`` plus the unary relations.
        """
        if self._snapshot is None:
            self._snapshot = TreeSnapshot.from_tree(
                self._nodes, self._ids, "ranked", self._alphabet.max_rank
            )
        return self._snapshot

    @property
    def alphabet(self) -> RankedAlphabet:
        """The ranked alphabet of the tree."""
        return self._alphabet

    @property
    def root_node(self) -> Node:
        """The underlying root :class:`Node`."""
        return self._root

    def node(self, ident: int) -> Node:
        """The :class:`Node` with identifier ``ident``."""
        return self._nodes[ident]

    def ident(self, node: Node) -> int:
        """The identifier of ``node``."""
        try:
            return self._ids[id(node)]
        except KeyError:
            raise TreeError("node does not belong to this structure") from None

    def label_of(self, ident: int) -> str:
        """Label of the node with identifier ``ident``."""
        return self._nodes[ident].label

    def has_relation(self, name: str) -> bool:
        try:
            self.relation(name)
            return True
        except DatalogError:
            return False

    def arity(self, name: str) -> int:
        if name in ("dom", "root", "leaf") or name.startswith(("label_", "notlabel_")):
            return 1
        return 2

    def relation(self, name: str) -> FrozenSet[Fact]:
        if name not in self._cache:
            self._cache[name] = frozenset(self._compute(name))
        return self._cache[name]

    def functional(self, name: str) -> Optional[Tuple[Dict[int, int], Dict[int, int]]]:
        if not name.startswith("child") or not name[len("child") :].isdigit():
            return None
        if name not in self._functional_cache:
            forward: Dict[int, int] = {}
            backward: Dict[int, int] = {}
            for a, b in self.relation(name):
                forward[a] = b
                backward[b] = a
            self._functional_cache[name] = (forward, backward)
        return self._functional_cache[name]

    def relation_names(self) -> Iterable[str]:
        names = ["dom", "root", "leaf"]
        names.extend(f"child{k}" for k in range(1, self._alphabet.max_rank + 1))
        names.extend(sorted(f"label_{a}" for a in self._alphabet.symbols()))
        return names

    def _compute(self, name: str) -> Set[Fact]:
        nodes = self._nodes
        ids = self._ids
        if name == "dom":
            return {(i,) for i in range(len(nodes))}
        if name == "root":
            return {(0,)} if nodes else set()
        if name == "leaf":
            return {(i,) for i, n in enumerate(nodes) if n.is_leaf}
        if name.startswith("label_"):
            label = name[len("label_") :]
            return {(i,) for i, n in enumerate(nodes) if n.label == label}
        if name.startswith("notlabel_"):
            label = name[len("notlabel_") :]
            return {(i,) for i, n in enumerate(nodes) if n.label != label}
        if name == "child":
            # The union of the child_k relations (Lemma 5.4's generic
            # ``child`` over a ranked signature), so programs written over
            # ``tau_ur u {child}`` shapes also evaluate on ranked trees.
            out = set()
            for i, n in enumerate(nodes):
                for c in n.children:
                    out.add((i, ids[id(c)]))
            return out
        if name.startswith("child") and name[len("child") :].isdigit():
            k = int(name[len("child") :])
            if not 1 <= k <= self._alphabet.max_rank:
                raise DatalogError(f"child index {k} out of range")
            out: Set[Fact] = set()
            for i, n in enumerate(nodes):
                if len(n.children) >= k:
                    out.add((i, ids[id(n.children[k - 1])]))
            return out
        raise DatalogError(f"unknown relation {name!r} over tau_rk")

"""The firstchild/nextsibling binary encoding of unranked trees (Figure 1).

An unranked ordered tree is encoded as a binary tree in which the left child
of a node is its first child in the original tree and the right child is its
next sibling.  The encoding is a bijection (up to the missing right child of
the root) and preserves document order: the preorder traversal of the binary
tree visits nodes in the document order of the original tree.

This encoding is what makes standard ranked tree-automata machinery available
for unranked trees (Section 4.2: "A binary tree ... is obtained from an
arbitrary unranked tree by the renaming of 'firstchild' to 'child1' and
'nextsibling' to 'child2'").
"""

from __future__ import annotations

from typing import Iterator, List, Optional

from repro.errors import TreeError
from repro.trees.node import Node


class BinNode:
    """A node of a firstchild/nextsibling binary encoding.

    Attributes
    ----------
    label:
        Label of the original node.
    left:
        Encoding of the original node's first child, or ``None``.
    right:
        Encoding of the original node's next sibling, or ``None``.
    origin:
        The original :class:`Node` (kept so automaton runs can report
        selected nodes of the original tree).
    """

    __slots__ = ("label", "left", "right", "origin")

    def __init__(
        self,
        label: str,
        left: Optional["BinNode"] = None,
        right: Optional["BinNode"] = None,
        origin: Optional[Node] = None,
    ):
        self.label = label
        self.left = left
        self.right = right
        self.origin = origin

    def iter_preorder(self) -> Iterator["BinNode"]:
        """Iterate this binary subtree in preorder (= document order)."""
        stack: List[BinNode] = [self]
        while stack:
            node = stack.pop()
            yield node
            if node.right is not None:
                stack.append(node.right)
            if node.left is not None:
                stack.append(node.left)

    def iter_postorder(self) -> Iterator["BinNode"]:
        """Iterate this binary subtree bottom-up (children before parents)."""
        stack = [(self, False)]
        while stack:
            node, expanded = stack.pop()
            if expanded:
                yield node
            else:
                stack.append((node, True))
                if node.right is not None:
                    stack.append((node.right, False))
                if node.left is not None:
                    stack.append((node.left, False))

    def size(self) -> int:
        """Number of nodes in this binary subtree."""
        return sum(1 for _ in self.iter_preorder())

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        left = self.left.label if self.left else "-"
        right = self.right.label if self.right else "-"
        return f"BinNode({self.label!r}, left={left}, right={right})"


def encode_binary(root: Node) -> BinNode:
    """Encode the unranked tree rooted at ``root`` (Figure 1 (a) -> (b)).

    >>> from repro.trees import parse_sexpr
    >>> b = encode_binary(parse_sexpr("a(b, c)"))
    >>> (b.label, b.left.label, b.left.right.label, b.right)
    ('a', 'b', 'c', None)
    """
    if root.parent is not None:
        raise TreeError("binary encoding starts from a root node")

    def encode(node: Node) -> BinNode:
        out = BinNode(node.label, origin=node)
        # Encode the child list right-to-left, threading next-sibling links.
        encoded_children = [encode(c) for c in node.children]
        for left_child, right_child in zip(encoded_children, encoded_children[1:]):
            left_child.right = right_child
        if encoded_children:
            out.left = encoded_children[0]
        return out

    return encode(root)


def decode_binary(root: BinNode) -> Node:
    """Invert :func:`encode_binary`, producing a fresh unranked tree.

    The binary root must not have a right child (the original root has no
    next sibling).
    """
    if root.right is not None:
        raise TreeError("a binary encoding root cannot have a right child")

    def decode(bin_node: BinNode) -> Node:
        node = Node(bin_node.label)
        child = bin_node.left
        while child is not None:
            node.add_child(decode(child))
            child = child.right
        return node

    return decode(root)

"""Tree traversals and document order.

Document order (Example 2.5) is the order in which opening tags are first
reached when reading the document left to right -- i.e. preorder.  The
structures in :mod:`repro.trees.unranked` assign node identifiers in document
order, so comparing identifiers compares document positions.
"""

from __future__ import annotations

from typing import Iterator, List, Tuple

from repro.trees.node import Node


def preorder(root: Node) -> Iterator[Node]:
    """Iterate the subtree of ``root`` in document (pre-) order."""
    return root.iter_subtree()


def postorder(root: Node) -> Iterator[Node]:
    """Iterate the subtree of ``root`` in postorder (children first)."""
    stack: List[Tuple[Node, bool]] = [(root, False)]
    while stack:
        node, expanded = stack.pop()
        if expanded:
            yield node
        else:
            stack.append((node, True))
            for child in reversed(node.children):
                stack.append((child, False))


def document_order(root: Node) -> List[Node]:
    """The nodes of the tree as a list in document order."""
    return list(preorder(root))


def depth_of(node: Node) -> int:
    """Depth of ``node`` (0 for the root)."""
    return node.depth()


def document_precedes(a: Node, b: Node) -> bool:
    """Whether ``a`` strictly precedes ``b`` in document order.

    Implemented directly from the definition (preorder positions within the
    common tree); both nodes must belong to the same tree.
    """
    if a is b:
        return False
    order = {id(n): i for i, n in enumerate(preorder(a.root()))}
    if id(b) not in order:
        raise ValueError("nodes belong to different trees")
    return order[id(a)] < order[id(b)]


def is_descendant(a: Node, b: Node) -> bool:
    """Whether ``b`` is a proper descendant of ``a``."""
    node = b.parent
    while node is not None:
        if node is a:
            return True
        node = node.parent
    return False

"""Merkle-style structural hashes over the columnar snapshot.

Incremental re-extraction (see :mod:`repro.trees.diff`) needs to decide,
for any two document versions, which subtrees are *identical* -- same
shape, same labels, same text payloads, same attributes.  This module
computes one 64-bit structural hash per node, bottom-up, in a single
reverse-preorder pass over the ``parent[]`` column:

* preorder ids put every child after its parent, so iterating ids in
  reverse visits all children before the node itself;
* sibling subtrees occupy increasing id ranges, so the reverse pass sees
  a node's children *last child first* -- folding each finished child
  hash into a per-parent accumulator therefore reproduces the
  (order-sensitive) right fold over the child sequence without ever
  materializing child lists.

Hashes are deterministic across processes and Python versions: strings
go through ``zlib.crc32`` (never the randomized builtin ``hash``) and
are combined with a 64-bit FNV-style multiply/xor mix.  Equal subtrees
always hash equal; unequal subtrees collide with probability ~2^-64 per
pair, which the diff accepts (a collision would silently reuse stale
facts -- the same trade every content-addressed system makes).

The result is cached on the snapshot (``snapshot._merkle``) so repeated
diffs against the same cached version pay the pass once.

Two representations
-------------------

:func:`merkle_table` is the per-node digest form: one 64-bit hash per
subtree, handy for tests and tools that want to name a subtree by a
single value.  The bottom-up fold is a per-node Python loop, though,
which makes it the most expensive pass in a warm re-extraction -- far
slower than the vectorized kernel it is meant to shortcut.

:func:`signature_table` is the bulk form the snapshot diff actually
matches on, built entirely by C-speed primitives so the per-document
cost is a few big-int expressions and joins, not a per-node loop.
Because a subtree of ``v`` occupies exactly the contiguous preorder
range ``[v, v + size(v))``, "are these two subtrees identical?" becomes
a handful of slice comparisons.  The pieces:

* ``labels[8v:8v+8]`` -- 64-bit digest of the label *string* (interning
  ids differ between snapshots, strings are canonical), fanned out over
  the ``label_ids`` column with ``bytes.join``;
* ``shape[4v:4v+4]`` -- ``parent[v] + 2^31 - v`` as an unsigned 32-bit
  lane.  Corresponding interior nodes of equal subtrees have equal
  parent *offsets*, so equal slices (excluding the root's own lane,
  whose parent lies outside the subtree) mean equal shape.  The bias
  keeps every lane positive and the preorder invariant ``parent[v] < v``
  keeps it below 2^32, so one whole-column big-int expression computes
  every lane at once with no carries between lanes;
* the payload columns: the sorted node ids carrying text or attrs
  (``pay_keys``), their position-independent gaps as 32-bit lanes
  (``pay_delta``, again one big-int subtract -- ids are strictly
  increasing so no lane borrows), and the text / attr values fanned out
  with ``map`` (``pay_texts`` / ``pay_attrs``).  Two preorder ranges
  carry equal payloads iff they hold the same number of payload nodes,
  at the same first offset, with equal gap lanes and equal value
  slices -- all bisect + slice comparisons, and *exact*: text and
  attribute payloads are compared by value, never by digest.
"""

from __future__ import annotations

import sys
from array import array
from typing import Dict, List, NamedTuple, Sequence
from zlib import crc32

#: 64-bit FNV prime; the mix is ``h = (h ^ x) * PRIME mod 2^64``.
_FNV = 0x100000001B3
_M64 = (1 << 64) - 1

#: Domain tags keep label / text / attribute / child contributions from
#: colliding across domains (e.g. a label equal to a text payload).
_TAG_LABEL = 0x9E3779B97F4A7C15
_TAG_TEXT = 0xC2B2AE3D27D4EB4F
_TAG_ATTRS = 0x165667B19E3779F9
_SEED = 0x84222325CBF29CE4


class MerkleTable(NamedTuple):
    """Per-node structural hashes and subtree sizes (preorder-indexed)."""

    hashes: List[int]
    sizes: List[int]


def _string_hash(s: str) -> int:
    """Deterministic 64-bit hash of a string (crc32 + length)."""
    data = s.encode("utf-8", "surrogatepass")
    return (crc32(data) << 32) ^ (len(data) & 0xFFFFFFFF) ^ (crc32(data[::-1]) << 13)


def merkle_table(snapshot) -> MerkleTable:
    """Subtree hashes and sizes for every node of ``snapshot`` (cached).

    ``hashes[v]`` covers the whole subtree rooted at ``v``: its shape,
    every label, every text payload, and every attribute dictionary
    (order-insensitively for attrs, order-sensitively for children).
    ``sizes[v]`` is the number of nodes in that subtree, so the subtree
    of ``v`` is exactly the contiguous preorder range
    ``[v, v + sizes[v])``.

    >>> from repro.trees import parse_sexpr
    >>> from repro.trees.unranked import UnrankedStructure
    >>> a = UnrankedStructure(parse_sexpr("a(b, c(d), b)")).snapshot()
    >>> b = UnrankedStructure(parse_sexpr("x(b, c(d))")).snapshot()
    >>> t, u = merkle_table(a), merkle_table(b)
    >>> t.hashes[2] == u.hashes[2]  # the two c(d) subtrees agree
    True
    >>> t.hashes[1] == u.hashes[1] and t.hashes[0] != u.hashes[0]
    True
    >>> t.sizes
    [5, 1, 2, 1, 1]
    """
    cached = snapshot._merkle
    if cached is None:
        cached = snapshot._merkle = _compute(snapshot)
    return cached


class SignatureTable(NamedTuple):
    """Per-node signature columns (see module docstring for the layout)."""

    labels: bytes
    shape: bytes
    pay_keys: array
    pay_delta: bytes
    pay_texts: tuple
    pay_attrs: tuple


def signature_table(snapshot) -> SignatureTable:
    """Bulk-comparison signature columns for ``snapshot`` (cached).

    Subtrees ``[v, v + s)`` of one snapshot and ``[w, w + s)`` of
    another are identical (same shape, labels, texts, attrs) iff their
    ``labels`` slices agree, their ``shape`` slices agree *excluding the
    roots' own lanes*, and their payload ranges agree (see
    :mod:`repro.trees.diff` for the range comparison):

    >>> from repro.trees.stream import sexpr_snapshot
    >>> a = sexpr_snapshot("r(x(p, q), y(s))")
    >>> b = sexpr_snapshot("z(x(p, q))")
    >>> sa, sb = signature_table(a), signature_table(b)
    >>> sa.labels[8 * 1 : 8 * 4] == sb.labels[8 * 1 : 8 * 4]  # x(p, q)
    True
    >>> sa.shape[4 * 2 : 4 * 4] == sb.shape[4 * 2 : 4 * 4]
    True
    >>> sa.labels[:8] == sb.labels[:8]  # r vs z
    False
    """
    cached = snapshot._sig
    if cached is None:
        cached = snapshot._sig = _compute_signature(snapshot)
    return cached


def _fast_string_hash(s: str) -> int:
    """Cheap deterministic 64-bit string digest for label lanes.

    Two independent-ish crc32s (whole string, odd-byte subsequence) plus
    the length; one pass cheaper than :func:`_string_hash`'s reversed
    second crc.  Only label strings go through this (a handful per
    document); payloads are compared by value, not digest.
    """
    data = s.encode("utf-8", "surrogatepass")
    return (crc32(data) << 32) ^ (crc32(data[1::2]) << 12) ^ len(data)


def _lanes_int(values, n: int) -> int:
    """Pack an ``array('i')`` of non-negatives into 32-bit little lanes."""
    arr = array("i", values) if not isinstance(values, array) else values
    if sys.byteorder != "little":
        arr = array("i", arr)
        arr.byteswap()
    return int.from_bytes(arr.tobytes(), "little")


def _compute_signature(snapshot) -> SignatureTable:
    n = snapshot.size
    if n == 0:
        return SignatureTable(b"", b"", array("i"), b"", (), ())
    # Label lanes: one digest per interned label, fanned out over the
    # label_ids column by a C-speed map/join.
    lane = [
        ((_fast_string_hash(label) ^ _TAG_LABEL) & _M64).to_bytes(8, "little")
        for label in snapshot.labels
    ]
    labels = b"".join(map(lane.__getitem__, snapshot.label_ids))
    # Shape lanes, all at once: parent[v] + 2^31 - v per 32-bit lane.
    parent = snapshot.parent
    if parent[0] < 0:
        parent = array("i", parent)
        parent[0] = 0  # root lane becomes the constant 2^31
    parent_int = _lanes_int(parent, n)
    ramp_int = _lanes_int(array("i", range(n)), n)
    bias_int = int.from_bytes(b"\x00\x00\x00\x80" * n, "little")
    shape = (parent_int + bias_int - ramp_int).to_bytes(4 * n, "little")
    # Payload columns: sorted ids, position-independent gaps (strictly
    # increasing ids mean every 32-bit lane of keys - (keys << 32) is
    # positive, so no borrows cross lanes; lane 0 holds the first id
    # itself and is skipped by range comparisons), values via map.
    texts = snapshot.texts or {}
    attrs = snapshot.attrs or {}
    if texts or attrs:
        ids = sorted(texts.keys() | attrs.keys())
        m = len(ids)
        pay_keys = array("i", ids)
        keys_int = _lanes_int(pay_keys, m)
        # Subtracting the lane-shifted copy leaves k_i - k_{i-1} in lane
        # i; the shifted copy's extra top lane makes the raw difference
        # negative, so reduce mod 2^(32m) to drop it (no borrows below:
        # ids strictly increase).
        delta_int = (keys_int - (keys_int << 32)) & ((1 << (32 * m)) - 1)
        pay_delta = delta_int.to_bytes(4 * m, "little")
        pay_texts = tuple(map(texts.get, ids))
        pay_attrs = tuple(map(attrs.get, ids))
    else:
        pay_keys = array("i")
        pay_delta = b""
        pay_texts = pay_attrs = ()
    return SignatureTable(labels, shape, pay_keys, pay_delta, pay_texts, pay_attrs)


def _compute(snapshot) -> MerkleTable:
    n = snapshot.size
    parent: Sequence[int] = snapshot.parent
    label_ids: Sequence[int] = snapshot.label_ids
    texts = snapshot.texts or {}
    attrs = snapshot.attrs or {}
    text_get = texts.get
    attrs_get = attrs.get
    # One string hash per interned label, not per node.
    label_hash = [
        (_string_hash(label) ^ _TAG_LABEL) & _M64 for label in snapshot.labels
    ]
    hashes = [_SEED] * n  # doubles as the child-fold accumulator
    sizes = [1] * n
    for v in range(n - 1, -1, -1):
        # hashes[v] currently holds the right fold over v's children
        # (each child finalized and folded in by the time we get here).
        h = hashes[v]
        h = ((h ^ label_hash[label_ids[v]]) * _FNV) & _M64
        t = text_get(v)
        if t is not None:
            h = ((h ^ _TAG_TEXT ^ _string_hash(t)) * _FNV) & _M64
        a = attrs_get(v)
        if a:
            ah = _TAG_ATTRS
            for key in sorted(a):
                ah ^= ((_string_hash(key) * _FNV) ^ _string_hash(a[key])) & _M64
            h = ((h ^ ah) * _FNV) & _M64
        hashes[v] = h
        p = parent[v]
        if p >= 0:
            hashes[p] = ((hashes[p] ^ h) * _FNV) & _M64
            sizes[p] += sizes[v]
    return MerkleTable(hashes, sizes)

"""Tree substrate: ordered labeled trees and their relational views.

This package implements Section 2 of the paper:

* :mod:`repro.trees.node` -- ordered labeled unranked trees with an
  s-expression reader/writer;
* :mod:`repro.trees.unranked` -- the relational schema ``tau_ur``
  (``root, leaf, label_a, firstchild, nextsibling, lastsibling``) plus the
  derived relations used elsewhere in the paper (``child, lastchild,
  firstsibling, nextsibling_star, ...``);
* :mod:`repro.trees.ranked` -- ranked alphabets and the schema ``tau_rk``
  (``root, leaf, child_k, label_a``);
* :mod:`repro.trees.binary` -- the firstchild/nextsibling binary encoding of
  Figure 1;
* :mod:`repro.trees.snapshot` -- columnar tree snapshots (flat integer
  columns + interned labels) feeding the linear-time propagation kernel;
* :mod:`repro.trees.stream` -- the streaming snapshot builder: document
  events (HTML tokens, s-expressions, tree replays) written straight
  into snapshot columns, no :class:`Node` allocation;
* :mod:`repro.trees.traversal` -- traversals and document order;
* :mod:`repro.trees.generate` -- deterministic random tree generators for
  tests and benchmarks.
"""

from repro.trees.node import Node, parse_sexpr, to_sexpr
from repro.trees.snapshot import TreeSnapshot
from repro.trees.stream import (
    SnapshotBuilder,
    html_snapshot,
    sexpr_snapshot,
    tree_snapshot,
)
from repro.trees.unranked import UnrankedStructure
from repro.trees.ranked import RankedAlphabet, RankedStructure, validate_ranked
from repro.trees.binary import BinNode, decode_binary, encode_binary
from repro.trees.traversal import (
    depth_of,
    document_order,
    postorder,
    preorder,
)
from repro.trees.generate import (
    chain_tree,
    complete_binary_tree,
    complete_kary_tree,
    flat_tree,
    random_binary_tree,
    random_tree,
)

__all__ = [
    "Node",
    "parse_sexpr",
    "to_sexpr",
    "TreeSnapshot",
    "SnapshotBuilder",
    "html_snapshot",
    "sexpr_snapshot",
    "tree_snapshot",
    "UnrankedStructure",
    "RankedAlphabet",
    "RankedStructure",
    "validate_ranked",
    "BinNode",
    "encode_binary",
    "decode_binary",
    "preorder",
    "postorder",
    "document_order",
    "depth_of",
    "random_tree",
    "random_binary_tree",
    "complete_binary_tree",
    "complete_kary_tree",
    "chain_tree",
    "flat_tree",
]

"""Deterministic tree generators for tests and benchmarks.

All generators take an explicit :class:`random.Random` instance (or a seed)
so that every experiment in ``benchmarks/`` and every property test is
reproducible.
"""

from __future__ import annotations

import random
from typing import List, Optional, Sequence, Union

from repro.trees.node import Node

RngLike = Union[int, random.Random]


def _rng(seed_or_rng: RngLike) -> random.Random:
    if isinstance(seed_or_rng, random.Random):
        return seed_or_rng
    return random.Random(seed_or_rng)


def random_tree(
    seed_or_rng: RngLike,
    size: int,
    labels: Sequence[str] = ("a", "b"),
    max_children: int = 4,
) -> Node:
    """Generate a uniform-ish random unranked tree with exactly ``size`` nodes.

    Nodes are attached to a random existing node whose child count is below
    ``max_children`` (falling back to any node if all are full), which yields
    a good mix of deep and bushy shapes.

    >>> random_tree(7, 5).subtree_size()
    5
    """
    if size < 1:
        raise ValueError("size must be >= 1")
    rng = _rng(seed_or_rng)
    root = Node(rng.choice(labels))
    nodes: List[Node] = [root]
    for _ in range(size - 1):
        open_nodes = [n for n in nodes if len(n.children) < max_children]
        parent = rng.choice(open_nodes) if open_nodes else rng.choice(nodes)
        child = parent.new_child(rng.choice(labels))
        nodes.append(child)
    return root


def random_binary_tree(
    seed_or_rng: RngLike,
    internal: int,
    internal_label: str = "a",
    leaf_label: Optional[str] = None,
) -> Node:
    """Generate a random *full* binary tree with ``internal`` internal nodes.

    Every internal node has exactly two children; leaves carry
    ``leaf_label`` (defaulting to ``internal_label``).  Full binary trees are
    the input domain of the ranked query automata of Examples 4.9 and 4.21.
    """
    rng = _rng(seed_or_rng)
    if leaf_label is None:
        leaf_label = internal_label
    root = Node(leaf_label)
    leaves: List[Node] = [root]
    for _ in range(internal):
        node = leaves.pop(rng.randrange(len(leaves)))
        node.label = internal_label
        left = node.new_child(leaf_label)
        right = node.new_child(leaf_label)
        leaves.extend([left, right])
    return root


def complete_binary_tree(depth: int, label: str = "a") -> Node:
    """A complete binary tree of the given depth (depth 0 = single node).

    Used by Example 4.21: a complete binary tree of depth ``d`` has
    ``2^(d+1) - 1`` nodes.
    """
    root = Node(label)
    frontier = [root]
    for _ in range(depth):
        next_frontier = []
        for node in frontier:
            next_frontier.append(node.new_child(label))
            next_frontier.append(node.new_child(label))
        frontier = next_frontier
    return root


def complete_kary_tree(depth: int, k: int, label: str = "a") -> Node:
    """A complete ``k``-ary tree of the given depth."""
    root = Node(label)
    frontier = [root]
    for _ in range(depth):
        next_frontier = []
        for node in frontier:
            for _ in range(k):
                next_frontier.append(node.new_child(label))
        frontier = next_frontier
    return root


def chain_tree(length: int, label: str = "a") -> Node:
    """A unary chain of ``length`` nodes (worst case for depth recursion)."""
    if length < 1:
        raise ValueError("length must be >= 1")
    root = Node(label)
    node = root
    for _ in range(length - 1):
        node = node.new_child(label)
    return root


def thread_tree(
    threads: int,
    depth: int,
    label: str = "c",
    leaf_label: str = "leafc",
    root_label: str = "r",
) -> Node:
    """A root with ``threads`` unary comment chains of ``depth`` nodes.

    Each chain node carries a distinct deterministic text payload (like a
    comment body), and every chain ends in a ``leaf_label`` node.  The
    deep-recursion workload of the incremental benchmarks: a recursive
    descent program needs ``depth`` fixpoint rounds cold, while a warm
    re-run over a few edited texts touches only the dirty region.

    >>> t = thread_tree(2, 3)
    >>> t.subtree_size()
    9
    >>> str(t)
    'r(c(c(c(leafc))), c(c(c(leafc))))'
    """
    if threads < 1 or depth < 1:
        raise ValueError("threads and depth must be >= 1")
    root = Node(root_label)
    for t in range(threads):
        node = root.new_child(label, text=f"comment {t} 0")
        for d in range(depth - 1):
            node = node.new_child(label, text=f"comment {t} {d + 1}")
        node.new_child(leaf_label)
    return root


def flat_tree(word: Sequence[str], root_label: str = "r") -> Node:
    """A root whose children carry the labels of ``word`` left to right.

    This is the shape used throughout Section 6 (the children of the root
    spell a word, e.g. ``a^n b^n`` for Theorem 6.6).

    >>> str(flat_tree("aab"))
    'r(a, a, b)'
    """
    root = Node(root_label)
    for symbol in word:
        root.new_child(symbol)
    return root


def figure1_tree() -> Node:
    """The six-node tree of Figure 1 / Example 2.5.

    All nodes are labeled ``a``; the shape is ``a(a, a(a, a), a)`` with
    document order n1 < n2 < n3 < n4 < n5 < n6.
    """
    n1 = Node("a")
    n1.new_child("a")                     # n2
    n3 = n1.new_child("a")                # n3
    n3.new_child("a")                     # n4
    n3.new_child("a")                     # n5
    n1.new_child("a")                     # n6
    return n1


def example32_tree() -> Node:
    """The four-node tree of Example 3.2.

    A root ``n1`` with three children ``n2, n3, n4``, all labeled ``a``.
    """
    root = Node("a")
    root.new_child("a")
    root.new_child("a")
    root.new_child("a")
    return root

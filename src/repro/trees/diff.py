"""Snapshot diffs: match unchanged subtrees between document versions.

Given the columnar snapshots of two versions of a document, produce the
ingredients the incremental kernel (:meth:`KernelProgram.run_incremental`)
needs to avoid re-deriving facts over unchanged regions:

* ``new_from_old[v]`` -- the new preorder id of old node ``v``, or -1
  when ``v`` has no counterpart.  Two kinds of nodes map: whole subtrees
  with identical content (mapped as contiguous preorder ranges, since
  a subtree of ``v`` occupies exactly ``[v, v + size(v))``), and
  *aligned* nodes -- pairs on the recursion spine above an edit whose
  subtrees differ but whose own label/text/attrs are unchanged (the
  ``table`` above an edited row).  Without spine alignment every
  ancestor of an edit would count as changed and deletion would cascade
  through the whole document;
* ``dirty_new_int`` / ``dirty_count`` -- the *new* nodes with no
  counterpart at all (the region that must be evaluated from scratch);
* ``old_bad_int`` / ``new_bad_int`` -- the nodes whose *local
  neighborhood* changed: unmapped nodes, plus mapped nodes whose cross
  edges (parent / prevsibling / nextsibling) are not preserved by the
  mapping or whose leaf status flipped.  Every rule instance that is
  valid on one version but not the other must touch such a node (edges
  and unary statuses elsewhere are preserved -- by content identity
  inside matched subtrees, by the explicit checks at subtree roots and
  aligned nodes), so these sets seed the kernel's delete-and-rederive
  pass.

Matching is top-down over the signature columns of
:func:`repro.trees.merkle.signature_table`: "these two subtrees are
identical" is a couple of byte-slice comparisons (label and shape lanes)
plus a bisected payload-range comparison, so a matched subtree costs
O(its size) in C, not per-node Python.  Differing pairs strip the common
structural prefix and suffix of their child sequences by bisection over
the lane bytes, then let :class:`difflib.SequenceMatcher` align the
(typically tiny) middle window, recursing only into replaced pairs.
For a page where k subtrees changed, the Python-level work is
O(k · branching · depth); everything proportional to document size runs
in C.
"""

from __future__ import annotations

from array import array
from bisect import bisect_left
from difflib import SequenceMatcher
from typing import Callable, List, Tuple

from repro.trees.merkle import signature_table


class SnapshotDiff:
    """Result of :func:`diff_snapshots` (see module docstring)."""

    __slots__ = (
        "old",
        "new",
        "new_from_old",
        "ranges",
        "dirty_new_int",
        "dirty_count",
        "old_bad_int",
        "new_bad_int",
        "matched_roots",
    )

    def __init__(self, old, new, new_from_old, ranges, dirty_new_int,
                 dirty_count, old_bad_int, new_bad_int, matched_roots):
        self.old = old
        self.new = new
        #: array('i'): new id per old id, -1 where unmapped.
        self.new_from_old = new_from_old
        #: mapped contiguous ranges as ``(old_start, new_start, size)``
        #: (matched subtrees plus size-1 aligned spine nodes).
        self.ranges = ranges
        self.dirty_new_int = dirty_new_int
        self.dirty_count = dirty_count
        self.old_bad_int = old_bad_int
        self.new_bad_int = new_bad_int
        #: top-level matched subtree pairs ``(old_root, new_root)``.
        self.matched_roots = matched_roots

    @property
    def dirty_fraction(self) -> float:
        """Unmapped fraction of the *new* document (0.0 = identical)."""
        return self.dirty_count / self.new.size if self.new.size else 0.0

    def translator(self) -> Callable[[int], int]:
        """Bulk old→new translation of byte-lane big-int node sets.

        Mapped nodes come in contiguous ranges, so the whole mapping
        decomposes into one shift class per distinct ``new - old`` id
        delta -- translating a derived-fact mask is a handful of big-int
        mask/shift ops, exactly like the snapshot's own move maps.
        Unmapped old nodes are dropped (their bytes fall outside every
        class mask).
        """
        classes = {}
        old_size = self.old.size
        for ov, nw, size in self.ranges:
            delta = nw - ov
            mask = classes.get(delta)
            if mask is None:
                mask = classes[delta] = bytearray(old_size)
            mask[ov : ov + size] = b"\x01" * size
        pairs = tuple(
            (8 * delta, int.from_bytes(mask, "little"))
            for delta, mask in classes.items()
        )

        def translate(s: int) -> int:
            out = 0
            for shift, mask in pairs:
                part = s & mask
                if part:
                    out |= (part << shift) if shift >= 0 else (part >> -shift)
            return out

        return translate


def _edge_preserved(old_arr, new_arr, new_from_old, ov: int, nw: int) -> bool:
    """Whether one cross-edge column agrees at a mapped pair."""
    ou = old_arr[ov]
    nu = new_arr[nw]
    if ou < 0 or nu < 0:
        return ou < 0 and nu < 0
    return new_from_old[ou] == nu


def _mismatch_positions(a, b) -> List[int]:
    """Indices where equal-length sequences differ, by bisection.

    Equal slices are dismissed with one C-speed comparison, so the cost
    is O(d log n) slice compares for d mismatches -- not a per-element
    Python loop.

    >>> _mismatch_positions((1, 2, 3, 4), (1, 9, 3, 8))
    [1, 3]
    """
    out: List[int] = []
    stack = [(0, len(a))]
    while stack:
        lo, hi = stack.pop()
        if a[lo:hi] == b[lo:hi]:
            continue
        if hi - lo == 1:
            out.append(lo)
            continue
        mid = (lo + hi) // 2
        stack.append((mid, hi))
        stack.append((lo, mid))
    out.sort()
    return out


def _payload_only_diff(old, new, keys, otex, ntex, oatt, natt) -> SnapshotDiff:
    """The :func:`diff_snapshots` result for structurally identical
    snapshots: identity mapping with holes at changed payload nodes."""
    n = new.size
    dirty_ids = sorted(
        {keys[i] for i in _mismatch_positions(otex, ntex)}
        | {keys[i] for i in _mismatch_positions(oatt, natt)}
    )
    new_from_old = array("i", range(n))
    dirty = bytearray(n)
    bad = bytearray(n)
    ranges: List[Tuple[int, int, int]] = []
    prev = 0
    firstchild, nextsibling, prevsibling = (
        new.firstchild,
        new.nextsibling,
        new.prevsibling,
    )
    for v in dirty_ids:
        new_from_old[v] = -1
        dirty[v] = 1
        bad[v] = 1
        # Mirror the generic path's bad set: the dirty node's adjacent
        # siblings and children sit on edges into an unmapped node.
        for u in (prevsibling[v], nextsibling[v]):
            if u >= 0:
                bad[u] = 1
        u = firstchild[v]
        while u >= 0:
            bad[u] = 1
            u = nextsibling[u]
        if v > prev:
            ranges.append((prev, prev, v - prev))
        prev = v + 1
    if n > prev:
        ranges.append((prev, prev, n - prev))
    bad_int = int.from_bytes(bad, "little")
    return SnapshotDiff(
        old,
        new,
        new_from_old,
        ranges,
        int.from_bytes(dirty, "little"),
        len(dirty_ids),
        bad_int,
        bad_int,
        [(0, 0)] if not dirty_ids else [],
    )


def diff_snapshots(old, new) -> SnapshotDiff:
    """Diff two snapshots of (versions of) one document.

    >>> from repro.trees.stream import sexpr_snapshot
    >>> a = sexpr_snapshot("r(x(p, q), y(s))")
    >>> b = sexpr_snapshot("r(x(p, q), y(t))")
    >>> d = diff_snapshots(a, b)
    >>> [v for v in range(b.size) if d.dirty_new_int >> (8 * v) & 1]
    [5]
    >>> list(d.new_from_old)  # r and y aligned, x(p, q) matched, s gone
    [0, 1, 2, 3, 4, -1]
    >>> [v for v in range(b.size) if d.new_bad_int >> (8 * v) & 1]
    [5]
    >>> diff_snapshots(a, b) is d  # memoized on the old snapshot
    True
    """
    memo = old._diff
    if memo is not None and memo[0] is new:
        return memo[1]
    old_sig = signature_table(old)
    new_sig = signature_table(new)
    old_lab, old_shape, okeys, odelta, otex, oatt = old_sig
    new_lab, new_shape, nkeys, ndelta, ntex, natt = new_sig
    if (
        old.size == new.size
        and old.size
        and old_lab == new_lab
        and old_shape == new_shape
        and okeys == nkeys
    ):
        # Payload-only fast path: equal label lanes, shape lanes and
        # payload positions mean the two structures are *identical* node
        # for node -- the re-crawl common case where only some text or
        # attribute values changed.  The mapping is the identity with
        # holes at the changed payload nodes, found by divide-and-conquer
        # slice comparison (O(changed * log n) C-speed compares) instead
        # of the generic per-subtree recursion, which pays O(depth) Python
        # rounds per edit spine.
        result = _payload_only_diff(old, new, okeys, otex, ntex, oatt, natt)
        old._diff = (new, result)
        return result
    new_from_old = array("i", [-1]) * old.size
    dirty = bytearray(b"\x01" * new.size)
    ranges: List[Tuple[int, int, int]] = []
    matched_roots: List[Tuple[int, int]] = []
    #: deferred safety checks per mapped pair: bit 1 = parent edge,
    #: 2 = prevsibling edge, 4 = nextsibling edge, 8 = unconditionally bad
    #: (an aligned pair whose leaf status flipped).
    checks: List[Tuple[int, int, int]] = []
    old_first, old_next = old.firstchild, old.nextsibling
    new_first, new_next = new.firstchild, new.nextsibling
    old_labels, old_label_ids = old.labels, old.label_ids
    new_labels, new_label_ids = new.labels, new.label_ids
    old_text_get = (old.texts or {}).get
    new_text_get = (new.texts or {}).get
    old_attr_get = (old.attrs or {}).get
    new_attr_get = (new.attrs or {}).get

    # Plain bytes for the bisection helpers: slice + compare are both
    # memcpy-class; memoryview equality is element-wise and far slower.
    old_lab_v, new_lab_v = old_lab, new_lab
    old_shape_v, new_shape_v = old_shape, new_shape

    def common_len(a, a0, b, b0, limit: int) -> int:
        # Longest k <= limit with a[a0:a0+k] == b[b0:b0+k], by bisection:
        # O(log) slice comparisons, each C-speed.
        lo, hi = 0, limit
        while lo < hi:
            mid = (lo + hi + 1) // 2
            if a[a0 : a0 + mid] == b[b0 : b0 + mid]:
                lo = mid
            else:
                hi = mid - 1
        return lo

    def common_len_end(a, a1, b, b1, limit: int) -> int:
        # Longest k <= limit with a[a1-k:a1] == b[b1-k:b1].
        lo, hi = 0, limit
        while lo < hi:
            mid = (lo + hi + 1) // 2
            if a[a1 - mid : a1] == b[b1 - mid : b1]:
                lo = mid
            else:
                hi = mid - 1
        return lo

    def payload_equal(ov: int, oe: int, nw: int, ne: int) -> bool:
        # The ranges carry equal text/attr payloads iff the same number
        # of payload nodes sit at the same offsets (first offset checked
        # directly, the rest via the position-independent gap lanes)
        # with equal values -- compared by value, not digest.
        i1 = bisect_left(okeys, ov)
        i2 = bisect_left(okeys, oe)
        j1 = bisect_left(nkeys, nw)
        j2 = bisect_left(nkeys, ne)
        if i2 - i1 != j2 - j1:
            return False
        if i1 == i2:
            return True
        return (
            okeys[i1] - ov == nkeys[j1] - nw
            and odelta[4 * i1 + 4 : 4 * i2] == ndelta[4 * j1 + 4 : 4 * j2]
            and otex[i1:i2] == ntex[j1:j2]
            and oatt[i1:i2] == natt[j1:j2]
        )

    def subtree_equal(ov: int, oe: int, nw: int, ne: int) -> bool:
        # Slice comparisons over the signature lanes; the shape slice
        # skips the roots' own lanes (their parents lie outside).
        return (
            oe - ov == ne - nw
            and old_lab[8 * ov : 8 * oe] == new_lab[8 * nw : 8 * ne]
            and old_shape[4 * ov + 4 : 4 * oe] == new_shape[4 * nw + 4 : 4 * ne]
            and payload_equal(ov, oe, nw, ne)
        )

    ident = array("i", range(new.size))
    zeros = bytes(new.size)

    def map_range(ov: int, nw: int, size: int) -> None:
        new_from_old[ov : ov + size] = ident[nw : nw + size]
        dirty[nw : nw + size] = zeros[:size]
        ranges.append((ov, nw, size))

    def match_run(old_kids, new_kids, i1, i2, j1, j2, safe_parent) -> None:
        # A run of consecutive children matching pairwise: equal content
        # means equal subtree sizes, so the whole run is ONE contiguous
        # range pair.  Interior roots need no edge checks -- their
        # siblings are inside the run and their shared parent pair is
        # mapped (``safe_parent``) -- so only the run boundary defers
        # sibling checks.  Under an unmapped parent every run root's
        # parent edge is broken: mark them all for the bad set instead.
        first_ov = old_kids[i1][0]
        first_nw = new_kids[j1][0]
        total = old_kids[i2 - 1][1] - first_ov
        map_range(first_ov, first_nw, total)
        matched_roots.append((first_ov, first_nw))
        if safe_parent:
            checks.append((first_ov, first_nw, 2))
            checks.append((old_kids[i2 - 1][0], new_kids[j2 - 1][0], 4))
        else:
            for i, j in zip(range(i1, i2), range(j1, j2)):
                checks.append((old_kids[i][0], new_kids[j][0], 8))

    # Stack entries carry the subtree *ends* (one past the last
    # descendant) so sizes never need a per-node pass: a child's end
    # is its next sibling's id, the last child's end is the parent's.
    stack: List[Tuple[int, int, int, int]] = []

    def emit_run(old_kids, new_kids, i1, i2, j1, j2, safe_parent) -> None:
        # kids i1..i2 / j1..j2 match pairwise *structurally*; verify
        # payloads, matching maximal payload-equal sub-runs and recursing
        # into offenders (usually the one edited child).  Equality over a
        # range implies equality over any prefix of it, so the longest
        # clean sub-run bisects.
        while i1 < i2:
            base_o = old_kids[i1][0]
            base_n = new_kids[j1][0]
            lo, hi = 0, i2 - i1
            if payload_equal(
                base_o, old_kids[i2 - 1][1], base_n, new_kids[j2 - 1][1]
            ):
                lo = hi
            else:
                hi -= 1
                while lo < hi:
                    mid = (lo + hi + 1) // 2
                    if payload_equal(
                        base_o,
                        old_kids[i1 + mid - 1][1],
                        base_n,
                        new_kids[j1 + mid - 1][1],
                    ):
                        lo = mid
                    else:
                        hi = mid - 1
            if lo:
                match_run(old_kids, new_kids, i1, i1 + lo, j1, j1 + lo,
                          safe_parent)
                i1 += lo
                j1 += lo
            if i1 < i2:
                c0, c1 = old_kids[i1]
                d0, d1 = new_kids[j1]
                stack.append((c0, c1, d0, d1))
                i1 += 1
                j1 += 1

    if old.size and new.size:
        stack.append((0, old.size, 0, new.size))
        while stack:
            ov, oe, nw, ne = stack.pop()
            if subtree_equal(ov, oe, nw, ne):
                map_range(ov, nw, oe - ov)
                matched_roots.append((ov, nw))
                checks.append((ov, nw, 1 | 2 | 4))
                continue
            old_kids: List[Tuple[int, int]] = []
            v = old_first[ov]
            while v >= 0:
                w = old_next[v]
                old_kids.append((v, w if w >= 0 else oe))
                v = w
            new_kids: List[Tuple[int, int]] = []
            v = new_first[nw]
            while v >= 0:
                w = new_next[v]
                new_kids.append((v, w if w >= 0 else ne))
                v = w
            # The subtrees differ, but when the pair's own label, text and
            # attrs agree the nodes themselves still correspond -- aligning
            # them keeps an edit's ancestor spine reusable instead of
            # letting every ancestor count as changed.
            pair_aligned = (
                old_labels[old_label_ids[ov]] == new_labels[new_label_ids[nw]]
                and old_text_get(ov) == new_text_get(nw)
                and old_attr_get(ov) == new_attr_get(nw)
            )
            if pair_aligned:
                new_from_old[ov] = nw
                dirty[nw] = 0
                ranges.append((ov, nw, 1))
                leaf_flip = bool(old_kids) != bool(new_kids)
                checks.append((ov, nw, 8 if leaf_flip else 1 | 2 | 4))
            if not old_kids or not new_kids:
                continue
            if len(old_kids) == 1 and len(new_kids) == 1:
                # Spine fast path: a single child on each side can only
                # pair positionally, so skip the prefix/suffix bisection
                # and SequenceMatcher entirely.  Deep unary spines (long
                # comment threads) would otherwise pay the full alignment
                # machinery at every level above an edit.
                stack.append((*old_kids[0], *new_kids[0]))
                continue
            # Align child sequences: strip the (typically long) common
            # structural prefix and suffix, then let SequenceMatcher sort
            # out the small middle window.  The kid region is the
            # contiguous node range [ov+1, oe) / [nw+1, ne); at equal
            # offsets into the two regions both lane kinds compare
            # meaningfully (kid roots have parent offset ``-1 - t`` on
            # both sides), so the longest common lane prefix -- found by
            # bisection, in C -- bounds how many whole kid subtrees match
            # pairwise from the front.  Payloads are verified per matched
            # run by emit_run.
            na, nb = len(old_kids), len(new_kids)
            lim = min(na, nb)
            ob, nbase = ov + 1, nw + 1
            span = min(oe - ob, ne - nbase)
            k = min(
                common_len(old_lab_v, 8 * ob, new_lab_v, 8 * nbase, 8 * span)
                // 8,
                common_len(
                    old_shape_v, 4 * ob, new_shape_v, 4 * nbase, 4 * span
                )
                // 4,
            )
            # A kid pair only counts when BOTH subtrees sit entirely
            # inside the verified prefix -- one-sided containment would
            # pair an old leaf with a new kid whose inserted descendants
            # lie just past the verified bytes.
            pre = 0
            while (
                pre < lim
                and old_kids[pre][1] - ob <= k
                and new_kids[pre][1] - nbase <= k
            ):
                pre += 1
            suf = 0
            if oe - ov == ne - nw:
                # Equal subtree sizes: suffix offsets from the end align
                # too (kid-root parent offsets agree), so the same trick
                # works from the back.
                k = min(
                    common_len_end(
                        old_lab_v, 8 * oe, new_lab_v, 8 * ne, 8 * span
                    )
                    // 8,
                    common_len_end(
                        old_shape_v, 4 * oe, new_shape_v, 4 * ne, 4 * span
                    )
                    // 4,
                )
                while (
                    suf < lim - pre
                    and oe - old_kids[na - 1 - suf][0] <= k
                    and ne - new_kids[nb - 1 - suf][0] <= k
                ):
                    suf += 1
            else:
                # Unequal sizes: kid-root parent offsets differ from the
                # back, so fall back to pairwise subtree comparison.
                while suf < lim - pre:
                    a0, a1 = old_kids[na - 1 - suf]
                    b0, b1 = new_kids[nb - 1 - suf]
                    if not subtree_equal(a0, a1, b0, b1):
                        break
                    suf += 1
            if pre:
                emit_run(old_kids, new_kids, 0, pre, 0, pre, pair_aligned)
            if suf:
                emit_run(
                    old_kids, new_kids, na - suf, na, nb - suf, nb, pair_aligned
                )
            if pre + suf == na or pre + suf == nb:
                continue
            # Middle window: one hashable key per child subtree (its
            # structural signature slices), aligned by SequenceMatcher;
            # payloads again verified per equal run by emit_run.
            a_keys = [
                (
                    e - c,
                    old_lab[8 * c : 8 * e],
                    old_shape[4 * c + 4 : 4 * e],
                )
                for c, e in old_kids[pre : na - suf]
            ]
            b_keys = [
                (
                    e - c,
                    new_lab[8 * c : 8 * e],
                    new_shape[4 * c + 4 : 4 * e],
                )
                for c, e in new_kids[pre : nb - suf]
            ]
            sm = SequenceMatcher(a=a_keys, b=b_keys, autojunk=False)
            for tag, i1, i2, j1, j2 in sm.get_opcodes():
                if tag == "equal":
                    emit_run(
                        old_kids,
                        new_kids,
                        pre + i1,
                        pre + i2,
                        pre + j1,
                        pre + j2,
                        pair_aligned,
                    )
                elif tag == "replace":
                    # Pair the replaced runs positionally and recurse:
                    # typically one changed child whose own children
                    # mostly still match.
                    for i, j in zip(range(i1, i2), range(j1, j2)):
                        c0, c1 = old_kids[pre + i]
                        d0, d1 = new_kids[pre + j]
                        stack.append((c0, c1, d0, d1))
                # delete: old children stay unmapped; insert: new
                # children stay dirty -- nothing to record either way.

    # Bad nodes: unmapped ones, plus mapped pairs whose deferred checks
    # fail -- cross edges (parent / prevsibling / nextsibling) that the
    # mapping does not preserve (two matched siblings swapped, a matched
    # subtree re-parented), or an aligned pair whose leaf status flipped
    # (the only unary that edge checks plus signature equality do not
    # already pin down; matched subtrees carry leaf status inside their
    # shape lanes).
    old_bad = bytearray(b"\x01" * old.size)
    for ov, nw, size in ranges:
        old_bad[ov : ov + size] = bytes(size)
    new_bad = bytearray(dirty)
    for ov, nw, kind in checks:
        ok = (
            kind & 8 == 0
            and (
                not kind & 1
                or _edge_preserved(old.parent, new.parent, new_from_old, ov, nw)
            )
            and (
                not kind & 2
                or _edge_preserved(
                    old.prevsibling, new.prevsibling, new_from_old, ov, nw
                )
            )
            and (
                not kind & 4
                or _edge_preserved(
                    old.nextsibling, new.nextsibling, new_from_old, ov, nw
                )
            )
        )
        if not ok:
            old_bad[ov] = 1
            new_bad[nw] = 1

    result = SnapshotDiff(
        old,
        new,
        new_from_old,
        ranges,
        int.from_bytes(dirty, "little"),
        sum(dirty),
        int.from_bytes(old_bad, "little"),
        int.from_bytes(new_bad, "little"),
        matched_roots,
    )
    old._diff = (new, result)
    return result

"""The relational schema ``tau_ur`` for unranked ordered trees.

Section 2 of the paper represents an unranked ordered tree as the structure::

    t_ur = <dom, root, leaf, (label_a)_{a in Sigma},
            firstchild, nextsibling, lastsibling>

:class:`UnrankedStructure` materializes this schema over a :class:`Node`
tree, assigning node identifiers in document order.  In addition to the six
core relations it can supply, on demand, every derived relation used
elsewhere in the paper:

``child``
    natural child relation (``firstchild . nextsibling*``), Section 5;
``lastchild``
    rightmost-child relation, Section 5 / Theorem 5.2;
``firstsibling``
    leftmost children (the mirror image of ``lastsibling``), Definition 6.2;
``nextsibling_star`` / ``nextsibling_plus``
    reflexive-transitive / transitive sibling closure, Lemma 5.5;
``child_star`` / ``child_plus``
    ancestor-descendant closures;
``docorder``
    the strict document order ``<`` of Example 2.5;
``total``
    the total binary relation (``docorder | eps | docorder^-1``), used by the
    connectedness step of Theorem 5.2.

The quadratic-size closures are guarded by a size limit so that benchmarks
cannot accidentally materialize them on huge trees.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Iterable, List, Optional, Set, Tuple

from repro.errors import DatalogError, TreeError
from repro.structures import Fact, Structure
from repro.trees.node import Node
from repro.trees.snapshot import TreeSnapshot

#: Relations that are binary and bidirectionally functional (Prop 4.1).
_FUNCTIONAL_BINARY = ("firstchild", "nextsibling", "lastchild")

#: Upper bound on tree size for materializing quadratic closures.
_CLOSURE_LIMIT = 4000


class UnrankedStructure(Structure):
    """Relational view of an unranked ordered tree (schema ``tau_ur``).

    Node identifiers are assigned in document order, so ``i < j`` iff node
    ``i`` precedes node ``j`` in document order.

    Parameters
    ----------
    root:
        Root node of the tree.

    Examples
    --------
    >>> from repro.trees import parse_sexpr
    >>> s = UnrankedStructure(parse_sexpr("a(a, a(a, a), a)"))
    >>> sorted(s.relation("firstchild"))
    [(0, 1), (2, 3)]
    >>> sorted(v for (v,) in s.relation("leaf"))
    [1, 3, 4, 5]
    """

    def __init__(self, root: Node):
        if root.parent is not None:
            raise TreeError("structure must be built from a root node")
        self._root = root
        self._nodes: List[Node] = list(root.iter_subtree())
        self._ids: Dict[int, int] = {id(n): i for i, n in enumerate(self._nodes)}
        self._cache: Dict[str, FrozenSet[Fact]] = {}
        self._functional_cache: Dict[str, Tuple[Dict[int, int], Dict[int, int]]] = {}
        self._snapshot: Optional[TreeSnapshot] = None

    # -- identity ----------------------------------------------------------

    @property
    def size(self) -> int:
        return len(self._nodes)

    @property
    def root_node(self) -> Node:
        """The underlying root :class:`Node`."""
        return self._root

    def node(self, ident: int) -> Node:
        """The :class:`Node` with identifier ``ident``."""
        return self._nodes[ident]

    def ident(self, node: Node) -> int:
        """The identifier of ``node`` (must belong to this tree)."""
        try:
            return self._ids[id(node)]
        except KeyError:
            raise TreeError("node does not belong to this structure") from None

    def nodes(self) -> List[Node]:
        """All nodes in document order."""
        return list(self._nodes)

    def label_of(self, ident: int) -> str:
        """Label of the node with identifier ``ident``."""
        return self._nodes[ident].label

    def labels(self) -> Set[str]:
        """The set of labels occurring in the tree."""
        return {n.label for n in self._nodes}

    def snapshot(self) -> TreeSnapshot:
        """Columnar snapshot of the tree (built once, then cached).

        Feeds the linear-time propagation kernel
        (:mod:`repro.datalog.kernel`); see
        :class:`repro.trees.snapshot.TreeSnapshot`.
        """
        if self._snapshot is None:
            self._snapshot = TreeSnapshot.from_tree(self._nodes, self._ids, "unranked")
        return self._snapshot

    # -- relations ---------------------------------------------------------

    def has_relation(self, name: str) -> bool:
        try:
            self.relation(name)
            return True
        except DatalogError:
            return False

    def arity(self, name: str) -> int:
        unary = {"dom", "root", "leaf", "lastsibling", "firstsibling"}
        if name in unary or name.startswith("label_"):
            return 1
        return 2

    def relation(self, name: str) -> FrozenSet[Fact]:
        if name not in self._cache:
            self._cache[name] = frozenset(self._compute(name))
        return self._cache[name]

    def functional(self, name: str) -> Optional[Tuple[Dict[int, int], Dict[int, int]]]:
        if name not in _FUNCTIONAL_BINARY:
            return None
        if name not in self._functional_cache:
            forward: Dict[int, int] = {}
            backward: Dict[int, int] = {}
            for a, b in self.relation(name):
                forward[a] = b
                backward[b] = a
            self._functional_cache[name] = (forward, backward)
        return self._functional_cache[name]

    def relation_names(self) -> Iterable[str]:
        """Core ``tau_ur`` relation names (derived relations not included)."""
        names = ["dom", "root", "leaf", "lastsibling", "firstchild", "nextsibling"]
        names.extend(sorted(f"label_{a}" for a in self.labels()))
        return names

    # -- computation -------------------------------------------------------

    def _check_closure_budget(self, name: str) -> None:
        if self.size > _CLOSURE_LIMIT:
            raise DatalogError(
                f"refusing to materialize quadratic relation {name!r} on a "
                f"tree with {self.size} nodes (limit {_CLOSURE_LIMIT})"
            )

    def _compute(self, name: str) -> Set[Fact]:
        nodes = self._nodes
        ids = self._ids
        if name == "dom":
            return {(i,) for i in range(len(nodes))}
        if name == "root":
            return {(0,)} if nodes else set()
        if name == "leaf":
            return {(i,) for i, n in enumerate(nodes) if n.is_leaf}
        if name == "lastsibling":
            return {(i,) for i, n in enumerate(nodes) if n.is_last_sibling}
        if name == "firstsibling":
            return {(i,) for i, n in enumerate(nodes) if n.is_first_sibling}
        if name.startswith("label_"):
            label = name[len("label_") :]
            return {(i,) for i, n in enumerate(nodes) if n.label == label}
        if name.startswith("notlabel_"):
            label = name[len("notlabel_") :]
            return {(i,) for i, n in enumerate(nodes) if n.label != label}
        if name == "firstchild":
            return {
                (i, ids[id(n.children[0])])
                for i, n in enumerate(nodes)
                if n.children
            }
        if name == "nextsibling":
            out: Set[Fact] = set()
            for n in nodes:
                for left, right in zip(n.children, n.children[1:]):
                    out.add((ids[id(left)], ids[id(right)]))
            return out
        if name == "lastchild":
            return {
                (i, ids[id(n.children[-1])])
                for i, n in enumerate(nodes)
                if n.children
            }
        if name == "child":
            out = set()
            for i, n in enumerate(nodes):
                for c in n.children:
                    out.add((i, ids[id(c)]))
            return out
        if name in ("nextsibling_star", "nextsibling_plus"):
            reflexive = name.endswith("_star")
            out = set()
            for n in nodes:
                row = [ids[id(c)] for c in n.children]
                for i, a in enumerate(row):
                    start = i if reflexive else i + 1
                    for b in row[start:]:
                        out.add((a, b))
            if reflexive:
                for i in range(len(nodes)):
                    out.add((i, i))
            return out
        if name in ("child_star", "child_plus"):
            self._check_closure_budget(name)
            out = set()
            for i, n in enumerate(nodes):
                if name == "child_star":
                    out.add((i, i))
                for d in n.iter_subtree():
                    if d is not n:
                        out.add((i, ids[id(d)]))
            return out
        if name == "docorder":
            self._check_closure_budget(name)
            return {(i, j) for i in range(len(nodes)) for j in range(i + 1, len(nodes))}
        if name == "total":
            self._check_closure_budget(name)
            return {(i, j) for i in range(len(nodes)) for j in range(len(nodes))}
        raise DatalogError(f"unknown relation {name!r} over tau_ur")

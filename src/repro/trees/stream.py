"""Streaming snapshot construction: document events -> columns, no Nodes.

The classic ingestion path allocates a :class:`~repro.trees.node.Node`
per element/text token, walks the tree again to assign identifiers
(:class:`~repro.trees.unranked.UnrankedStructure`), and only then
flattens into the integer columns the propagation kernel reads.  This
module collapses those three passes into one: a
:class:`SnapshotBuilder` consumes open/text/close events and writes the
:class:`~repro.trees.snapshot.TreeSnapshot` columns directly, assigning
identifiers in document order as elements open.  Nothing but flat lists
is ever allocated, so huge pages can be wrapped with the runtime touching
only arrays from bytes to output.

Event sources:

* :func:`html_snapshot` -- drives the builder from
  :func:`repro.html.tokenizer.scan_events`, applying the *same*
  void-element / implicit-close / end-tag policy as
  :func:`repro.html.parser.parse_html` (both delegate to
  :mod:`repro.html.policy`, so the two front ends cannot drift), with
  identical synthetic-root unwrapping;
* :func:`sexpr_snapshot` -- the s-expression reader;
* :func:`tree_snapshot` -- replays an existing :class:`Node` tree as
  events (parity harness, and snapshots for generated trees).

Parity invariant (enforced by ``tests/test_stream.py``): for every
document, ``html_snapshot(doc)`` is column-identical to
``UnrankedStructure(parse_html(doc)).snapshot()``.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.errors import TreeError
from repro.trees.node import Node
from repro.trees.snapshot import TreeSnapshot


class SnapshotBuilder:
    """Build a :class:`TreeSnapshot` from document events, Node-free.

    One pass, one open-element stack of integer ids; every event appends
    to the flat columns.  Identifiers are assigned in document order
    (preorder), exactly as :class:`~repro.trees.unranked.UnrankedStructure`
    numbers an equivalent tree.

    Examples
    --------
    >>> b = SnapshotBuilder()
    >>> _ = b.open("a"); _ = b.open("b"); b.close()
    >>> _ = b.leaf("c"); _ = b.open("b"); b.close()
    >>> snap = b.finish()
    >>> snap.parent
    array('i', [-1, 0, 0, 0])
    >>> snap.labels
    ['a', 'b', 'c']
    """

    __slots__ = (
        "_parent",
        "_firstchild",
        "_nextsibling",
        "_prevsibling",
        "_lastchild",
        "_label_ids",
        "_labels",
        "_label_index",
        "_texts",
        "_attrs",
        "_stack",
        "stack_labels",
    )

    def __init__(self):
        self._parent: List[int] = []
        self._firstchild: List[int] = []
        self._nextsibling: List[int] = []
        self._prevsibling: List[int] = []
        self._lastchild: List[int] = []
        self._label_ids: List[int] = []
        self._labels: List[str] = []
        self._label_index: Dict[str, int] = {}
        self._texts: Dict[int, str] = {}
        self._attrs: Dict[int, Dict[str, str]] = {}
        self._stack: List[int] = []
        #: Labels of the open elements (shared with the tag-soup policy
        #: helpers, which compute cut indexes over this list).
        self.stack_labels: List[str] = []

    @property
    def size(self) -> int:
        """Number of nodes emitted so far."""
        return len(self._parent)

    @property
    def depth(self) -> int:
        """Number of currently open elements."""
        return len(self._stack)

    def _append(
        self,
        label: str,
        text: Optional[str],
        attrs: Optional[Dict[str, str]],
    ) -> int:
        nid = len(self._parent)
        stack = self._stack
        if stack:
            parent = stack[-1]
            previous = self._lastchild[parent]
            if previous < 0:
                self._firstchild[parent] = nid
            else:
                self._nextsibling[previous] = nid
            self._lastchild[parent] = nid
        else:
            if nid:
                raise TreeError("snapshot already has a root")
            parent = -1
            previous = -1
        self._parent.append(parent)
        self._firstchild.append(-1)
        self._nextsibling.append(-1)
        self._prevsibling.append(previous)
        self._lastchild.append(-1)
        lid = self._label_index.get(label)
        if lid is None:
            lid = self._label_index[label] = len(self._labels)
            self._labels.append(label)
        self._label_ids.append(lid)
        if text:
            self._texts[nid] = text
        if attrs:
            self._attrs[nid] = attrs
        return nid

    def open(
        self,
        label: str,
        attrs: Optional[Dict[str, str]] = None,
        text: Optional[str] = None,
    ) -> int:
        """Open an element; returns its document-order id."""
        nid = self._append(label, text, attrs)
        self._stack.append(nid)
        self.stack_labels.append(label)
        return nid

    def leaf(
        self,
        label: str,
        text: Optional[str] = None,
        attrs: Optional[Dict[str, str]] = None,
    ) -> int:
        """Emit a childless node (open + immediate close)."""
        return self._append(label, text, attrs)

    def text(self, data: str) -> int:
        """Emit an HTML text node (label ``#text`` with payload)."""
        return self._append("#text", data, None)

    def close(self) -> None:
        """Close the innermost open element."""
        if not self._stack:
            raise TreeError("no open element to close")
        self._stack.pop()
        self.stack_labels.pop()

    def close_to(self, cut: int) -> None:
        """Close open elements until only ``cut`` remain."""
        if cut < len(self._stack):
            del self._stack[cut:]
            del self.stack_labels[cut:]

    def strip_root(self) -> None:
        """Drop node 0, promoting its single child to the root.

        This is the streaming counterpart of the synthetic-root unwrapping
        in :func:`repro.html.parser.parse_html`; it requires node 0 to
        have exactly one child.
        """
        if not self._parent or self._parent[0] != -1:
            raise TreeError("no root to strip")
        first = self._firstchild[0]
        if first < 0 or first != self._lastchild[0]:
            raise TreeError("root does not have exactly one child")
        for column in (
            self._parent,
            self._firstchild,
            self._nextsibling,
            self._prevsibling,
            self._lastchild,
        ):
            column[:] = [v - 1 if v > 0 else -1 for v in column]
            del column[0]
        # Re-intern labels: the dropped root's label may no longer occur,
        # and label ids must match first-occurrence order over the
        # remaining nodes (column parity with the Node-built snapshot).
        label_ids = self._label_ids
        del label_ids[0]
        if 0 not in label_ids:
            # Fast path: the synthetic root's label (id 0, interned first)
            # occurs nowhere else, so dropping it shifts every id by one
            # while preserving first-occurrence order.
            label_ids[:] = [lid - 1 for lid in label_ids]
            del self._labels[0]
            self._label_index = {
                name: lid for lid, name in enumerate(self._labels)
            }
        else:
            old_labels = self._labels
            labels: List[str] = []
            label_index: Dict[str, int] = {}
            for i, lid in enumerate(label_ids):
                name = old_labels[lid]
                new = label_index.get(name)
                if new is None:
                    new = label_index[name] = len(labels)
                    labels.append(name)
                label_ids[i] = new
            self._labels = labels
            self._label_index = label_index
        self._texts = {k - 1: v for k, v in self._texts.items() if k}
        self._attrs = {k - 1: v for k, v in self._attrs.items() if k}
        self._stack = [v - 1 for v in self._stack if v > 0]
        del self.stack_labels[: len(self.stack_labels) - len(self._stack)]

    def finish(self, schema: str = "unranked", max_rank: int = 0) -> TreeSnapshot:
        """Close any open elements and return the finished snapshot."""
        self.close_to(0)
        return TreeSnapshot(
            schema,
            self._parent,
            self._firstchild,
            self._nextsibling,
            self._prevsibling,
            self._lastchild,
            self._label_ids,
            self._labels,
            self._label_index,
            max_rank=max_rank,
            texts=self._texts,
            attrs=self._attrs,
        )


def html_snapshot(html: str, root_label: str = "document") -> TreeSnapshot:
    """Tokenize HTML straight into snapshot columns (zero Node objects).

    Column-identical to ``UnrankedStructure(parse_html(html)).snapshot()``
    -- same document-order ids, same interned labels, same tag-soup
    handling -- but built in a single pass over the token events.

    This is the batch pipeline's hottest loop, so the column appends of
    :meth:`SnapshotBuilder._append` are inlined over the builder's own
    lists (the randomized parity suite in ``tests/test_stream.py`` pins
    the equivalence); all tag-soup policy decisions still go through
    :mod:`repro.html.policy`, shared with :func:`repro.html.parser.parse_html`.

    >>> snap = html_snapshot("<ul><li>a<li>b</ul>")
    >>> [snap.labels[l] for l in snap.label_ids]
    ['ul', 'li', '#text', 'li', '#text']
    """
    from repro.html.policy import (
        IMPLICIT_CLOSERS,
        VOID_ELEMENTS,
        end_tag_cut,
        implied_close_cut,
    )
    from repro.html.tokenizer import scan_into

    builder = SnapshotBuilder()
    builder.open(root_label)
    parent = builder._parent
    label_ids = builder._label_ids
    labels = builder._labels
    label_index = builder._label_index
    texts = builder._texts
    attrs_column = builder._attrs
    stack = builder._stack
    stack_labels = builder.stack_labels
    text_lid = -1
    get_closers = IMPLICIT_CLOSERS.get
    get_lid = label_index.get
    parent_append = parent.append
    label_ids_append = label_ids.append

    def on_text(data):
        nonlocal text_lid
        if text_lid < 0:
            text_lid = get_lid("#text", -1)
            if text_lid < 0:
                text_lid = label_index["#text"] = len(labels)
                labels.append("#text")
        texts[len(parent)] = data
        parent_append(stack[-1])
        label_ids_append(text_lid)

    def on_start(name, attrs, self_closing):
        closers = get_closers(name)
        if closers:
            cut = implied_close_cut(stack_labels, closers)
            if cut < len(stack):
                del stack[cut:]
                del stack_labels[cut:]
        nid = len(parent)
        parent_append(stack[-1])
        lid = get_lid(name)
        if lid is None:
            lid = label_index[name] = len(labels)
            labels.append(name)
        label_ids_append(lid)
        if attrs:
            attrs_column[nid] = attrs
        if not self_closing and name not in VOID_ELEMENTS:
            stack.append(nid)
            stack_labels.append(name)

    def on_end(name):
        if stack_labels[-1] == name and len(stack) > 1:
            # Fast path: the end tag matches the innermost open element
            # (equivalent to end_tag_cut returning len-1).
            stack.pop()
            stack_labels.pop()
        elif name not in VOID_ELEMENTS:
            cut = end_tag_cut(stack_labels, name)
            if cut < len(stack):
                del stack[cut:]
                del stack_labels[cut:]

    # Comments and doctypes carry no tree content (on_misc=None).
    scan_into(html, on_start, on_end, on_text)

    # Derive the sibling-link columns from ``parent`` in one pass: ids
    # are preorder, so each node's children arrive in document order and
    # the running last-child table is exactly ``lastchild`` at the end.
    n = len(parent)
    firstchild = [-1] * n
    nextsibling = [-1] * n
    prevsibling = [-1] * n
    lastchild = [-1] * n
    for v in range(1, n):
        p = parent[v]
        previous = lastchild[p]
        if previous < 0:
            firstchild[p] = v
        else:
            nextsibling[previous] = v
            prevsibling[v] = previous
        lastchild[p] = v
    builder._firstchild = firstchild
    builder._nextsibling = nextsibling
    builder._prevsibling = prevsibling
    builder._lastchild = lastchild

    # Unwrap the synthetic root when the document has one root element and
    # no top-level text (same rule as parse_html).
    first = firstchild[0]
    if first >= 0 and first == lastchild[0] and labels[label_ids[first]] != "#text":
        builder.strip_root()
    return builder.finish()


def tree_snapshot(root: Node, schema: str = "unranked", max_rank: int = 0) -> TreeSnapshot:
    """Replay an existing tree through the builder (document order).

    Equivalent to ``UnrankedStructure(root).snapshot()`` plus the text and
    attribute side columns, without materializing the id dictionary.
    """
    builder = SnapshotBuilder()
    stack = [(root, False)]
    while stack:
        node, done = stack.pop()
        if done:
            builder.close()
            continue
        children = node.children
        if children:
            builder.open(
                node.label,
                dict(node.attrs) if node.attrs else None,
                node.text,
            )
            stack.append((node, True))
            for child in reversed(children):
                stack.append((child, False))
        else:
            builder.leaf(
                node.label,
                node.text,
                dict(node.attrs) if node.attrs else None,
            )
    return builder.finish(schema=schema, max_rank=max_rank)


def sexpr_snapshot(text: str) -> TreeSnapshot:
    """Parse s-expression tree syntax straight into snapshot columns.

    >>> sexpr_snapshot("a(b, c(d), b)").parent
    array('i', [-1, 0, 0, 2, 0])
    """
    from repro.trees.node import parse_sexpr

    return tree_snapshot(parse_sexpr(text))

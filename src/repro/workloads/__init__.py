"""Synthetic workloads.

Real Web pages are unavailable offline, so the benchmarks and examples run
on deterministic synthetic documents that exercise the same code paths
(DESIGN.md, substitution S11):

* :mod:`repro.workloads.docs` -- HTML page generators: product catalogs,
  news pages with nested comment threads, noisy table layouts;
* :mod:`repro.workloads.programs` -- datalog program generators for the
  combined-complexity benchmarks (program-size sweeps).
"""

from repro.workloads.docs import (
    CATALOG_WRAPPER,
    FORUM_WRAPPER,
    catalog_page,
    catalog_pages,
    forum_page,
    news_page,
    noisy_table_page,
)
from repro.workloads.programs import chain_program, even_a_family, wide_program

__all__ = [
    "CATALOG_WRAPPER",
    "FORUM_WRAPPER",
    "catalog_page",
    "catalog_pages",
    "forum_page",
    "news_page",
    "noisy_table_page",
    "chain_program",
    "wide_program",
    "even_a_family",
]

"""Deterministic synthetic HTML page generators.

Each generator returns an HTML string; parse it with
:func:`repro.html.parse_html`.  All randomness flows through an explicit
seed, so benchmark workloads are reproducible.
"""

from __future__ import annotations

import random
from typing import List

_ADJECTIVES = [
    "Quantum", "Turbo", "Classic", "Nordic", "Solar", "Crimson",
    "Compact", "Deluxe", "Hyper", "Gentle", "Rustic", "Vivid",
]
_NOUNS = [
    "Widget", "Teapot", "Lamp", "Keyboard", "Backpack", "Router",
    "Notebook", "Speaker", "Bottle", "Tripod", "Charger", "Helmet",
]
_COMMENTERS = ["ada", "grace", "alan", "edsger", "barbara", "donald"]

#: The reference Elog- wrapper for :func:`catalog_page` (records + fields,
#: the classic Lixto shape).  Every benchmark that compares evaluation
#: engines on the catalog workload parses this one text, so the engines
#: are guaranteed to be timed on the same program.
CATALOG_WRAPPER = """
record(x) <- root(x0), subelem(x0, 'body.table.tr', x).
price(x)  <- record(x0), subelem(x0, 'td', x), nextsibling(y, x).
name(x)   <- record(x0), subelem(x0, 'td', x), firstsibling(x).
"""


def catalog_page(seed: int, items: int, with_discounts: bool = True) -> str:
    """A product-catalog page: a table of product rows.

    Each row has a name cell, a price cell, and (sometimes) a discount
    cell -- the classic Lixto-style extraction target.
    """
    rng = random.Random(seed)
    rows: List[str] = []
    for index in range(items):
        name = f"{rng.choice(_ADJECTIVES)} {rng.choice(_NOUNS)} {index}"
        price = f"{rng.randint(5, 500)}.{rng.randint(0, 99):02d}"
        cells = [
            f'<td class="name">{name}</td>',
            f'<td class="price">${price}</td>',
        ]
        if with_discounts and rng.random() < 0.3:
            cells.append(f'<td class="discount">-{rng.randint(5, 40)}%</td>')
        rows.append(f"<tr>{''.join(cells)}</tr>")
    side = "".join(
        f"<li><a href=\"/cat{i}\">Category {i}</a></li>" for i in range(5)
    )
    return (
        "<html><head><title>Shop</title></head><body>"
        f"<div id=\"nav\"><ul>{side}</ul></div>"
        "<h1>Today's offers</h1>"
        f"<table id=\"products\">{''.join(rows)}</table>"
        "<div id=\"footer\">© shop</div>"
        "</body></html>"
    )


def catalog_pages(count: int, items: int, seed0: int = 0) -> List[str]:
    """A batch of distinct catalog pages (the streaming-pipeline workload).

    Returns ``count`` HTML strings with seeds ``seed0 .. seed0+count-1``;
    feed them to :meth:`repro.wrap.extraction.Wrapper.wrap_html_many` (or
    parse each for the classic tree path).
    """
    return [catalog_page(seed=seed0 + i, items=items) for i in range(count)]


def _comment(rng: random.Random, depth: int) -> str:
    author = rng.choice(_COMMENTERS)
    body = f"Comment by {author} at depth {depth}."
    replies = ""
    if depth < 3 and rng.random() < 0.5:
        count = rng.randint(1, 2)
        inner = "".join(_comment(rng, depth + 1) for _ in range(count))
        replies = f"<ul class=\"replies\">{inner}</ul>"
    return (
        f'<li class="comment"><span class="author">{author}</span>'
        f"<p>{body}</p>{replies}</li>"
    )


def news_page(seed: int, articles: int) -> str:
    """A news page: articles with headlines, bodies and nested comment
    threads (recursion makes this the natural showcase for recursive
    Elog- rules)."""
    rng = random.Random(seed)
    parts: List[str] = []
    for index in range(articles):
        headline = f"{rng.choice(_ADJECTIVES)} {rng.choice(_NOUNS)} shocks markets"
        comments = "".join(_comment(rng, 1) for _ in range(rng.randint(0, 3)))
        parts.append(
            '<div class="article">'
            f"<h2>{headline}</h2>"
            f"<p>Story {index} body text.</p>"
            f'<ul class="comments">{comments}</ul>'
            "</div>"
        )
    return (
        "<html><body><div id=\"main\">" + "".join(parts) + "</div></body></html>"
    )


#: The reference Elog- wrapper for :func:`forum_page`: a recursive
#: descent over arbitrarily deep reply chains.  The recursion makes cold
#: evaluation pay one fixpoint round per nesting level, which is what the
#: incremental ``doc_id`` serving path amortizes away on re-crawls.
FORUM_WRAPPER = """
thread(x)  <- root(x0), subelem(x0, 'body.div.ul.li', x).
comment(x) <- thread(x).
comment(x) <- comment(x0), subelem(x0, 'ul.li', x).
body(x)    <- comment(x0), subelem(x0, 'p', x).
"""


def forum_page(seed: int, threads: int, depth: int) -> str:
    """A forum page: ``threads`` top-level comments, each a maximally deep
    chain of ``depth`` nested replies.

    The deep-recursion counterpart of :func:`news_page` (whose threads
    stop at depth 3): reply chains here are as deep as requested, so the
    recursive :data:`FORUM_WRAPPER` rules genuinely iterate.  Comment
    bodies are deterministic per ``(thread, depth)`` -- re-crawl
    workloads edit them with targeted string replacement.
    """
    rng = random.Random(seed)
    parts: List[str] = []
    for t in range(threads):
        inner = ""
        for d in range(depth - 1, -1, -1):
            author = rng.choice(_COMMENTERS)
            replies = f'<ul class="replies">{inner}</ul>' if inner else ""
            inner = (
                f'<li class="comment"><p>Comment {t}.{d} by {author}.</p>'
                f"{replies}</li>"
            )
        parts.append(inner)
    return (
        '<html><body><div id="forum"><ul class="threads">'
        + "".join(parts)
        + "</ul></div></body></html>"
    )


def noisy_table_page(seed: int, rows: int, noise_divs: int = 10) -> str:
    """A table page buried in layout noise (tests wrapper robustness:
    Elog- rules describe only the objects of interest, not the page)."""
    rng = random.Random(seed)
    noise = "".join(
        f'<div class="decor{i}"><span>{rng.randint(0, 9)}</span></div>'
        for i in range(noise_divs)
    )
    body_rows = "".join(
        f"<tr><td>{rng.randint(100, 999)}</td><td>{rng.choice(_NOUNS)}</td></tr>"
        for _ in range(rows)
    )
    return (
        f"<html><body>{noise}<div><div><table>"
        f"<tr><th>Id</th><th>Name</th></tr>{body_rows}"
        f"</table></div></div>{noise}</body></html>"
    )

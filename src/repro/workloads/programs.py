"""Datalog program generators for the complexity benchmarks.

Theorem 4.2's combined complexity ``O(|P| * |dom|)`` is exhibited by
sweeping both the tree size and the program size; these generators produce
program families whose size grows linearly while staying within the
Theorem 4.2 fragment (connected monadic rules over functional binaries).
"""

from __future__ import annotations

from typing import List, Sequence

from repro.datalog.program import Program, Rule
from repro.datalog.terms import Atom, var
from repro.paper import even_a_program


def chain_program(length: int) -> Program:
    """A chain of ``length`` unary predicates threaded along
    ``firstchild``/``nextsibling`` hops: ``p0`` holds at the root;
    ``p_{i+1}`` propagates to a child or sibling; the query asks for the
    final predicate.  Program size grows linearly with ``length``."""
    x, y = var("x"), var("y")
    rules: List[Rule] = [Rule(Atom("p0", (x,)), [Atom("root", (x,))])]
    for i in range(length):
        hop = "firstchild" if i % 2 == 0 else "nextsibling"
        rules.append(
            Rule(
                Atom(f"p{i + 1}", (y,)),
                [Atom(f"p{i}", (x,)), Atom(hop, (x, y))],
            )
        )
        # Also allow staying put, so deep programs still derive facts on
        # shallow trees.
        rules.append(Rule(Atom(f"p{i + 1}", (x,)), [Atom(f"p{i}", (x,))]))
    return Program(rules, query=f"p{length}")


def wide_program(copies: int, labels: Sequence[str] = ("a", "b")) -> Program:
    """``copies`` independent renamings of the Example 3.2 program glued
    into one program (size grows linearly in ``copies``); the query is the
    first copy's ``C0``."""
    rules: List[Rule] = []
    base = even_a_program(labels=labels)
    for copy in range(copies):
        for rule in base.rules:
            head = Atom(f"c{copy}_{rule.head.pred}", rule.head.args)
            body = []
            for atom in rule.body:
                if atom.pred in base.intensional_predicates():
                    body.append(Atom(f"c{copy}_{atom.pred}", atom.args))
                else:
                    body.append(atom)
            rules.append(Rule(head, body))
    return Program(rules, query="c0_C0")


def even_a_family(labels: Sequence[str] = ("a", "b")) -> Program:
    """The Example 3.2 program itself (re-exported for benchmarks)."""
    return even_a_program(labels=labels)

"""Legacy setup shim: lets ``pip install -e .`` work without the ``wheel``
package on older setuptools (no network available to fetch build deps)."""

from setuptools import setup

setup()

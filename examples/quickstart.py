"""Quickstart: monadic datalog over trees (Example 3.2 end to end).

Builds the paper's even-`a` program, runs it on the Example 3.2 tree with
every evaluation strategy, and prints the naive fixpoint trace T^1..T^7
exactly as the paper lists it.

Run:  python examples/quickstart.py
"""

from repro import UnrankedStructure, evaluate, naive_fixpoint_trace, parse_sexpr
from repro.paper import even_a_program, example32_structure


def main() -> None:
    program = even_a_program(labels=("a",))
    structure = example32_structure()

    print("Program (Example 3.2):")
    print(program)
    print()
    print("Tree:", parse_sexpr("a(a, a, a)"))
    print()

    for method in ("seminaive", "ground", "lit", "naive"):
        result = evaluate(program, structure, method=method)
        print(f"{method:>10}: C0 = {sorted(result.query_result())}")
    print()

    print("Naive fixpoint trace (T^1 .. T^omega), matching the paper:")
    for round_index, derived in enumerate(naive_fixpoint_trace(program, structure), 1):
        atoms = sorted(
            f"{pred}(n{node + 1})"
            for pred, tuples in derived.items()
            for (node,) in tuples
        )
        print(f"  T^{round_index}: {', '.join(atoms)}")

    # The same query on a larger tree, through the linear-time engine.
    big = parse_sexpr("a(b(a, a), a(a), b)")
    result = evaluate(even_a_program(labels=("a", "b")), UnrankedStructure(big))
    print()
    print(f"Even-a roots of {big}: nodes {sorted(result.query_result())}")


if __name__ == "__main__":
    main()

"""Wrapping a product catalog: the paper's motivating scenario.

A synthetic shop page (HTML) is parsed with the library's own HTML front
end; a wrapper is then built **visually** (Section 6.2): we "click" a
table row inside the document, the session derives the Elog- rule, and
we refine with a condition -- never writing datalog by hand.  The result
is serialized as XML.

Run:  python examples/product_catalog.py
"""

from repro.elog.syntax import Condition
from repro.html import parse_html
from repro.wrap import VisualSession, Wrapper, to_xml
from repro.workloads import catalog_page


def main() -> None:
    html = catalog_page(seed=7, items=5)
    document = parse_html(html)

    # --- visual specification (Section 6.2) ------------------------------
    session = VisualSession(document)

    # Find some concrete nodes to "click" on.
    table = next(n for n in document.iter_subtree() if n.label == "table")
    first_row = table.children[0]
    name_cell = first_row.children[0]
    price_cell = first_row.children[1]

    rule = session.select("record", "root", first_row)
    print("Derived rule from the row click:")
    print(" ", rule)

    rule = session.select("name", "record", name_cell)
    session.refine_last(Condition("firstsibling", ("x",)))
    print("Name rule (refined with firstsibling):")
    print(" ", session.rules[-1])

    session.select("price", "record", price_cell)
    print("Price rule:")
    print(" ", session.rules[-1])
    print()

    # --- wrap the document -------------------------------------------------
    wrapper = Wrapper()
    program = session.program()
    wrapper.add_elog("record", program, pattern="record")
    wrapper.add_elog("name", program, pattern="name")
    wrapper.add_elog("price", program, pattern="price")

    output = wrapper.wrap(document)
    print("Wrapped result:")
    print(to_xml(output))


if __name__ == "__main__":
    main()

"""Query automata vs. their datalog simulation (Examples 4.9 / 4.21).

Replays the exact run of Example 4.9, then pits the A_beta family of
Example 4.21 against its Theorem 4.11 translation: automaton runs blow up
superpolynomially with the tree while the datalog program stays linear.

Run:  python examples/query_automaton_demo.py
"""

import time

from repro import RankedStructure, evaluate
from repro.qa import a_beta_qa, even_a_qa, ranked_qa_to_datalog
from repro.trees.generate import complete_binary_tree
from repro.trees.node import Node


def main() -> None:
    # --- Example 4.9: the run c0..c4 ------------------------------------
    qa = even_a_qa()
    tree = Node("a", [Node("a"), Node("a")])
    run = qa.run(tree, trace=True)
    print("Example 4.9 run on a(a, a):")
    names = {id(tree): "n0", id(tree.children[0]): "n1", id(tree.children[1]): "n2"}
    for index, config in enumerate(run.trace):
        rendered = ", ".join(
            f"{names[i]} -> {state}" for i, state in sorted(config.items(), key=lambda kv: names[kv[0]])
        )
        print(f"  c{index}: {rendered}")
    print(f"  accepted={run.accepted}, selected={len(run.selected)} (odd counts everywhere)")
    print()

    # --- Example 4.21: superpolynomial runs vs. linear datalog -----------
    print("Example 4.21: A_beta run steps vs. datalog simulation")
    print(f"{'alpha':>5} {'depth':>5} {'n':>6} {'QA steps':>10} {'QA time':>9} {'datalog time':>13}")
    for alpha in (1, 2):
        qa_beta = a_beta_qa(alpha)
        program = ranked_qa_to_datalog(qa_beta)
        for depth in (2, 3, 4, 5):
            tree = complete_binary_tree(depth)
            n = tree.subtree_size()

            start = time.perf_counter()
            run = qa_beta.run(tree)
            qa_time = time.perf_counter() - start

            structure = RankedStructure(tree, max_rank=2)
            start = time.perf_counter()
            result = evaluate(program, structure)  # auto -> Theorem 4.2 grounding
            datalog_time = time.perf_counter() - start

            agree = {structure.ident(x) for x in run.selected} == result.query_result()
            print(
                f"{alpha:>5} {depth:>5} {n:>6} {run.steps:>10} "
                f"{qa_time:>8.3f}s {datalog_time:>12.3f}s  agree={agree}"
            )
    print()
    print(
        "Each node at depth d is visited Theta(beta^d) times by the "
        "automaton (Example 4.21); the translated program is evaluated "
        "once per node."
    )


if __name__ == "__main__":
    main()

"""Recursive wrapping: nested comment threads.

News pages carry arbitrarily nested reply threads; a *recursive* Elog-
program (recursion is first-class in Elog, Section 6.1) extracts every
comment at any depth, plus its author, and the wrapped tree preserves the
nesting.

Run:  python examples/news_threads.py
"""

from repro.elog.parser import parse_elog
from repro.html import parse_html
from repro.wrap import Wrapper, to_xml
from repro.workloads import news_page


def main() -> None:
    document = parse_html(news_page(seed=11, articles=2))

    # 'comment' is recursive: a comment is a li under a top-level comments
    # list, or a li under the replies list of another comment.
    program = parse_elog(
        """
        article(x) <- root(x0), subelem(x0, 'body.div.div', x).
        comment(x) <- article(x0), subelem(x0, 'ul.li', x).
        comment(x) <- comment(x0), subelem(x0, 'ul.li', x).
        author(x)  <- comment(x0), subelem(x0, 'span', x).
        """,
    )

    wrapper = Wrapper()
    wrapper.add_elog("article", program, pattern="article")
    wrapper.add_elog("comment", program, pattern="comment")
    wrapper.add_elog("author", program, pattern="author")

    output = wrapper.wrap(document)
    print(to_xml(output))

    comments = sum(1 for n in output.iter_subtree() if n.label == "comment")
    print(f"\nExtracted {comments} comments across all nesting depths.")


if __name__ == "__main__":
    main()

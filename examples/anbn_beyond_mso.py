"""Theorem 6.6: Elog-Delta expresses a^n b^n -- strictly beyond MSO.

Runs the paper's three-rule Elog-Delta program on root fan-outs a^n b^m
and tabulates acceptance, then demonstrates non-regularity computationally
(pairwise-distinguishable prefixes grow without bound -- Myhill-Nerode).

Run:  python examples/anbn_beyond_mso.py
"""

from repro.automata.nfa import distinguishable_prefixes
from repro.elog.delta import anbn_program, evaluate_elog_delta
from repro.trees.generate import flat_tree


def main() -> None:
    program = anbn_program()
    print("The Theorem 6.6 program:")
    print(program)
    print()

    print("Acceptance on r(a^n b^m):")
    header = "n\\m " + " ".join(f"{m:>2}" for m in range(6))
    print(header)
    for n in range(6):
        row = [f"{n:>3}:"]
        for m in range(6):
            tree = flat_tree("a" * n + "b" * m)
            accepted = 0 in evaluate_elog_delta(program, tree).unary("anbn")
            row.append(" +" if accepted else " .")
        print(" ".join(row))
    print("(diagonal = accepted: exactly a^n b^n, n >= 1)")
    print()

    # Non-regularity: the language {a^n b^n} has infinitely many
    # Myhill-Nerode classes; exhibit k+1 pairwise-distinguishable prefixes
    # for growing k.
    def oracle(word) -> bool:
        tree = flat_tree("".join(word))
        return 0 in evaluate_elog_delta(program, tree).unary("anbn")

    for k in (3, 5, 8):
        prefixes = [tuple("a" * i) for i in range(k + 1)]
        suffixes = [tuple("b" * i) for i in range(k + 1)]
        classes = distinguishable_prefixes(oracle, prefixes, suffixes)
        print(
            f"prefixes a^0..a^{k}: {classes} pairwise-distinguishable "
            f"residual classes (a DFA would need >= {classes} states)"
        )
    print()
    print(
        "No finite automaton -- hence no MSO formula (Prop 2.1) -- can "
        "bound these classes: Elog-Delta is strictly more expressive "
        "than MSO (Theorem 6.6)."
    )


if __name__ == "__main__":
    main()

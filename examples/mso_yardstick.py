"""MSO as the expressiveness yardstick (Theorem 4.4 end to end).

The same unary query is expressed in MSO, compiled down to a tree
automaton, evaluated with the linear two-pass algorithm, translated into
monadic datalog, normalized into TMNF, and translated into Elog- -- all
six answers must coincide.

Run:  python examples/mso_yardstick.py
"""

from repro import UnrankedStructure, evaluate, parse_sexpr
from repro.elog.from_datalog import datalog_to_elog
from repro.elog.translate import elog_to_datalog
from repro.mso import compile_query, naive_select, parse_mso
from repro.mso.to_datalog import mso_to_datalog
from repro.tmnf import to_tmnf


def main() -> None:
    # "x is a b-labeled node all of whose descendants are a-labeled,
    #  and something precedes it in document order".
    text = (
        "label_b(x) & forall y (descendant(x, y) -> label_a(y)) "
        "& exists z (before(z, x))"
    )
    formula = parse_mso(text)
    labels = ["a", "b", "r"]
    print("MSO query:", formula)

    tree = parse_sexpr("r(b(a, a), b(a, b), a(b))")
    structure = UnrankedStructure(tree)
    print("Tree:", tree)

    expected = naive_select(formula, "x", structure)
    print("\n1. naive MSO model checking:   ", sorted(expected))

    query = compile_query(formula, "x", labels)
    print(
        f"2. tree automaton ({query.dta.num_states} states, two-pass): "
        f"{sorted(query.select_ids(structure))}"
    )

    program, _ = mso_to_datalog(formula, "x", labels)
    result = evaluate(program, structure)
    print(
        f"3. monadic datalog ({len(program.rules)} rules, Theorem 4.2 "
        f"engine '{result.method}'): {sorted(result.query_result())}"
    )

    tmnf = to_tmnf(program)
    result_tmnf = evaluate(tmnf.program, structure)
    print(
        f"4. TMNF normal form ({len(tmnf.program.rules)} rules): "
        f"{sorted(result_tmnf.query_result())}"
    )

    elog = datalog_to_elog(tmnf.program, root_label="r")
    back = elog_to_datalog(elog)
    result_elog = evaluate(back, structure, method="seminaive")
    print(
        f"5. Elog- ({len(elog)} rules) re-translated: "
        f"{sorted(result_elog.unary(elog.query or program.query))}"
    )

    answers = {
        frozenset(expected),
        frozenset(query.select_ids(structure)),
        frozenset(result.query_result()),
        frozenset(result_tmnf.query_result()),
        frozenset(result_elog.unary(elog.query or program.query)),
    }
    print("\nAll formalisms agree:", len(answers) == 1)


if __name__ == "__main__":
    main()
